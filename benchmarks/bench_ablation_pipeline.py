"""Ablations of AE-SZ design choices called out in DESIGN.md (beyond paper Fig. 11).

Two pipeline ablations, run on CESM-CLDHGH and NYX-baryon_density at eb = 1e-2:

* **Entropy stage**: full Huffman + dictionary backend (the paper's design) vs
  the dictionary backend alone vs raw Huffman only.  Shape check: the combined
  stage is at least as small as either single stage (within 2%).
* **Mean-Lorenzo fallback**: AE-SZ with and without the per-block mean
  predictor.  Shape check: disabling the fallback never makes the stream
  smaller by more than 2% (i.e. the fallback is a safe default), and on at
  least one field it helps or ties.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import bench_shape, held_out_snapshot, model_cache, report_table, run_once
from repro.analysis.experiments import build_aesz_for_field
from repro.core import AESZCompressor, AESZConfig
from repro.encoding import EntropyCodec, StoreBackend, ZlibBackend
from repro.quantization.uniform import UniformQuantizer
from repro.utils.validation import value_range

FIELDS = ["CESM-CLDHGH", "NYX-baryon_density"]
ERROR_BOUND = 1e-2


def _entropy_rows() -> list:
    rows = []
    for field in FIELDS:
        data = held_out_snapshot(field)
        abs_eb = ERROR_BOUND * value_range(data)
        codes = UniformQuantizer(abs_eb).quantize(data)
        codes -= codes.min()
        variants = {
            "huffman+zlib": EntropyCodec(backend=ZlibBackend(), use_huffman=True),
            "zlib-only": EntropyCodec(backend=ZlibBackend(), use_huffman=False),
            "huffman-only": EntropyCodec(backend=StoreBackend(), use_huffman=True),
        }
        for name, codec in variants.items():
            payload = codec.encode(codes)
            rows.append({"ablation": "entropy_stage", "field": field, "variant": name,
                         "bytes": len(payload),
                         "bits_per_value": len(payload) * 8.0 / data.size})
    return rows


def _mean_fallback_rows() -> list:
    cache = model_cache()
    rows = []
    for field in FIELDS:
        data = held_out_snapshot(field)
        base = build_aesz_for_field(field, cache=cache, shape=bench_shape(field))
        with_mean = AESZCompressor(base.autoencoder,
                                   AESZConfig(block_size=base.config.block_size,
                                              use_mean_lorenzo=True))
        without_mean = AESZCompressor(base.autoencoder,
                                      AESZConfig(block_size=base.config.block_size,
                                                 use_mean_lorenzo=False))
        for name, comp in [("with_mean_lorenzo", with_mean),
                           ("without_mean_lorenzo", without_mean)]:
            payload = comp.compress(data, ERROR_BOUND)
            rows.append({"ablation": "mean_fallback", "field": field, "variant": name,
                         "bytes": len(payload),
                         "bits_per_value": len(payload) * 8.0 / data.size})
    return rows


def run_ablations() -> list:
    return _entropy_rows() + _mean_fallback_rows()


@pytest.mark.benchmark(group="ablation")
def test_pipeline_ablations(benchmark):
    rows = run_once(benchmark, run_ablations)
    report_table("ablation_pipeline", rows,
                 title="Design-choice ablations: entropy stage and mean-Lorenzo fallback")

    # Entropy stage: combined is at least as small as either single stage.
    for field in FIELDS:
        sizes = {r["variant"]: r["bytes"] for r in rows
                 if r["ablation"] == "entropy_stage" and r["field"] == field}
        assert sizes["huffman+zlib"] <= 1.02 * min(sizes["zlib-only"], sizes["huffman-only"]), sizes

    # Mean fallback: a safe default (never much worse), helpful or neutral somewhere.
    deltas = []
    for field in FIELDS:
        sizes = {r["variant"]: r["bytes"] for r in rows
                 if r["ablation"] == "mean_fallback" and r["field"] == field}
        assert sizes["with_mean_lorenzo"] <= 1.02 * sizes["without_mean_lorenzo"], sizes
        deltas.append(sizes["without_mean_lorenzo"] - sizes["with_mean_lorenzo"])
    assert max(deltas) >= 0

"""Throughput benchmark for the chunked out-of-core compression pipeline.

Compares three ways of compressing the same large synthetic field under the
same value-range-relative bound:

* single-shot ``repro.compress`` (one core, whole field in RAM),
* chunked ``repro.compress_chunked`` with ``workers=1`` (serial, per-chunk
  archives — isolates the chunking overhead), and
* chunked with a process pool (``workers=2,4,...``).

Reported numbers are MB/s of original data over the best of ``repeats`` runs,
plus the speedup of every configuration against the single-shot baseline.  On
a multi-core machine the 4-worker configuration is expected to clear 1.4x the
single-shot throughput; on a single hardware core the parallel rows mostly
measure process-pool overhead (the bit-identity check still runs).  Every
configuration's output is verified: chunked blobs must be bit-identical across
worker counts and the decompression must satisfy the requested bound.

Run standalone with ``python benchmarks/bench_chunked_throughput.py`` (add
``--smoke`` for a quick CI-sized run that still exercises the multiprocessing
path with 2 workers).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # standalone execution
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from repro import api
from repro.bounds import Rel

# 16M float32 elements = 64 MB of original data, split into 16 chunks.
N_ELEMS = 16 * 1024 * 1024
SMOKE_ELEMS = 256 * 1024
CHUNK_ELEMS = 1024 * 1024
ROWS = 1024
BOUND = Rel(1e-3)
CODEC = "szinterp"  # fully vectorized error-bounded codec: the fair baseline
REPEATS = 2


def _field(n_elems: int, rows: int = ROWS, seed: int = 0) -> np.ndarray:
    """A smooth 2-D float32 field (cumsum of white noise, SDRBench-like)."""
    rng = np.random.default_rng(seed)
    cols = n_elems // rows
    field = rng.standard_normal((rows, cols), dtype=np.float32)
    return np.cumsum(field, axis=1, dtype=np.float32)


def _time_best(fn, repeats: int) -> tuple:
    best, result = np.inf, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_chunked_bench(n_elems: int = N_ELEMS, chunk_elems: int = CHUNK_ELEMS,
                      worker_counts=(1, 2, 4), repeats: int = REPEATS) -> list:
    """Time single-shot vs chunked compression; returns report rows."""
    data = _field(n_elems)
    mb = data.nbytes / 1e6
    vrange = float(data.max() - data.min())

    rows = []

    def add_row(label, seconds, blob_len, workers):
        rows.append({
            "config": label,
            "workers": workers,
            "mb": round(mb, 1),
            "compress_s": round(seconds, 3),
            "mb_s": round(mb / seconds, 2),
            "compressed_bytes": blob_len,
        })

    single_s, single_blob = _time_best(
        lambda: api.compress(data, codec=CODEC, bound=BOUND), repeats)
    add_row("single-shot", single_s, len(single_blob), 0)

    reference_blob = None
    for workers in worker_counts:
        seconds, blob = _time_best(
            lambda w=workers: api.compress_chunked(
                data, codec=CODEC, bound=BOUND, chunk_size=chunk_elems, workers=w),
            repeats)
        if reference_blob is None:
            reference_blob = blob
        elif blob != reference_blob:
            raise AssertionError(
                f"chunked output with workers={workers} is not bit-identical "
                f"to the serial chunked output")
        add_row(f"chunked-w{workers}", seconds, len(blob), workers)

    # Decompression: verify the bound once, time serial vs parallel decode.
    recon = api.decompress(reference_blob)
    max_err = float(np.max(np.abs(data.astype(np.float64) - recon)))
    if max_err > BOUND.value * vrange * (1 + 1e-12):
        raise AssertionError(
            f"chunked reconstruction violates the bound: {max_err} > "
            f"{BOUND.value * vrange}")
    for workers in (worker_counts[0], worker_counts[-1]):
        seconds, _ = _time_best(
            lambda w=workers: api.decompress(reference_blob, workers=w), repeats)
        rows.append({
            "config": f"decompress-w{workers}",
            "workers": workers,
            "mb": round(mb, 1),
            "compress_s": round(seconds, 3),
            "mb_s": round(mb / seconds, 2),
            "compressed_bytes": len(reference_blob),
        })

    for row in rows:
        row["speedup_vs_single"] = round(single_s / row["compress_s"], 2)
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized run (correctness + mp plumbing only)")
    parser.add_argument("--workers", type=int, nargs="+", default=None,
                        help="worker counts to sweep (default: 1 2 4; smoke: 1 2)")
    args = parser.parse_args(argv)
    if args.smoke:
        n, repeats = SMOKE_ELEMS, 1
        workers = tuple(args.workers) if args.workers else (1, 2)
        chunk = SMOKE_ELEMS // 8
    else:
        n, repeats = N_ELEMS, REPEATS
        workers = tuple(args.workers) if args.workers else (1, 2, 4)
        chunk = CHUNK_ELEMS
    rows = run_chunked_bench(n_elems=n, chunk_elems=chunk,
                             worker_counts=workers, repeats=repeats)
    for row in rows:
        print(" ".join(f"{k}={v}" for k, v in row.items()))
    print("chunked outputs bit-identical across worker counts; bound verified")
    return 0


if __name__ == "__main__":
    sys.exit(main())

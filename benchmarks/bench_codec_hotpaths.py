"""Codec hot-path benchmark: vectorized encode speedups + threaded tile decode.

The encode paths of ``sz21`` and ``szinterp`` and the Huffman bit-packer are
vectorized hyperplane-style, with the original scalar loops retained as
reference implementations behind ``scalar=True``.  The store's
``read_region`` can additionally fan independent tile decodes over a bounded
thread pool (``decode_workers``).  This benchmark pins all three claims:

* **encode MB/s, scalar vs vectorized** — same codec object, same field,
  both paths; the archives must be **byte-identical** (asserted every run),
* **decode MB/s** — the decode side of each codec on the vectorized archive,
* **region-read latency, 1 vs N decode workers** — a cold multi-tile region
  read through :class:`ArchiveStore`, serial vs pooled, results asserted
  bit-identical.

Regression gates (asserted in every mode, sized for a 1-2 core CI box):

* sz21 vectorized encode >= 3x its scalar reference,
* szinterp and Huffman vectorized encode >= their scalar reference
  (within a 10% tolerance),
* pooled region read no slower than serial beyond a 35% tolerance
  (threading cannot help on a single-core runner; it must never hurt).

``--smoke`` runs a CI-sized field; ``--out`` writes the rows as JSON
(``BENCH_9.json`` — the codec-hot-path point of the perf trajectory).

Run standalone with ``python benchmarks/bench_codec_hotpaths.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # standalone execution
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

import repro
from repro import api
from repro.bounds import Rel
from repro.encoding.huffman import HuffmanCodec, _pack_codes, _pack_codes_scalar
from repro.store import ArchiveStore

BOUND = Rel(1e-3)

# Full: 192x192x32 float64 (~9.4 MB raw).  Smoke: 40x40x12 (~0.15 MB) —
# the scalar sz21/szinterp references are per-point Python loops, so the
# smoke field is sized to keep their timed runs in CI budget.
FULL_SHAPE = (192, 192, 32)
SMOKE_SHAPE = (40, 40, 12)

# Region-read measurement: a tile grid with a multi-tile region, serial vs
# pooled decode.  Smoke keeps 27 tiles but shrinks them.
FULL_GRID = {"side": 96, "tile": 32, "workers": 4}
SMOKE_GRID = {"side": 48, "tile": 16, "workers": 4}

HUFF_SYMBOLS_FULL = 2_000_000
HUFF_SYMBOLS_SMOKE = 200_000

SZ21_SPEEDUP_MIN = 3.0      # the headline vectorization gate
VEC_SPEEDUP_MIN = 0.9       # szinterp/huffman: never slower than scalar +10%
THREADED_TOLERANCE = 1.35   # pooled read <= serial * tol (1-core CI safe)


def _field(shape, seed: int = 0) -> np.ndarray:
    """A smooth field (cumsum of white noise, SDRBench-like)."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape).cumsum(axis=0)


def _best(fn, repeats: int) -> tuple[float, object]:
    """min-of-N wall time plus the last result (all runs must agree)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_encoders(shape, repeats: int) -> list[dict]:
    """Scalar-vs-vectorized encode MB/s per codec, byte-identity asserted."""
    data = _field(shape)
    raw_mb = data.nbytes / 1e6
    rows = []
    for codec in ("sz21", "szinterp"):
        scalar_s, blob_scalar = _best(
            lambda c=codec: repro.compress(data, c, BOUND,
                                           codec_options={"scalar": True}),
            repeats)
        vec_s, blob_vec = _best(
            lambda c=codec: repro.compress(data, c, BOUND), repeats)
        if blob_vec != blob_scalar:
            raise AssertionError(
                f"{codec}: vectorized archive differs from the scalar "
                f"reference encoder's bytes")
        dec_s, recon = _best(lambda b=blob_vec: repro.decompress(b), repeats)
        if recon.shape != data.shape:
            raise AssertionError(f"{codec}: decode shape mismatch")
        speedup = scalar_s / vec_s
        gate = SZ21_SPEEDUP_MIN if codec == "sz21" else VEC_SPEEDUP_MIN
        if speedup < gate:
            raise AssertionError(
                f"{codec}: vectorized encode speedup {speedup:.2f}x below "
                f"the {gate}x regression gate")
        rows.append({
            "bench": f"encode_{codec}",
            "field": "x".join(str(s) for s in shape) + " float64",
            "raw_mb": round(raw_mb, 3),
            "encode_scalar_mb_per_s": round(raw_mb / scalar_s, 2),
            "encode_vectorized_mb_per_s": round(raw_mb / vec_s, 2),
            "encode_speedup": round(speedup, 2),
            "decode_mb_per_s": round(raw_mb / dec_s, 2),
            "archive_bytes": len(blob_vec),
        })
    return rows


def bench_huffman(n_symbols: int, repeats: int) -> dict:
    """The Huffman bit-packer: repeat-based extraction vs the bit-serial
    reference, on a zipf-ish symbol stream (deep, uneven code tree)."""
    rng = np.random.default_rng(3)
    symbols = rng.zipf(1.3, size=n_symbols).astype(np.int64) % 4096
    codec = HuffmanCodec()
    scalar_s, blob_scalar = _best(
        lambda: codec.encode(symbols, scalar=True), repeats)
    vec_s, blob_vec = _best(lambda: codec.encode(symbols), repeats)
    if blob_vec != blob_scalar:
        raise AssertionError("huffman: vectorized stream differs from the "
                             "bit-serial reference packer's bytes")
    dec_s, decoded = _best(lambda: codec.decode(blob_vec), repeats)
    if not np.array_equal(decoded, symbols):
        raise AssertionError("huffman: decode does not invert encode")
    speedup = scalar_s / vec_s
    if speedup < VEC_SPEEDUP_MIN:
        raise AssertionError(
            f"huffman: vectorized encode speedup {speedup:.2f}x below the "
            f"{VEC_SPEEDUP_MIN}x regression gate")
    raw_mb = symbols.nbytes / 1e6
    return {
        "bench": "encode_huffman",
        "n_symbols": n_symbols,
        "encode_scalar_mb_per_s": round(raw_mb / scalar_s, 2),
        "encode_vectorized_mb_per_s": round(raw_mb / vec_s, 2),
        "encode_speedup": round(speedup, 2),
        "decode_mb_per_s": round(raw_mb / dec_s, 2),
        "stream_bytes": len(blob_vec),
    }


def bench_region_read(grid: dict, repeats: int) -> dict:
    """Cold multi-tile region read, serial vs ``decode_workers=N`` pooled."""
    side, tile, workers = grid["side"], grid["tile"], grid["workers"]
    data = _field((side, side, side))
    blob = api.compress_chunked(data, codec="szinterp", bound=BOUND,
                                chunk_shape=(tile, tile, tile))
    region = tuple(slice(0, side) for _ in range(3))  # every tile
    want = repro.read_region(blob, region)

    def cold_read(decode_workers: int) -> np.ndarray:
        # cache_bytes=0: every repeat decodes all tiles — a true cold read.
        with ArchiveStore(cache_bytes=0) as store:
            store.add("g", blob)
            return store.read_region("g", region,
                                     decode_workers=decode_workers)

    serial_s, got_serial = _best(lambda: cold_read(1), repeats)
    pooled_s, got_pooled = _best(lambda: cold_read(workers), repeats)
    for name, got in (("serial", got_serial), ("pooled", got_pooled)):
        if not np.array_equal(got, want):
            raise AssertionError(
                f"{name} store read differs from repro.read_region")
    if pooled_s > serial_s * THREADED_TOLERANCE:
        raise AssertionError(
            f"threaded decode regressed: {pooled_s * 1e3:.1f} ms pooled vs "
            f"{serial_s * 1e3:.1f} ms serial "
            f"(tolerance {THREADED_TOLERANCE}x)")
    n_tiles = repro.read_header(blob).n_tiles
    return {
        "bench": "region_read",
        "field": f"{side}^3 float64, {n_tiles} tiles of {tile}^3",
        "decode_workers": workers,
        "serial_read_ms": round(serial_s * 1e3, 2),
        "pooled_read_ms": round(pooled_s * 1e3, 2),
        "pooled_speedup": round(serial_s / pooled_s, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized run (byte-identity and "
                             "regression gates hold in every mode)")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the result rows as JSON "
                             "(e.g. BENCH_9.json)")
    args = parser.parse_args(argv)
    repeats = 2 if args.smoke else 3
    shape = SMOKE_SHAPE if args.smoke else FULL_SHAPE
    rows = bench_encoders(shape, repeats)
    rows.append(bench_huffman(
        HUFF_SYMBOLS_SMOKE if args.smoke else HUFF_SYMBOLS_FULL, repeats))
    rows.append(bench_region_read(
        SMOKE_GRID if args.smoke else FULL_GRID, repeats))
    for row in rows:
        print(" ".join(f"{k}={v}" for k, v in row.items()))
    if args.out is not None:
        args.out.write_text(json.dumps(rows, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    print("vectorized archives byte-identical to scalar references; pooled "
          "region reads bit-identical to serial; regression gates held")
    return 0


if __name__ == "__main__":
    sys.exit(main())

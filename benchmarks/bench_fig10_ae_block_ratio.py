"""Paper Fig. 10: fraction of blocks predicted by the autoencoder vs error bound.

Compresses CESM-CLDHGH, Hurricane-U and NYX-temperature with AE-SZ across a
log-spaced range of error bounds and records the per-run fraction of
AE-predicted blocks from the compressor statistics.

Shape check (paper: the AE wins most blocks at medium bounds, Lorenzo takes
over at small bounds): for every field, the AE-predicted fraction at the
smallest error bound must not exceed the maximum fraction over the medium
bounds, and the fraction must actually vary with the bound.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import bench_shape, model_cache, report_series, report_table, run_once, \
    held_out_snapshot
from repro.analysis.experiments import build_aesz_for_field

FIELDS = ["CESM-CLDHGH", "Hurricane-U", "NYX-temperature"]
ERROR_BOUNDS = [5e-2, 2e-2, 1e-2, 5e-3, 1e-3, 3e-4]


def run_fig10() -> list:
    cache = model_cache()
    rows = []
    for field in FIELDS:
        comp = build_aesz_for_field(field, cache=cache, shape=bench_shape(field))
        data = held_out_snapshot(field)
        for eb in ERROR_BOUNDS:
            comp.compress(data, eb)
            rows.append({"field": field, "error_bound": eb,
                         "log10_eb": float(np.log10(eb)),
                         "ae_block_fraction": comp.last_stats.ae_block_fraction})
    return rows


@pytest.mark.benchmark(group="fig10")
def test_fig10_ae_block_ratio(benchmark):
    rows = run_once(benchmark, run_fig10)
    report_table("fig10_ae_block_ratio", rows,
                 title="Fig. 10: fraction of AE-predicted blocks vs error bound")
    series = {}
    for r in rows:
        series.setdefault(r["field"], []).append((r["log10_eb"], r["ae_block_fraction"]))
    report_series("fig10_series", series, x_name="log10_error_bound", y_name="ae_fraction")

    for field in FIELDS:
        fracs = {r["error_bound"]: r["ae_block_fraction"] for r in rows if r["field"] == field}
        medium = max(fracs[eb] for eb in [2e-2, 1e-2, 5e-3])
        smallest = fracs[min(ERROR_BOUNDS)]
        # Lorenzo takes over as the bound tightens (paper's Fig. 10 shape).
        assert smallest <= medium + 1e-9, (field, fracs)
        # And the mechanism is actually active: fractions are not all zero.
        assert max(fracs.values()) > 0.0, (field, fracs)

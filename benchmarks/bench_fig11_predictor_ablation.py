"""Paper Fig. 11: ablation of the adaptive predictor selection.

Compares the rate distortion of AE-SZ in three modes — AE + Lorenzo (the
paper's design), AE only, Lorenzo only — on CESM-CLDHGH and Hurricane-U.

Shape check (paper: the combination is at least as good as either predictor
alone at every bit rate): at every error bound, the hybrid stream is no more
than 5% larger than the smaller of the two single-predictor streams, and its
PSNR is not lower than either by more than 0.5 dB.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import bench_shape, model_cache, report_series, report_table, run_once, \
    held_out_snapshot
from repro.analysis.experiments import build_aesz_for_field
from repro.metrics import psnr

FIELDS = ["CESM-CLDHGH", "Hurricane-U"]
ERROR_BOUNDS = [2e-2, 1e-2, 5e-3, 1e-3]
MODES = ["hybrid", "ae", "lorenzo"]


def run_fig11() -> list:
    cache = model_cache()
    rows = []
    for field in FIELDS:
        data = held_out_snapshot(field)
        comps = {mode: build_aesz_for_field(field, cache=cache, shape=bench_shape(field),
                                            predictor_mode=mode) for mode in MODES}
        for eb in ERROR_BOUNDS:
            for mode, comp in comps.items():
                payload = comp.compress(data, eb)
                recon = comp.decompress(payload)
                rows.append({
                    "field": field, "mode": mode, "error_bound": eb,
                    "bit_rate": len(payload) * 8.0 / data.size,
                    "psnr_db": psnr(data, recon),
                })
    return rows


@pytest.mark.benchmark(group="fig11")
def test_fig11_predictor_ablation(benchmark):
    rows = run_once(benchmark, run_fig11)
    report_table("fig11_predictor_ablation", rows,
                 title="Fig. 11: AE+Lorenzo vs AE-only vs Lorenzo-only")
    series = {}
    for r in rows:
        series.setdefault(f"{r['field']}:{r['mode']}", []).append((r["bit_rate"], r["psnr_db"]))
    report_series("fig11_series", series)

    index = {(r["field"], r["mode"], r["error_bound"]): r for r in rows}
    for field in FIELDS:
        for eb in ERROR_BOUNDS:
            hybrid = index[(field, "hybrid", eb)]
            ae_only = index[(field, "ae", eb)]
            lorenzo_only = index[(field, "lorenzo", eb)]
            best_single_rate = min(ae_only["bit_rate"], lorenzo_only["bit_rate"])
            assert hybrid["bit_rate"] <= 1.05 * best_single_rate, (field, eb, hybrid,
                                                                   ae_only, lorenzo_only)
            assert hybrid["psnr_db"] >= min(ae_only["psnr_db"], lorenzo_only["psnr_db"]) - 0.5

"""Paper Fig. 1: pure-AE reconstruction of a turbulence-like field at 64:1.

Runs the AE-B style fixed-ratio convolutional autoencoder (the model of Glaws
et al. used for the paper's motivating figure) on an RTM/turbulence-like 3D
snapshot and reports the maximum pointwise error relative to the value range.

Shape check: the maximum pointwise error of the unbounded AE is large compared
with the error bounds scientists typically require (the paper reports ~20% of
the value range vs a required ~1%), i.e. it exceeds 2% of the range here.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import bench_shape, model_cache, report_table, run_once, held_out_snapshot
from repro.metrics import max_rel_error, psnr

FIELD = "RTM-snapshot"


def run_fig1() -> dict:
    cache = model_cache()
    compressor = cache.ae_b_for_field(FIELD, shape=bench_shape(FIELD))
    data = held_out_snapshot(FIELD)
    recon = compressor.decompress(compressor.compress(data))
    return {
        "fixed_reduction_ratio": compressor.fixed_compression_ratio,
        "psnr_db": psnr(data, recon),
        "max_error_over_vrange": max_rel_error(data, recon),
    }


@pytest.mark.benchmark(group="fig1")
def test_fig1_ae_reconstruction(benchmark):
    row = run_once(benchmark, run_fig1)
    report_table("fig1_ae_reconstruction", [row],
                 title="Fig. 1: fixed-ratio AE reconstruction (no error bound)")

    assert row["fixed_reduction_ratio"] == pytest.approx(64.0, rel=0.01)
    # The unbounded AE leaves pointwise errors far above the ~1% bounds
    # scientists require — the paper's motivation for AE-SZ.
    assert row["max_error_over_vrange"] > 0.02, row

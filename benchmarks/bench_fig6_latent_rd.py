"""Paper Fig. 6: SWAE prediction quality vs latent-vector compression ratio.

Sweeps the latent error bound, compresses the latent vectors with the
customized codec and measures the prediction PSNR obtained when decoding from
the *decompressed* latents (CESM-FREQSH and NYX-baryon_density, as in the
paper).

Shape check (Takeaway 3): moderate latent compression is essentially free — the
prediction PSNR at the lowest latent bit rate tested within the "safe" region
(latent bound = 0.1 * e at e = 1e-2) stays within 1.5 dB of the PSNR obtained
with uncompressed latents.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import bench_shape, model_cache, report_series, report_table, run_once, \
    held_out_snapshot
from repro.core import LatentCodec
from repro.core.blocking import split_into_blocks
from repro.metrics import prediction_psnr
from repro.utils.validation import value_range

FIELDS = ["CESM-FREQSH", "NYX-baryon_density"]
# Latent error bounds expressed as a fraction of the field's value range.
LATENT_EB_FRACTIONS = [1e-4, 5e-4, 1e-3, 5e-3, 1e-2]


def run_fig6() -> list:
    cache = model_cache()
    codec = LatentCodec()
    rows = []
    for field in FIELDS:
        model = cache.swae_for_field(field, shape=bench_shape(field))
        data = held_out_snapshot(field)
        vrange = value_range(data)
        blocks, _ = split_into_blocks(data, model.config.block_size)
        latents = np.concatenate([model.encode(blocks[i:i + 256])
                                  for i in range(0, blocks.shape[0], 256)])

        def predict_from(lat):
            return np.concatenate([model.decode(lat[i:i + 256])
                                   for i in range(0, lat.shape[0], 256)])

        baseline_psnr = prediction_psnr(blocks, predict_from(latents))
        rows.append({"field": field, "latent_bit_rate": 32.0 / (blocks[0].size / latents.shape[1]),
                     "latent_cr": 1.0, "prediction_psnr_db": baseline_psnr,
                     "latent_eb_fraction": 0.0})
        for frac in LATENT_EB_FRACTIONS:
            enc = codec.compress(latents, frac * vrange)
            cr = latents.size * 4 / enc.nbytes
            bit_rate_per_point = enc.nbytes * 8.0 / data.size
            rows.append({
                "field": field,
                "latent_bit_rate": bit_rate_per_point,
                "latent_cr": cr,
                "prediction_psnr_db": prediction_psnr(blocks, predict_from(enc.decoded)),
                "latent_eb_fraction": frac,
            })
    return rows


@pytest.mark.benchmark(group="fig6")
def test_fig6_latent_rate_distortion(benchmark):
    rows = run_once(benchmark, run_fig6)
    report_table("fig6_latent_rd", rows,
                 title="Fig. 6: SWAE prediction PSNR vs latent compression")
    series = {}
    for r in rows:
        series.setdefault(r["field"], []).append((r["latent_bit_rate"], r["prediction_psnr_db"]))
    report_series("fig6_latent_rd_series", series, x_name="latent_bit_rate", y_name="psnr")

    for field in FIELDS:
        field_rows = [r for r in rows if r["field"] == field]
        baseline = field_rows[0]["prediction_psnr_db"]
        moderate = [r for r in field_rows if 0 < r["latent_eb_fraction"] <= 1e-3]
        assert moderate, "sweep must include moderate latent bounds"
        # Moderate latent compression must cost (almost) no prediction quality.
        assert max(r["prediction_psnr_db"] for r in moderate) >= baseline - 1.5
        # And it must actually compress the latents.
        assert all(r["latent_cr"] > 1.5 for r in field_rows if r["latent_eb_fraction"] > 0)

"""Paper Fig. 7: prediction-error distributions of Lorenzo / regression / conv AE.

Computes the per-point prediction errors of the three predictors on a
CESM-FREQSH snapshot under a large (1e-2) and a small (1e-4) relative error
bound.  For the AE, the prediction uses latents compressed at 0.1*e (as in
AE-SZ); Lorenzo and regression predict from the quantized/fitted values at the
respective bound, mirroring the paper's setup.

Shape checks: (1) at the large bound the AE's error distribution is sharper
than linear regression's (higher fraction of tiny errors); (2) Lorenzo's
prediction sharpens as the bound decreases (the paper's motivation for the
adaptive predictor selection).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import bench_shape, model_cache, report_table, run_once, held_out_snapshot
from repro.analysis import ascii_histogram
from repro.core.blocking import split_into_blocks
from repro.core.aesz import _batched_lorenzo_predict
from repro.predictors import LinearRegressionPredictor
from repro.quantization.uniform import UniformQuantizer
from repro.utils.validation import value_range

FIELD = "CESM-FREQSH"
ERROR_BOUNDS = [1e-2, 1e-4]


def _predictor_errors(eb_rel: float) -> dict:
    cache = model_cache()
    model = cache.swae_for_field(FIELD, shape=bench_shape(FIELD))
    data = held_out_snapshot(FIELD)
    abs_eb = eb_rel * value_range(data)
    blocks, _ = split_into_blocks(data, model.config.block_size)

    # Lorenzo: prediction from values quantized at the bound (reconstructed grid).
    quantized = UniformQuantizer(abs_eb).roundtrip(blocks)[1]
    lorenzo_err = (blocks - _batched_lorenzo_predict(quantized)).ravel()

    # Linear regression: per-block hyperplane fit with quantized coefficients.
    reg = LinearRegressionPredictor()
    reg_err = np.concatenate([
        (blocks[b] - reg.fit_predict(blocks[b], abs_eb)[0]).ravel()
        for b in range(blocks.shape[0])
    ])

    # Convolutional AE: prediction from latents compressed at 0.1 * e.
    latents = np.concatenate([model.encode(blocks[i:i + 256])
                              for i in range(0, blocks.shape[0], 256)])
    decoded = UniformQuantizer(0.1 * abs_eb).roundtrip(latents)[1]
    ae_pred = np.concatenate([model.decode(decoded[i:i + 256])
                              for i in range(0, decoded.shape[0], 256)])
    ae_err = (blocks - ae_pred).ravel()

    return {"lorenzo": lorenzo_err, "linear_reg": reg_err, "conv_ae": ae_err}


def run_fig7() -> list:
    rows = []
    vrange = value_range(held_out_snapshot(FIELD))
    for eb in ERROR_BOUNDS:
        errors = _predictor_errors(eb)
        window = 0.05 * vrange  # the paper plots the PDF on a fixed error window
        for name, err in errors.items():
            rows.append({
                "error_bound": eb,
                "predictor": name,
                "mean_abs_error": float(np.mean(np.abs(err))),
                "frac_within_eb": float(np.mean(np.abs(err) <= eb * vrange)),
                "frac_within_window": float(np.mean(np.abs(err) <= window)),
            })
    return rows


@pytest.mark.benchmark(group="fig7")
def test_fig7_error_distribution(benchmark):
    rows = run_once(benchmark, run_fig7)
    report_table("fig7_error_distribution", rows,
                 title="Fig. 7: prediction error distribution summary (CESM-FREQSH)")

    by = {(r["error_bound"], r["predictor"]): r for r in rows}
    # (1) Takeaway 4, AE side: the AE's prediction quality is essentially
    # independent of the error bound (its latents are merely quantized at
    # 0.1*e), unlike the bound-coupled traditional predictors.
    ae_large = by[(1e-2, "conv_ae")]["mean_abs_error"]
    ae_small = by[(1e-4, "conv_ae")]["mean_abs_error"]
    assert abs(ae_large - ae_small) <= 0.25 * ae_small, (ae_large, ae_small)
    # (2) Takeaway 4, Lorenzo side: Lorenzo predicts from bound-quantized
    # values, so its error does not get *better* as the bound grows and
    # sharpens (or stays equal) as the bound shrinks.
    assert (by[(1e-4, "lorenzo")]["mean_abs_error"]
            <= by[(1e-2, "lorenzo")]["mean_abs_error"] * 1.02)
    assert (by[(1e-4, "lorenzo")]["frac_within_window"]
            >= by[(1e-2, "lorenzo")]["frac_within_window"] - 0.05)
    # All three predictors produced finite, populated distributions.
    assert all(np.isfinite(r["mean_abs_error"]) for r in rows)

"""Paper Fig. 8 (a)-(h): rate distortion (PSNR vs bit rate) of all compressors.

For each of the eight evaluated fields, sweeps the relative error bound and
records (bit rate, PSNR) for AE-SZ, SZ2.1, ZFP, SZauto*, SZinterp*, AE-A and
AE-B* (* = 3D fields only, exactly as in the paper where those compressors do
not support 2D data).

Absolute curves differ from the paper (synthetic data, scaled-down networks,
DEFLATE instead of Zstd); the shapes that must hold are:

* AE-SZ dominates the other AE-based compressors (AE-A, AE-B) in PSNR at
  comparable or lower bit rates — the paper's "best AE-based compressor" claim;
* AE-SZ is competitive with SZ2.1 in the low-bit-rate (high-compression)
  region: at the largest error bound its bit rate is not worse than ~1.3x
  SZ2.1's on the majority of fields;
* every error-bounded compressor respects the bound (asserted during the sweep
  through the recorded max error).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import (
    FIG8_FIELDS,
    bench_shape,
    compressor_suite,
    model_cache,
    report_series,
    report_table,
    run_once,
    held_out_snapshot,
)
from repro.analysis.experiments import build_aesz_for_field
from repro.data.catalog import FIELDS as FIELD_SPECS
from repro.metrics import rate_distortion_sweep
from repro.utils.validation import value_range

ERROR_BOUNDS = [2e-2, 1e-2, 5e-3, 2e-3, 1e-3]


def _compressors_for(field: str) -> dict:
    cache = model_cache()
    ndim = FIELD_SPECS[field].dimensionality
    comps = compressor_suite(["sz21", "zfp"])
    if ndim == 3:
        comps.update(compressor_suite(["szauto", "szinterp"]))
    comps["AE-SZ"] = build_aesz_for_field(field, cache=cache, shape=bench_shape(field))
    comps["AE-A"] = cache.ae_a_for_field(field, shape=bench_shape(field))
    if ndim == 3:
        comps["AE-B"] = cache.ae_b_for_field(field, shape=bench_shape(field))
    return comps


def run_fig8() -> list:
    rows = []
    for field in FIG8_FIELDS:
        data = held_out_snapshot(field)
        vrange = value_range(data)
        for name, comp in _compressors_for(field).items():
            if name == "AE-B":
                # Fixed-ratio, not error-bounded: a single rate-distortion point.
                result = comp.roundtrip(data, 0.0)
                rows.append({"field": field, "compressor": name, "error_bound": float("nan"),
                             "bit_rate": result.bit_rate, "psnr_db": result.psnr,
                             "max_err_over_vrange": result.max_abs_error / vrange,
                             "bound_ok": False})
                continue
            curve = rate_distortion_sweep(comp, data, ERROR_BOUNDS, label=name)
            for point in curve.points:
                rows.append({
                    "field": field, "compressor": name, "error_bound": point.error_bound,
                    "bit_rate": point.bit_rate, "psnr_db": point.psnr,
                    "max_err_over_vrange": point.max_abs_error / vrange,
                    "bound_ok": point.max_abs_error <= point.error_bound * vrange * (1 + 1e-9),
                })
    return rows


@pytest.mark.benchmark(group="fig8")
def test_fig8_rate_distortion(benchmark):
    rows = run_once(benchmark, run_fig8)
    report_table("fig8_rate_distortion", rows,
                 title="Fig. 8: rate distortion of all compressors on all fields")
    for field in FIG8_FIELDS:
        series = {}
        for r in rows:
            if r["field"] == field:
                series.setdefault(r["compressor"], []).append((r["bit_rate"], r["psnr_db"]))
        report_series(f"fig8_{field.replace('-', '_')}", series)

    # --- shape checks --------------------------------------------------------
    # 1. Every error-bounded compressor respects its bound at every point.
    bounded = [r for r in rows if r["compressor"] != "AE-B"]
    violations = [r for r in bounded if not r["bound_ok"]]
    assert not violations, violations[:5]

    # 2. AE-SZ is the best AE-based compressor: compare against AE-A at equal
    #    error bounds (PSNR >= and bit rate <=, allowing tiny slack), and
    #    against AE-B's single point.
    def by(field, comp):
        return [r for r in rows if r["field"] == field and r["compressor"] == comp]

    aesz_beats_aea = 0
    comparisons = 0
    for field in FIG8_FIELDS:
        for eb in ERROR_BOUNDS:
            a = [r for r in by(field, "AE-SZ") if r["error_bound"] == eb]
            b = [r for r in by(field, "AE-A") if r["error_bound"] == eb]
            if a and b:
                comparisons += 1
                if a[0]["bit_rate"] <= b[0]["bit_rate"] * 1.02 and \
                        a[0]["psnr_db"] >= b[0]["psnr_db"] - 0.5:
                    aesz_beats_aea += 1
    assert aesz_beats_aea >= 0.7 * comparisons, (aesz_beats_aea, comparisons)

    for field in FIG8_FIELDS:
        aeb = by(field, "AE-B")
        if not aeb:
            continue
        aeb_point = aeb[0]
        aesz = by(field, "AE-SZ")
        # AE-SZ achieves a higher PSNR at a comparable-or-lower bit rate than
        # the fixed-ratio AE-B on every 3D field.
        better = [r for r in aesz
                  if r["bit_rate"] <= aeb_point["bit_rate"] * 1.5
                  and r["psnr_db"] >= aeb_point["psnr_db"]]
        assert better, (field, aeb_point)

    # 3. Low-bit-rate competitiveness with SZ2.1 on the majority of fields.
    competitive = 0
    for field in FIG8_FIELDS:
        eb = max(ERROR_BOUNDS)
        aesz = [r for r in by(field, "AE-SZ") if r["error_bound"] == eb][0]
        sz = [r for r in by(field, "SZ2.1") if r["error_bound"] == eb][0]
        if aesz["bit_rate"] <= 1.3 * sz["bit_rate"]:
            competitive += 1
    assert competitive >= len(FIG8_FIELDS) // 2, f"competitive on only {competitive} fields"

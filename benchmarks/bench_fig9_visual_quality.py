"""Paper Fig. 9: reconstruction quality at a fixed compression ratio (NYX-baryon density).

The paper compares visual quality at CR ~ 180; without a display the
quantitative equivalent is the PSNR each compressor achieves at the same
compression ratio, found here by bisecting each compressor's error bound until
its ratio lands on the target.  The synthetic NYX field is rougher per voxel
than the real 512^3 snapshot, so the matched ratio used here is lower (CR ~ 40);
compressors that cannot reach the target ratio at all (even at a 30% relative
error bound) are reported at their maximum achieved ratio — itself a
reproduction of "this compressor cannot operate in the high-ratio regime".

Shape checks (paper: AE-SZ > SZinterp > SZ2.1 > SZauto > ZFP at matched CR):
AE-SZ must reach the target ratio, and among the compressors that reach it,
AE-SZ's PSNR must be within 1 dB of the best and at least as good as SZ2.1 - 1 dB.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import bench_shape, model_cache, report_table, run_once, held_out_snapshot
from repro.analysis.experiments import baseline_compressors, build_aesz_for_field
from repro.metrics import psnr

FIELD = "NYX-baryon_density"
TARGET_CR = 40.0
CR_TOLERANCE = 0.20
MAX_REL_BOUND = 0.3


def _bound_for_target_ratio(compressor, data, target_cr: float) -> tuple:
    """Bisect the relative error bound so the compression ratio hits the target.

    Returns ``(error_bound, achieved_cr, payload, reached)``.
    """
    lo, hi = 1e-5, MAX_REL_BOUND
    # Check whether the target is reachable at all.
    payload_hi = compressor.compress(data, hi)
    cr_hi = data.size * 4 / len(payload_hi)
    if cr_hi < target_cr * (1 - CR_TOLERANCE):
        return hi, cr_hi, payload_hi, False
    best = (hi, cr_hi, payload_hi)
    for _ in range(18):
        mid = float(np.sqrt(lo * hi))
        payload = compressor.compress(data, mid)
        cr = data.size * 4 / len(payload)
        best = (mid, cr, payload)
        if abs(cr - target_cr) / target_cr < 0.02:
            break
        if cr < target_cr:
            lo = mid
        else:
            hi = mid
    return best[0], best[1], best[2], True


def run_fig9() -> list:
    cache = model_cache()
    data = held_out_snapshot(FIELD)
    compressors = dict(baseline_compressors())
    compressors["AE-SZ"] = build_aesz_for_field(FIELD, cache=cache, shape=bench_shape(FIELD))
    rows = []
    for name, comp in compressors.items():
        eb, cr, payload, reached = _bound_for_target_ratio(comp, data, TARGET_CR)
        recon = comp.decompress(payload)
        rows.append({"compressor": name, "error_bound": eb, "compression_ratio": cr,
                     "reached_target": reached, "psnr_db": psnr(data, recon)})
    rows.sort(key=lambda r: -r["psnr_db"])
    return rows


@pytest.mark.benchmark(group="fig9")
def test_fig9_visual_quality(benchmark):
    rows = run_once(benchmark, run_fig9)
    report_table("fig9_visual_quality", rows,
                 title=f"Fig. 9: quality at matched compression ratio ~{TARGET_CR} (NYX-baryon)")

    by = {r["compressor"]: r for r in rows}
    # AE-SZ must be able to operate at the high-ratio target.
    assert by["AE-SZ"]["reached_target"], by["AE-SZ"]
    assert abs(by["AE-SZ"]["compression_ratio"] - TARGET_CR) / TARGET_CR < CR_TOLERANCE

    reached = [r for r in rows if r["reached_target"]]
    best_psnr = max(r["psnr_db"] for r in reached)
    assert by["AE-SZ"]["psnr_db"] >= best_psnr - 1.0, rows
    if by["SZ2.1"]["reached_target"]:
        assert by["AE-SZ"]["psnr_db"] >= by["SZ2.1"]["psnr_db"] - 1.0, rows

"""Microbenchmark for the entropy-coding hot path: Huffman encode/decode.

The AE-SZ decompression time is dominated by the Huffman stage (Algorithm 1,
line 17), so this benchmark tracks the codec's symbol throughput directly: a
1M-symbol stream drawn from a 200-symbol zipf-skewed alphabet, the shape
produced by linear-scale quantization of prediction errors.  The stream-format
v2 decoder must stay >= 10x faster than the seed's bit-serial decoder
(1.41 s for this workload on the reference machine, ~0.7 M symbols/s).

Run standalone with ``python benchmarks/bench_huffman_decode.py`` (add
``--smoke`` for a quick CI-sized run) or via pytest-benchmark like the other
benchmark modules.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # standalone execution
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from repro.encoding import EntropyCodec, HuffmanCodec

N_SYMBOLS = 1_000_000
N_SMOKE_SYMBOLS = 50_000
ALPHABET = 200
REPEATS = 3


def _workload(n_symbols: int, alphabet: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.zipf(1.5, size=n_symbols) % alphabet


def run_huffman_bench(n_symbols: int = N_SYMBOLS, alphabet: int = ALPHABET,
                      repeats: int = REPEATS) -> list:
    """Time Huffman and full-entropy-stage roundtrips; returns report rows."""
    syms = _workload(n_symbols, alphabet)
    rows = []
    for name, codec in [("HuffmanCodec", HuffmanCodec()),
                        ("EntropyCodec(zlib)", EntropyCodec())]:
        enc_times, dec_times = [], []
        payload = codec.encode(syms)
        decoded = codec.decode(payload)
        if not np.array_equal(decoded, syms):
            raise AssertionError(f"{name}: roundtrip is not bit-identical")
        for _ in range(repeats):
            t0 = time.perf_counter()
            payload = codec.encode(syms)
            t1 = time.perf_counter()
            codec.decode(payload)
            t2 = time.perf_counter()
            enc_times.append(t1 - t0)
            dec_times.append(t2 - t1)
        enc, dec = min(enc_times), min(dec_times)
        rows.append({
            "codec": name,
            "n_symbols": n_symbols,
            "alphabet": alphabet,
            "encode_s": round(enc, 4),
            "decode_s": round(dec, 4),
            "encode_msym_s": round(n_symbols / enc / 1e6, 2),
            "decode_msym_s": round(n_symbols / dec / 1e6, 2),
            "payload_bytes": len(payload),
        })
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized run (correctness + plumbing only)")
    args = parser.parse_args(argv)
    n = N_SMOKE_SYMBOLS if args.smoke else N_SYMBOLS
    rows = run_huffman_bench(n_symbols=n, repeats=1 if args.smoke else REPEATS)
    for row in rows:
        print(" ".join(f"{k}={v}" for k, v in row.items()))
    return 0


try:
    import pytest
except ImportError:  # standalone without pytest installed
    pytest = None

if pytest is not None:
    from benchmarks.common import report_table, run_once

    @pytest.mark.benchmark(group="huffman")
    def test_huffman_decode_speed(benchmark):
        rows = run_once(benchmark, run_huffman_bench)
        report_table("huffman_decode", rows,
                     title="Huffman microbenchmark: 1M symbols, 200-symbol alphabet")
        huff = rows[0]
        # The vectorized lane decoder must beat the seed's ~0.7 Msym/s
        # bit-serial loop by an order of magnitude.
        assert huff["decode_msym_s"] > 7.0, huff


if __name__ == "__main__":
    sys.exit(main())

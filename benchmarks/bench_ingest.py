"""Ingest-path benchmark: streaming publish throughput + replace latency.

The persistent write path (:class:`repro.store.IngestManager`) streams an
upload through ``compress_chunked``, stages the archive to a temp file,
verifies it (header parse + per-tile CRC spot-check) and atomically
publishes it into the manifest and the live :class:`ArchiveStore`.  This
benchmark quantifies what that durability pipeline costs:

* **ingest MB/s** — raw field bytes through ``IngestManager.ingest`` per
  second, end to end (compress + fsync + verify + publish), for both a
  fresh key and a replacement of a live key,
* **warm-read-after-replace** — latency of the first region read after a
  replace (the decoded-tile cache is scoped per archive generation, so a
  replace always starts cold) versus a warm read on the same generation.

Correctness is asserted on every run: a region read through the store after
ingest must be **bit-identical** to ``repro.read_region`` on the published
archive file, and after a replace the store must serve the *new* field's
bytes.  ``--smoke`` runs a CI-sized field; ``--out`` writes the rows as
JSON (``BENCH_7.json`` — the first point of the perf trajectory).

Run standalone with ``python benchmarks/bench_ingest.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # standalone execution
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

import repro
from repro.bounds import Rel
from repro.store import ArchiveStore, IngestManager

BOUND = Rel(1e-3)
CODEC = "szinterp"  # fully vectorized error-bounded codec: the fair baseline

# Full run: 512x512x16 float64 field (~32 MB raw).  Smoke: 96x96x8 (~0.6 MB).
FULL_SHAPE = (512, 512, 16)
SMOKE_SHAPE = (96, 96, 8)

REGION = (slice(4, 20), slice(4, 20), slice(0, 4))


def _field(shape, seed: int = 0) -> np.ndarray:
    """A smooth field (cumsum of white noise, SDRBench-like)."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape).cumsum(axis=0)


def _row_blocks(arr: np.ndarray, rows: int = 32):
    for start in range(0, arr.shape[0], rows):
        yield arr[start:start + rows]


def _ingest_once(manager: IngestManager, key: str, arr: np.ndarray) -> float:
    lo, hi = float(arr.min()), float(arr.max())
    t0 = time.perf_counter()
    manager.ingest(key, _row_blocks(arr), codec=CODEC, bound=BOUND,
                   data_range=(lo, hi))
    return time.perf_counter() - t0


def run_ingest_bench(shape, repeats: int = 3,
                     workdir: Path | None = None) -> dict:
    data = _field(shape)
    data2 = _field(shape, seed=1)
    raw_mb = data.nbytes / 1e6
    with tempfile.TemporaryDirectory(dir=workdir) as tmp:
        with ArchiveStore() as store:
            manager = IngestManager(Path(tmp), store)

            # Fresh-key ingest (key per repeat: each run creates, none replace).
            create_s = min(_ingest_once(manager, f"fresh{i}", data)
                           for i in range(repeats))

            # Replace ingest: the same live key overwritten repeatedly.
            _ingest_once(manager, "field", data)
            replace_s = min(_ingest_once(manager, "field", data)
                            for _ in range(repeats))

            # Identity: store read == one-shot read of the published file.
            entry = manager.manifest.get("field")
            path = manager.root / entry.path
            got = store.read_region("field", REGION)
            want = repro.read_region(path, REGION)
            if not np.array_equal(got, want):
                raise AssertionError(
                    "store read after ingest differs from read_region on the "
                    "published archive file")

            # Warm read on the current generation ...
            store.read_region("field", REGION)
            t0 = time.perf_counter()
            store.read_region("field", REGION)
            warm_read_s = time.perf_counter() - t0

            # ... vs the first read right after a replace (cold by design:
            # the tile cache is keyed by archive content token).
            _ingest_once(manager, "field", data2)
            t0 = time.perf_counter()
            after = store.read_region("field", REGION)
            post_replace_read_s = time.perf_counter() - t0

            entry2 = manager.manifest.get("field")
            want2 = repro.read_region(manager.root / entry2.path, REGION)
            if not np.array_equal(after, want2):
                raise AssertionError(
                    "read after replace does not serve the new archive")
            if np.array_equal(after, want):
                raise AssertionError(
                    "read after replace still served the old field")

    return {
        "field": "x".join(str(s) for s in shape) + " float64",
        "raw_mb": round(raw_mb, 2),
        "ingest_s": round(create_s, 4),
        "ingest_mb_per_s": round(raw_mb / create_s, 1),
        "replace_s": round(replace_s, 4),
        "replace_mb_per_s": round(raw_mb / replace_s, 1),
        "warm_read_ms": round(warm_read_s * 1e3, 3),
        "post_replace_read_ms": round(post_replace_read_s * 1e3, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized run (identity/replace assertions "
                             "hold in every mode)")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the result row as JSON "
                             "(e.g. BENCH_7.json)")
    args = parser.parse_args(argv)
    row = run_ingest_bench(SMOKE_SHAPE if args.smoke else FULL_SHAPE)
    print(" ".join(f"{k}={v}" for k, v in row.items()))
    if args.out is not None:
        args.out.write_text(json.dumps(row, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    print("ingested reads bit-identical to read_region on the published "
          "file; post-replace reads serve the new archive only")
    return 0


if __name__ == "__main__":
    sys.exit(main())

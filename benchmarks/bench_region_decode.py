"""Random-access region decode benchmark: O(region) bytes, not O(archive).

PR 3's chunked format could only decode archives front-to-back; the version-3
N-d chunk grid stores a row-major tile index in the front header, so
``repro.read_region`` seeks to and decodes **only** the tiles a region
intersects.  This benchmark quantifies that on a 3-d field:

* compress the field into an on-disk grid archive (``chunk_shape`` tiles),
* time a full ``repro.decompress`` of the whole archive,
* time ``repro.read_region`` for a small sub-cube read **from the path**
  (seek-based I/O), and
* account the bytes touched: front header + the intersecting tiles' index
  lengths, versus the whole file for the full decode.

The region read must win on both axes — wall clock (it decodes a handful of
tiles instead of all of them) and I/O (it never reads the rest of the file).
``--smoke`` runs a CI-sized field and asserts a >= 5x wall-clock speedup and
a <= 25% bytes-touched fraction for a one-tile region, plus correctness: the
region equals the same slice of the full reconstruction bit-for-bit.

Run standalone with ``python benchmarks/bench_region_decode.py``.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # standalone execution
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

import repro
from repro import api
from repro.bounds import Rel

BOUND = Rel(1e-3)
CODEC = "szinterp"  # fully vectorized error-bounded codec: the fair baseline

# Full run: 128^3 float64 field (16 MB), 32^3 tiles -> 4x4x4 = 64 tiles.
FULL_SIDE, FULL_TILE = 128, 32
FULL_REGION = (slice(40, 72), slice(40, 72), slice(40, 72))  # 8 tiles

# Smoke run: 48^3 field, 16^3 tiles -> 27 tiles; region inside one tile.
SMOKE_SIDE, SMOKE_TILE = 48, 16
SMOKE_REGION = (slice(18, 30), slice(18, 30), slice(18, 30))  # 1 tile


def _field(side: int, seed: int = 0) -> np.ndarray:
    """A smooth 3-d field (cumsum of white noise, SDRBench-like)."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((side, side, side)).cumsum(axis=0)


def _time_best(fn, repeats: int):
    best, result = np.inf, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_region_bench(side: int, tile: int, region, repeats: int = 3,
                     workdir: Path | None = None) -> dict:
    """Time full decode vs region decode on an on-disk grid archive."""
    data = _field(side)
    blob = api.compress_chunked(data, codec=CODEC, bound=BOUND,
                                chunk_shape=(tile, tile, tile))
    with tempfile.TemporaryDirectory(dir=workdir) as tmp:
        path = Path(tmp) / "field.rpra"
        path.write_bytes(blob)

        full_s, full = _time_best(
            lambda: repro.decompress(path.read_bytes()), repeats)
        region_s, piece = _time_best(
            lambda: repro.read_region(str(path), region), repeats)

        index = repro.read_header(str(path))

    # Correctness: same tiles decode to the same bits either way, and the
    # bound holds against the original.
    if not np.array_equal(piece, full[region]):
        raise AssertionError("region decode differs from the full reconstruction")
    vrange = float(data.max() - data.min())
    err = float(np.max(np.abs(data[region] - piece)))
    if err > BOUND.value * vrange * (1 + 1e-12):
        raise AssertionError(f"region violates the bound: {err} > "
                             f"{BOUND.value * vrange}")

    # I/O accounting straight from the index: a region read touches the front
    # header plus the intersecting tiles; the full decode reads the file.
    bounds = api.normalize_region(region, index.shape)
    tiles = index.region_tiles(bounds)
    touched = index.data_start + sum(index.lengths[i] for i in tiles)
    return {
        "field": f"{side}^3 float64",
        "tiles": f"{tile}^3 x {index.n_tiles}",
        "region_shape": tuple(s.stop - s.start for s in region),
        "tiles_decoded": f"{len(tiles)}/{index.n_tiles}",
        "full_decode_s": round(full_s, 4),
        "region_decode_s": round(region_s, 4),
        "speedup": round(full_s / region_s, 2),
        "archive_bytes": len(blob),
        "bytes_touched": touched,
        "bytes_fraction": round(touched / len(blob), 4),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized run with hard speedup/IO assertions")
    args = parser.parse_args(argv)
    if args.smoke:
        row = run_region_bench(SMOKE_SIDE, SMOKE_TILE, SMOKE_REGION, repeats=3)
    else:
        row = run_region_bench(FULL_SIDE, FULL_TILE, FULL_REGION, repeats=3)
    print(" ".join(f"{k}={v}" for k, v in row.items()))
    if args.smoke:
        if row["speedup"] < 5.0:
            raise AssertionError(
                f"region decode speedup {row['speedup']}x < 5x: random access "
                f"is not paying for itself")
        if row["bytes_fraction"] > 0.25:
            raise AssertionError(
                f"region read touched {row['bytes_fraction']:.0%} of the "
                f"archive; expected O(region) I/O")
    print("region == full[region] bit-for-bit; bound verified; "
          "I/O is header + intersecting tiles only")
    return 0


if __name__ == "__main__":
    sys.exit(main())

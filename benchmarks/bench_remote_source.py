"""Remote-source benchmark: HTTP range reads cold vs spill-warm.

:class:`repro.sources.http.HttpByteSource` turns a region read into a
handful of range GETs (front matter + the intersecting tiles);
:class:`repro.sources.spill.CachingByteSource` persists those ranges to
local disk so repeat reads never touch the network again.  This benchmark
quantifies both against a loopback range server with a configurable
per-request delay that stands in for real network RTT:

* **cold-read latency** — first region read through a fresh
  ``ArchiveStore`` entry backed by a URL (every range pays the RTT),
* **spill-warm latency** — the same read after the ranges are on disk
  (``cache_bytes=0`` keeps the decoded-tile LRU out of the picture, so
  the delta is purely network vs spill),
* **bytes over the wire** — asserted O(header + region tiles), a small
  fraction of the archive.

Correctness is asserted on every run: the URL-backed store read must be
bit-identical to ``repro.read_region`` on the local blob, and the warm
read must issue **zero** new range requests.  The smoke gate requires
warm >= 5x faster than cold — with a simulated RTT per request that holds
by a wide margin, so the gate catches wiring regressions (spill silently
bypassed), not scheduler noise.  ``--smoke`` runs a CI-sized field;
``--out`` writes the rows as JSON (``BENCH_10.json``).

Run standalone with ``python benchmarks/bench_remote_source.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # standalone execution
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

import repro
from repro.sources import HttpByteSource, RetryPolicy
from repro.store import ArchiveStore

BOUND = 1e-3
CODEC = "szinterp"

# Full run: 256x256x64 float64 (~32 MB raw).  Smoke: 64x64x32 (~1 MB).
FULL_SHAPE = (256, 256, 64)
SMOKE_SHAPE = (64, 64, 32)
TILE = (32, 32, 16)

REGION = (slice(4, 40), slice(4, 40), slice(2, 14))


class _RangeHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        blob = self.server.blob
        time.sleep(self.server.delay_s)  # simulated per-request RTT
        range_header = self.headers.get("Range")
        if range_header is None:
            self._reply(200, blob, {})
            return
        try:
            start_text, end_text = range_header.split("=", 1)[1].split("-", 1)
            start = int(start_text)
            end = min(int(end_text) if end_text else len(blob) - 1,
                      len(blob) - 1)
        except (IndexError, ValueError):
            self._reply(400, b"bad range", {})
            return
        if start >= len(blob):
            self._reply(416, b"", {"Content-Range": f"bytes */{len(blob)}"})
            return
        body = blob[start:end + 1]
        self._reply(206, body,
                    {"Content-Range": f"bytes {start}-{end}/{len(blob)}",
                     "ETag": '"bench"'})

    def _reply(self, code, body, headers) -> None:
        self.send_response(code)
        for name, value in headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args) -> None:
        pass


def _serve(blob: bytes, delay_s: float):
    httpd = ThreadingHTTPServer(("127.0.0.1", 0), _RangeHandler)
    httpd.daemon_threads = True
    httpd.blob = blob
    httpd.delay_s = delay_s
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    return httpd, f"http://{host}:{port}/field.rpra"


def run_remote_bench(shape, delay_ms: float, repeats: int = 3,
                     workdir: Path | None = None) -> dict:
    rng = np.random.default_rng(0)
    data = rng.standard_normal(shape).cumsum(axis=0)
    blob = repro.compress_chunked(data, codec=CODEC, bound=BOUND,
                                  chunk_shape=TILE)
    want = repro.read_region(blob, REGION)
    httpd, url = _serve(blob, delay_ms / 1e3)
    retry = RetryPolicy(4, base_delay=0.01)
    try:
        with tempfile.TemporaryDirectory(dir=workdir) as tmp:
            # cache_bytes=0: every read goes through the byte source, so
            # warm timing measures the spill, not the decoded-tile LRU.
            with ArchiveStore(cache_bytes=0,
                              spill_dir=Path(tmp) / "spill") as store:
                store.add("field", HttpByteSource(url, retry=retry))
                t0 = time.perf_counter()
                got = store.read_region("field", REGION)
                cold_s = time.perf_counter() - t0
                if not np.array_equal(got, want):
                    raise AssertionError(
                        "URL-backed store read differs from local decode")
                after_cold = store.remote_stats()

                warm_s = float("inf")
                for _ in range(repeats):
                    t0 = time.perf_counter()
                    got = store.read_region("field", REGION)
                    warm_s = min(warm_s, time.perf_counter() - t0)
                if not np.array_equal(got, want):
                    raise AssertionError("spill-warm read differs from cold")
                warm = store.remote_stats()
                if warm["range_requests"] != after_cold["range_requests"]:
                    raise AssertionError(
                        "warm reads issued new range requests; the spill "
                        "cache is being bypassed")
                if warm["bytes_fetched"] >= len(blob):
                    raise AssertionError(
                        "fetched >= the whole archive; range reads are not "
                        "O(header + region tiles)")
    finally:
        httpd.shutdown()
        httpd.server_close()

    return {
        "field": "x".join(str(s) for s in shape) + " float64",
        "archive_mb": round(len(blob) / 1e6, 2),
        "delay_ms": delay_ms,
        "cold_read_ms": round(cold_s * 1e3, 2),
        "warm_read_ms": round(warm_s * 1e3, 3),
        "speedup": round(cold_s / warm_s, 1),
        "range_requests": warm["range_requests"],
        "retried": warm["retried"],
        "bytes_fetched": warm["bytes_fetched"],
        "wire_fraction": round(warm["bytes_fetched"] / len(blob), 4),
        "spill_hits": warm["spill_hits"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized run with the warm >= 5x cold "
                             "gate (identity assertions hold in every mode)")
    parser.add_argument("--delay-ms", type=float, default=5.0,
                        help="simulated per-request RTT (default 5 ms)")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the result row as JSON "
                             "(e.g. BENCH_10.json)")
    args = parser.parse_args(argv)
    row = run_remote_bench(SMOKE_SHAPE if args.smoke else FULL_SHAPE,
                           args.delay_ms)
    print(" ".join(f"{k}={v}" for k, v in row.items()))
    if args.out is not None:
        args.out.write_text(json.dumps(row, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    if args.smoke and row["speedup"] < 5.0:
        print(f"SMOKE GATE FAILED: spill-warm read only {row['speedup']}x "
              f"faster than cold (need >= 5x)", file=sys.stderr)
        return 1
    print("URL-backed reads bit-identical to local decode; warm reads "
          "issued zero new range requests")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Serving-layer load benchmark: selectors front end vs threaded fallback.

Drives hundreds of concurrent keep-alive connections against real ``repro
serve`` subprocesses (the CLI, real sockets, both ``--server`` front ends,
one at a time on the same box) hammering a warm cached region, and records
client-side latency percentiles and throughput:

* **throughput_rps** — completed requests per second across every client,
* **p50_ms / p99_ms** — true percentiles over all measured request
  latencies (connection setup and warmup excluded).

Correctness is asserted on every run: one response body must be
bit-identical to ``repro.read_region`` on the served archive.  ``--smoke``
is the CI gate — it asserts the selectors server's throughput is at least
the threaded server's (the whole point of the front-end rebuild; up to 3
attempts damp scheduler noise).  The full run uses ``--connections 256``
(>= 200 per the ISSUE 8 acceptance bar) and writes ``BENCH_8.json``, the
serve-path point of the perf trajectory.

Run standalone with ``python benchmarks/bench_serve_load.py``.
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import tempfile
import threading
import time
from http.client import HTTPConnection
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

REPO = Path(__file__).resolve().parents[1]
if __package__ in (None, ""):  # standalone execution
    sys.path.insert(0, str(REPO / "src"))
    sys.path.insert(0, str(REPO))

import repro
from repro import api

CODEC = "szinterp"
BOUND = 1e-3
SIDE, TILE = 64, 16
#: Small response (8x8x8 float64 = 4 KiB): stresses per-request transport
#: overhead, which is exactly what differs between the two front ends.
REGION = "0:8,0:8,0:8"

SMOKE_CONNS = 32
SMOKE_SECONDS = 1.5
FULL_CONNS = 256
FULL_SECONDS = 4.0


def _make_archive(workdir: Path) -> Path:
    rng = np.random.default_rng(7)
    field = rng.standard_normal((SIDE, SIDE, SIDE)).cumsum(axis=0)
    blob = api.compress_chunked(field, codec=CODEC, bound=BOUND,
                                chunk_shape=(TILE, TILE, TILE))
    path = workdir / "field.rpra"
    path.write_bytes(blob)
    return path


def _spawn_server(archive: Path, backend: str) -> Tuple[subprocess.Popen,
                                                        str, int]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(archive),
         "--port", "0", "--server", backend, "--max-connections", "2048"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        cwd=REPO, env={"PYTHONPATH": str(REPO / "src"),
                       "PATH": "/usr/bin:/bin"})
    url = None
    assert proc.stdout is not None
    for _ in range(100):
        line = proc.stdout.readline()
        if not line:
            break
        m = re.search(r"serving 1 archive\(s\) on (http://[\w.:]+)", line)
        if m:
            url = m.group(1)
            break
    if url is None:
        proc.terminate()
        raise RuntimeError(f"{backend} server failed to start")
    host, port = url.rsplit("//", 1)[1].rsplit(":", 1)
    return proc, host, int(port)


def _client(host: str, port: int, path: str, barrier: threading.Barrier,
            stop: threading.Event, latencies: List[List[float]],
            errors: List[str]) -> None:
    lat: List[float] = []
    conn = HTTPConnection(host, port, timeout=60)
    try:
        conn.request("GET", path)  # connect + warm outside the clock
        conn.getresponse().read()
        barrier.wait(timeout=120)
        while not stop.is_set():
            t0 = time.perf_counter()
            conn.request("GET", path)
            resp = conn.getresponse()
            resp.read()
            lat.append(time.perf_counter() - t0)
            if resp.status != 200:
                errors.append(f"HTTP {resp.status}")
                return
    except Exception as exc:  # noqa: BLE001 - report, don't crash the bench
        errors.append(repr(exc))
    finally:
        conn.close()
        latencies.append(lat)


def _percentile(sorted_ms: List[float], q: float) -> float:
    if not sorted_ms:
        return 0.0
    return sorted_ms[min(len(sorted_ms) - 1, int(q * len(sorted_ms)))]


def _drive(host: str, port: int, conns: int, seconds: float) -> dict:
    path = f"/v1/field/region?r={REGION}"
    barrier = threading.Barrier(conns + 1)
    stop = threading.Event()
    latencies: List[List[float]] = []
    errors: List[str] = []
    threads = [threading.Thread(target=_client,
                                args=(host, port, path, barrier, stop,
                                      latencies, errors), daemon=True)
               for _ in range(conns)]
    for t in threads:
        t.start()
    barrier.wait(timeout=120)
    t0 = time.perf_counter()
    time.sleep(seconds)
    stop.set()
    for t in threads:
        t.join(timeout=120)
    wall = time.perf_counter() - t0
    if errors:
        raise RuntimeError(f"{len(errors)} client(s) failed: {errors[:3]}")
    all_ms = sorted(v * 1e3 for lat in latencies for v in lat)
    return {
        "requests": len(all_ms),
        "throughput_rps": round(len(all_ms) / wall, 1),
        "p50_ms": round(_percentile(all_ms, 0.50), 3),
        "p99_ms": round(_percentile(all_ms, 0.99), 3),
    }


def _assert_bit_identical(host: str, port: int, archive: Path) -> None:
    conn = HTTPConnection(host, port, timeout=60)
    try:
        conn.request("GET", f"/v1/field/region?r={REGION}")
        resp = conn.getresponse()
        body = resp.read()
        if resp.status != 200:
            raise AssertionError(f"region read failed: HTTP {resp.status}")
        shape = tuple(int(s) for s in
                      resp.getheader("X-Repro-Shape").split(","))
        got = np.frombuffer(body, dtype=np.dtype(
            resp.getheader("X-Repro-Dtype"))).reshape(shape)
    finally:
        conn.close()
    want = repro.read_region(archive, REGION)
    if not np.array_equal(got, want):
        raise AssertionError("served region differs from repro.read_region "
                             "on the archive file")


def _bench_backend(archive: Path, backend: str, conns: int,
                   seconds: float) -> dict:
    proc, host, port = _spawn_server(archive, backend)
    try:
        _assert_bit_identical(host, port, archive)
        return _drive(host, port, conns, seconds)
    finally:
        proc.terminate()
        proc.wait(timeout=30)


def run_serve_bench(conns: int, seconds: float, attempts: int = 1) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        archive = _make_archive(Path(tmp))
        best: Optional[Dict[str, dict]] = None
        for attempt in range(attempts):
            rows = {backend: _bench_backend(archive, backend, conns, seconds)
                    for backend in ("threaded", "selectors")}
            if (best is None
                    or rows["selectors"]["throughput_rps"]
                    > best["selectors"]["throughput_rps"]):
                best = rows
            if rows["selectors"]["throughput_rps"] \
                    >= rows["threaded"]["throughput_rps"]:
                break
            print(f"attempt {attempt + 1}: selectors "
                  f"{rows['selectors']['throughput_rps']} rps < threaded "
                  f"{rows['threaded']['throughput_rps']} rps, retrying",
                  flush=True)
    assert best is not None
    speedup = (best["selectors"]["throughput_rps"]
               / max(1e-9, best["threaded"]["throughput_rps"]))
    return {
        "connections": conns,
        "duration_s": seconds,
        "region": REGION,
        "response_bytes": 8 * 8 * 8 * 8,
        "servers": best,
        "selectors_vs_threaded": round(speedup, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized run; asserts the selectors "
                             "front end's throughput >= the threaded one's")
    parser.add_argument("--connections", type=int, default=None,
                        help=f"concurrent keep-alive clients (default "
                             f"{FULL_CONNS}, smoke {SMOKE_CONNS})")
    parser.add_argument("--seconds", type=float, default=None,
                        help="measured duration per server")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the result as JSON "
                             "(e.g. BENCH_8.json)")
    args = parser.parse_args(argv)
    conns = args.connections or (SMOKE_CONNS if args.smoke else FULL_CONNS)
    seconds = args.seconds or (SMOKE_SECONDS if args.smoke else FULL_SECONDS)
    row = run_serve_bench(conns, seconds, attempts=3 if args.smoke else 2)
    for backend, stats in row["servers"].items():
        print(f"{backend}: " + " ".join(f"{k}={v}"
                                        for k, v in stats.items()))
    print(f"selectors_vs_threaded={row['selectors_vs_threaded']}x "
          f"at {conns} connections")
    if args.out is not None:
        args.out.write_text(json.dumps(row, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    if args.smoke and row["selectors_vs_threaded"] < 1.0:
        print("FAIL: the selectors front end did not beat the threaded "
              "fallback", file=sys.stderr)
        return 1
    print("served region bit-identical to repro.read_region on both "
          "front ends")
    return 0


if __name__ == "__main__":
    sys.exit(main())

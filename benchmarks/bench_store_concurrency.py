"""ArchiveStore benchmark: warm-cache speedup + multi-threaded throughput.

``repro.read_region`` is stateless — every call re-opens the archive,
re-parses the front header and re-decodes each intersecting tile.  The
:class:`repro.store.ArchiveStore` keeps archives open, parses headers once
and shares decoded tiles through a size-bounded LRU cache, so hot regions
are served by cropping cached arrays.  This benchmark quantifies that on an
on-disk 3-d grid archive:

* **cold** — repeated ``repro.read_region(path, region)`` calls over a fixed
  set of overlapping regions (the one-shot baseline; every call pays header
  parse + tile decode),
* **warm** — the same region set through one ``ArchiveStore`` after a warming
  pass (every tile is cache-resident; reads are crops + copies),
* **threads** — T worker threads each reading the full region set through
  the same store concurrently (mixed hot/cold ordering), with throughput in
  regions/s.

Correctness is asserted on every mode: store results — single- and
multi-threaded — must be **bit-identical** to the cold one-shot reads, and
the store's decode counter must show each cache-resident tile decoded at
most once across all threads.  ``--smoke`` runs a CI-sized field and
additionally asserts the warm path is >= 5x faster than cold.

Run standalone with ``python benchmarks/bench_store_concurrency.py``.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # standalone execution
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

import repro
from repro import api
from repro.bounds import Rel
from repro.store import ArchiveStore

BOUND = Rel(1e-3)
CODEC = "szinterp"  # fully vectorized error-bounded codec: the fair baseline

# Full run: 96^3 float64 field, 24^3 tiles -> 4x4x4 = 64 tiles.
FULL_SIDE, FULL_TILE = 96, 24
# Smoke run: 48^3 field, 16^3 tiles -> 27 tiles (CI-sized).
SMOKE_SIDE, SMOKE_TILE = 48, 16

THREADS = 4


def _field(side: int, seed: int = 0) -> np.ndarray:
    """A smooth 3-d field (cumsum of white noise, SDRBench-like)."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((side, side, side)).cumsum(axis=0)


def _regions(side: int, tile: int) -> list:
    """A mixed, mutually overlapping region set over the field.

    Small tile-interior reads, cross-boundary cubes, a full-axis slab and a
    plane — together they revisit the same tiles from different requests,
    which is exactly the sharing the cache exploits.
    """
    t, s = tile, side
    return [
        (slice(2, t - 2), slice(2, t - 2), slice(2, t - 2)),          # 1 tile
        (slice(t - 4, t + 4), slice(t - 4, t + 4), slice(t - 4, t + 4)),  # 8 tiles
        (slice(0, 2 * t), slice(0, t), slice(0, t)),                  # 2 tiles
        (slice(t // 2, t // 2 + t), slice(0, s), slice(0, t // 2)),   # slab
        (slice(0, s), slice(t, t + 1), slice(0, s)),                  # plane
        (slice(s - t, s), slice(s - t, s), slice(s - t, s)),          # corner
    ]


def _time_best(fn, repeats: int):
    best, result = np.inf, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_store_bench(side: int, tile: int, repeats: int = 3,
                    threads: int = THREADS,
                    workdir: Path | None = None) -> dict:
    data = _field(side)
    blob = api.compress_chunked(data, codec=CODEC, bound=BOUND,
                                chunk_shape=(tile, tile, tile))
    regions = _regions(side, tile)
    with tempfile.TemporaryDirectory(dir=workdir) as tmp:
        path = str(Path(tmp) / "field.rpra")
        Path(path).write_bytes(blob)

        # Cold baseline: one-shot reads, each paying open + parse + decode.
        cold_s, cold = _time_best(
            lambda: [repro.read_region(path, r) for r in regions], repeats)

        with ArchiveStore() as store:
            store.add("field", path)
            store.read_regions("field", regions)      # warming pass
            warm_s, warm = _time_best(
                lambda: [store.read_region("field", r) for r in regions],
                repeats)

            for c, w in zip(cold, warm):
                if not np.array_equal(c, w):
                    raise AssertionError(
                        "warm store read differs from cold read_region")

        # Multi-threaded: a fresh store (all tiles cold), T threads each
        # reading the whole region set, every thread starting at a different
        # offset so hot and cold tiles interleave across threads.
        with ArchiveStore() as store:
            store.add("field", path)

            def worker(k: int):
                order = regions[k:] + regions[:k]
                return [store.read_region("field", r) for r in order]

            t0 = time.perf_counter()
            with ThreadPoolExecutor(max_workers=threads) as pool:
                per_thread = list(pool.map(worker, range(threads)))
            mt_s = time.perf_counter() - t0
            decodes = store.stats()["tile_decodes"]

        n_tiles_touched = len({i for r in regions
                               for i in _touched(path, r)})
        for k, results in enumerate(per_thread):
            order = regions[k:] + regions[:k]
            for r, got in zip(order, results):
                want = cold[regions.index(r)]
                if not np.array_equal(got, want):
                    raise AssertionError(
                        f"thread {k} result for {r} differs from the "
                        f"single-threaded cold read")
        if decodes > n_tiles_touched:
            raise AssertionError(
                f"{decodes} tile decodes for {n_tiles_touched} distinct tiles: "
                f"single-flight caching failed under concurrency")

    total = threads * len(regions)
    return {
        "field": f"{side}^3 float64",
        "tiles": f"{tile}^3",
        "regions": len(regions),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "warm_speedup": round(cold_s / warm_s, 2),
        "threads": threads,
        "mt_reads": total,
        "mt_s": round(mt_s, 4),
        "mt_reads_per_s": round(total / mt_s, 1),
        "tile_decodes": decodes,
        "tiles_touched": n_tiles_touched,
    }


def _touched(path: str, region) -> list:
    index = repro.read_header(path)
    return index.region_tiles(api.normalize_region(region, index.shape))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized run with hard speedup/identity "
                             "assertions")
    parser.add_argument("--threads", type=int, default=THREADS)
    args = parser.parse_args(argv)
    if args.smoke:
        row = run_store_bench(SMOKE_SIDE, SMOKE_TILE, repeats=3,
                              threads=args.threads)
    else:
        row = run_store_bench(FULL_SIDE, FULL_TILE, repeats=3,
                              threads=args.threads)
    print(" ".join(f"{k}={v}" for k, v in row.items()))
    if args.smoke and row["warm_speedup"] < 5.0:
        raise AssertionError(
            f"warm-cache speedup {row['warm_speedup']}x < 5x: the store is "
            f"not amortizing header parse + tile decode")
    print("store reads (warm and 4-thread) bit-identical to cold "
          "read_region; each tile decoded at most once per cache residency")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Paper Table I: prediction PSNR of different autoencoder types (CESM-CLDHGH).

Trains the eight AE variants (AE, VAE, beta-VAE, DIP-VAE, Info-VAE, LogCosh-VAE,
WAE, SWAE) on training-split blocks of the CESM-CLDHGH field and reports the
average prediction PSNR on the held-out test snapshot.

Shape check (paper: SWAE best at 43.9 dB, vanilla AE/WAE close behind, Info-VAE
worst): SWAE must rank in the top three and beat the stochastic VAE.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import report_table, run_once, held_out_snapshot, train_snapshots
from repro.autoencoders import AE_REGISTRY, AutoencoderConfig, create_autoencoder
from repro.core.blocking import split_into_blocks
from repro.metrics import prediction_psnr
from repro.nn import Trainer, TrainingConfig

FIELD = "CESM-CLDHGH"
BLOCK_SIZE = 32
AE_CONFIG = AutoencoderConfig(ndim=2, block_size=BLOCK_SIZE, latent_size=16,
                              channels=(4, 8), seed=0)
TRAINING = TrainingConfig(epochs=6, batch_size=32, learning_rate=2e-3, seed=0)
MAX_TRAIN_BLOCKS = 384

# Display names matching the paper's Table I rows.
DISPLAY = {
    "ae": "AE", "vae": "VAE", "beta-vae": "beta-VAE", "dip-vae": "DIP-VAE",
    "info-vae": "Info-VAE", "logcosh-vae": "LogCosh-VAE", "wae": "WAE", "swae": "SWAE",
}


def _training_blocks() -> np.ndarray:
    blocks = []
    for snap in train_snapshots(FIELD, limit=2):
        blk, _ = split_into_blocks(snap, BLOCK_SIZE)
        blocks.append(blk)
    all_blocks = np.concatenate(blocks, axis=0)
    rng = np.random.default_rng(0)
    if all_blocks.shape[0] > MAX_TRAIN_BLOCKS:
        idx = rng.choice(all_blocks.shape[0], MAX_TRAIN_BLOCKS, replace=False)
        all_blocks = all_blocks[idx]
    return all_blocks[:, None, ...]


def run_table1() -> list:
    train_blocks = _training_blocks()
    test_blocks, _ = split_into_blocks(held_out_snapshot(FIELD), BLOCK_SIZE)

    rows = []
    for kind in AE_REGISTRY:
        model = create_autoencoder(kind, AE_CONFIG)
        model.fit_normalization(train_blocks)
        Trainer(model, config=TRAINING).fit(train_blocks)
        pred = np.concatenate([model.reconstruct(test_blocks[i:i + 128])
                               for i in range(0, test_blocks.shape[0], 128)])
        rows.append({"ae_type": DISPLAY[kind],
                     "prediction_psnr_db": prediction_psnr(test_blocks, pred)})
    rows.sort(key=lambda r: -r["prediction_psnr_db"])
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_ae_types(benchmark):
    rows = run_once(benchmark, run_table1)
    report_table("table1_ae_types", rows,
                 title="Table I: prediction PSNR of different AE types (CESM-CLDHGH)")

    psnr_by_type = {r["ae_type"]: r["prediction_psnr_db"] for r in rows}
    ranking = [r["ae_type"] for r in rows]
    # Shape checks: SWAE is a top performer and beats the stochastic VAE.
    assert ranking.index("SWAE") <= 2, f"SWAE ranked {ranking.index('SWAE') + 1}: {ranking}"
    assert psnr_by_type["SWAE"] >= psnr_by_type["VAE"] - 0.5
    assert all(np.isfinite(v) for v in psnr_by_type.values())

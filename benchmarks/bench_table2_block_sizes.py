"""Paper Table II: prediction PSNR and AE-SZ compression ratio vs input block size.

For CESM-CLDHGH (2D) and NYX-baryon_density (3D), trains SWAEs with different
input block sizes at a fixed latent ratio and reports prediction PSNR plus the
AE-SZ compression ratio at a 1e-2 relative error bound.

The paper sweeps {16^2, 32^2, 64^2} and {8^3, 16^3, 32^3}; the CPU-scaled sweep
here uses {16^2, 32^2, 64^2} and {4^3, 8^3, 16^3} (the largest 3D block is
reduced so the pure-NumPy 3D convolutions stay tractable — see EXPERIMENTS.md).

Shape check: the paper's chosen sizes (32^2 and 8^3) must not be the *worst*
choice for their field, and all results must be finite.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import report_table, run_once, held_out_snapshot, train_snapshots
from repro.autoencoders import AutoencoderConfig, SlicedWassersteinAutoencoder
from repro.core import AESZCompressor, AESZConfig
from repro.core.blocking import split_into_blocks
from repro.metrics import prediction_psnr
from repro.nn import TrainingConfig

TRAINING = TrainingConfig(epochs=8, batch_size=32, learning_rate=2e-3, seed=0)

SWEEP = {
    "CESM-CLDHGH": {"ndim": 2, "latent_ratio": 64, "block_sizes": [16, 32, 64],
                    "channels": (4, 8)},
    "NYX-baryon_density": {"ndim": 3, "latent_ratio": 32, "block_sizes": [4, 8, 16],
                           "channels": (4, 8)},
}
PAPER_CHOICE = {"CESM-CLDHGH": 32, "NYX-baryon_density": 8}
ERROR_BOUND = 1e-2


def _train_aesz(field: str, ndim: int, block_size: int, latent_size: int, channels) -> AESZCompressor:
    n_stages = len(channels)
    while block_size % (2 ** n_stages) != 0 or block_size // (2 ** n_stages) < 1:
        n_stages -= 1
    config = AutoencoderConfig(ndim=ndim, block_size=block_size, latent_size=latent_size,
                               channels=channels[:max(1, n_stages)], seed=0)
    ae = SlicedWassersteinAutoencoder(config)
    comp = AESZCompressor(ae, AESZConfig(block_size=block_size))
    comp.train(train_snapshots(field, limit=2), TRAINING, max_blocks=384, seed=0)
    return comp


def run_table2() -> list:
    rows = []
    for field, spec in SWEEP.items():
        data = held_out_snapshot(field)
        for block_size in spec["block_sizes"]:
            latent = max(1, int(block_size ** spec["ndim"] // spec["latent_ratio"]))
            comp = _train_aesz(field, spec["ndim"], block_size, latent, spec["channels"])
            blocks, _ = split_into_blocks(data, block_size)
            pred = np.concatenate([comp.autoencoder.reconstruct(blocks[i:i + 128])
                                   for i in range(0, blocks.shape[0], 128)])
            payload = comp.compress(data, ERROR_BOUND)
            rows.append({
                "field": field,
                "block_size": f"{block_size}^{spec['ndim']}",
                "latent_size": latent,
                "prediction_psnr_db": prediction_psnr(blocks, pred),
                "aesz_cr_at_1e-2": data.size * 4 / len(payload),
            })
    return rows


@pytest.mark.benchmark(group="table2")
def test_table2_block_sizes(benchmark):
    rows = run_once(benchmark, run_table2)
    report_table("table2_block_sizes", rows,
                 title="Table II: prediction PSNR and AE-SZ CR vs input block size")

    for field, chosen in PAPER_CHOICE.items():
        field_rows = [r for r in rows if r["field"] == field]
        crs = {r["block_size"]: r["aesz_cr_at_1e-2"] for r in field_rows}
        chosen_key = [k for k in crs if k.startswith(f"{chosen}^")][0]
        # The paper's chosen block size must not be the worst of the sweep.
        assert crs[chosen_key] >= min(crs.values()), crs
        assert all(np.isfinite(v) for v in crs.values())

"""Paper Table III: AE-SZ compression ratio vs latent size (Hurricane-U, eb=1e-2).

Trains SWAEs with 8x8x8 input blocks and latent sizes {2, 4, 8, 16} (the paper
sweeps {4, 6, 8, 12, 16}) and reports the final AE-SZ compression ratio at a
1e-2 value-range-relative error bound.

Shape check: the compression ratio is not monotone in the latent size — an
intermediate latent size should win (the paper's optimum is 8), i.e. the best
latent size is neither the smallest nor the largest of the sweep, OR the spread
between best and worst exceeds 10% (demonstrating that the choice matters).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import report_table, run_once, held_out_snapshot, train_snapshots
from repro.autoencoders import AutoencoderConfig, SlicedWassersteinAutoencoder
from repro.core import AESZCompressor, AESZConfig
from repro.nn import TrainingConfig

FIELD = "Hurricane-U"
BLOCK_SIZE = 8
LATENT_SIZES = [2, 4, 8, 16]
ERROR_BOUND = 1e-2
TRAINING = TrainingConfig(epochs=10, batch_size=32, learning_rate=2e-3, seed=0)


def run_table3() -> list:
    data = held_out_snapshot(FIELD)
    train = train_snapshots(FIELD, limit=2)
    rows = []
    for latent in LATENT_SIZES:
        config = AutoencoderConfig(ndim=3, block_size=BLOCK_SIZE, latent_size=latent,
                                   channels=(4, 8), seed=0)
        comp = AESZCompressor(SlicedWassersteinAutoencoder(config),
                              AESZConfig(block_size=BLOCK_SIZE))
        comp.train(train, TRAINING, max_blocks=384, seed=0)
        payload = comp.compress(data, ERROR_BOUND)
        rows.append({
            "latent_size": latent,
            "latent_ratio": BLOCK_SIZE**3 / latent,
            "cr_at_1e-2": data.size * 4 / len(payload),
            "ae_block_fraction": comp.last_stats.ae_block_fraction,
        })
    return rows


@pytest.mark.benchmark(group="table3")
def test_table3_latent_sizes(benchmark):
    rows = run_once(benchmark, run_table3)
    report_table("table3_latent_sizes", rows,
                 title="Table III: AE-SZ CR (eb=1e-2) vs latent size on Hurricane-U")

    crs = [r["cr_at_1e-2"] for r in rows]
    assert all(np.isfinite(c) and c > 1 for c in crs)
    best_idx = int(np.argmax(crs))
    spread = (max(crs) - min(crs)) / max(crs)
    # Either an interior optimum exists (paper's finding) or the latent size
    # choice changes the ratio substantially (>10%), which is the takeaway.
    assert best_idx not in (0,) or spread > 0.10, (crs, spread)

"""Paper Table IV: compression ratio of the customized latent codec vs SZ2.1 on latents.

Encodes the latent vectors produced by the trained SWAEs of three fields (RTM,
NYX-dark_matter_density, EXAFEL) with (a) AE-SZ's customized codec (uniform
quantization at 0.1*e + Huffman + dictionary pass) and (b) the SZ2.1
reimplementation applied to the latent matrix, at data error bounds
{1e-2, 1e-3, 1e-4}.

Shape check (paper: the customized codec wins in every cell): the customized
codec must be at least as good as SZ2.1 on average, and strictly better in at
least half of the cells.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import model_cache, report_table, run_once, held_out_snapshot, bench_shape
from repro.compressors import SZ21Compressor
from repro.core import LatentCodec
from repro.core.blocking import split_into_blocks
from repro.utils.validation import value_range

FIELDS = ["RTM-snapshot", "NYX-dark_matter_density", "EXAFEL-raw"]
ERROR_BOUNDS = [1e-2, 1e-3, 1e-4]
LATENT_EB_RATIO = 0.1


def _latents_for(field: str) -> tuple:
    cache = model_cache()
    model = cache.swae_for_field(field, shape=bench_shape(field))
    data = held_out_snapshot(field)
    blocks, _ = split_into_blocks(data, model.config.block_size)
    latents = np.concatenate([model.encode(blocks[i:i + 256])
                              for i in range(0, blocks.shape[0], 256)])
    return latents, value_range(data)


def run_table4() -> list:
    rows = []
    codec = LatentCodec()
    sz = SZ21Compressor()
    for field in FIELDS:
        latents, vrange = _latents_for(field)
        original_bytes = latents.size * 4  # latents would otherwise be stored as float32
        for eb in ERROR_BOUNDS:
            latent_eb = LATENT_EB_RATIO * eb * vrange
            custo_bytes = codec.compress(latents, latent_eb).nbytes
            latent_range = value_range(latents)
            sz_rel = latent_eb / latent_range if latent_range > 0 else 0.5
            sz_bytes = len(sz.compress(latents, sz_rel))
            rows.append({
                "field": field,
                "error_bound": eb,
                "custo_cr": original_bytes / custo_bytes,
                "sz21_cr": original_bytes / sz_bytes,
            })
    return rows


@pytest.mark.benchmark(group="table4")
def test_table4_latent_codec(benchmark):
    rows = run_once(benchmark, run_table4)
    report_table("table4_latent_codec", rows,
                 title="Table IV: customized latent codec vs SZ2.1 on latent vectors")

    wins = sum(1 for r in rows if r["custo_cr"] >= r["sz21_cr"] * 0.98)
    mean_custo = np.mean([r["custo_cr"] for r in rows])
    mean_sz = np.mean([r["sz21_cr"] for r in rows])
    assert mean_custo >= 0.95 * mean_sz, (mean_custo, mean_sz)
    assert wins >= len(rows) // 2, f"customized codec won only {wins}/{len(rows)} cells"

"""Paper Table VIII: compression / decompression throughput (MB/s) at eb = 1e-3.

Measures one representative field per application for every compressor.
Absolute MB/s are not comparable to the paper (pure NumPy on CPU vs optimized
C/CUDA); the shape that must hold is the ordering: traditional compressors
(SZ2.1, ZFP, SZauto, SZinterp) are faster than AE-SZ, and AE-SZ is much faster
than AE-A (the paper reports 30-200x).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.common import (
    bench_shape,
    compressor_suite,
    model_cache,
    report_table,
    run_once,
    held_out_snapshot,
)
from repro.analysis.experiments import build_aesz_for_field
from repro.data.catalog import FIELDS as FIELD_SPECS
from repro.utils.timing import throughput_mb_s

ERROR_BOUND = 1e-3
SPEED_FIELDS = {
    "CESM": "CESM-CLDHGH",
    "RTM": "RTM-snapshot",
    "Hurricane": "Hurricane-U",
    "NYX": "NYX-baryon_density",
    "EXAFEL": "EXAFEL-raw",
}


def _measure(compressor, data) -> tuple:
    # MB/s against the paper's float32-origin convention (the harness casts
    # fields to float64 for numerics; using data.nbytes would double every
    # throughput figure relative to Table VIII and the seed baselines).
    nbytes = data.size * 4
    start = time.perf_counter()
    payload = compressor.compress(data, ERROR_BOUND)
    t_comp = time.perf_counter() - start
    start = time.perf_counter()
    compressor.decompress(payload)
    t_decomp = time.perf_counter() - start
    return throughput_mb_s(nbytes, t_comp), throughput_mb_s(nbytes, t_decomp)


def run_table8() -> list:
    cache = model_cache()
    rows = []
    for app, field in SPEED_FIELDS.items():
        data = held_out_snapshot(field)
        compressors = compressor_suite()
        compressors["AE-SZ"] = build_aesz_for_field(field, cache=cache,
                                                    shape=bench_shape(field))
        compressors["AE-A"] = cache.ae_a_for_field(field, shape=bench_shape(field))
        if FIELD_SPECS[field].dimensionality == 3:
            compressors["AE-B"] = cache.ae_b_for_field(field, shape=bench_shape(field))
        for name, comp in compressors.items():
            comp_speed, decomp_speed = _measure(comp, data)
            rows.append({"dataset": app, "compressor": name,
                         "compress_mb_s": comp_speed, "decompress_mb_s": decomp_speed})
    return rows


@pytest.mark.benchmark(group="table8")
def test_table8_speed(benchmark):
    rows = run_once(benchmark, run_table8)
    report_table("table8_speed", rows,
                 title="Table VIII: compression/decompression speed (MB/s), eb=1e-3")

    by_comp = {}
    for r in rows:
        by_comp.setdefault(r["compressor"], []).append(r["compress_mb_s"])
    mean = {k: float(np.mean(v)) for k, v in by_comp.items()}
    # Ordering shape: the traditional compressors beat AE-SZ, AE-SZ beats AE-A.
    assert mean["SZauto"] > mean["AE-SZ"]
    assert mean["SZinterp"] > mean["AE-SZ"]
    assert mean["AE-SZ"] > mean["AE-A"], mean

"""Paper Table IX: autoencoder training time, AE-SZ's SWAE vs AE-A.

Trains both models for the same (small) number of epochs on the same training
split of each dataset and reports wall-clock training time.  The paper's claim
is qualitative — AE-SZ's autoencoders train in similar or shorter time than
AE-A on the same data — which is the shape checked here (with generous slack,
since both are tiny scaled-down networks).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import bench_shape, report_table, run_once, train_snapshots
from repro.autoencoders import SlicedWassersteinAutoencoder
from repro.compressors import AEACompressor
from repro.core import AESZCompressor, AESZConfig, default_autoencoder_config
from repro.nn import TrainingConfig

DATASET_FIELDS = {
    "CESM": "CESM-CLDHGH",
    "RTM": "RTM-snapshot",
    "NYX": "NYX-baryon_density",
    "Hurricane": "Hurricane-U",
    "EXAFEL": "EXAFEL-raw",
}
EPOCHS = 3
MAX_BLOCKS = 256


def run_table9() -> list:
    rows = []
    training = TrainingConfig(epochs=EPOCHS, batch_size=32, learning_rate=2e-3, seed=0)
    for app, field in DATASET_FIELDS.items():
        train = train_snapshots(field, limit=2)

        config = default_autoencoder_config(field, scaled=True, seed=0)
        aesz = AESZCompressor(SlicedWassersteinAutoencoder(config),
                              AESZConfig(block_size=config.block_size))
        hist_aesz = aesz.train(train, training, max_blocks=MAX_BLOCKS, seed=0)

        aea = AEACompressor(segment_length=512, seed=0)
        hist_aea = aea.train(train, training, max_segments=MAX_BLOCKS, seed=0)

        rows.append({
            "dataset": app,
            "aesz_swae_train_s": hist_aesz.total_time,
            "ae_a_train_s": hist_aea.total_time,
            "epochs": EPOCHS,
        })
    return rows


@pytest.mark.benchmark(group="table9")
def test_table9_training_time(benchmark):
    rows = run_once(benchmark, run_table9)
    report_table("table9_training_time", rows,
                 title="Table IX: autoencoder training time (seconds, same epochs/data)")

    assert all(np.isfinite(r["aesz_swae_train_s"]) and r["aesz_swae_train_s"] > 0 for r in rows)
    # Qualitative check: AE-SZ training is not dramatically slower than AE-A
    # (paper: similar or shorter) on the majority of datasets.
    not_slower = sum(1 for r in rows if r["aesz_swae_train_s"] <= 5.0 * r["ae_a_train_s"])
    assert not_slower >= len(rows) // 2 + 1, rows

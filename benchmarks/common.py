"""Shared configuration and helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper.  The
numbers are produced on synthetic SDRBench-like data with scaled-down network
widths and field sizes (see DESIGN.md), so absolute values differ from the
paper; EXPERIMENTS.md records the paper-vs-measured comparison and the shape
checks each benchmark asserts.

Results are written to ``benchmarks/results/*.csv`` and printed to stdout.
"""

from __future__ import annotations

import functools
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.analysis import ModelCache, format_table, save_series_csv, write_csv
from repro.analysis.experiments import TrainingBudget
from repro.data import train_test_snapshots
from repro.registry import available_compressors, compressor_spec, get_compressor

RESULTS_DIR = Path(__file__).resolve().parent / "results"
CACHE_DIR = Path(__file__).resolve().parents[1] / ".model_cache"

# Field shapes used by the benchmarks: large enough to show the compressors'
# behaviour, small enough for the pure-NumPy pipeline to sweep repeatedly.
BENCH_SHAPES: Dict[str, tuple] = {
    "CESM-CLDHGH": (192, 384),
    "CESM-FREQSH": (192, 384),
    "EXAFEL-raw": (185, 194),
    "NYX-baryon_density": (48, 48, 48),
    "NYX-temperature": (48, 48, 48),
    "NYX-dark_matter_density": (48, 48, 48),
    "Hurricane-U": (20, 64, 64),
    "Hurricane-QVAPOR": (20, 64, 64),
    "RTM-snapshot": (48, 48, 32),
}

# The eight fields of Fig. 8 (a)-(h), in paper order.
FIG8_FIELDS = [
    "CESM-CLDHGH", "CESM-FREQSH", "EXAFEL-raw", "NYX-baryon_density",
    "NYX-temperature", "Hurricane-QVAPOR", "Hurricane-U", "RTM-snapshot",
]

BENCH_BUDGET = TrainingBudget(epochs=20, batch_size=32, learning_rate=2e-3,
                              max_blocks=768, train_snapshot_limit=3)


@functools.lru_cache(maxsize=1)
def model_cache() -> ModelCache:
    """The benchmark-wide model cache (training happens once per field)."""
    return ModelCache(cache_dir=CACHE_DIR, budget=BENCH_BUDGET, seed=0)


def compressor_suite(names: Optional[Sequence[str]] = None) -> Dict[str, object]:
    """Registry-driven compressor set, keyed by display name (``SZ2.1``, ...).

    ``names`` are registry ids (see ``repro.available_compressors()``); the
    default is every registered codec that needs neither a trained model nor a
    training pass — i.e. the traditional baselines the paper sweeps.
    """
    if names is None:
        names = [n for n in available_compressors()
                 if not compressor_spec(n).requires_model
                 and not compressor_spec(n).accepts_model
                 and n != "lossless"]
    out: Dict[str, object] = {}
    for name in names:
        comp = get_compressor(name)
        out[comp.name] = comp
    return out


def bench_shape(field_name: str) -> tuple:
    return BENCH_SHAPES[field_name]


def held_out_snapshot(field_name: str) -> np.ndarray:
    """The held-out snapshot a benchmark compresses (never seen in training)."""
    _, test = train_test_snapshots(field_name, shape=bench_shape(field_name), test_limit=1)
    return test[0].astype(np.float64)


def train_snapshots(field_name: str, limit: int = 3):
    train, _ = train_test_snapshots(field_name, shape=bench_shape(field_name),
                                    train_limit=limit)
    return [t.astype(np.float64) for t in train]


def report_table(name: str, rows: Sequence[Mapping], columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> None:
    """Print a result table and persist it as CSV under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    write_csv(RESULTS_DIR / f"{name}.csv", rows, columns)
    print()
    print(format_table(rows, columns=columns, title=title or name))


def report_series(name: str, series: Mapping[str, Sequence[tuple]],
                  x_name: str = "bit_rate", y_name: str = "psnr") -> None:
    """Persist figure series as CSV under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    save_series_csv(RESULTS_DIR / f"{name}.csv", series, x_name=x_name, y_name=y_name)


def run_once(benchmark, func, *args, **kwargs):
    """Run a whole-experiment callable exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1,
                              warmup_rounds=0)

"""Benchmark-suite configuration.

Makes ``src/`` importable without installation and keeps pytest-benchmark's
output reasonable (every benchmark here wraps a full experiment, so each is run
exactly once via ``benchmark.pedantic``).
"""

import sys
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

"""Repository-level pytest configuration.

Makes the in-tree ``src/`` package importable even when the project has not
been pip-installed (the offline environment used for this reproduction cannot
run ``pip install -e .`` because build isolation needs network access).
"""

import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

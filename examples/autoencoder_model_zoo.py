#!/usr/bin/env python3
"""Scenario: choosing the autoencoder type (paper Table I) and the latent size.

Reproduces the two model-selection studies of the paper on a small scale:

* train each autoencoder variant (AE, VAE, beta-VAE, DIP-VAE, Info-VAE,
  LogCosh-VAE, WAE, SWAE) on the same blocks of a climate field and rank them
  by prediction PSNR on held-out data (paper Table I);
* for the winning type, sweep the latent size and show the trade-off between
  prediction accuracy and latent overhead (paper Table III / Takeaway 2).

Usage::

    python examples/autoencoder_model_zoo.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro import AESZCompressor, AESZConfig
from repro.analysis import format_table
from repro.autoencoders import AE_REGISTRY, AutoencoderConfig, create_autoencoder
from repro.core.blocking import split_into_blocks
from repro.data import train_test_snapshots
from repro.metrics import prediction_psnr
from repro.nn import Trainer, TrainingConfig

FIELD = "CESM-CLDHGH"
SHAPE = (128, 256)
BLOCK = 16
TRAINING = TrainingConfig(epochs=6, batch_size=32, learning_rate=2e-3, seed=0)


def training_blocks(train):
    blocks = np.concatenate([split_into_blocks(t.astype(np.float64), BLOCK)[0] for t in train])
    rng = np.random.default_rng(0)
    idx = rng.choice(blocks.shape[0], size=min(384, blocks.shape[0]), replace=False)
    return blocks[idx][:, None, ...]


def main() -> None:
    train, test = train_test_snapshots(FIELD, shape=SHAPE, train_limit=2, test_limit=1)
    blocks_train = training_blocks(train)
    blocks_test, _ = split_into_blocks(test[0].astype(np.float64), BLOCK)

    # --- Table I style comparison -------------------------------------------
    print("== Which autoencoder type predicts scientific data best? ==\n")
    rows = []
    for kind in AE_REGISTRY:
        config = AutoencoderConfig(ndim=2, block_size=BLOCK, latent_size=8,
                                   channels=(4, 8), seed=0)
        model = create_autoencoder(kind, config)
        model.fit_normalization(blocks_train)
        Trainer(model, config=TRAINING).fit(blocks_train)
        pred = model.reconstruct(blocks_test)
        rows.append({"ae_type": kind.upper(), "prediction_psnr_db":
                     prediction_psnr(blocks_test, pred)})
    rows.sort(key=lambda r: -r["prediction_psnr_db"])
    print(format_table(rows, title="Prediction PSNR per AE type (held-out snapshot)"))
    winner = rows[0]["ae_type"]
    print(f"\nbest model here: {winner} (the paper selects SWAE)\n")

    # --- latent-size sweep (Takeaway 2) --------------------------------------
    print("== Latent-size trade-off for the SWAE predictor ==\n")
    sweep_rows = []
    for latent in [2, 4, 8, 16, 32]:
        config = AutoencoderConfig(ndim=2, block_size=BLOCK, latent_size=latent,
                                   channels=(4, 8), seed=0)
        compressor = AESZCompressor(create_autoencoder("swae", config),
                                    AESZConfig(block_size=BLOCK))
        compressor.train(train, TRAINING, max_blocks=384)
        data = test[0].astype(np.float64)
        payload = compressor.compress(data, 1e-2)
        sweep_rows.append({
            "latent_size": latent,
            "latent_ratio": BLOCK * BLOCK / latent,
            "cr_at_1e-2": data.size * 4 / len(payload),
            "ae_block_fraction": compressor.last_stats.ae_block_fraction,
        })
    print(format_table(sweep_rows, title="AE-SZ compression ratio vs latent size (eb = 1e-2)"))
    best = max(sweep_rows, key=lambda r: r["cr_at_1e-2"])
    print(f"\nbest latent size on this field: {best['latent_size']} "
          f"(an interior optimum, as in paper Table III)")


if __name__ == "__main__":
    main()

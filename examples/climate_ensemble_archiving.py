#!/usr/bin/env python3
"""Scenario: archiving a climate-model ensemble with one pre-trained model.

The paper's motivation (Section III-B1) is that a network trained once on a few
snapshots of an application can then compress *new* data produced by the same
application — later time steps, other ensemble members — so training time and
model size are paid once and excluded from the compression path.

This example reproduces that workflow on the synthetic CESM-like CLDHGH field:

1. train a blockwise SWAE on snapshots 0-2 of ensemble member #0;
2. persist the model to disk (the model lives *outside* the compressed files);
3. reload it in a fresh compressor and archive several unseen snapshots and a
   different ensemble member at a 1e-2 error bound;
4. report per-snapshot compression ratio, PSNR, AE-predicted block fraction and
   the verified error bound.

Usage::

    python examples/climate_ensemble_archiving.py
"""

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro import AESZCompressor, AESZConfig, psnr, verify_error_bound
from repro.autoencoders import AutoencoderConfig, SlicedWassersteinAutoencoder
from repro.data import get_dataset
from repro.nn import TrainingConfig

FIELD_SHAPE = (128, 256)
ERROR_BOUND = 1e-2


def build_model() -> AutoencoderConfig:
    return AutoencoderConfig(ndim=2, block_size=32, latent_size=16, channels=(4, 8), seed=0)


def main() -> None:
    dataset = get_dataset("CESM", seed=0)

    # --- 1. offline training on ensemble member #0, snapshots 0-2 -----------
    train_snapshots = [dataset.snapshot("CLDHGH", t, FIELD_SHAPE) for t in range(3)]
    autoencoder = SlicedWassersteinAutoencoder(build_model())
    trainer_compressor = AESZCompressor(autoencoder, AESZConfig(block_size=32))
    print("training the SWAE on 3 snapshots of ensemble member #0 ...")
    history = trainer_compressor.train(
        train_snapshots, TrainingConfig(epochs=10, batch_size=32, learning_rate=2e-3, seed=0),
        max_blocks=512)
    print(f"  done in {history.total_time:.1f}s (final loss {history.final_loss:.5f})\n")

    # --- 2. persist the model (it is NOT part of the compressed files) ------
    model_path = Path(tempfile.gettempdir()) / "cesm_cldhgh_swae.npz"
    autoencoder.save(model_path)
    print(f"model saved to {model_path} ({model_path.stat().st_size / 1024:.0f} KiB)\n")

    # --- 3. reload into a fresh archiving process ----------------------------
    archive_ae = SlicedWassersteinAutoencoder(build_model())
    archive_ae.load(model_path)
    archiver = AESZCompressor(archive_ae, AESZConfig(block_size=32))

    workload = [
        ("member0 / t=10", dataset.snapshot("CLDHGH", 10, FIELD_SHAPE)),
        ("member0 / t=11", dataset.snapshot("CLDHGH", 11, FIELD_SHAPE)),
        ("member1 / t=10", dataset.snapshot("CLDHGH", 10, FIELD_SHAPE, seed_offset=1)),
        ("member1 / t=11", dataset.snapshot("CLDHGH", 11, FIELD_SHAPE, seed_offset=1)),
    ]

    header = (f"{'snapshot':>15} | {'CR':>6} | {'PSNR (dB)':>9} | {'AE blocks':>9} | "
              f"{'bound held':>10}")
    print(header)
    print("-" * len(header))
    total_raw = total_compressed = 0
    for label, snapshot in workload:
        data = snapshot.astype(np.float64)
        payload = archiver.compress(data, ERROR_BOUND)
        recon = archiver.decompress(payload)
        ok = verify_error_bound(data, recon, ERROR_BOUND) is None
        cr = data.size * 4 / len(payload)
        total_raw += data.size * 4
        total_compressed += len(payload)
        print(f"{label:>15} | {cr:6.1f} | {psnr(data, recon):9.1f} | "
              f"{archiver.last_stats.ae_block_fraction:9.2f} | {str(ok):>10}")

    print("-" * len(header))
    print(f"ensemble total: {total_raw / 1e6:.1f} MB -> {total_compressed / 1e6:.2f} MB "
          f"(overall ratio {total_raw / total_compressed:.1f}x) with one shared model")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scenario: choosing a compressor for 3D cosmology (NYX-like) outputs.

Reproduces the paper's evaluation methodology on one 3D field: sweep the
value-range-relative error bound for AE-SZ and the four traditional baselines
(SZ2.1, ZFP, SZauto, SZinterp), then print the rate-distortion table and an
ASCII version of the corresponding Fig. 8 panel, plus the compression ratio
each compressor reaches at a matched PSNR — the paper's headline metric.

Usage::

    python examples/cosmology_compressor_comparison.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro import AESZCompressor, AESZConfig
from repro.analysis import ascii_curve, format_table
from repro.autoencoders import AutoencoderConfig, SlicedWassersteinAutoencoder
from repro.data import train_test_snapshots
from repro.registry import get_compressor
from repro.metrics import rate_distortion_sweep
from repro.nn import TrainingConfig

FIELD = "NYX-baryon_density"
SHAPE = (48, 48, 48)
ERROR_BOUNDS = [2e-2, 1e-2, 5e-3, 2e-3, 1e-3]


def main() -> None:
    print(f"== Compressor comparison on a synthetic {FIELD} cube {SHAPE} ==\n")
    train, test = train_test_snapshots(FIELD, shape=SHAPE, train_limit=3, test_limit=1)
    data = test[0].astype(np.float64)

    ae_config = AutoencoderConfig(ndim=3, block_size=8, latent_size=16, channels=(4, 8), seed=0)
    aesz = AESZCompressor(SlicedWassersteinAutoencoder(ae_config), AESZConfig(block_size=8))
    print("training the SWAE predictor on the training snapshots ...")
    history = aesz.train(train, TrainingConfig(epochs=12, batch_size=32, learning_rate=2e-3,
                                               seed=0), max_blocks=640)
    print(f"  done in {history.total_time:.1f}s\n")

    # The traditional baselines come from the registry, keyed by display name.
    compressors = {"AE-SZ": aesz}
    for codec in ("sz21", "zfp", "szauto", "szinterp"):
        comp = get_compressor(codec)
        compressors[comp.name] = comp

    curves = {}
    rows = []
    for name, comp in compressors.items():
        curve = rate_distortion_sweep(comp, data, ERROR_BOUNDS, label=name)
        curves[name] = curve
        for point in curve.points:
            rows.append({"compressor": name, "error_bound": point.error_bound,
                         "bit_rate": point.bit_rate, "psnr_db": point.psnr,
                         "compression_ratio": point.compression_ratio})

    print(format_table(rows, title="Rate distortion (one row per error bound)"))

    series = {name: list(zip(curve.bit_rates(), curve.psnrs())) for name, curve in curves.items()}
    print()
    print(ascii_curve(series, title=f"Fig. 8-style panel: {FIELD}",
                      xlabel="bit rate (bits/value)", ylabel="PSNR (dB)"))

    # The paper's headline metric: compression ratio at the same PSNR.
    target_psnr = float(np.median(curves["SZ2.1"].psnrs()))
    print(f"\ncompression ratio at matched PSNR = {target_psnr:.1f} dB:")
    for name, curve in curves.items():
        print(f"  {name:>9}: {curve.compression_ratio_at_psnr(target_psnr):6.1f}x")


if __name__ == "__main__":
    main()

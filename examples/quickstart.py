#!/usr/bin/env python3
"""Quickstart: train AE-SZ on a climate field and compress an unseen snapshot.

Walks through the full paper workflow on a small synthetic CESM-like field:

1. generate training and test snapshots (different time steps, Table VII);
2. build the blockwise SWAE and train it offline on blocks of the training data;
3. compress a held-out snapshot under several value-range-relative error bounds;
4. decompress, verify the error bound and report compression ratio / PSNR,
   comparing against the SZ2.1 baseline.

Runs in well under a minute on a laptop CPU.  Usage::

    python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro import AESZCompressor, AESZConfig, SZ21Compressor, psnr, verify_error_bound
from repro.autoencoders import AutoencoderConfig, SlicedWassersteinAutoencoder
from repro.data import train_test_snapshots
from repro.nn import TrainingConfig


def main() -> None:
    field = "CESM-CLDHGH"
    shape = (128, 256)
    print(f"== AE-SZ quickstart on a synthetic {field} field {shape} ==\n")

    # 1. Data: train on early time steps, compress a later (unseen) snapshot.
    train, test = train_test_snapshots(field, shape=shape, train_limit=3, test_limit=1)
    snapshot = test[0].astype(np.float64)

    # 2. Blockwise convolutional SWAE (scaled-down widths for CPU training).
    ae_config = AutoencoderConfig(ndim=2, block_size=32, latent_size=16,
                                  channels=(4, 8), seed=0)
    autoencoder = SlicedWassersteinAutoencoder(ae_config)
    compressor = AESZCompressor(autoencoder, AESZConfig(block_size=32))

    print("training the autoencoder on training-split blocks ...")
    history = compressor.train(train,
                               TrainingConfig(epochs=10, batch_size=32,
                                              learning_rate=2e-3, seed=0),
                               max_blocks=512)
    print(f"  final training loss: {history.final_loss:.5f} "
          f"({history.total_time:.1f}s)\n")

    # 3./4. Compress the unseen snapshot at several error bounds.
    baseline = SZ21Compressor()
    header = f"{'error bound':>12} | {'AE-SZ CR':>9} {'PSNR':>7} {'AE blocks':>9} | {'SZ2.1 CR':>9}"
    print(header)
    print("-" * len(header))
    for eb in [2e-2, 1e-2, 5e-3, 1e-3]:
        payload = compressor.compress(snapshot, eb)
        reconstruction = compressor.decompress(payload)
        violation = verify_error_bound(snapshot, reconstruction, eb)
        assert violation is None, f"error bound violated: {violation}"
        cr = snapshot.size * 4 / len(payload)
        sz_cr = snapshot.size * 4 / len(baseline.compress(snapshot, eb))
        print(f"{eb:12.0e} | {cr:9.1f} {psnr(snapshot, reconstruction):7.1f} "
              f"{compressor.last_stats.ae_block_fraction:9.2f} | {sz_cr:9.1f}")

    print("\nevery reconstruction satisfied |x - x'| <= eb * value_range -- "
          "the guarantee AE-SZ adds on top of a plain autoencoder.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: the `repro` facade — train AE-SZ, write self-describing archives.

Walks through the tool-grade workflow the library exposes after the API
redesign:

1. discover the available codecs through the registry (``repro.available_compressors``);
2. generate training and test snapshots of a CESM-like climate field;
3. train the blockwise SWAE offline and wrap it in an AE-SZ compressor;
4. compress the held-out snapshot with ``repro.compress`` under several
   value-range-relative bounds (the paper's mode) and decompress each archive
   with ``repro.decompress(blob)`` — no dims, dtype, codec or model arguments:
   everything, including the model weights, travels in the archive header;
5. show the absolute and pointwise-relative bound modes on the SZ2.1 baseline.

Runs in well under a minute on a laptop CPU.  Usage::

    python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

import repro
from repro import Abs, AESZCompressor, AESZConfig, PtwRel, Rel, psnr, verify_error_bound
from repro.autoencoders import AutoencoderConfig, SlicedWassersteinAutoencoder
from repro.data import train_test_snapshots
from repro.nn import TrainingConfig


def main() -> None:
    field = "CESM-CLDHGH"
    shape = (128, 256)
    print(f"== repro quickstart on a synthetic {field} field {shape} ==\n")

    # 1. The registry knows every codec; new ones plug in via @register_compressor.
    print("registered codecs:", ", ".join(repro.available_compressors()), "\n")

    # 2. Data: train on early time steps, compress a later (unseen) snapshot.
    train, test = train_test_snapshots(field, shape=shape, train_limit=3, test_limit=1)
    snapshot = test[0].astype(np.float64)

    # 3. Blockwise convolutional SWAE (scaled-down widths for CPU training).
    ae_config = AutoencoderConfig(ndim=2, block_size=32, latent_size=16,
                                  channels=(4, 8), seed=0)
    autoencoder = SlicedWassersteinAutoencoder(ae_config)
    compressor = AESZCompressor(autoencoder, AESZConfig(block_size=32))

    print("training the autoencoder on training-split blocks ...")
    history = compressor.train(train,
                               TrainingConfig(epochs=10, batch_size=32,
                                              learning_rate=2e-3, seed=0),
                               max_blocks=512)
    print(f"  final training loss: {history.final_loss:.5f} "
          f"({history.total_time:.1f}s)\n")

    # 4. Compress under several bounds.  The model is reused across snapshots
    #    (the paper's workflow), so the sweep keeps it out of the archives
    #    (embed_model=False): the header then records its fingerprint and
    #    decompression verifies the model we pass is the right one.
    header = f"{'error bound':>12} | {'AE-SZ CR':>9} {'PSNR':>7} {'AE blocks':>9} | {'SZ2.1 CR':>9}"
    print(header)
    print("-" * len(header))
    for eb in [2e-2, 1e-2, 5e-3, 1e-3]:
        blob = repro.compress(snapshot, codec=compressor, bound=Rel(eb),
                              embed_model=False)
        reconstruction = repro.decompress(blob, autoencoder=autoencoder)
        violation = verify_error_bound(snapshot, reconstruction, eb)
        assert violation is None, f"error bound violated: {violation}"
        cr = snapshot.size * 4 / len(blob)
        sz_blob = repro.compress(snapshot, codec="sz21", bound=Rel(eb))
        assert repro.decompress(sz_blob).shape == snapshot.shape
        print(f"{eb:12.0e} | {cr:9.1f} {psnr(snapshot, reconstruction):7.1f} "
              f"{compressor.last_stats.ae_block_fraction:9.2f} | "
              f"{snapshot.size * 4 / len(sz_blob):9.1f}")

    # A fully standalone archive: embed the model and decompress from the blob
    # alone — no dims, dtype, codec or model arguments.
    standalone = repro.compress(snapshot, codec=compressor, bound=Rel(1e-3))
    assert verify_error_bound(snapshot, repro.decompress(standalone), 1e-3) is None
    info = repro.read_header(standalone)
    print(f"\nstandalone archive: codec={info.codec}, shape={info.shape}, "
          f"dtype={info.dtype}, bound={info.bound_mode}={info.bound_value:g}, "
          f"model sha256={info.meta['model_sha256'][:12]}... "
          f"({len(standalone) - len(blob)} bytes of embedded model)")

    # 5. The other two bound modes, on the SZ2.1 baseline.
    abs_blob = repro.compress(snapshot, codec="sz21", bound=Abs(5e-3))
    abs_err = float(np.abs(repro.decompress(abs_blob) - snapshot).max())
    positive = np.abs(snapshot) + 1e-3  # pointwise-relative needs the log transform
    ptw_blob = repro.compress(positive, codec="sz21", bound=PtwRel(1e-2))
    ptw_err = float(np.max(np.abs(repro.decompress(ptw_blob) - positive) / positive))
    print(f"Abs(5e-3)   on sz21: max |d-d'|       = {abs_err:.2e}  (<= 5.0e-03)")
    print(f"PtwRel(1e-2) on sz21: max |d-d'|/|d|  = {ptw_err:.2e}  (<= 1.0e-02)")

    print("\nevery reconstruction satisfied its requested bound -- the guarantee "
          "AE-SZ adds on top of a plain autoencoder, now enforced in three modes.")


if __name__ == "__main__":
    main()

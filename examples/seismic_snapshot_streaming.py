#!/usr/bin/env python3
"""Scenario: streaming RTM (seismic imaging) wavefield snapshots to disk.

Reverse-time-migration runs write thousands of wavefield snapshots; the paper
uses RTM as one of its five applications.  This example simulates a short run:
a model is trained on early snapshots, then every later snapshot is compressed
on the fly, written as a file, and re-read/decompressed for verification —
the checkpoint/restart-style use-case error-bounded compression targets.

Usage::

    python examples/seismic_snapshot_streaming.py
"""

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro import AESZCompressor, AESZConfig, psnr, verify_error_bound
from repro.autoencoders import AutoencoderConfig, SlicedWassersteinAutoencoder
from repro.data import get_dataset
from repro.nn import TrainingConfig

SHAPE = (48, 48, 32)
ERROR_BOUND = 1e-3
TRAIN_STEPS = range(20, 26)
STREAM_STEPS = range(31, 39, 2)


def main() -> None:
    dataset = get_dataset("RTM", seed=0)
    print(f"== Streaming synthetic RTM wavefield snapshots {SHAPE}, eb = {ERROR_BOUND} ==\n")

    train = [dataset.snapshot("snapshot", t, SHAPE) for t in TRAIN_STEPS]
    ae_config = AutoencoderConfig(ndim=3, block_size=8, latent_size=16, channels=(4, 8), seed=0)
    compressor = AESZCompressor(SlicedWassersteinAutoencoder(ae_config),
                                AESZConfig(block_size=8))
    print(f"training on {len(train)} early snapshots ...")
    history = compressor.train(train, TrainingConfig(epochs=10, batch_size=32,
                                                     learning_rate=2e-3, seed=0),
                               max_blocks=512)
    print(f"  done in {history.total_time:.1f}s\n")

    out_dir = Path(tempfile.mkdtemp(prefix="rtm_stream_"))
    header = f"{'time step':>9} | {'file (KiB)':>10} | {'CR':>6} | {'PSNR (dB)':>9} | {'bound':>5}"
    print(header)
    print("-" * len(header))
    total_bytes = 0
    for step in STREAM_STEPS:
        snapshot = dataset.snapshot("snapshot", step, SHAPE).astype(np.float64)
        payload = compressor.compress(snapshot, ERROR_BOUND)
        path = out_dir / f"wavefield_{step:04d}.aesz"
        path.write_bytes(payload)
        total_bytes += len(payload)

        # Re-read and verify, as a restart would.
        restored = compressor.decompress(path.read_bytes())
        ok = verify_error_bound(snapshot, restored, ERROR_BOUND) is None
        print(f"{step:>9} | {len(payload) / 1024:10.1f} | "
              f"{snapshot.size * 4 / len(payload):6.1f} | {psnr(snapshot, restored):9.1f} | "
              f"{'ok' if ok else 'FAIL':>5}")

    raw = len(list(STREAM_STEPS)) * int(np.prod(SHAPE)) * 4
    print("-" * len(header))
    print(f"stream total: {raw / 1e6:.1f} MB raw -> {total_bytes / 1e6:.2f} MB on disk "
          f"({raw / total_bytes:.1f}x), files in {out_dir}")


if __name__ == "__main__":
    main()

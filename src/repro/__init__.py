"""repro: AE-SZ — autoencoder-based error-bounded lossy compression for scientific data.

A from-scratch Python reproduction of Liu et al., "Exploring Autoencoder-based
Error-bounded Compression for Scientific Data" (IEEE CLUSTER 2021), including
the full neural-network substrate, the AE-SZ compressor, the baseline
compressors it is evaluated against, synthetic SDRBench-like datasets and the
benchmark harness that regenerates every table and figure of the paper.

Quickstart
----------
>>> from repro import AESZCompressor, AESZConfig
>>> from repro.autoencoders import AutoencoderConfig, SlicedWassersteinAutoencoder
>>> from repro.data import train_test_snapshots
>>> train, test = train_test_snapshots("CESM-CLDHGH", shape=(128, 256))
>>> ae = SlicedWassersteinAutoencoder(AutoencoderConfig(ndim=2, block_size=16,
...                                                     latent_size=8, channels=(4, 8)))
>>> compressor = AESZCompressor(ae, AESZConfig(block_size=16))
>>> _ = compressor.train(train)
>>> payload = compressor.compress(test[0], rel_error_bound=1e-2)
>>> reconstruction = compressor.decompress(payload)
"""

from repro.core import AESZCompressor, AESZConfig, CompressionStats, default_autoencoder_config
from repro.autoencoders import AutoencoderConfig, SlicedWassersteinAutoencoder, create_autoencoder
from repro.compressors import (
    AEACompressor,
    AEBCompressor,
    Compressor,
    LosslessCompressor,
    SZ21Compressor,
    SZAutoCompressor,
    SZInterpCompressor,
    ZFPCompressor,
)
from repro.metrics import (
    bit_rate,
    compression_ratio,
    max_abs_error,
    psnr,
    rate_distortion_sweep,
    verify_error_bound,
)

__version__ = "1.0.0"

__all__ = [
    "AESZCompressor",
    "AESZConfig",
    "CompressionStats",
    "default_autoencoder_config",
    "AutoencoderConfig",
    "SlicedWassersteinAutoencoder",
    "create_autoencoder",
    "Compressor",
    "SZ21Compressor",
    "ZFPCompressor",
    "SZAutoCompressor",
    "SZInterpCompressor",
    "AEACompressor",
    "AEBCompressor",
    "LosslessCompressor",
    "psnr",
    "bit_rate",
    "compression_ratio",
    "max_abs_error",
    "verify_error_bound",
    "rate_distortion_sweep",
    "__version__",
]

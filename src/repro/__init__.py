"""repro: AE-SZ — autoencoder-based error-bounded lossy compression for scientific data.

A from-scratch Python reproduction of Liu et al., "Exploring Autoencoder-based
Error-bounded Compression for Scientific Data" (IEEE CLUSTER 2021), including
the full neural-network substrate, the AE-SZ compressor, the baseline
compressors it is evaluated against, synthetic SDRBench-like datasets and the
benchmark harness that regenerates every table and figure of the paper.

Quickstart — the self-describing facade (no side-channel arguments on decode):

>>> import numpy as np, repro
>>> from repro import Rel
>>> data = np.random.default_rng(0).normal(size=(64, 64)).cumsum(axis=0)
>>> blob = repro.compress(data, codec="sz21", bound=Rel(1e-3))
>>> recon = repro.decompress(blob)          # codec/shape/dtype come from the header
>>> repro.available_compressors()
('ae_a', 'ae_b', 'aesz', 'lossless', 'sz21', 'szauto', 'szinterp', 'zfp')

The class-level API remains available (and is what the facade wraps):

>>> from repro import AESZCompressor, AESZConfig
>>> from repro.autoencoders import AutoencoderConfig, SlicedWassersteinAutoencoder
>>> from repro.data import train_test_snapshots
>>> train, test = train_test_snapshots("CESM-CLDHGH", shape=(128, 256))
>>> ae = SlicedWassersteinAutoencoder(AutoencoderConfig(ndim=2, block_size=16,
...                                                     latent_size=8, channels=(4, 8)))
>>> compressor = AESZCompressor(ae, AESZConfig(block_size=16))
>>> _ = compressor.train(train)
>>> blob = repro.compress(test[0], codec=compressor, bound=Rel(1e-2))
>>> reconstruction = repro.decompress(blob)   # model travels in the archive
"""

from repro.core import AESZCompressor, AESZConfig, CompressionStats, default_autoencoder_config
from repro.autoencoders import AutoencoderConfig, SlicedWassersteinAutoencoder, create_autoencoder
from repro.bounds import Abs, ErrorBound, PtwRel, Rel
from repro.compressors import (
    AEACompressor,
    AEBCompressor,
    Compressor,
    CompressorResult,
    LosslessCompressor,
    SZ21Compressor,
    SZAutoCompressor,
    SZInterpCompressor,
    ZFPCompressor,
)
from repro.api import (
    compress,
    compress_chunked,
    decompress,
    iter_decompressed_chunks,
    iter_region_tiles,
    parse_region,
    read_header,
    read_region,
    roundtrip,
)
from repro.metrics import (
    bit_rate,
    compression_ratio,
    max_abs_error,
    psnr,
    rate_distortion_sweep,
    verify_error_bound,
)
from repro.registry import (
    available_compressors,
    compressor_spec,
    get_compressor,
    register_compressor,
)
from repro.store import ArchiveStore, TileCache

__version__ = "1.1.0"

__all__ = [
    "compress",
    "compress_chunked",
    "decompress",
    "iter_decompressed_chunks",
    "iter_region_tiles",
    "parse_region",
    "read_region",
    "roundtrip",
    "read_header",
    "ArchiveStore",
    "TileCache",
    "ErrorBound",
    "Rel",
    "Abs",
    "PtwRel",
    "register_compressor",
    "get_compressor",
    "available_compressors",
    "compressor_spec",
    "AESZCompressor",
    "AESZConfig",
    "CompressionStats",
    "default_autoencoder_config",
    "AutoencoderConfig",
    "SlicedWassersteinAutoencoder",
    "create_autoencoder",
    "Compressor",
    "CompressorResult",
    "SZ21Compressor",
    "ZFPCompressor",
    "SZAutoCompressor",
    "SZInterpCompressor",
    "AEACompressor",
    "AEBCompressor",
    "LosslessCompressor",
    "psnr",
    "bit_rate",
    "compression_ratio",
    "max_abs_error",
    "verify_error_bound",
    "rate_distortion_sweep",
    "__version__",
]

"""Result formatting and experiment orchestration helpers."""

from repro.analysis.tables import format_table, write_csv
from repro.analysis.figures import ascii_curve, ascii_histogram, save_series_csv
from repro.analysis.experiments import (
    ModelCache,
    build_aesz_for_field,
    default_error_bounds,
    run_rate_distortion,
)

__all__ = [
    "format_table",
    "write_csv",
    "ascii_curve",
    "ascii_histogram",
    "save_series_csv",
    "ModelCache",
    "build_aesz_for_field",
    "default_error_bounds",
    "run_rate_distortion",
]

"""Shared experiment orchestration for benchmarks and examples.

The paper's evaluation needs one trained SWAE per field (and trained AE-A /
AE-B comparators).  Training the pure-NumPy networks takes seconds-to-minutes
per field on CPU, so :class:`ModelCache` trains each model once and stores the
weights under ``.model_cache/`` in the repository; benchmarks and examples both
go through it, which keeps repeat runs fast and deterministic.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.autoencoders import (
    AutoencoderConfig,
    FullyConnectedAutoencoder,
    ResidualConvAutoencoder,
    create_autoencoder,
)
from repro.compressors import AEACompressor, AEBCompressor
from repro.core import AESZCompressor, AESZConfig, default_autoencoder_config
from repro.registry import get_compressor
from repro.data import train_test_snapshots
from repro.data.catalog import FIELDS
from repro.metrics import RateDistortionCurve, rate_distortion_sweep
from repro.nn import TrainingConfig
from repro.utils.rng import derive_seed

DEFAULT_CACHE_DIR = Path(__file__).resolve().parents[3] / ".model_cache"

# Error bounds used for the rate-distortion sweeps (Fig. 8); the paper's plots
# span roughly bit-rate 0..6, i.e. relative bounds from ~1e-1 down to ~1e-4.
DEFAULT_ERROR_BOUNDS: Tuple[float, ...] = (5e-2, 2e-2, 1e-2, 5e-3, 2e-3, 1e-3)


def default_error_bounds(high_ratio_only: bool = False) -> Tuple[float, ...]:
    """Relative error bounds for RD sweeps; ``high_ratio_only`` keeps the low-bit-rate part."""
    if high_ratio_only:
        return (5e-2, 2e-2, 1e-2, 5e-3)
    return DEFAULT_ERROR_BOUNDS


@dataclass
class TrainingBudget:
    """How much CPU training each cached model gets (scaled-down defaults)."""

    epochs: int = 12
    batch_size: int = 32
    learning_rate: float = 2e-3
    max_blocks: int = 768
    train_snapshot_limit: int = 3

    def to_training_config(self, seed: int = 0) -> TrainingConfig:
        return TrainingConfig(epochs=self.epochs, batch_size=self.batch_size,
                              learning_rate=self.learning_rate, seed=seed)


class ModelCache:
    """Train-once/load-afterwards cache for autoencoder models."""

    def __init__(self, cache_dir: Optional[os.PathLike] = None,
                 budget: Optional[TrainingBudget] = None, seed: int = 0):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else DEFAULT_CACHE_DIR
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.budget = budget or TrainingBudget()
        self.seed = int(seed)

    # ------------------------------------------------------------------ paths
    def _model_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.npz"

    def _meta_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def _key(self, kind: str, field_name: str, config: Mapping) -> str:
        blob = json.dumps({"kind": kind, "field": field_name, "config": config}, sort_keys=True)
        return f"{kind}-{field_name}-{derive_seed(self.seed, blob):08x}"

    # ------------------------------------------------------------- SWAE model
    def swae_for_field(self, field_name: str, ae_kind: str = "swae",
                       config: Optional[AutoencoderConfig] = None,
                       shape: Optional[Sequence[int]] = None):
        """Return a trained blockwise autoencoder for ``field_name`` (cached)."""
        if config is None:
            config = default_autoencoder_config(field_name, scaled=True, seed=self.seed)
        cfg_dict = {
            "ndim": config.ndim, "block_size": config.block_size,
            "latent_size": config.latent_size, "channels": list(config.channels),
            "epochs": self.budget.epochs, "max_blocks": self.budget.max_blocks,
            "shape": list(shape) if shape is not None else None,
        }
        key = self._key(ae_kind, field_name, cfg_dict)
        model = create_autoencoder(ae_kind, config)
        path = self._model_path(key)
        if path.exists():
            model.load(path)
            return model

        train, _ = train_test_snapshots(field_name, shape=shape, seed=self.seed,
                                        train_limit=self.budget.train_snapshot_limit)
        compressor = AESZCompressor(model, AESZConfig(block_size=config.block_size))
        compressor.train(train, self.budget.to_training_config(self.seed),
                         max_blocks=self.budget.max_blocks, seed=self.seed)
        model.save(path)
        self._meta_path(key).write_text(json.dumps(cfg_dict, indent=2))
        return model

    # ------------------------------------------------------------ comparators
    def ae_a_for_field(self, field_name: str, segment_length: int = 512,
                       shape: Optional[Sequence[int]] = None) -> AEACompressor:
        """Trained AE-A comparator compressor for ``field_name`` (cached)."""
        cfg = {"segment_length": segment_length, "epochs": self.budget.epochs,
               "shape": list(shape) if shape is not None else None}
        key = self._key("aea", field_name, cfg)
        compressor = AEACompressor(segment_length=segment_length, seed=self.seed)
        path = self._model_path(key)
        if path.exists():
            compressor.autoencoder.load(path)
            return compressor
        train, _ = train_test_snapshots(field_name, shape=shape, seed=self.seed,
                                        train_limit=self.budget.train_snapshot_limit)
        compressor.train(train, self.budget.to_training_config(self.seed),
                         max_segments=self.budget.max_blocks, seed=self.seed)
        compressor.autoencoder.save(path)
        return compressor

    def ae_b_for_field(self, field_name: str, block_size: int = 16,
                       shape: Optional[Sequence[int]] = None) -> AEBCompressor:
        """Trained AE-B comparator compressor (3D fields only, as in the paper)."""
        ndim = FIELDS[field_name].dimensionality
        cfg = {"block_size": block_size, "ndim": ndim, "epochs": self.budget.epochs,
               "shape": list(shape) if shape is not None else None}
        key = self._key("aeb", field_name, cfg)
        compressor = AEBCompressor(block_size=block_size, ndim=ndim, seed=self.seed)
        path = self._model_path(key)
        if path.exists():
            compressor.autoencoder.load(path)
            return compressor
        train, _ = train_test_snapshots(field_name, shape=shape, seed=self.seed,
                                        train_limit=self.budget.train_snapshot_limit)
        compressor.train(train, self.budget.to_training_config(self.seed),
                         max_blocks=min(512, self.budget.max_blocks), seed=self.seed)
        compressor.autoencoder.save(path)
        return compressor


def build_aesz_for_field(field_name: str, cache: Optional[ModelCache] = None,
                         shape: Optional[Sequence[int]] = None,
                         predictor_mode: str = "hybrid") -> AESZCompressor:
    """Convenience: a trained AE-SZ compressor ready to use on ``field_name``."""
    cache = cache or ModelCache()
    model = cache.swae_for_field(field_name, shape=shape)
    config = AESZConfig(block_size=model.config.block_size, predictor_mode=predictor_mode)
    return AESZCompressor(model, config)


def baseline_compressors(include_interp: bool = True, include_auto: bool = True) -> Dict[str, object]:
    """The traditional error-bounded baselines used across the evaluation.

    Built from :mod:`repro.registry`, keyed by each compressor's display name
    (``SZ2.1``, ``ZFP``, ...) as the paper's tables label them.
    """
    names = ["sz21", "zfp"]
    if include_auto:
        names.append("szauto")
    if include_interp:
        names.append("szinterp")
    out: Dict[str, object] = {}
    for name in names:
        comp = get_compressor(name)
        out[comp.name] = comp
    return out


def run_rate_distortion(compressors: Mapping[str, object], data: np.ndarray,
                        error_bounds: Sequence[float] = DEFAULT_ERROR_BOUNDS
                        ) -> Dict[str, RateDistortionCurve]:
    """Sweep every compressor over ``error_bounds`` and return named RD curves."""
    curves: Dict[str, RateDistortionCurve] = {}
    for label, compressor in compressors.items():
        curves[label] = rate_distortion_sweep(compressor, data, error_bounds, label=label)
    return curves

"""Text-mode "figures": ASCII curves/histograms plus CSV series dumps.

matplotlib is not available in this environment, so the benchmark harness
reports each figure of the paper as (a) a CSV series that can be plotted
anywhere and (b) a coarse ASCII rendering for quick inspection in the terminal.
"""

from __future__ import annotations

import os
from typing import Dict, Mapping, Optional, Sequence, Union

import numpy as np

PathLike = Union[str, os.PathLike]


def ascii_curve(series: Mapping[str, Sequence[tuple]], width: int = 70, height: int = 18,
                title: Optional[str] = None, xlabel: str = "x", ylabel: str = "y") -> str:
    """Render one or more ``label -> [(x, y), ...]`` series as an ASCII plot."""
    all_points = [(x, y) for pts in series.values() for x, y in pts
                  if np.isfinite(x) and np.isfinite(y)]
    if not all_points:
        return (title or "") + "\n(empty figure)"
    xs = np.array([p[0] for p in all_points])
    ys = np.array([p[1] for p in all_points])
    x_min, x_max = float(xs.min()), float(xs.max())
    y_min, y_max = float(ys.min()), float(ys.max())
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    legend = []
    for i, (label, pts) in enumerate(series.items()):
        marker = markers[i % len(markers)]
        legend.append(f"{marker} = {label}")
        for x, y in pts:
            if not (np.isfinite(x) and np.isfinite(y)):
                continue
            col = int((x - x_min) / (x_max - x_min) * (width - 1))
            row = height - 1 - int((y - y_min) / (y_max - y_min) * (height - 1))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{ylabel}  [{y_min:.3g} .. {y_max:.3g}]")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f"{xlabel}  [{x_min:.3g} .. {x_max:.3g}]")
    lines.extend(legend)
    return "\n".join(lines)


def ascii_histogram(values: Sequence[float], bins: int = 20, width: int = 50,
                    title: Optional[str] = None) -> str:
    """Render a histogram of ``values`` with one text row per bin."""
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        return (title or "") + "\n(empty histogram)"
    counts, edges = np.histogram(values, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines = []
    if title:
        lines.append(title)
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"[{lo:+.3e}, {hi:+.3e}) {bar} {count}")
    return "\n".join(lines)


def save_series_csv(path: PathLike, series: Mapping[str, Sequence[tuple]],
                    x_name: str = "x", y_name: str = "y") -> None:
    """Write ``label -> [(x, y), ...]`` series to a long-format CSV file."""
    os.makedirs(os.path.dirname(os.fspath(path)) or ".", exist_ok=True)
    with open(path, "w") as handle:
        handle.write(f"series,{x_name},{y_name}\n")
        for label, pts in series.items():
            for x, y in pts:
                handle.write(f"{label},{x},{y}\n")

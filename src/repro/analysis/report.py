"""Aggregate benchmark CSVs into a single Markdown reproduction report.

After ``pytest benchmarks/ --benchmark-only`` has populated
``benchmarks/results/``, this module (also runnable as
``python -m repro.analysis.report``) collects every CSV into one
human-readable Markdown document — handy for attaching a reproduction summary
to an issue or paper review without re-running anything.
"""

from __future__ import annotations

import csv
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

PathLike = Union[str, os.PathLike]

# Paper artefact each results file corresponds to (used for section headers).
SECTION_TITLES = {
    "table1_ae_types": "Table I — prediction PSNR of autoencoder types",
    "table2_block_sizes": "Table II — block-size study",
    "table3_latent_sizes": "Table III — latent-size study",
    "table4_latent_codec": "Table IV — customized latent codec vs SZ2.1",
    "table8_speed": "Table VIII — compression/decompression speed",
    "table9_training_time": "Table IX — autoencoder training time",
    "fig1_ae_reconstruction": "Fig. 1 — unbounded AE reconstruction",
    "fig6_latent_rd": "Fig. 6 — prediction PSNR vs latent compression",
    "fig7_error_distribution": "Fig. 7 — prediction error distributions",
    "fig8_rate_distortion": "Fig. 8 — rate distortion on all fields",
    "fig9_visual_quality": "Fig. 9 — quality at matched compression ratio",
    "fig10_ae_block_ratio": "Fig. 10 — AE-predicted block fraction",
    "fig11_predictor_ablation": "Fig. 11 — predictor ablation",
    "ablation_pipeline": "Extra — pipeline ablations",
}


def read_results_csv(path: PathLike) -> List[Dict[str, str]]:
    """Read one benchmark CSV into a list of row dicts (strings preserved)."""
    with open(path, newline="") as handle:
        return list(csv.DictReader(handle))


def _markdown_table(rows: Sequence[Dict[str, str]], max_rows: Optional[int] = None) -> str:
    if not rows:
        return "_(empty)_"
    columns = list(rows[0].keys())
    shown = rows if max_rows is None else rows[:max_rows]
    lines = ["| " + " | ".join(columns) + " |",
             "|" + "|".join("---" for _ in columns) + "|"]
    for row in shown:
        lines.append("| " + " | ".join(str(row.get(c, "")) for c in columns) + " |")
    if max_rows is not None and len(rows) > max_rows:
        lines.append(f"\n_... {len(rows) - max_rows} more rows in the CSV._")
    return "\n".join(lines)


def generate_report(results_dir: PathLike, max_rows_per_table: int = 40) -> str:
    """Build the Markdown report from every known CSV in ``results_dir``."""
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        raise FileNotFoundError(f"results directory {results_dir} does not exist; "
                                "run `pytest benchmarks/ --benchmark-only` first")
    sections = []
    sections.append("# AE-SZ reproduction results\n")
    sections.append(f"Generated from CSVs in `{results_dir}`.\n")
    found_any = False
    for stem, title in SECTION_TITLES.items():
        path = results_dir / f"{stem}.csv"
        if not path.exists():
            continue
        found_any = True
        rows = read_results_csv(path)
        sections.append(f"## {title}\n")
        sections.append(_markdown_table(rows, max_rows=max_rows_per_table))
        sections.append("")
    if not found_any:
        raise FileNotFoundError(f"no known benchmark CSVs found in {results_dir}")
    return "\n".join(sections)


def write_report(results_dir: PathLike, output_path: PathLike,
                 max_rows_per_table: int = 40) -> Path:
    """Write the Markdown report to ``output_path`` and return the path."""
    output_path = Path(output_path)
    output_path.parent.mkdir(parents=True, exist_ok=True)
    output_path.write_text(generate_report(results_dir, max_rows_per_table))
    return output_path


def main(argv: Optional[Sequence[str]] = None) -> int:  # pragma: no cover - thin wrapper
    import argparse

    default_results = Path(__file__).resolve().parents[3] / "benchmarks" / "results"
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results-dir", default=str(default_results))
    parser.add_argument("--output", default=str(default_results / "REPORT.md"))
    parser.add_argument("--max-rows", type=int, default=40)
    args = parser.parse_args(argv)
    path = write_report(args.results_dir, args.output, args.max_rows)
    print(f"report written to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

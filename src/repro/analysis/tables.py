"""Plain-text / CSV table formatting for benchmark output."""

from __future__ import annotations

import csv
import os
from typing import Iterable, List, Mapping, Optional, Sequence, Union

PathLike = Union[str, os.PathLike]


def _format_value(value, floatfmt: str) -> str:
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(rows: Sequence[Mapping], columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None, floatfmt: str = ".3g") -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_format_value(row.get(col, ""), floatfmt) for col in columns] for row in rows]
    widths = [max(len(col), *(len(c[i]) for c in cells)) for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row_cells in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row_cells, widths)))
    return "\n".join(lines)


def write_csv(path: PathLike, rows: Sequence[Mapping],
              columns: Optional[Sequence[str]] = None) -> None:
    """Write dict rows to a CSV file (used by the benchmark harness)."""
    rows = list(rows)
    if not rows:
        raise ValueError("cannot write an empty table")
    if columns is None:
        columns = list(rows[0].keys())
    os.makedirs(os.path.dirname(os.fspath(path)) or ".", exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)

"""Top-level facade: ``repro.compress`` / ``repro.decompress`` / ``repro.roundtrip``.

This is the tool-grade entry point the SZ/ZFP command-line tools provide and
the per-class API did not: :func:`compress` wraps every codec's raw payload in
a self-describing :class:`repro.encoding.container.Archive` (codec id, shape,
dtype, error-bound mode + value, codec-private metadata), so
:func:`decompress` reconstructs the array from the blob alone — no dims, dtype,
codec class or (for AE-based codecs with an embedded model) model argument.

Error bounds are :class:`repro.bounds.ErrorBound` objects::

    import repro
    from repro import Rel, Abs, PtwRel

    blob = repro.compress(data, codec="sz21", bound=Rel(1e-3))
    recon = repro.decompress(blob)

``Rel`` is the paper's value-range-relative mode; ``Abs`` is rescaled exactly
to the input's value range; ``PtwRel`` is realized with the standard sign+log
transform (compress ``log |d|`` under an absolute bound of ``log(1+eps)``),
with lossless sign/zero masks stored as archive sections so zeros and signs
reconstruct exactly.

Raw payloads produced by the per-class ``compress`` methods keep decoding
through the per-class ``decompress`` — the archive layer is additive.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bounds import MODE_PTW_REL, Abs, as_bound
from repro.compressors.base import CompressorResult
from repro.core.aesz import output_dtype_and_bound
from repro.encoding.container import Archive, is_archive
from repro.encoding.lossless import get_backend
from repro.metrics.error import max_abs_error, psnr
from repro.registry import compressor_spec, get_compressor, name_for_compressor
from repro.utils.validation import value_range

_MASK_BACKEND = "zlib"


# ---------------------------------------------------------------------------
# Output-dtype restoration (bound-safe, same analysis AESZCompressor uses)
# ---------------------------------------------------------------------------

def _cast_plan(data: np.ndarray, eff_rel: float, spec) -> tuple:
    """Decide whether decompress may cast back to the input dtype.

    Returns ``(rel_bound_for_codec, out_dtype_str_or_None)``.  When the input
    is a float narrower than float64 and the cast's worst-case rounding is
    small against the absolute bound, the bound handed to the codec is
    tightened by that rounding (so the user's bound still holds after the
    cast) and the dtype is recorded for decompress; otherwise reconstructions
    stay float64, which always honours the bound.
    """
    in_dtype = data.dtype
    if (not spec.error_bounded or not np.issubdtype(in_dtype, np.floating)
            or in_dtype.itemsize >= 8):
        return eff_rel, None
    data64 = np.asarray(data, dtype=np.float64)
    vr = value_range(data64)
    abs_eb = eff_rel * vr if vr > 0 else eff_rel
    out_dtype, abs_tight = output_dtype_and_bound(data64, abs_eb, in_dtype)
    if out_dtype.itemsize >= 8:
        return eff_rel, None
    return (abs_tight / vr if vr > 0 else abs_tight), str(out_dtype)


def _ptw_cast_plan(data: np.ndarray, eps: float, spec) -> tuple:
    """Pointwise-relative version of :func:`_cast_plan`.

    Casting to a narrower float adds up to half an ulp of *relative* error for
    values in the dtype's normal range, so ``eps`` is tightened to
    ``(eps - u) / (1 + u)`` and the cast is allowed only when every possible
    reconstruction magnitude stays normal (no overflow, no subnormals — where
    the relative cast error is unbounded).
    """
    in_dtype = data.dtype
    if (not spec.error_bounded or not np.issubdtype(in_dtype, np.floating)
            or in_dtype.itemsize >= 8):
        return eps, None
    info = np.finfo(in_dtype)
    half_ulp = float(info.eps) / 2.0
    if eps <= 8.0 * half_ulp:
        return eps, None
    magnitude = np.abs(np.asarray(data, dtype=np.float64))
    nonzero = magnitude[magnitude > 0]
    if nonzero.size == 0:  # all zeros reconstruct exactly via the mask
        return eps, str(in_dtype)
    if (float(nonzero.max()) * (1 + eps) > float(info.max)
            or float(nonzero.min()) / (1 + eps) < float(info.tiny)):
        return eps, None
    return (eps - half_ulp) / (1 + half_ulp), str(in_dtype)


# ---------------------------------------------------------------------------
# Pointwise-relative transform
# ---------------------------------------------------------------------------

def _ptw_forward(data: np.ndarray, eps: float):
    """Sign + log transform turning a pointwise-relative bound into an absolute one.

    For nonzero ``d``: compressing ``t = log |d|`` under ``|t - t'| <= log(1+eps)``
    gives ``|d'/d - 1| <= eps`` on both sides (the lower side is even tighter:
    ``1 - 1/(1+eps)``).  Zeros demand exact reconstruction (``eps * 0 = 0``), so
    they travel in a lossless bitmask; signs likewise.
    """
    flat = np.ascontiguousarray(data, dtype=np.float64).ravel()
    zeros = flat == 0.0
    signs = flat < 0.0
    magnitude = np.abs(flat)
    if zeros.all():
        magnitude = np.ones_like(magnitude)
    elif zeros.any():
        magnitude[zeros] = magnitude[~zeros].min()
    log_data = np.log(magnitude).reshape(data.shape)
    log_bound = float(np.log1p(eps))

    backend = get_backend(_MASK_BACKEND)
    extra = {}
    if zeros.any():
        extra["ptw_zeros"] = backend.compress(np.packbits(zeros).tobytes())
    if signs.any():
        extra["ptw_signs"] = backend.compress(np.packbits(signs).tobytes())
    return log_data, log_bound, extra


def _ptw_inverse(log_recon: np.ndarray, archive: Archive) -> np.ndarray:
    flat = np.exp(np.asarray(log_recon, dtype=np.float64)).ravel()
    backend = get_backend(_MASK_BACKEND)
    n = flat.size
    if "ptw_signs" in archive.extra:
        signs = np.unpackbits(
            np.frombuffer(backend.decompress(archive.extra["ptw_signs"]), dtype=np.uint8),
            count=n).astype(bool)
        flat[signs] *= -1.0
    if "ptw_zeros" in archive.extra:
        zeros = np.unpackbits(
            np.frombuffer(backend.decompress(archive.extra["ptw_zeros"]), dtype=np.uint8),
            count=n).astype(bool)
        flat[zeros] = 0.0
    return flat.reshape(log_recon.shape)


# ---------------------------------------------------------------------------
# Facade
# ---------------------------------------------------------------------------

def _resolve_codec(codec, codec_options: Optional[dict]):
    """Accept a registry name or a ready compressor instance."""
    if isinstance(codec, str):
        comp = get_compressor(codec, **(codec_options or {}))
        return compressor_spec(codec).name, comp
    if codec_options:
        raise ValueError("codec_options only apply when codec is given by name")
    if not (hasattr(codec, "compress") and hasattr(codec, "decompress")):
        raise TypeError(f"codec must be a registry name or a compressor, got {type(codec)!r}")
    return name_for_compressor(codec), codec


def compress(data, codec="sz21", bound=1e-3, *, codec_options: Optional[dict] = None,
             embed_model: bool = True) -> bytes:
    """Compress ``data`` into a self-describing archive.

    Parameters
    ----------
    data:
        The array to compress.
    codec:
        A registry name (see :func:`repro.available_compressors`) or a ready
        compressor instance (required for model-backed codecs like ``aesz``
        unless ``codec_options`` carries the model).
    bound:
        An :class:`ErrorBound` (``Rel`` / ``Abs`` / ``PtwRel``) or a bare
        number, interpreted as the paper's value-range-relative mode.
    codec_options:
        Keyword arguments forwarded to the registry factory when ``codec`` is
        a name.
    embed_model:
        For model-backed codecs: store the model weights in the archive so
        ``repro.decompress(blob)`` needs no side channel at all.  Turn off to
        keep archives small when the model is archived separately (the header
        still records the model fingerprint, and decompression verifies it).
    """
    data = np.asarray(data)
    name, comp = _resolve_codec(codec, codec_options)
    spec = compressor_spec(name)
    bound = as_bound(bound)

    extra = {}
    if bound.mode == MODE_PTW_REL:
        if not spec.error_bounded:
            raise ValueError(
                f"codec {name!r} is not error bounded and cannot honour a "
                f"pointwise-relative bound"
            )
        eps, out_dtype = _ptw_cast_plan(data, bound.value, spec)
        log_data, log_bound, extra = _ptw_forward(data, eps)
        payload = comp.compress(log_data, Abs(log_bound).rel_equivalent(log_data))
    elif getattr(comp, "manages_output_dtype", False):
        # The codec runs the tighten-then-cast analysis itself (AE-SZ);
        # planning here too would subtract the cast margin twice.
        out_dtype = None
        payload = comp.compress(data, bound.rel_equivalent(data))
    else:
        eff_rel, out_dtype = _cast_plan(data, bound.rel_equivalent(data), spec)
        payload = comp.compress(data, eff_rel)

    meta, blobs = comp.archive_state(embed_model=embed_model)
    if "facade" in meta:
        raise ValueError("codec archive metadata collides with the reserved 'facade' key")
    if out_dtype is not None:
        meta = {**meta, "facade": {"output_dtype": out_dtype}}
    overlap = set(blobs) & set(extra)
    if overlap:
        raise ValueError(f"codec archive sections collide with reserved names: {overlap}")
    extra.update(blobs)
    archive = Archive(
        codec=name,
        shape=tuple(int(s) for s in data.shape),
        dtype=str(data.dtype),
        bound_mode=bound.mode,
        bound_value=bound.value,
        payload=payload,
        meta=meta,
        extra=extra,
    )
    return archive.to_bytes()


def read_header(blob: bytes) -> Archive:
    """Parse an archive's framed header without decompressing the payload.

    The returned :class:`Archive` still carries the raw payload bytes; this is
    the inspection entry point (``python -m repro list`` / ``info`` use it).
    """
    return Archive.from_bytes(blob)


def decompress(blob: bytes, *, model=None, autoencoder=None,
               codec_options: Optional[dict] = None) -> np.ndarray:
    """Reconstruct the array from an archive produced by :func:`compress`.

    No dims/dtype/codec arguments are needed — the archive header carries them.
    ``model`` (an ``.npz`` path) or ``autoencoder`` (a live instance) are only
    needed for AE-based archives written with ``embed_model=False``; when the
    archive embeds or fingerprints a model, a mismatched ``model``/
    ``autoencoder`` is refused with a clear error.

    Narrow float inputs (float32/float16) come back in their own dtype
    whenever :func:`compress` could prove the cast preserves the requested
    bound (it tightens the codec's bound by the worst-case cast rounding);
    otherwise the reconstruction is float64, which always honours the bound.
    """
    if isinstance(blob, (bytearray, memoryview)):
        blob = bytes(blob)
    if not isinstance(blob, bytes):
        raise TypeError(f"blob must be bytes, got {type(blob)!r}")
    if not is_archive(blob):
        if blob[:4] == b"RPRC":
            raise ValueError(
                "this is a raw codec payload (no archive header); decode it with the "
                "producing compressor's .decompress(), or re-compress via repro.compress()"
            )
        raise ValueError("corrupt archive: bad magic (not a repro archive)")
    archive = Archive.from_bytes(blob)
    spec = compressor_spec(archive.codec)

    opts = dict(codec_options or {})
    if model is not None or autoencoder is not None:
        if not spec.accepts_model:
            raise ValueError(f"codec {spec.name!r} does not take a model")
        if model is not None:
            opts["model"] = model
        if autoencoder is not None:
            opts["autoencoder"] = autoencoder
    comp = spec.restore(archive.meta, archive.extra, **opts)

    recon = comp.decompress(archive.payload)
    if archive.bound_mode == MODE_PTW_REL:
        recon = _ptw_inverse(recon, archive)
    if tuple(recon.shape) != archive.shape:
        raise ValueError(
            f"corrupt archive: payload decoded to shape {tuple(recon.shape)}, "
            f"header says {archive.shape}"
        )
    facade = archive.meta.get("facade", {})
    out_dtype = facade.get("output_dtype") if isinstance(facade, dict) else None
    if out_dtype is not None:
        # Recorded only when compress tightened the codec's bound by the
        # worst-case cast rounding, so this cast cannot break the bound.
        recon = recon.astype(np.dtype(out_dtype), copy=False)
    return recon


def roundtrip(data, codec="sz21", bound=1e-3, *, codec_options: Optional[dict] = None,
              embed_model: bool = True) -> CompressorResult:
    """Compress + decompress through the archive layer and collect metrics."""
    data = np.asarray(data)
    bound = as_bound(bound)
    blob = compress(data, codec=codec, bound=bound, codec_options=codec_options,
                    embed_model=embed_model)
    recon = decompress(blob)
    name = codec if isinstance(codec, str) else name_for_compressor(codec)
    return CompressorResult(
        compressor=compressor_spec(name).name,  # canonical registry id
        rel_error_bound=bound.value,
        compressed_bytes=len(blob),
        original_bytes=int(data.size * data.dtype.itemsize),
        psnr=psnr(data, recon),
        max_abs_error=max_abs_error(data, recon),
        reconstructed=recon,
        n_points=int(data.size),
        original_dtype=str(data.dtype),
    )


__all__ = ["compress", "decompress", "roundtrip", "read_header"]

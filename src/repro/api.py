"""Top-level facade: ``repro.compress`` / ``repro.decompress`` / ``repro.roundtrip``.

This is the tool-grade entry point the SZ/ZFP command-line tools provide and
the per-class API did not: :func:`compress` wraps every codec's raw payload in
a self-describing :class:`repro.encoding.container.Archive` (codec id, shape,
dtype, error-bound mode + value, codec-private metadata), so
:func:`decompress` reconstructs the array from the blob alone — no dims, dtype,
codec class or (for AE-based codecs with an embedded model) model argument.

Error bounds are :class:`repro.bounds.ErrorBound` objects::

    import repro
    from repro import Rel, Abs, PtwRel

    blob = repro.compress(data, codec="sz21", bound=Rel(1e-3))
    recon = repro.decompress(blob)

``Rel`` is the paper's value-range-relative mode; ``Abs`` is rescaled exactly
to the input's value range; ``PtwRel`` is realized with the standard sign+log
transform (compress ``log |d|`` under an absolute bound of ``log(1+eps)``),
with lossless sign/zero masks stored as archive sections so zeros and signs
reconstruct exactly.

Raw payloads produced by the per-class ``compress`` methods keep decoding
through the per-class ``decompress`` — the archive layer is additive.
"""

from __future__ import annotations

import os
from operator import index as _as_index
from pathlib import Path
from typing import (Any, Iterable, Iterator, List, Optional, Sequence, Tuple,
                    Union)

import numpy as np
from numpy.typing import ArrayLike, DTypeLike

from repro.bounds import MODE_PTW_REL, MODE_REL, Abs, ErrorBound, as_bound
from repro.compressors.base import CompressorResult
from repro.core.aesz import output_dtype_and_bound
from repro.encoding.container import (
    ARCHIVE_VERSION,
    CHUNKED_ARCHIVE_VERSION,
    FRONT_PREFIX,
    GRID_ARCHIVE_VERSION,
    Archive,
    ChunkedIndex,
    GridIndex,
    build_chunked_archive,
    build_grid_archive,
    front_size,
    grid_shape_of,
    is_archive,
    is_chunked_archive,
    is_grid_archive,
    parse_front,
)
from repro.encoding.lossless import get_backend
from repro.metrics.error import max_abs_error, psnr
from repro.registry import compressor_spec, get_compressor, name_for_compressor
from repro.sources.base import BytesByteSource, FileByteSource, open_source
from repro.utils.parallel import parallel_imap
from repro.utils.validation import value_range

_MASK_BACKEND = "zlib"

#: Default chunk size (in elements) for :func:`compress_chunked` — ~32 MB of
#: float64 per chunk, large enough to amortize per-chunk headers and process
#: dispatch, small enough that a handful of in-flight chunks fits in RAM.
DEFAULT_CHUNK_ELEMS = 4 * 1024 * 1024

#: Aliases shared by the public signatures below.
CodecArg = Union[str, Any]  # registry name/alias, or a live compressor
BoundArg = Union[float, int, ErrorBound]
SourceArg = Union[bytes, bytearray, memoryview, str, os.PathLike]
RegionArg = Union[str, Sequence]  # "10:20,0:64" or a tuple of slices/ints
ModelArg = Union[str, os.PathLike, None]  # .npz model path


# ---------------------------------------------------------------------------
# Output-dtype restoration (bound-safe, same analysis AESZCompressor uses)
# ---------------------------------------------------------------------------

def _cast_plan(data: np.ndarray, eff_rel: float, spec) -> tuple:
    """Decide whether decompress may cast back to the input dtype.

    Returns ``(rel_bound_for_codec, out_dtype_str_or_None)``.  When the input
    is a float narrower than float64 and the cast's worst-case rounding is
    small against the absolute bound, the bound handed to the codec is
    tightened by that rounding (so the user's bound still holds after the
    cast) and the dtype is recorded for decompress; otherwise reconstructions
    stay float64, which always honours the bound.
    """
    in_dtype = data.dtype
    if (not spec.error_bounded or not np.issubdtype(in_dtype, np.floating)
            or in_dtype.itemsize >= 8):
        return eff_rel, None
    data64 = np.asarray(data, dtype=np.float64)
    vr = value_range(data64)
    abs_eb = eff_rel * vr if vr > 0 else eff_rel
    out_dtype, abs_tight = output_dtype_and_bound(data64, abs_eb, in_dtype)
    if out_dtype.itemsize >= 8:
        return eff_rel, None
    return (abs_tight / vr if vr > 0 else abs_tight), str(out_dtype)


def _ptw_cast_plan(data: np.ndarray, eps: float, spec) -> tuple:
    """Pointwise-relative version of :func:`_cast_plan`.

    Casting to a narrower float adds up to half an ulp of *relative* error for
    values in the dtype's normal range, so ``eps`` is tightened to
    ``(eps - u) / (1 + u)`` and the cast is allowed only when every possible
    reconstruction magnitude stays normal (no overflow, no subnormals — where
    the relative cast error is unbounded).
    """
    in_dtype = data.dtype
    if (not spec.error_bounded or not np.issubdtype(in_dtype, np.floating)
            or in_dtype.itemsize >= 8):
        return eps, None
    info = np.finfo(in_dtype)
    half_ulp = float(info.eps) / 2.0
    if eps <= 8.0 * half_ulp:
        return eps, None
    magnitude = np.abs(np.asarray(data, dtype=np.float64))
    nonzero = magnitude[magnitude > 0]
    if nonzero.size == 0:  # all zeros reconstruct exactly via the mask
        return eps, str(in_dtype)
    if (float(nonzero.max()) * (1 + eps) > float(info.max)
            or float(nonzero.min()) / (1 + eps) < float(info.tiny)):
        return eps, None
    return (eps - half_ulp) / (1 + half_ulp), str(in_dtype)


# ---------------------------------------------------------------------------
# Pointwise-relative transform
# ---------------------------------------------------------------------------

def _ptw_forward(data: np.ndarray, eps: float):
    """Sign + log transform turning a pointwise-relative bound into an absolute one.

    For nonzero ``d``: compressing ``t = log |d|`` under ``|t - t'| <= log(1+eps)``
    gives ``|d'/d - 1| <= eps`` on both sides (the lower side is even tighter:
    ``1 - 1/(1+eps)``).  Zeros demand exact reconstruction (``eps * 0 = 0``), so
    they travel in a lossless bitmask; signs likewise.
    """
    flat = np.ascontiguousarray(data, dtype=np.float64).ravel()
    zeros = flat == 0.0
    signs = flat < 0.0
    magnitude = np.abs(flat)
    if zeros.all():
        magnitude = np.ones_like(magnitude)
    elif zeros.any():
        magnitude[zeros] = magnitude[~zeros].min()
    log_data = np.log(magnitude).reshape(data.shape)
    log_bound = float(np.log1p(eps))

    backend = get_backend(_MASK_BACKEND)
    extra = {}
    if zeros.any():
        extra["ptw_zeros"] = backend.compress(np.packbits(zeros).tobytes())
    if signs.any():
        extra["ptw_signs"] = backend.compress(np.packbits(signs).tobytes())
    return log_data, log_bound, extra


def _ptw_inverse(log_recon: np.ndarray, archive: Archive) -> np.ndarray:
    flat = np.exp(np.asarray(log_recon, dtype=np.float64)).ravel()
    backend = get_backend(_MASK_BACKEND)
    n = flat.size
    if "ptw_signs" in archive.extra:
        signs = np.unpackbits(
            np.frombuffer(backend.decompress(archive.extra["ptw_signs"]), dtype=np.uint8),
            count=n).astype(bool)
        flat[signs] *= -1.0
    if "ptw_zeros" in archive.extra:
        zeros = np.unpackbits(
            np.frombuffer(backend.decompress(archive.extra["ptw_zeros"]), dtype=np.uint8),
            count=n).astype(bool)
        flat[zeros] = 0.0
    return flat.reshape(log_recon.shape)


# ---------------------------------------------------------------------------
# Facade
# ---------------------------------------------------------------------------

def _resolve_codec(codec, codec_options: Optional[dict]):
    """Accept a registry name or a ready compressor instance."""
    if isinstance(codec, str):
        comp = get_compressor(codec, **(codec_options or {}))
        return compressor_spec(codec).name, comp
    if codec_options:
        raise ValueError("codec_options only apply when codec is given by name")
    if not (hasattr(codec, "compress") and hasattr(codec, "decompress")):
        raise TypeError(f"codec must be a registry name or a compressor, got {type(codec)!r}")
    return name_for_compressor(codec), codec


def compress(data: ArrayLike, codec: CodecArg = "sz21",
             bound: BoundArg = 1e-3, *,
             codec_options: Optional[dict] = None,
             embed_model: bool = True) -> bytes:
    """Compress ``data`` into a self-describing archive.

    Parameters
    ----------
    data:
        The array to compress.
    codec:
        A registry name (see :func:`repro.available_compressors`) or a ready
        compressor instance (required for model-backed codecs like ``aesz``
        unless ``codec_options`` carries the model).
    bound:
        An :class:`ErrorBound` (``Rel`` / ``Abs`` / ``PtwRel``) or a bare
        number, interpreted as the paper's value-range-relative mode.
    codec_options:
        Keyword arguments forwarded to the registry factory when ``codec`` is
        a name.
    embed_model:
        For model-backed codecs: store the model weights in the archive so
        ``repro.decompress(blob)`` needs no side channel at all.  Turn off to
        keep archives small when the model is archived separately (the header
        still records the model fingerprint, and decompression verifies it).
    """
    data = np.asarray(data)
    name, comp = _resolve_codec(codec, codec_options)
    spec = compressor_spec(name)
    bound = as_bound(bound)
    if (spec.error_bounded and not spec.exact
            and np.issubdtype(data.dtype, np.floating)
            and not np.all(np.isfinite(data))):
        raise ValueError(
            f"data contains non-finite values (NaN/Inf); codec {name!r} cannot "
            f"honour an error bound on them — store such fields exactly with "
            f"codec='lossless'"
        )
    # Codecs flatten 0-d inputs to shape (1,); the header keeps the true shape
    # and decompress restores it.
    codec_data = data.reshape((1,)) if data.ndim == 0 else data

    extra = {}
    if bound.mode == MODE_PTW_REL:
        if not spec.error_bounded:
            raise ValueError(
                f"codec {name!r} is not error bounded and cannot honour a "
                f"pointwise-relative bound"
            )
        eps, out_dtype = _ptw_cast_plan(codec_data, bound.value, spec)
        log_data, log_bound, extra = _ptw_forward(codec_data, eps)
        payload = comp.compress(log_data, Abs(log_bound).rel_equivalent(log_data))
    elif getattr(comp, "manages_output_dtype", False):
        # The codec runs the tighten-then-cast analysis itself (AE-SZ);
        # planning here too would subtract the cast margin twice.
        out_dtype = None
        payload = comp.compress(codec_data, bound.rel_equivalent(codec_data))
    else:
        eff_rel, out_dtype = _cast_plan(codec_data, bound.rel_equivalent(codec_data), spec)
        payload = comp.compress(codec_data, eff_rel)

    meta, blobs = comp.archive_state(embed_model=embed_model)
    if "facade" in meta:
        raise ValueError("codec archive metadata collides with the reserved 'facade' key")
    if out_dtype is not None:
        meta = {**meta, "facade": {"output_dtype": out_dtype}}
    overlap = set(blobs) & set(extra)
    if overlap:
        raise ValueError(f"codec archive sections collide with reserved names: {overlap}")
    extra.update(blobs)
    archive = Archive(
        codec=name,
        shape=tuple(int(s) for s in data.shape),
        dtype=str(data.dtype),
        bound_mode=bound.mode,
        bound_value=bound.value,
        payload=payload,
        meta=meta,
        extra=extra,
    )
    return archive.to_bytes()


# ---------------------------------------------------------------------------
# Chunked (out-of-core) pipeline
# ---------------------------------------------------------------------------

def _open_source(source):
    """Resolve a chunked-compression source to an array or a block iterator."""
    if isinstance(source, (str, Path)):
        path = Path(source)
        if path.suffix == ".npy":
            return np.load(path, mmap_mode="r")
        raise ValueError(
            f"cannot infer the array layout of {str(path)!r}; map raw files with "
            "numpy.memmap(path, dtype=..., shape=...) and pass the array"
        )
    return source


def _slab_chunks(arr: np.ndarray, chunk_elems: int):
    """Yield ``(start_row, stop_row, slab)`` slabs of <= ``chunk_elems`` elements.

    Slabs are whole rows along axis 0, so each chunk of an arbitrary-rank field
    is itself a contiguous field of the same rank.  One row is the floor: when
    a single row already exceeds ``chunk_elems``, chunks are single rows (the
    memory bound then scales with the row size, not ``chunk_elems``).  A 0-d
    array is one chunk.
    """
    if arr.ndim == 0:
        yield 0, 1, arr
        return
    row_elems = int(np.prod(arr.shape[1:], dtype=np.int64)) if arr.ndim > 1 else 1
    rows = max(1, chunk_elems // max(1, row_elems))
    for start in range(0, arr.shape[0], rows):
        stop = min(arr.shape[0], start + rows)
        yield start, stop, arr[start:stop]


def _rechunk_blocks(blocks, chunk_elems: int, info: dict):
    """Regroup an iterator of row-blocks into ~``chunk_elems``-element chunks.

    Consumes lazily: at most one chunk's worth of rows is buffered, so the
    stream never materializes.  Records the trailing shape / dtype discovered
    from the first block in ``info`` (blocks must agree on both).
    """
    buffered: list = []
    buffered_elems = 0

    def _flush():
        chunk = buffered[0] if len(buffered) == 1 else np.concatenate(buffered, axis=0)
        buffered.clear()
        return chunk

    for block in blocks:
        block = np.asarray(block)
        if block.ndim == 0:
            block = block.reshape(1)
        if "trailing" not in info:
            info["trailing"] = tuple(int(s) for s in block.shape[1:])
            info["dtype"] = str(block.dtype)
        if tuple(block.shape[1:]) != info["trailing"]:
            raise ValueError(
                f"iterator blocks must share trailing dimensions: got "
                f"{tuple(block.shape[1:])} after {info['trailing']}"
            )
        if str(block.dtype) != info["dtype"]:
            raise ValueError(
                f"iterator blocks must share one dtype: got {block.dtype} "
                f"after {info['dtype']}"
            )
        if block.shape[0] == 0:
            continue
        if block.size >= chunk_elems:
            # Oversized block: flush the buffer, then slab-split the block
            # directly — nothing larger than one chunk is ever materialized.
            if buffered:
                buffered_elems = 0
                yield _flush()
            for _, _, slab in _slab_chunks(block, chunk_elems):
                yield slab
            continue
        if buffered and buffered_elems + block.size > chunk_elems:
            # Appending would overshoot: flush first so no emitted chunk ever
            # exceeds ``chunk_elems`` (chunks may come out smaller instead).
            buffered_elems = 0
            yield _flush()
        buffered.append(block)
        buffered_elems += block.size
        if buffered_elems >= chunk_elems:
            buffered_elems = 0
            yield _flush()
    if buffered:
        yield _flush()


def _range_pass(arr: np.ndarray, chunk_elems: int) -> Tuple[float, float]:
    """Streaming global min/max over slabs (no whole-array float64 copy)."""
    lo, hi = np.inf, -np.inf
    for _, _, slab in _slab_chunks(arr, chunk_elems):
        lo = min(lo, float(np.min(slab)))
        hi = max(hi, float(np.max(slab)))
    return lo, hi


def _compress_chunk_job(job) -> bytes:
    """Module-level worker so spawn-based process pools can pickle it."""
    chunk, codec, codec_options, bound, embed_model = job
    return compress(chunk, codec=codec, bound=bound, codec_options=codec_options,
                    embed_model=embed_model)


def _decompress_chunk_job(job) -> np.ndarray:
    chunk_blob, model, autoencoder, codec_options = job
    return _decompress_archive(chunk_blob, model=model, autoencoder=autoencoder,
                               codec_options=codec_options)


def _normalize_chunk_shape(chunk_shape, shape: Tuple[int, ...]) -> Tuple[int, ...]:
    """Validate a per-axis tile shape against the field shape.

    A bare int applies to every axis; ``None`` / ``-1`` entries mean "the full
    axis".  Entries larger than the axis are fine (that axis gets one tile).
    """
    if isinstance(chunk_shape, (int, np.integer)):
        chunk_shape = (int(chunk_shape),) * len(shape)
    chunk_shape = tuple(chunk_shape)
    if len(chunk_shape) != len(shape):
        raise ValueError(
            f"chunk_shape has {len(chunk_shape)} axes, the source field has "
            f"{len(shape)} ({shape})")
    out = []
    for ax, (c, dim) in enumerate(zip(chunk_shape, shape)):
        if c is None or c == -1:
            c = dim
        c = int(c)
        if c < 1:
            raise ValueError(
                f"chunk_shape axis {ax} must be a positive tile size, -1 or "
                f"None (full axis); got {chunk_shape[ax]!r}")
        out.append(min(c, max(1, dim)))
    return tuple(out)


def compress_chunked(source: Union[ArrayLike, str, os.PathLike,
                                   Iterable[np.ndarray]],
                     codec: CodecArg = "sz21", bound: BoundArg = 1e-3, *,
                     chunk_size: int = DEFAULT_CHUNK_ELEMS,
                     chunk_shape: Optional[Sequence[int]] = None,
                     workers: Optional[int] = None,
                     codec_options: Optional[dict] = None,
                     embed_model: bool = True,
                     data_range: Optional[Tuple[float, float]] = None,
                     dtype: Optional[DTypeLike] = None) -> bytes:
    """Compress a large field chunk by chunk into a multi-chunk archive.

    ``source`` may be an in-memory array, a memory-mapped array (e.g.
    ``numpy.memmap`` or ``numpy.load(path, mmap_mode="r")``), a path to a
    ``.npy`` file (opened memory-mapped), or an iterator of row-blocks sharing
    trailing dimensions — in the mapped/iterator cases the field never fully
    resides in RAM.  The field is split into row slabs of roughly
    ``chunk_size`` elements along axis 0 and each slab becomes an independent
    single-shot archive inside a version-2 envelope whose front index table
    lets every chunk be located, verified and decoded in any order.

    ``chunk_shape`` switches to the N-dimensional chunk grid (format version
    3): a per-axis tile size — e.g. ``(32, 32, 32)`` for a 3-d field, or a
    bare int applied to every axis, with ``-1``/``None`` meaning "the full
    axis" — tiles the field into a row-major grid of independent sub-archives,
    which is what makes :func:`read_region` decode a sub-cube in O(region)
    bytes instead of O(archive).  It needs an array/memmap/.npy source (a
    row-block iterator can only be chunked along axis 0) and overrides
    ``chunk_size``.  Tiny tiles hurt ratio (per-tile headers) and, for
    context-exploiting codecs, accuracy of the rate — 16–64 elements per axis
    is the useful range.

    The error-bound guarantee matches single-shot :func:`compress` exactly:
    a ``Rel`` bound is converted **once**, from a global range pass, into the
    per-chunk absolute bound ``value * (max(D) - min(D))``, so the chunked
    reconstruction obeys the same inequality as the single-shot one.  ``Abs``
    and ``PtwRel`` bounds are pointwise to begin with and pass straight
    through.  Iterator sources cannot be replayed for the range pass, so a
    ``Rel`` bound there needs ``data_range=(min, max)`` (or use ``Abs`` /
    ``PtwRel``).

    ``dtype`` casts each chunk (slab-wise, never the whole field) before
    compression and records that dtype in the header — e.g. ``np.float64`` to
    give codecs the same input the single-shot CLI path feeds them while the
    source stays a memory-mapped float32 file.

    ``workers`` compresses chunks through a ``spawn``-based process pool
    (``None``/``1`` = serial).  The output is **bit-identical for any worker
    count**: chunk boundaries and per-chunk bounds are fixed before dispatch
    and results are reassembled in input order.  For model-backed codecs note
    that ``embed_model=True`` stores the weights in *every* chunk; pass
    ``embed_model=False`` and keep the model as a side file when that matters.
    """
    src = _open_source(source)
    bound = as_bound(bound)
    if isinstance(codec, str):
        spec = compressor_spec(codec)
        job_codec = spec.name
    else:
        if codec_options:
            raise ValueError("codec_options only apply when codec is given by name")
        spec = compressor_spec(name_for_compressor(codec))
        job_codec = codec
    is_array = isinstance(src, np.ndarray)
    if chunk_shape is not None:
        if not is_array:
            raise ValueError(
                "chunk_shape tiling needs an array, memmap or .npy source; a "
                "row-block iterator can only be chunked along axis 0 (use "
                "chunk_size instead)"
            )
        tile_dims = _normalize_chunk_shape(chunk_shape, src.shape)
        # chunk_shape overrides chunk_size (0 = "not slab-chunking" is fine
        # here); chunk_elems is then only the range-pass slab granularity.
        chunk_elems = int(chunk_size) if int(chunk_size) > 0 else DEFAULT_CHUNK_ELEMS
    elif int(chunk_size) <= 0:
        raise ValueError(f"chunk_size must be a positive element count, got {chunk_size}")
    else:
        chunk_elems = int(chunk_size)

    meta: dict = {}
    if spec.error_bounded and not spec.exact and bound.mode == MODE_REL:
        if data_range is not None:
            lo, hi = float(data_range[0]), float(data_range[1])
        elif is_array:
            lo, hi = _range_pass(src, chunk_elems)
        else:
            raise ValueError(
                "a value-range-relative bound over an iterator source needs "
                "data_range=(min, max): the stream cannot be replayed for the "
                "global range pass (or use an Abs/PtwRel bound)"
            )
        if hi < lo:
            raise ValueError(
                f"data range [{lo}, {hi}] is reversed or empty; pass "
                f"data_range=(min, max) with min <= max"
            )
        if not (np.isfinite(lo) and np.isfinite(hi)):
            raise ValueError(
                f"data range [{lo}, {hi}] is not finite; error-bounded "
                f"compression is undefined on NaN/Inf fields"
            )
        vrange = hi - lo
        abs_eb = bound.value * vrange if vrange > 0 else bound.value
        chunk_bound: ErrorBound = Abs(abs_eb)
        meta["chunked"] = {"data_range": [lo, hi], "abs_bound": abs_eb}
    else:
        # Abs / PtwRel are pointwise; non-error-bounded codecs take the bound
        # as-is (they ignore it or treat it as a target).
        chunk_bound = bound

    starts = [0]
    info: dict = {}
    cast_dtype = np.dtype(dtype) if dtype is not None else None

    def _cast(chunk: np.ndarray) -> np.ndarray:
        return np.asarray(chunk, dtype=cast_dtype) if cast_dtype is not None \
            else np.asarray(chunk)

    if chunk_shape is not None:
        grid_shape = grid_shape_of(src.shape, tile_dims)

        def _tile_jobs():
            # np.ndindex enumerates the grid in row-major order, which is the
            # order the v3 index table requires (and yields one empty tuple
            # for a 0-d field — a single tile holding the scalar).
            for coords in np.ndindex(*grid_shape):
                sl = tuple(slice(c * cs, min((c + 1) * cs, d))
                           for c, cs, d in zip(coords, tile_dims, src.shape))
                yield (_cast(src[sl]), job_codec, codec_options, chunk_bound,
                       embed_model)

        blobs = list(parallel_imap(_compress_chunk_job, _tile_jobs(),
                                   workers=workers))
        return build_grid_archive(
            codec=spec.name, shape=tuple(int(s) for s in src.shape),
            dtype=str(cast_dtype) if cast_dtype is not None else str(src.dtype),
            bound_mode=bound.mode, bound_value=bound.value,
            chunk_shape=tile_dims, tile_blobs=blobs, meta=meta)

    def _jobs():
        if is_array:
            for _, stop, slab in _slab_chunks(src, chunk_elems):
                starts.append(int(stop))
                yield (_cast(slab), job_codec, codec_options, chunk_bound,
                       embed_model)
        else:
            for chunk in _rechunk_blocks(src, chunk_elems, info):
                starts.append(starts[-1] + int(chunk.shape[0]))
                yield (_cast(chunk), job_codec, codec_options, chunk_bound,
                       embed_model)

    blobs = list(parallel_imap(_compress_chunk_job, _jobs(), workers=workers))
    if not blobs:
        raise ValueError("source produced no data to compress")
    if is_array:
        shape = tuple(int(s) for s in src.shape)
        source_dtype = str(src.dtype)
    else:
        shape = (starts[-1],) + info["trailing"]
        source_dtype = info["dtype"]
    return build_chunked_archive(
        codec=spec.name, shape=shape,
        dtype=str(cast_dtype) if cast_dtype is not None else source_dtype,
        bound_mode=bound.mode, bound_value=bound.value, axis=0, starts=starts,
        chunk_blobs=blobs, meta=meta)


def _store_chunk(out: np.ndarray, where, chunk: np.ndarray) -> None:
    """Write ``chunk`` into ``out[where]``, refusing lossy dtype narrowing."""
    if out.dtype != chunk.dtype:
        exact_widening = (np.issubdtype(out.dtype, np.floating)
                          and np.issubdtype(chunk.dtype, np.floating)
                          and out.dtype.itemsize > chunk.dtype.itemsize)
        if not exact_widening:
            raise ValueError(
                f"out has dtype {out.dtype}, which cannot losslessly hold a "
                f"chunk reconstructed as {chunk.dtype}; pass a float64 out "
                f"array (always safe) or omit out"
            )
    out[where] = chunk


def iter_decompressed_chunks(blob: bytes, *, model: ModelArg = None,
                             autoencoder: Any = None,
                             codec_options: Optional[dict] = None,
                             workers: Optional[int] = None
                             ) -> Iterator[Tuple[slice, np.ndarray]]:
    """Stream a chunked archive as ``(row_slice, chunk_array)`` pairs, in order.

    The out-of-core consumer loop: only a bounded number of chunks is ever in
    flight, so a larger-than-RAM field can be decompressed straight into its
    destination (a memmap, a socket, ...).  ``row_slice`` addresses the chunk's
    slab along axis 0 of the full field.  Grid (version-3) archives tile along
    every axis, so their pieces are not row slabs — stream them with
    :func:`iter_region_tiles` instead.
    """
    if is_grid_archive(blob):
        raise ValueError(
            "this is a grid (N-d tiled) archive; its tiles are not row slabs — "
            "stream it with repro.iter_region_tiles(blob, region) instead"
        )
    index = ChunkedIndex.from_bytes(blob)
    yield from _iter_chunks(index, blob, model=model, autoencoder=autoencoder,
                            codec_options=codec_options, workers=workers)


def _iter_chunks(index: ChunkedIndex, blob: bytes, *, model=None, autoencoder=None,
                 codec_options: Optional[dict] = None,
                 workers: Optional[int] = None
                 ) -> Iterator[Tuple[slice, np.ndarray]]:
    compressor_spec(index.codec)  # unknown codec fails before any decode work
    jobs = ((index.chunk_bytes(blob, i), model, autoencoder, codec_options)
            for i in range(index.n_chunks))
    for i, chunk in enumerate(parallel_imap(_decompress_chunk_job, jobs,
                                            workers=workers)):
        if tuple(chunk.shape) != index.chunk_shape(i):
            raise ValueError(
                f"corrupt archive: chunk {i} decoded to shape "
                f"{tuple(chunk.shape)}, index says {index.chunk_shape(i)}"
            )
        yield index.chunk_slice(i), chunk


def _decompress_chunked(blob: bytes, *, model=None, autoencoder=None,
                        codec_options: Optional[dict] = None,
                        workers: Optional[int] = None,
                        out: Optional[np.ndarray] = None) -> np.ndarray:
    index = ChunkedIndex.from_bytes(blob)
    if out is not None and tuple(out.shape) != index.shape:
        raise ValueError(f"out has shape {tuple(out.shape)}, archive says {index.shape}")
    result = out
    for sl, chunk in _iter_chunks(index, blob, model=model,
                                  autoencoder=autoencoder,
                                  codec_options=codec_options,
                                  workers=workers):
        if index.shape == ():  # single scalar chunk
            if out is None:
                return chunk
            _store_chunk(out, Ellipsis, chunk)
            return out
        if out is not None:
            _store_chunk(out, sl, chunk)
            continue
        if result is None:
            result = np.empty(index.shape, dtype=chunk.dtype)
        elif chunk.dtype.itemsize > result.dtype.itemsize:
            # A later chunk could not be restored narrow; widen what is
            # already written (exact float upcast) and continue.
            result = result.astype(chunk.dtype)
        result[sl] = chunk
    if result is None:
        raise ValueError("corrupt archive: chunked archive with no chunks")
    return result


# ---------------------------------------------------------------------------
# Random-access region decode
# ---------------------------------------------------------------------------

# The reader implementations live in :mod:`repro.sources`; the private
# aliases remain because the store and existing tests grew up on them.
_BytesReader = BytesByteSource
_FileReader = FileByteSource


def open_reader(source: SourceArg):
    """Open a random-access byte source over an archive.

    Accepts in-memory bytes, a filesystem path, an ``http(s)://`` URL
    (range-GET reads via :class:`repro.sources.HttpByteSource`) or an
    already-open :class:`~repro.sources.ByteSource` (returned as-is).  The
    returned object exposes ``size`` / ``read_at(offset, length)`` /
    ``read_all()`` / ``close()`` and works as a context manager.  This is
    the I/O seam the region decoder and :class:`repro.store.ArchiveStore`
    share; every built-in variant is safe to share across threads (files
    use positional ``pread``, never a seek pointer).
    """
    return open_source(source)


def load_index(reader) -> Union[Archive, ChunkedIndex, GridIndex]:
    """Parse an archive's index from a reader, touching O(header) bytes.

    Version-1 archives have no tile table, so they are read whole; chunked
    (v2) and grid (v3) archives read only the front matter and validate the
    index against the total size.
    """
    prefix = reader.read_at(0, FRONT_PREFIX)
    if len(prefix) < FRONT_PREFIX:
        # A source shorter than the fixed front matter can never be an
        # archive; say so before front_size unpacks garbage.
        raise ValueError(
            f"corrupt archive: truncated front matter ({len(prefix)} bytes, "
            f"need at least {FRONT_PREFIX})")
    total_front = front_size(prefix)
    front = reader.read_at(0, total_front)
    if len(front) < total_front:
        raise ValueError("corrupt archive: truncated header")
    version, header, data_start = parse_front(front)
    if version == ARCHIVE_VERSION:
        return Archive.from_bytes(reader.read_all())
    if version == CHUNKED_ARCHIVE_VERSION:
        return ChunkedIndex.from_header(header, data_start, reader.size)
    if version == GRID_ARCHIVE_VERSION:
        return GridIndex.from_header(header, data_start, reader.size)
    raise ValueError(
        f"unsupported archive version {version} (this build reads versions "
        f"{ARCHIVE_VERSION}, {CHUNKED_ARCHIVE_VERSION} and "
        f"{GRID_ARCHIVE_VERSION})")


# Backwards-compatible private aliases (pre-store internal names).
_open_reader = open_reader
_load_index = load_index


def _check_tile_shape(index, i: int, tile: np.ndarray) -> np.ndarray:
    """Validate a decoded tile's shape against the index (shared by every path)."""
    if tuple(tile.shape) != index.tile_shape(i):
        raise ValueError(
            f"corrupt archive: tile {i} decoded to shape "
            f"{tuple(tile.shape)}, index says {index.tile_shape(i)}")
    return tile


def decode_tile(index: Union[ChunkedIndex, GridIndex], i: int, raw: bytes, *,
                model: ModelArg = None, autoencoder: Any = None,
                codec_options: Optional[dict] = None) -> np.ndarray:
    """Decode one CRC-checked tile blob and validate its shape against ``index``.

    ``raw`` must already have passed ``index.check_tile(i, ...)`` (the check
    belongs next to the read so corrupt bytes fail before any decode work).
    This is the single-tile decode + validate step the
    :class:`repro.store.ArchiveStore` tile cache runs; the streaming region
    reader decodes through its worker pool and applies the same
    shape validation.
    """
    return _check_tile_shape(
        index, i, _decompress_archive(raw, model=model,
                                      autoencoder=autoencoder,
                                      codec_options=codec_options))


def tile_crop(bounds, tile_slices) -> Tuple[Tuple[slice, ...], Tuple[slice, ...]]:
    """Intersect a tile with a region: ``(local_slices, inner_slices)``.

    ``bounds`` is a normalized region (per-axis ``(start, stop)``);
    ``tile_slices`` the tile's extent in full-field coordinates.  The caller
    places ``tile[inner_slices]`` at ``result[local_slices]`` of the
    region-shaped output.
    """
    local, inner = [], []
    for (b0, b1), s in zip(bounds, tile_slices):
        lo, hi = max(b0, s.start), min(b1, s.stop)
        local.append(slice(lo - b0, hi - b0))
        inner.append(slice(lo - s.start, hi - s.start))
    return tuple(local), tuple(inner)


def normalize_region(region, shape: Tuple[int, ...]) -> Tuple[Tuple[int, int], ...]:
    """Validate ``region`` against ``shape``; returns per-axis ``(start, stop)``.

    ``region`` is a tuple of slices (a single slice/int is promoted to a
    1-tuple); missing trailing axes default to the full axis.  Integers are
    kept as length-1 slices (``i`` means ``i:i+1`` — the axis is *not*
    dropped).  Bounds clamp to the field like numpy slicing, so
    ``start >= stop`` yields an empty region.  Negative indices and strides
    other than 1 raise ``ValueError``: tiles are stored contiguously, so a
    strided read could not skip any I/O — decode the enclosing contiguous
    region and stride in memory instead.
    """
    if isinstance(region, (slice, int, np.integer)):
        region = (region,)
    region = tuple(region)
    if len(region) > len(shape):
        raise ValueError(
            f"region has {len(region)} axes, the archive field is "
            f"{len(shape)}-d {shape}")
    region = region + (slice(None),) * (len(shape) - len(region))
    bounds = []
    for ax, (entry, dim) in enumerate(zip(region, shape)):
        if isinstance(entry, (int, np.integer)):
            entry = slice(int(entry), int(entry) + 1)
        if not isinstance(entry, slice):
            raise ValueError(
                f"region axis {ax}: expected a slice or int, got {entry!r}")
        if entry.step is not None:
            try:
                step = _as_index(entry.step)
            except TypeError:
                raise ValueError(
                    f"region axis {ax}: slice step must be an integer, got "
                    f"{entry.step!r}") from None
            if step != 1:
                raise ValueError(
                    f"region axis {ax}: strided slices are not supported "
                    f"(step={step}); read the enclosing contiguous region and "
                    f"stride in memory")
        lo_hi = []
        for name, value, default in (("start", entry.start, 0),
                                     ("stop", entry.stop, dim)):
            if value is None:
                lo_hi.append(default)
                continue
            try:
                value = _as_index(value)
            except TypeError:
                raise ValueError(
                    f"region axis {ax}: slice {name} must be an integer, got "
                    f"{value!r}") from None
            if value < 0:
                raise ValueError(
                    f"region axis {ax}: negative indices are not supported "
                    f"(got {name}={value}); use absolute coordinates in "
                    f"[0, {dim}]")
            lo_hi.append(min(value, dim))
        start, stop = lo_hi
        bounds.append((start, max(stop, start)))
    return tuple(bounds)


def parse_region(spec: str) -> Tuple[slice, ...]:
    """Parse a region string like ``"10:20,0:64,5:9"`` into a tuple of slices.

    One comma-separated field per axis: ``start:stop`` (either side may be
    omitted for "from 0" / "to the end"), ``:`` for a full axis, or a bare
    integer ``i`` (kept as the length-1 slice ``i:i+1``).  This is the CLI
    syntax of ``repro extract --region``; validation against a concrete field
    shape happens in :func:`normalize_region` / :func:`read_region`.
    """
    fields = [f.strip() for f in str(spec).split(",")]
    out = []
    for f in fields:
        parts = f.split(":")
        if len(parts) > 3:
            raise ValueError(
                f"bad region field {f!r} in {spec!r}: expected start:stop, "
                f"':' or a bare integer")
        try:
            nums = [int(p) if p.strip() else None for p in parts]
        except ValueError:
            raise ValueError(
                f"bad region field {f!r} in {spec!r}: bounds must be "
                f"integers") from None
        if len(parts) == 1:
            if nums[0] is None:
                raise ValueError(
                    f"bad region field {f!r} in {spec!r}: empty axis (use "
                    f"':' for a full axis)")
            out.append(slice(nums[0], nums[0] + 1))
        else:
            out.append(slice(*nums))
    return tuple(out)


def iter_region_tiles(source: SourceArg, region: RegionArg, *,
                      model: ModelArg = None, autoencoder: Any = None,
                      codec_options: Optional[dict] = None,
                      workers: Optional[int] = None
                      ) -> Iterator[Tuple[Tuple[slice, ...], np.ndarray]]:
    """Stream the decoded pieces of ``region`` as ``(local_slices, piece)`` pairs.

    ``source`` is archive bytes or a path (paths are read with seeks: only the
    front header and the intersecting tiles are touched).  ``region`` is a
    tuple of slices in full-field coordinates (see :func:`normalize_region`).
    Each yielded ``piece`` is one tile cropped to its intersection with the
    region, and ``local_slices`` place it inside the region-shaped result
    (``out[local_slices] = piece``) — so a large region can be gathered
    straight into a memmap without ever materializing whole.  Tiles outside
    the region are neither read nor decoded.

    Works on every envelope version: v3 grid archives intersect in N
    dimensions, v2 chunked archives are served as a 1-d grid of axis-0 slabs,
    and v1 single-shot archives (which have no index) decode whole and yield
    the region as one piece.
    """
    if isinstance(region, str):
        region = parse_region(region)
    with open_reader(source) as reader:
        index = load_index(reader)
        bounds = normalize_region(region, index.shape)
        yield from _iter_tiles_for_region(reader, index, bounds, model=model,
                                          autoencoder=autoencoder,
                                          codec_options=codec_options,
                                          workers=workers)


def _iter_tiles_for_region(reader, index, bounds, *, model=None,
                           autoencoder=None,
                           codec_options: Optional[dict] = None,
                           workers: Optional[int] = None
                           ) -> Iterator[Tuple[Tuple[slice, ...], np.ndarray]]:
    """The single-parse core of :func:`iter_region_tiles` / :func:`read_region`:
    the caller has already opened ``reader`` and parsed ``index``/``bounds``."""
    if isinstance(index, Archive):
        if any(b0 >= b1 for b0, b1 in bounds):
            return
        # _load_index already read and parsed the whole v1 blob (it has no
        # tile table); decode the parsed archive rather than re-reading it.
        recon = _decompress_parsed(index, model=model, autoencoder=autoencoder,
                                   codec_options=codec_options)
        piece = recon[tuple(slice(b0, b1) for b0, b1 in bounds)]
        yield tuple(slice(0, b1 - b0) for b0, b1 in bounds), piece
        return
    compressor_spec(index.codec)  # unknown codec fails before any decode
    tiles = index.region_tiles(bounds)
    jobs = ((index.check_tile(i, reader.read_at(index.data_start
                                                + index.offsets[i],
                                                index.lengths[i])),
             model, autoencoder, codec_options)
            for i in tiles)
    for i, tile in zip(tiles, parallel_imap(_decompress_chunk_job, jobs,
                                            workers=workers)):
        _check_tile_shape(index, i, tile)
        local, inner = tile_crop(bounds, index.tile_slices(i))
        yield local, tile[inner]


def read_region(source: SourceArg, region: RegionArg, *,
                model: ModelArg = None, autoencoder: Any = None,
                codec_options: Optional[dict] = None,
                workers: Optional[int] = None,
                out: Optional[np.ndarray] = None) -> np.ndarray:
    """Decode only the part of an archive that intersects ``region``.

    The random-access entry point: ``source`` is archive bytes or a path, and
    ``region`` is a tuple of slices (or a string via :func:`parse_region`) in
    full-field coordinates.  Only the tiles intersecting the region are read
    and decoded — for a path source the rest of the file is never touched —
    and each decoded value carries the same per-element error bound as a full
    :func:`decompress`.  Returns an array of exactly the region's shape;
    ``out`` accepts a preallocated region-shaped array (e.g. a
    ``numpy.memmap``) to gather into.  ``workers`` decodes the intersecting
    tiles through a process pool.

    Slices clamp like numpy (so ``start >= stop`` gives an empty axis);
    negative indices and strides raise ``ValueError``.  Integer entries keep
    their axis as length 1.  v2 chunked archives are served through the same
    path (tiles are the axis-0 slabs); v1 single-shot archives decode whole
    and slice (no random-access saving — recompress with ``chunk_shape`` to
    get one).
    """
    if isinstance(region, str):
        region = parse_region(region)
    with open_reader(source) as reader:
        index = load_index(reader)
        bounds = normalize_region(region, index.shape)
        region_shape = tuple(b1 - b0 for b0, b1 in bounds)
        if out is not None and tuple(out.shape) != region_shape:
            raise ValueError(
                f"out has shape {tuple(out.shape)}, region shape is {region_shape}")
        result = out
        for sl, piece in _iter_tiles_for_region(reader, index, bounds,
                                                model=model,
                                                autoencoder=autoencoder,
                                                codec_options=codec_options,
                                                workers=workers):
            if out is not None:
                _store_chunk(out, sl, piece)
                continue
            if result is None:
                result = np.empty(region_shape, dtype=piece.dtype)
            elif piece.dtype.itemsize > result.dtype.itemsize:
                # A later tile could not be restored narrow; widen what is
                # already written (exact float upcast) and continue.
                result = result.astype(piece.dtype)
            result[sl] = piece
    if result is None:
        # Empty region (or empty out): nothing was decoded; shape is exact,
        # dtype falls back to the header's source dtype.
        result = np.empty(region_shape, dtype=np.dtype(index.dtype))
    return result


def _decompress_grid(blob: bytes, *, model=None, autoencoder=None,
                     codec_options: Optional[dict] = None,
                     workers: Optional[int] = None,
                     out: Optional[np.ndarray] = None) -> np.ndarray:
    """Full decode of a version-3 grid archive.

    ``read_region`` with the empty region tuple: ``normalize_region`` pads
    missing trailing axes to the full axis, so ``()`` selects everything (and
    the index is parsed exactly once, inside ``read_region``).
    """
    return read_region(blob, (), model=model, autoencoder=autoencoder,
                       codec_options=codec_options, workers=workers, out=out)


def read_header(source: SourceArg) -> Union[Archive, ChunkedIndex, GridIndex]:
    """Parse an archive's framed header without decompressing the payload.

    ``source`` is archive bytes or a path to an archive file.  Single-shot
    (version-1) blobs return an :class:`Archive` that still carries the raw
    payload bytes; chunked (version-2) blobs return a :class:`ChunkedIndex`
    with the chunk table; grid (version-3) blobs return a :class:`GridIndex`
    with the tile grid.  All three expose ``codec`` / ``shape`` / ``dtype`` /
    ``bound_mode`` / ``bound_value``; this is the inspection entry point
    (``python -m repro info`` uses it).  For a path to a v2/v3 archive only
    the front header is read, however large the file.
    """
    with open_reader(source) as reader:
        return load_index(reader)


def decompress(blob: bytes, *, model: ModelArg = None, autoencoder: Any = None,
               codec_options: Optional[dict] = None, workers: Optional[int] = None,
               out: Optional[np.ndarray] = None) -> np.ndarray:
    """Reconstruct the array from an archive produced by :func:`compress`
    or :func:`compress_chunked`.

    No dims/dtype/codec arguments are needed — the archive header carries them.
    ``model`` (an ``.npz`` path) or ``autoencoder`` (a live instance) are only
    needed for AE-based archives written with ``embed_model=False``; when the
    archive embeds or fingerprints a model, a mismatched ``model``/
    ``autoencoder`` is refused with a clear error.

    ``workers`` decodes the chunks of a chunked archive through a process pool
    (ignored for single-shot archives, which decode in-process).  ``out``
    accepts a preallocated array (e.g. a ``numpy.memmap``) to stream the
    reconstruction into; its dtype must hold every chunk's dtype exactly
    (float64 always qualifies).

    Narrow float inputs (float32/float16) come back in their own dtype
    whenever :func:`compress` could prove the cast preserves the requested
    bound (it tightens the codec's bound by the worst-case cast rounding);
    otherwise the reconstruction is float64, which always honours the bound.
    """
    if isinstance(blob, (bytearray, memoryview)):
        blob = bytes(blob)
    if not isinstance(blob, bytes):
        raise TypeError(f"blob must be bytes, got {type(blob)!r}")
    if not is_archive(blob):
        if blob[:4] == b"RPRC":
            raise ValueError(
                "this is a raw codec payload (no archive header); decode it with the "
                "producing compressor's .decompress(), or re-compress via repro.compress()"
            )
        raise ValueError("corrupt archive: bad magic (not a repro archive)")
    if is_chunked_archive(blob):
        return _decompress_chunked(blob, model=model, autoencoder=autoencoder,
                                   codec_options=codec_options, workers=workers, out=out)
    if is_grid_archive(blob):
        return _decompress_grid(blob, model=model, autoencoder=autoencoder,
                                codec_options=codec_options, workers=workers, out=out)
    recon = _decompress_archive(blob, model=model, autoencoder=autoencoder,
                                codec_options=codec_options)
    if out is not None:
        if tuple(out.shape) != tuple(recon.shape):
            raise ValueError(
                f"out has shape {tuple(out.shape)}, archive says {tuple(recon.shape)}")
        _store_chunk(out, Ellipsis, recon)
        return out
    return recon


def _decompress_archive(blob: bytes, *, model=None, autoencoder=None,
                        codec_options: Optional[dict] = None) -> np.ndarray:
    """Decode one single-shot (version-1) archive blob."""
    return _decompress_parsed(Archive.from_bytes(blob), model=model,
                              autoencoder=autoencoder,
                              codec_options=codec_options)


def _decompress_parsed(archive: Archive, *, model=None, autoencoder=None,
                       codec_options: Optional[dict] = None) -> np.ndarray:
    """Decode an already-parsed single-shot :class:`Archive`."""
    spec = compressor_spec(archive.codec)

    opts = dict(codec_options or {})
    if model is not None or autoencoder is not None:
        if not spec.accepts_model:
            raise ValueError(f"codec {spec.name!r} does not take a model")
        if model is not None:
            opts["model"] = model
        if autoencoder is not None:
            opts["autoencoder"] = autoencoder
    comp = spec.restore(archive.meta, archive.extra, **opts)

    recon = comp.decompress(archive.payload)
    if archive.bound_mode == MODE_PTW_REL:
        recon = _ptw_inverse(recon, archive)
    if archive.shape == () and tuple(recon.shape) == (1,):
        recon = recon.reshape(())  # compress feeds codecs 0-d inputs as shape (1,)
    if tuple(recon.shape) != archive.shape:
        raise ValueError(
            f"corrupt archive: payload decoded to shape {tuple(recon.shape)}, "
            f"header says {archive.shape}"
        )
    facade = archive.meta.get("facade", {})
    out_dtype = facade.get("output_dtype") if isinstance(facade, dict) else None
    if out_dtype is not None:
        # Recorded only when compress tightened the codec's bound by the
        # worst-case cast rounding, so this cast cannot break the bound.
        recon = recon.astype(np.dtype(out_dtype), copy=False)
    return recon


def roundtrip(data: ArrayLike, codec: CodecArg = "sz21",
              bound: BoundArg = 1e-3, *,
              codec_options: Optional[dict] = None,
              embed_model: bool = True) -> CompressorResult:
    """Compress + decompress through the archive layer and collect metrics."""
    data = np.asarray(data)
    bound = as_bound(bound)
    blob = compress(data, codec=codec, bound=bound, codec_options=codec_options,
                    embed_model=embed_model)
    recon = decompress(blob)
    name = codec if isinstance(codec, str) else name_for_compressor(codec)
    return CompressorResult(
        compressor=compressor_spec(name).name,  # canonical registry id
        rel_error_bound=bound.value,
        compressed_bytes=len(blob),
        original_bytes=int(data.size * data.dtype.itemsize),
        psnr=psnr(data, recon),
        max_abs_error=max_abs_error(data, recon),
        reconstructed=recon,
        n_points=int(data.size),
        original_dtype=str(data.dtype),
    )


__all__ = ["compress", "compress_chunked", "decode_tile", "decompress",
           "iter_decompressed_chunks", "iter_region_tiles", "load_index",
           "normalize_region", "open_reader", "parse_region", "read_header",
           "read_region", "roundtrip", "tile_crop", "DEFAULT_CHUNK_ELEMS"]

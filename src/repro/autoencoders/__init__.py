"""Autoencoder zoo.

The AE-SZ predictor is a blockwise convolutional Sliced-Wasserstein
Autoencoder (SWAE).  For the model comparison of paper Table I the package
also provides a vanilla AE, VAE, beta-VAE, DIP-VAE, Info-VAE, LogCosh-VAE and
WAE — all sharing the same convolutional encoder/decoder (Fig. 3/4) and
differing only in their latent regularizer / reconstruction loss — plus the
two comparator architectures AE-A (fully connected, Liu et al.) and AE-B
(residual convolutional, Glaws et al.).
"""

from repro.autoencoders.config import AutoencoderConfig
from repro.autoencoders.base import BlockAutoencoder
from repro.autoencoders.conv_ae import ConvAutoencoder, build_encoder, build_decoder
from repro.autoencoders.vanilla import VanillaAutoencoder
from repro.autoencoders.swae import SlicedWassersteinAutoencoder
from repro.autoencoders.wae import WassersteinAutoencoder
from repro.autoencoders.vae import VariationalAutoencoder, BetaVAE, LogCoshVAE
from repro.autoencoders.dip_vae import DIPVAE
from repro.autoencoders.info_vae import InfoVAE
from repro.autoencoders.ae_a import FullyConnectedAutoencoder
from repro.autoencoders.ae_b import ResidualConvAutoencoder
from repro.autoencoders.factory import AE_REGISTRY, create_autoencoder

__all__ = [
    "AutoencoderConfig",
    "BlockAutoencoder",
    "ConvAutoencoder",
    "build_encoder",
    "build_decoder",
    "VanillaAutoencoder",
    "SlicedWassersteinAutoencoder",
    "WassersteinAutoencoder",
    "VariationalAutoencoder",
    "BetaVAE",
    "LogCoshVAE",
    "DIPVAE",
    "InfoVAE",
    "FullyConnectedAutoencoder",
    "ResidualConvAutoencoder",
    "AE_REGISTRY",
    "create_autoencoder",
]

"""AE-A: the fully-connected scientific-data autoencoder of Liu et al. (2021).

The original model flattens the data into 1-D segments and uses three
fully-connected layers in the encoder (and mirrored decoder), each shrinking
the layer size by 8x, for an overall 512x reduction before any entropy coding.
This reproduction keeps the layer structure and the per-layer reduction factor
configurable (so the scaled-down CPU defaults remain faithful in shape), and is
wrapped by :class:`repro.compressors.ae_a.AEACompressor` for the error-bounded
comparison in the paper's evaluation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autoencoders.base import BlockAutoencoder
from repro.autoencoders.config import AutoencoderConfig
from repro.nn.layers.activations import LeakyReLU, Tanh
from repro.nn.layers.dense import Dense
from repro.nn.module import Module
from repro.nn.network import Sequential
from repro.utils.rng import spawn_rngs


class _FlattenChannel(Module):
    """(N, 1, L) -> (N, L) adapter so the dense stack matches the block interface."""

    def forward(self, x: np.ndarray, training: Optional[bool] = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return np.asarray(grad).reshape(self._shape)


class _UnflattenChannel(Module):
    """(N, L) -> (N, 1, L) adapter at the decoder output."""

    def __init__(self, length: int):
        self.length = int(length)

    def forward(self, x: np.ndarray, training: Optional[bool] = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return x.reshape(x.shape[0], 1, self.length)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = np.asarray(grad)
        return grad.reshape(grad.shape[0], self.length)


class FullyConnectedAutoencoder(BlockAutoencoder):
    """Three fully-connected layers per side, each reducing/expanding by ``reduction``."""

    def __init__(self, segment_length: int = 512, reduction: int = 8, n_layers: int = 3,
                 seed: int = 0):
        if segment_length <= 0:
            raise ValueError("segment_length must be positive")
        if reduction <= 1:
            raise ValueError("reduction must be > 1")
        if n_layers <= 0:
            raise ValueError("n_layers must be positive")
        if segment_length % (reduction**n_layers) != 0:
            raise ValueError(
                f"segment_length {segment_length} must be divisible by "
                f"reduction^{n_layers} = {reduction**n_layers}"
            )
        latent = segment_length // (reduction**n_layers)
        config = AutoencoderConfig(ndim=1, block_size=segment_length, latent_size=latent,
                                   channels=(1,) * n_layers, seed=seed)
        rngs = spawn_rngs(seed, 2 * n_layers)
        sizes = [segment_length // (reduction**i) for i in range(n_layers + 1)]

        enc_layers: list = [_FlattenChannel()]
        for i in range(n_layers):
            enc_layers.append(Dense(sizes[i], sizes[i + 1], rng=rngs[i]))
            if i + 1 < n_layers:
                enc_layers.append(LeakyReLU(0.2))
        encoder = Sequential(*enc_layers)

        dec_layers: list = []
        for i in range(n_layers, 0, -1):
            dec_layers.append(Dense(sizes[i], sizes[i - 1], rng=rngs[n_layers + i - 1]))
            if i > 1:
                dec_layers.append(LeakyReLU(0.2))
        dec_layers.append(Tanh())
        dec_layers.append(_UnflattenChannel(segment_length))
        decoder = Sequential(*dec_layers)

        super().__init__(encoder, decoder, config)
        self.segment_length = int(segment_length)
        self.reduction = int(reduction)
        self.n_layers = int(n_layers)

    @property
    def nominal_compression_ratio(self) -> float:
        """The fixed reduction ratio of the latent representation (512x in the paper)."""
        return float(self.reduction**self.n_layers)

"""AE-B: the residual convolutional turbulence autoencoder of Glaws et al. (2020).

The original network compresses 3D turbulence blocks at a fixed 64:1 ratio
using 12 residual blocks and 3 strided "compression" layers per side; it is not
error bounded.  This reproduction keeps the structure (residual blocks +
stride-2 compression stages, mirrored decoder) with configurable depth/width so
it trains on CPU, and reproduces the two properties the paper relies on:
a fixed compression ratio and unbounded pointwise error.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autoencoders.base import BlockAutoencoder
from repro.autoencoders.config import AutoencoderConfig
from repro.nn.layers.activations import ReLU, Tanh
from repro.nn.layers.conv import Conv2d, Conv3d
from repro.nn.layers.conv_transpose import ConvTranspose2d, ConvTranspose3d
from repro.nn.module import Module
from repro.nn.network import Sequential
from repro.utils.rng import spawn_rngs


class ResidualBlock(Module):
    """Conv -> ReLU -> Conv with an identity skip connection."""

    def __init__(self, channels: int, ndim: int, rng=None):
        conv_cls = Conv3d if ndim == 3 else Conv2d
        self.conv1 = conv_cls(channels, channels, 3, stride=1, padding=1, rng=rng)
        self.relu = ReLU()
        self.conv2 = conv_cls(channels, channels, 3, stride=1, padding=1, rng=rng)

    def forward(self, x: np.ndarray, training: Optional[bool] = None) -> np.ndarray:
        out = self.conv1.forward(x, training=training)
        out = self.relu.forward(out, training=training)
        out = self.conv2.forward(out, training=training)
        return x + out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g = self.conv2.backward(grad)
        g = self.relu.backward(g)
        g = self.conv1.backward(g)
        return grad + g


class ResidualConvAutoencoder(BlockAutoencoder):
    """Residual convolutional AE with a fixed compression ratio (AE-B comparator).

    The latent is a downsampled feature map (not a flat vector); the fixed
    compression ratio equals ``block_elements / latent_elements`` where the
    latent keeps ``latent_channels`` channels at ``1/2**n_compression`` of the
    spatial resolution.
    """

    def __init__(self, block_size: int = 16, ndim: int = 3, channels: int = 8,
                 latent_channels: int = 1, n_residual: int = 4, n_compression: int = 2,
                 seed: int = 0):
        if block_size % (2**n_compression) != 0:
            raise ValueError(
                f"block_size {block_size} must be divisible by 2^{n_compression}"
            )
        config = AutoencoderConfig(ndim=ndim, block_size=block_size,
                                   latent_size=latent_channels *
                                   (block_size // (2**n_compression)) ** ndim,
                                   channels=(channels,) * n_compression, seed=seed)
        conv_cls = Conv3d if ndim == 3 else Conv2d
        deconv_cls = ConvTranspose3d if ndim == 3 else ConvTranspose2d
        rngs = spawn_rngs(seed, 4 * n_compression + 2 * n_residual + 4)
        r = iter(rngs)

        enc_layers: list = [conv_cls(1, channels, 3, stride=1, padding=1, rng=next(r))]
        for _ in range(max(1, n_residual // 2)):
            enc_layers.append(ResidualBlock(channels, ndim, rng=next(r)))
        for i in range(n_compression):
            out_ch = latent_channels if i == n_compression - 1 else channels
            enc_layers.append(conv_cls(channels if i == 0 or True else channels, out_ch, 3,
                                       stride=2, padding=1, rng=next(r)))
            if i < n_compression - 1:
                enc_layers.append(ReLU())
        encoder = Sequential(*enc_layers)

        dec_layers: list = []
        for i in range(n_compression):
            in_ch = latent_channels if i == 0 else channels
            dec_layers.append(deconv_cls(in_ch, channels, 3, stride=2, padding=1,
                                         output_padding=1, rng=next(r)))
            dec_layers.append(ReLU())
        for _ in range(max(1, n_residual // 2)):
            dec_layers.append(ResidualBlock(channels, ndim, rng=next(r)))
        dec_layers.append(conv_cls(channels, 1, 3, stride=1, padding=1, rng=next(r)))
        dec_layers.append(Tanh())
        decoder = Sequential(*dec_layers)

        super().__init__(encoder, decoder, config)
        self.latent_channels = int(latent_channels)
        self.n_compression = int(n_compression)
        self.n_residual = int(n_residual)
        self.conv_channels = int(channels)

    # The latent is a feature map; flatten it for storage.
    def encode(self, blocks: np.ndarray) -> np.ndarray:
        x = self.normalize(self._with_channel(blocks))
        feat = self.encoder.forward(x, training=False)
        self._latent_shape = feat.shape[1:]
        return feat.reshape(feat.shape[0], -1)

    def decode(self, latents: np.ndarray) -> np.ndarray:
        latents = np.asarray(latents, dtype=np.float64)
        spatial = self.config.block_size // (2**self.n_compression)
        shape = (latents.shape[0], self.latent_channels) + (spatial,) * self.config.ndim
        out = self.decoder.forward(latents.reshape(shape), training=False)
        return self.denormalize(out[:, 0, ...])

    def reconstruct(self, blocks: np.ndarray) -> np.ndarray:
        return self.decode(self.encode(blocks))

    predict_blocks = reconstruct

    def train_step(self, batch: np.ndarray) -> float:
        x = self.normalize(self._with_channel(batch))
        latent = self.encoder.forward(x, training=True)
        recon = self.decoder.forward(latent, training=True)
        rec_loss, grad_recon = self.reconstruction_loss(recon, x)
        grad_latent = self.decoder.backward(grad_recon)
        self.encoder.backward(grad_latent)
        return float(rec_loss)

    @property
    def fixed_compression_ratio(self) -> float:
        """Input elements per latent element (64 in the original AE-B)."""
        return self.config.block_elements / float(self.config.latent_size)

"""Base class shared by every autoencoder in the zoo."""

from __future__ import annotations

import json
import os
from typing import Optional, Tuple, Union

import numpy as np

from repro.autoencoders.config import AutoencoderConfig
from repro.nn.losses import Loss, MSELoss
from repro.nn.module import Module
from repro.nn.serialization import load_state_dict, state_dict
from repro.utils.rng import as_rng

PathLike = Union[str, os.PathLike]


class BlockAutoencoder(Module):
    """Encoder/decoder pair operating on fixed-size data blocks.

    Input blocks are linearly normalized to ``[-1, 1]`` using the global
    min/max of the training data (paper Section IV-B) before entering the
    network; predictions are denormalized on the way out.

    Sub-classes customize training by overriding :meth:`latent_regularizer`
    (returning a loss and its gradient with respect to the latent batch)
    and/or :attr:`reconstruction_loss`.
    """

    def __init__(self, encoder: Module, decoder: Module, config: AutoencoderConfig,
                 reconstruction_loss: Optional[Loss] = None):
        self.encoder = encoder
        self.decoder = decoder
        self.config = config
        self.reconstruction_loss: Loss = reconstruction_loss or MSELoss()
        self.norm_min: float = -1.0
        self.norm_max: float = 1.0
        self._rng = as_rng(config.seed)

    # ---------------------------------------------------------- normalization
    def fit_normalization(self, data: np.ndarray) -> None:
        """Record the global min/max used for [-1, 1] normalization."""
        data = np.asarray(data, dtype=np.float64)
        self.norm_min = float(data.min())
        self.norm_max = float(data.max())
        if self.norm_max == self.norm_min:
            self.norm_max = self.norm_min + 1.0

    def set_normalization(self, vmin: float, vmax: float) -> None:
        if vmax <= vmin:
            raise ValueError("vmax must be > vmin")
        self.norm_min, self.norm_max = float(vmin), float(vmax)

    def normalize(self, values: np.ndarray) -> np.ndarray:
        scale = self.norm_max - self.norm_min
        return 2.0 * (np.asarray(values, dtype=np.float64) - self.norm_min) / scale - 1.0

    def denormalize(self, values: np.ndarray) -> np.ndarray:
        scale = self.norm_max - self.norm_min
        return (np.asarray(values, dtype=np.float64) + 1.0) * 0.5 * scale + self.norm_min

    # ------------------------------------------------------------ shape utils
    def _with_channel(self, blocks: np.ndarray) -> np.ndarray:
        """Accept (N, *block) or (N, 1, *block) and return (N, 1, *block)."""
        blocks = np.asarray(blocks, dtype=np.float64)
        expected_nd = self.config.ndim + 1
        if blocks.ndim == expected_nd:
            blocks = blocks[:, None, ...]
        elif not (blocks.ndim == expected_nd + 1 and blocks.shape[1] == 1):
            raise ValueError(
                f"expected blocks of shape (N, {self.config.block_shape}) or (N, 1, ...), "
                f"got {blocks.shape}"
            )
        if tuple(blocks.shape[2:]) != self.config.block_shape:
            raise ValueError(
                f"block spatial shape {tuple(blocks.shape[2:])} does not match the "
                f"configured block shape {self.config.block_shape}"
            )
        return blocks

    # ----------------------------------------------------------------- encode
    def encode(self, blocks: np.ndarray) -> np.ndarray:
        """Encode raw blocks into latent vectors of shape ``(N, latent_size)``."""
        x = self.normalize(self._with_channel(blocks))
        return self.encoder.forward(x, training=False)

    def decode(self, latents: np.ndarray) -> np.ndarray:
        """Decode latent vectors back into raw-valued blocks ``(N, *block_shape)``."""
        latents = np.asarray(latents, dtype=np.float64)
        out = self.decoder.forward(latents, training=False)
        return self.denormalize(out[:, 0, ...])

    def reconstruct(self, blocks: np.ndarray) -> np.ndarray:
        """``decode(encode(blocks))`` — the AE prediction used by AE-SZ."""
        return self.decode(self.encode(blocks))

    # alias used by the AE-SZ compressor
    predict_blocks = reconstruct

    # --------------------------------------------------------------- training
    def latent_regularizer(self, latent: np.ndarray) -> Tuple[float, np.ndarray]:
        """Latent-space regularization term; default: none."""
        return 0.0, np.zeros_like(latent)

    def train_step(self, batch: np.ndarray) -> float:
        """One forward/backward pass on a raw block batch; gradients accumulate."""
        x = self.normalize(self._with_channel(batch))
        latent = self.encoder.forward(x, training=True)
        recon = self.decoder.forward(latent, training=True)
        rec_loss, grad_recon = self.reconstruction_loss(recon, x)
        reg_loss, grad_latent_reg = self.latent_regularizer(latent)
        grad_latent = self.decoder.backward(grad_recon)
        self.encoder.backward(grad_latent + grad_latent_reg)
        return float(rec_loss + reg_loss)

    # ------------------------------------------------------------ persistence
    def save(self, path: PathLike) -> None:
        """Serialize weights + normalization to an ``.npz`` file."""
        payload = {f"param::{k}": v for k, v in state_dict(self).items()}
        payload["norm"] = np.array([self.norm_min, self.norm_max])
        np.savez_compressed(path, **payload)

    def load(self, path: PathLike) -> None:
        """Load weights + normalization previously written by :meth:`save`."""
        with np.load(path) as archive:
            state = {
                key[len("param::"):]: archive[key]
                for key in archive.files
                if key.startswith("param::")
            }
            norm = archive["norm"]
        load_state_dict(self, state)
        self.norm_min, self.norm_max = float(norm[0]), float(norm[1])

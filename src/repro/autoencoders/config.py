"""Autoencoder architecture configuration (paper Table VI)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np


@dataclass
class AutoencoderConfig:
    """Architecture hyper-parameters of the blockwise convolutional AE.

    Attributes
    ----------
    ndim:
        Spatial dimensionality of the data blocks (2 or 3; 1 is supported for
        the AE-A comparator path).
    block_size:
        Edge length of the (cubic/square) input block, e.g. 32 for 32x32 or 8
        for 8x8x8 (paper Section IV-D).
    latent_size:
        Length of the latent vector per block (paper Table VI).
    channels:
        Output channels of each convolutional block in the encoder; the decoder
        mirrors them.  The paper uses [32, 64, 128, 256] (2D) / [32, 64, 128]
        (3D); the defaults here are scaled down for CPU training but any width
        can be configured.
    kernel_size:
        Convolution kernel edge (3 in the paper).
    seed:
        Weight-initialization seed.
    """

    ndim: int = 2
    block_size: int = 32
    latent_size: int = 16
    channels: Tuple[int, ...] = (8, 16, 32, 64)
    kernel_size: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.ndim not in (1, 2, 3):
            raise ValueError(f"ndim must be 1, 2 or 3, got {self.ndim}")
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.latent_size <= 0:
            raise ValueError("latent_size must be positive")
        self.channels = tuple(int(c) for c in self.channels)
        if not self.channels or any(c <= 0 for c in self.channels):
            raise ValueError("channels must be a non-empty tuple of positive ints")
        n_blocks = len(self.channels)
        if self.block_size % (2**n_blocks) != 0 and self.block_size // (2**n_blocks) == 0:
            raise ValueError(
                f"block_size {self.block_size} too small for {n_blocks} stride-2 stages"
            )

    @property
    def block_shape(self) -> Tuple[int, ...]:
        return (self.block_size,) * self.ndim

    @property
    def block_elements(self) -> int:
        return int(self.block_size**self.ndim)

    @property
    def reduced_spatial(self) -> Tuple[int, ...]:
        """Spatial extent after all stride-2 stages of the encoder."""
        size = self.block_size
        for _ in self.channels:
            size = max(1, (size + 1) // 2)
        return (size,) * self.ndim

    @property
    def bottleneck_features(self) -> int:
        """Flattened feature count feeding the latent fully-connected layer."""
        return int(self.channels[-1] * np.prod(self.reduced_spatial))

    @property
    def latent_ratio(self) -> float:
        """Input elements per latent element (the paper's "latent ratio")."""
        return self.block_elements / self.latent_size

"""The blockwise convolutional encoder/decoder of AE-SZ (paper Fig. 3 and 4).

Encoder: repeated [Conv(stride 1) -> Conv(stride 2) -> GDN] blocks followed by
a fully-connected layer producing the latent vector.  Decoder: the mirror
image with transposed convolutions and iGDN, plus a final convolution + Tanh
output stage.  The same builder covers 2D and 3D by switching the convolution
dimensionality.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.autoencoders.base import BlockAutoencoder
from repro.autoencoders.config import AutoencoderConfig
from repro.nn.layers.activations import Tanh
from repro.nn.layers.conv import Conv2d, Conv3d, ConvNd
from repro.nn.layers.conv_transpose import ConvTranspose2d, ConvTranspose3d, ConvTransposeNd
from repro.nn.layers.dense import Dense
from repro.nn.layers.gdn import GDN, IGDN
from repro.nn.layers.reshape import Flatten, Reshape
from repro.nn.network import Sequential
from repro.utils.rng import as_rng, spawn_rngs


def _conv_cls(ndim: int):
    if ndim == 2:
        return Conv2d, ConvTranspose2d
    if ndim == 3:
        return Conv3d, ConvTranspose3d
    # 1D support goes through the generic classes.
    conv = lambda *a, **k: ConvNd(1, *a, **k)      # noqa: E731
    deconv = lambda *a, **k: ConvTransposeNd(1, *a, **k)  # noqa: E731
    return conv, deconv


def _check_block_size(config: AutoencoderConfig) -> None:
    if config.block_size % (2 ** len(config.channels)) != 0:
        raise ValueError(
            f"block_size {config.block_size} must be divisible by 2^{len(config.channels)} "
            f"for {len(config.channels)} stride-2 stages"
        )


def build_encoder(config: AutoencoderConfig) -> Sequential:
    """Encoder network: conv blocks then an FC layer to the latent vector."""
    _check_block_size(config)
    conv_cls, _ = _conv_cls(config.ndim)
    rngs = spawn_rngs(config.seed, 2 * len(config.channels) + 1)
    layers = []
    in_ch = 1
    k = config.kernel_size
    for i, out_ch in enumerate(config.channels):
        layers.append(conv_cls(in_ch, out_ch, k, stride=1, padding=k // 2, rng=rngs[2 * i]))
        layers.append(conv_cls(out_ch, out_ch, k, stride=2, padding=k // 2, rng=rngs[2 * i + 1]))
        layers.append(GDN(out_ch))
        in_ch = out_ch
    layers.append(Flatten())
    layers.append(Dense(config.bottleneck_features, config.latent_size, rng=rngs[-1]))
    return Sequential(*layers)


def build_decoder(config: AutoencoderConfig) -> Sequential:
    """Decoder network: FC, reshape, mirrored deconv blocks, final conv + Tanh."""
    _check_block_size(config)
    conv_cls, deconv_cls = _conv_cls(config.ndim)
    rngs = spawn_rngs(config.seed + 1, 2 * len(config.channels) + 3)
    k = config.kernel_size
    layers = [
        Dense(config.latent_size, config.bottleneck_features, rng=rngs[0]),
        Reshape((config.channels[-1],) + config.reduced_spatial),
    ]
    reversed_channels = list(reversed(config.channels))
    for i, in_ch in enumerate(reversed_channels):
        out_ch = reversed_channels[i + 1] if i + 1 < len(reversed_channels) else reversed_channels[-1]
        layers.append(deconv_cls(in_ch, in_ch, k, stride=1, padding=k // 2, rng=rngs[2 * i + 1]))
        layers.append(
            deconv_cls(in_ch, out_ch, k, stride=2, padding=k // 2, output_padding=1,
                       rng=rngs[2 * i + 2])
        )
        layers.append(IGDN(out_ch))
    layers.append(conv_cls(reversed_channels[-1], 1, k, stride=1, padding=k // 2, rng=rngs[-1]))
    layers.append(Tanh())
    return Sequential(*layers)


class ConvAutoencoder(BlockAutoencoder):
    """The AE-SZ convolutional autoencoder (no latent regularization by itself)."""

    def __init__(self, config: AutoencoderConfig, reconstruction_loss=None):
        encoder = build_encoder(config)
        decoder = build_decoder(config)
        super().__init__(encoder, decoder, config, reconstruction_loss)

"""DIP-VAE comparator (Kumar et al., 2018)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.autoencoders.config import AutoencoderConfig
from repro.autoencoders.divergences import dip_covariance_penalty
from repro.autoencoders.vae import VariationalAutoencoder


class DIPVAE(VariationalAutoencoder):
    """VAE with the DIP-VAE-I disentanglement penalty on the inferred means."""

    def __init__(self, config: AutoencoderConfig, beta: float = 1.0,
                 lambda_offdiag: float = 5.0, lambda_diag: float = 5.0):
        super().__init__(config, beta=beta)
        self.lambda_offdiag = float(lambda_offdiag)
        self.lambda_diag = float(lambda_diag)

    def extra_latent_penalty(self, mu: np.ndarray, logvar: np.ndarray, z: np.ndarray
                             ) -> Tuple[float, np.ndarray, np.ndarray, np.ndarray]:
        loss, grad_mu = dip_covariance_penalty(mu, self.lambda_offdiag, self.lambda_diag)
        scale = self.kl_scale
        return scale * loss, scale * grad_mu, np.zeros_like(logvar), np.zeros_like(z)

"""Latent-space regularizers and their analytic gradients.

Each function returns ``(loss_value, grad_wrt_latent_batch)`` so autoencoder
``train_step`` implementations can inject the gradient directly at the latent
layer, alongside the gradient coming back from the decoder.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng


def sliced_wasserstein_distance(
    latent: np.ndarray,
    prior_samples: np.ndarray,
    n_projections: int = 32,
    rng: SeedLike = None,
) -> Tuple[float, np.ndarray]:
    """Squared sliced-Wasserstein distance between a latent batch and prior samples.

    Implements the regularization term of Eq. (1) in the paper (Kolouri et al.,
    2018): project both sets onto ``n_projections`` random directions on the
    unit sphere, sort both projections, and average the squared differences of
    the matched order statistics.  The gradient with respect to the latent
    batch follows directly from the matched pairs.
    """
    latent = np.asarray(latent, dtype=np.float64)
    prior_samples = np.asarray(prior_samples, dtype=np.float64)
    if latent.shape != prior_samples.shape:
        raise ValueError("latent and prior sample batches must have the same shape")
    m, d = latent.shape
    rng = as_rng(rng)
    theta = rng.normal(size=(n_projections, d))
    theta /= np.linalg.norm(theta, axis=1, keepdims=True) + 1e-12

    proj_z = latent @ theta.T          # (M, L)
    proj_p = prior_samples @ theta.T   # (M, L)

    order_z = np.argsort(proj_z, axis=0)
    sorted_p = np.sort(proj_p, axis=0)

    sorted_z = np.take_along_axis(proj_z, order_z, axis=0)
    diff = sorted_z - sorted_p          # (M, L)
    loss = float(np.mean(diff**2))

    # d loss / d sorted_z = 2 * diff / (M * L); scatter back to original order.
    grad_sorted = 2.0 * diff / diff.size
    grad_proj = np.zeros_like(proj_z)
    np.put_along_axis(grad_proj, order_z, grad_sorted, axis=0)
    grad_latent = grad_proj @ theta     # (M, d)
    return loss, grad_latent


def mmd_rbf(
    latent: np.ndarray,
    prior_samples: np.ndarray,
    bandwidth: float = None,
) -> Tuple[float, np.ndarray]:
    """Biased RBF-kernel MMD^2 between latent batch and prior samples, with gradient.

    Used by the WAE-MMD and Info-VAE comparators.  The default bandwidth is the
    median heuristic ``2 * d`` (for a standard-normal prior of dimension d),
    following the WAE reference implementation.
    """
    z = np.asarray(latent, dtype=np.float64)
    p = np.asarray(prior_samples, dtype=np.float64)
    if z.shape != p.shape:
        raise ValueError("latent and prior sample batches must have the same shape")
    m, d = z.shape
    if bandwidth is None:
        bandwidth = 2.0 * d
    gamma = 1.0 / (2.0 * bandwidth)

    def sq_dists(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.sum(a**2, axis=1)[:, None] + np.sum(b**2, axis=1)[None, :] - 2.0 * a @ b.T

    k_zz = np.exp(-gamma * sq_dists(z, z))
    k_pp = np.exp(-gamma * sq_dists(p, p))
    k_zp = np.exp(-gamma * sq_dists(z, p))

    loss = float(k_zz.mean() + k_pp.mean() - 2.0 * k_zp.mean())

    # Gradient wrt z.
    # d/dz_i of mean(k_zz): sum_j k_zz[i,j] * (-2 gamma)(z_i - z_j) * 2 / m^2
    diff_zz = z[:, None, :] - z[None, :, :]
    grad_zz = (-2.0 * gamma) * np.einsum("ij,ijd->id", k_zz, diff_zz) * (2.0 / (m * m))
    diff_zp = z[:, None, :] - p[None, :, :]
    grad_zp = (-2.0 * gamma) * np.einsum("ij,ijd->id", k_zp, diff_zp) * (1.0 / (m * m))
    grad = grad_zz - 2.0 * grad_zp
    return loss, grad


def kl_standard_normal(mu: np.ndarray, logvar: np.ndarray) -> Tuple[float, np.ndarray, np.ndarray]:
    """KL divergence of N(mu, exp(logvar)) from N(0, I), averaged over the batch.

    Returns ``(loss, grad_mu, grad_logvar)``.
    """
    mu = np.asarray(mu, dtype=np.float64)
    logvar = np.asarray(logvar, dtype=np.float64)
    if mu.shape != logvar.shape:
        raise ValueError("mu and logvar must have the same shape")
    m = mu.shape[0]
    kl = 0.5 * np.sum(np.exp(logvar) + mu**2 - 1.0 - logvar) / m
    grad_mu = mu / m
    grad_logvar = 0.5 * (np.exp(logvar) - 1.0) / m
    return float(kl), grad_mu, grad_logvar


def dip_covariance_penalty(mu: np.ndarray, lambda_od: float = 10.0,
                           lambda_d: float = 10.0) -> Tuple[float, np.ndarray]:
    """DIP-VAE-I penalty on the covariance of the inferred means, with gradient.

    Pushes ``Cov(mu)`` towards the identity: squared off-diagonals weighted by
    ``lambda_od`` and squared (diagonal - 1) weighted by ``lambda_d``.
    """
    mu = np.asarray(mu, dtype=np.float64)
    m, d = mu.shape
    centered = mu - mu.mean(axis=0, keepdims=True)
    cov = centered.T @ centered / max(1, m - 1)
    off = cov - np.diag(np.diag(cov))
    diag = np.diag(cov)
    loss = float(lambda_od * np.sum(off**2) + lambda_d * np.sum((diag - 1.0) ** 2))

    # dL/dcov
    dcov = 2.0 * lambda_od * off + np.diag(2.0 * lambda_d * (diag - 1.0))
    # dcov/dmu: cov = centered^T centered / (m-1)  ->  dL/dcentered = centered @ (dcov + dcov^T)/(m-1)
    grad_centered = centered @ (dcov + dcov.T) / max(1, m - 1)
    grad_mu = grad_centered - grad_centered.mean(axis=0, keepdims=True)
    return loss, grad_mu

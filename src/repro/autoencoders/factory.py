"""Autoencoder registry (the eight model types compared in paper Table I)."""

from __future__ import annotations

from typing import Callable, Dict

from repro.autoencoders.config import AutoencoderConfig
from repro.autoencoders.base import BlockAutoencoder
from repro.autoencoders.dip_vae import DIPVAE
from repro.autoencoders.info_vae import InfoVAE
from repro.autoencoders.swae import SlicedWassersteinAutoencoder
from repro.autoencoders.vae import BetaVAE, LogCoshVAE, VariationalAutoencoder
from repro.autoencoders.vanilla import VanillaAutoencoder
from repro.autoencoders.wae import WassersteinAutoencoder

AE_REGISTRY: Dict[str, Callable[[AutoencoderConfig], BlockAutoencoder]] = {
    "ae": VanillaAutoencoder,
    "vae": VariationalAutoencoder,
    "beta-vae": BetaVAE,
    "dip-vae": DIPVAE,
    "info-vae": InfoVAE,
    "logcosh-vae": LogCoshVAE,
    "wae": WassersteinAutoencoder,
    "swae": SlicedWassersteinAutoencoder,
}


def create_autoencoder(kind: str, config: AutoencoderConfig, **kwargs) -> BlockAutoencoder:
    """Instantiate an autoencoder by registry name (case-insensitive)."""
    key = kind.lower()
    if key not in AE_REGISTRY:
        raise KeyError(f"unknown autoencoder type {kind!r}; choices: {sorted(AE_REGISTRY)}")
    return AE_REGISTRY[key](config, **kwargs)

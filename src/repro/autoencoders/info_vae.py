"""Info-VAE comparator (Zhao et al., 2018): VAE with an MMD term on sampled latents."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.autoencoders.config import AutoencoderConfig
from repro.autoencoders.divergences import mmd_rbf
from repro.autoencoders.vae import VariationalAutoencoder


class InfoVAE(VariationalAutoencoder):
    """VAE variant maximizing mutual information via a down-weighted KL + MMD penalty."""

    def __init__(self, config: AutoencoderConfig, beta: float = 0.1, mmd_weight: float = 10.0):
        super().__init__(config, beta=beta)
        self.mmd_weight = float(mmd_weight)

    def extra_latent_penalty(self, mu: np.ndarray, logvar: np.ndarray, z: np.ndarray
                             ) -> Tuple[float, np.ndarray, np.ndarray, np.ndarray]:
        prior = self._rng.normal(size=z.shape)
        loss, grad_z = mmd_rbf(z, prior)
        w = self.mmd_weight * self.kl_scale
        return w * loss, np.zeros_like(mu), np.zeros_like(logvar), w * grad_z

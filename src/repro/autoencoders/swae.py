"""Sliced-Wasserstein Autoencoder — the predictor model chosen by AE-SZ.

The loss (paper Eq. 1) combines the reconstruction error with the
sliced-Wasserstein distance between the encoded batch and samples from a
standard-normal prior.  Encoding and decoding are deterministic, which is one
of the reasons the paper prefers SWAE over VAEs for compression (Takeaway 1).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.autoencoders.config import AutoencoderConfig
from repro.autoencoders.conv_ae import ConvAutoencoder
from repro.autoencoders.divergences import sliced_wasserstein_distance


class SlicedWassersteinAutoencoder(ConvAutoencoder):
    """SWAE (Kolouri et al., 2018) on the AE-SZ convolutional backbone."""

    def __init__(self, config: AutoencoderConfig, regularization_weight: float = 1.0,
                 n_projections: int = 32):
        super().__init__(config)
        if regularization_weight < 0:
            raise ValueError("regularization_weight must be non-negative")
        if n_projections <= 0:
            raise ValueError("n_projections must be positive")
        self.regularization_weight = float(regularization_weight)
        self.n_projections = int(n_projections)

    def latent_regularizer(self, latent: np.ndarray) -> Tuple[float, np.ndarray]:
        prior = self._rng.normal(size=latent.shape)
        loss, grad = sliced_wasserstein_distance(
            latent, prior, n_projections=self.n_projections, rng=self._rng
        )
        w = self.regularization_weight
        return w * loss, w * grad

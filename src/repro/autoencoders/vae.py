"""Variational autoencoders (VAE, beta-VAE, LogCosh-VAE comparators of Table I).

The encoder trunk is the same convolutional stack as AE-SZ's network; two
fully-connected heads produce the posterior mean and log-variance.  During
training the latent is sampled with the reparameterization trick; for
compression/prediction the deterministic mean is used (the paper points out
that the sampling makes VAEs unstable as compressors — reproducible here by
comparing ``encode`` against ``sample_latent``).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autoencoders.base import BlockAutoencoder
from repro.autoencoders.config import AutoencoderConfig
from repro.autoencoders.conv_ae import build_decoder, build_encoder
from repro.autoencoders.divergences import kl_standard_normal
from repro.nn.layers.dense import Dense
from repro.nn.losses import LogCoshLoss, Loss, MSELoss
from repro.nn.module import Module
from repro.nn.network import Sequential
from repro.utils.rng import as_rng


class GaussianEncoder(Module):
    """Convolutional trunk with mean / log-variance heads.

    ``forward`` returns the posterior mean (the deterministic encoding used for
    prediction); :meth:`forward_distribution` returns both heads for training.
    """

    def __init__(self, config: AutoencoderConfig):
        full = build_encoder(config)
        # Split off the final Dense layer: everything before it is the trunk.
        self.trunk = Sequential(*full.layers[:-1])
        bottleneck = config.bottleneck_features
        self.mu_head = Dense(bottleneck, config.latent_size, rng=config.seed + 101)
        self.logvar_head = Dense(bottleneck, config.latent_size, rng=config.seed + 202)

    def forward(self, x: np.ndarray, training: Optional[bool] = None) -> np.ndarray:
        h = self.trunk.forward(x, training=training)
        return self.mu_head.forward(h, training=training)

    def forward_distribution(self, x: np.ndarray, training: Optional[bool] = None
                             ) -> Tuple[np.ndarray, np.ndarray]:
        h = self.trunk.forward(x, training=training)
        mu = self.mu_head.forward(h, training=training)
        logvar = self.logvar_head.forward(h, training=training)
        return mu, logvar

    def backward(self, grad: np.ndarray) -> np.ndarray:
        # Deterministic path (mean head only); used if a caller backprops
        # through ``forward``.
        grad_h = self.mu_head.backward(grad)
        return self.trunk.backward(grad_h)

    def backward_distribution(self, grad_mu: np.ndarray, grad_logvar: np.ndarray) -> np.ndarray:
        grad_h = self.mu_head.backward(grad_mu) + self.logvar_head.backward(grad_logvar)
        return self.trunk.backward(grad_h)


class VariationalAutoencoder(BlockAutoencoder):
    """Standard VAE with a configurable KL weight (``beta = 1``)."""

    def __init__(self, config: AutoencoderConfig, beta: float = 1.0,
                 reconstruction_loss: Optional[Loss] = None):
        encoder = GaussianEncoder(config)
        decoder = build_decoder(config)
        super().__init__(encoder, decoder, config, reconstruction_loss or MSELoss())
        if beta < 0:
            raise ValueError("beta must be non-negative")
        self.beta = float(beta)
        # KL weight is scaled down relative to the per-element reconstruction
        # loss so neither term vanishes for large blocks.
        self.kl_scale = 1.0 / config.block_elements

    # The sampled path (used only during training / stability experiments).
    def sample_latent(self, blocks: np.ndarray, rng=None) -> np.ndarray:
        """Sample z ~ q(z|x); differs between calls, unlike :meth:`encode`."""
        rng = as_rng(rng if rng is not None else self._rng)
        x = self.normalize(self._with_channel(blocks))
        mu, logvar = self.encoder.forward_distribution(x, training=False)
        eps = rng.normal(size=mu.shape)
        return mu + np.exp(0.5 * logvar) * eps

    def extra_latent_penalty(self, mu: np.ndarray, logvar: np.ndarray, z: np.ndarray
                             ) -> Tuple[float, np.ndarray, np.ndarray, np.ndarray]:
        """Hook for subclasses (DIP-VAE, Info-VAE): extra loss + grads on (mu, logvar, z)."""
        return 0.0, np.zeros_like(mu), np.zeros_like(logvar), np.zeros_like(z)

    def train_step(self, batch: np.ndarray) -> float:
        x = self.normalize(self._with_channel(batch))
        mu, logvar = self.encoder.forward_distribution(x, training=True)
        logvar = np.clip(logvar, -10.0, 10.0)
        eps = self._rng.normal(size=mu.shape)
        std = np.exp(0.5 * logvar)
        z = mu + std * eps

        recon = self.decoder.forward(z, training=True)
        rec_loss, grad_recon = self.reconstruction_loss(recon, x)
        kl, grad_mu_kl, grad_logvar_kl, = kl_standard_normal(mu, logvar)
        extra_loss, grad_mu_x, grad_logvar_x, grad_z_x = self.extra_latent_penalty(mu, logvar, z)

        grad_z = self.decoder.backward(grad_recon) + grad_z_x
        w = self.beta * self.kl_scale
        grad_mu = grad_z + w * grad_mu_kl + grad_mu_x
        grad_logvar = grad_z * eps * 0.5 * std + w * grad_logvar_kl + grad_logvar_x
        self.encoder.backward_distribution(grad_mu, grad_logvar)
        return float(rec_loss + w * kl + extra_loss)


class BetaVAE(VariationalAutoencoder):
    """beta-VAE (Higgins et al., 2016): a VAE with an up-weighted KL term."""

    def __init__(self, config: AutoencoderConfig, beta: float = 4.0):
        super().__init__(config, beta=beta)


class LogCoshVAE(VariationalAutoencoder):
    """LogCosh-VAE (Chen et al., 2018): VAE with a log-cosh reconstruction loss."""

    def __init__(self, config: AutoencoderConfig, beta: float = 1.0):
        super().__init__(config, beta=beta, reconstruction_loss=LogCoshLoss())

"""Vanilla autoencoder: the convolutional network with a pure reconstruction loss."""

from __future__ import annotations

from repro.autoencoders.config import AutoencoderConfig
from repro.autoencoders.conv_ae import ConvAutoencoder


class VanillaAutoencoder(ConvAutoencoder):
    """Plain AE (the "AE" row of paper Table I): MSE reconstruction, no regularizer."""

    def __init__(self, config: AutoencoderConfig):
        super().__init__(config)

"""Wasserstein Autoencoder (WAE-MMD comparator of paper Table I)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.autoencoders.config import AutoencoderConfig
from repro.autoencoders.conv_ae import ConvAutoencoder
from repro.autoencoders.divergences import mmd_rbf


class WassersteinAutoencoder(ConvAutoencoder):
    """WAE (Tolstikhin et al., 2017) with an MMD penalty on the latent batch.

    The paper notes that computing the (entropic/MMD) Wasserstein penalty costs
    O(n^2) per batch versus O(n log n) for SWAE's sliced variant — both are
    implemented here so that trade-off can be measured.
    """

    def __init__(self, config: AutoencoderConfig, regularization_weight: float = 1.0,
                 bandwidth: float = None):
        super().__init__(config)
        if regularization_weight < 0:
            raise ValueError("regularization_weight must be non-negative")
        self.regularization_weight = float(regularization_weight)
        self.bandwidth = bandwidth

    def latent_regularizer(self, latent: np.ndarray) -> Tuple[float, np.ndarray]:
        prior = self._rng.normal(size=latent.shape)
        loss, grad = mmd_rbf(latent, prior, bandwidth=self.bandwidth)
        w = self.regularization_weight
        return w * loss, w * grad

"""Error-bound objects shared by the top-level API, the CLI and the archive format.

The paper evaluates compressors under a *value-range-relative* bound
(``e = eps * (max(D) - min(D))``, Section V-A5).  Production SZ/ZFP-style tools
additionally expose an *absolute* bound and a *pointwise-relative* bound
(``|d_i - d'_i| <= eps * |d_i|``); :class:`ErrorBound` models all three so they
can be threaded through every compressor and recorded in the archive header.

Construct bounds with the :func:`Rel`, :func:`Abs` and :func:`PtwRel` helpers::

    repro.compress(data, codec="sz21", bound=Rel(1e-3))     # paper's mode
    repro.compress(data, codec="sz21", bound=Abs(0.02))
    repro.compress(data, codec="aesz", bound=PtwRel(1e-2))

Every compressor natively enforces a value-range-relative bound; ``Abs`` is
rescaled exactly against the input's value range, and ``PtwRel`` is realized
with the standard sign + logarithm transform (compressing ``log |d|`` under an
absolute bound of ``log(1 + eps)`` bounds the pointwise relative error by
``eps``; zeros are carried in a lossless mask so ``d_i = 0`` reconstructs
exactly).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import value_range

MODE_REL = "rel"
MODE_ABS = "abs"
MODE_PTW_REL = "ptw_rel"
MODES = (MODE_REL, MODE_ABS, MODE_PTW_REL)

_MODE_DESCRIPTIONS = {
    MODE_REL: "value-range-relative: |d - d'| <= value * (max(D) - min(D))",
    MODE_ABS: "absolute: |d - d'| <= value",
    MODE_PTW_REL: "pointwise-relative: |d - d'| <= value * |d|",
}


@dataclass(frozen=True)
class ErrorBound:
    """An error-bound mode (``rel`` / ``abs`` / ``ptw_rel``) plus its value."""

    mode: str
    value: float

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown error-bound mode {self.mode!r}; choices: {MODES}")
        if not (float(self.value) > 0):
            raise ValueError(f"error-bound value must be > 0, got {self.value!r}")
        object.__setattr__(self, "value", float(self.value))

    # ------------------------------------------------------------------ info
    @property
    def description(self) -> str:
        return _MODE_DESCRIPTIONS[self.mode]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mode}({self.value:g})"

    # ------------------------------------------------------------ conversion
    def rel_equivalent(self, data: np.ndarray) -> float:
        """The value-range-relative bound that enforces this bound on ``data``.

        Every compressor in the library converts its ``rel_error_bound``
        argument to an absolute bound as ``rel * vrange`` (falling back to the
        raw value on constant fields), so the conversion here is exact by
        construction.  ``ptw_rel`` bounds have no single relative equivalent;
        they are handled by the log-transform wrapper in :mod:`repro.api`.
        """
        if self.mode == MODE_REL:
            return self.value
        if self.mode == MODE_ABS:
            vr = value_range(data)
            if vr <= 0:
                return self.value
            rel = self.value / vr
            # Codecs rebuild the absolute bound as ``rel * vr``, which can
            # round one ulp *above* the requested value; nudge down so the
            # round-trip never loosens the bound (exactness means "never
            # exceeds", and this keeps chunked == single-shot guarantees).
            while rel * vr > self.value:
                rel = float(np.nextafter(rel, 0.0))
            return rel
        raise ValueError(
            "a pointwise-relative bound has no value-range-relative equivalent; "
            "use repro.compress(), which applies the logarithmic transform"
        )

    def to_dict(self) -> dict:
        return {"mode": self.mode, "value": self.value}

    @classmethod
    def from_dict(cls, obj: dict) -> "ErrorBound":
        return cls(mode=str(obj["mode"]), value=float(obj["value"]))


def Rel(value: float) -> ErrorBound:
    """Value-range-relative bound (the paper's mode): ``|d-d'| <= value * vrange(D)``."""
    return ErrorBound(MODE_REL, value)


def Abs(value: float) -> ErrorBound:
    """Absolute bound: ``|d-d'| <= value``."""
    return ErrorBound(MODE_ABS, value)


def PtwRel(value: float) -> ErrorBound:
    """Pointwise-relative bound: ``|d-d'| <= value * |d|`` (zeros are exact)."""
    return ErrorBound(MODE_PTW_REL, value)


def as_bound(bound) -> ErrorBound:
    """Coerce ``bound`` to an :class:`ErrorBound` (bare numbers mean ``Rel``)."""
    if isinstance(bound, ErrorBound):
        return bound
    if isinstance(bound, (int, float, np.floating)):
        return Rel(float(bound))
    raise TypeError(
        f"bound must be an ErrorBound (Rel/Abs/PtwRel) or a number, got {type(bound)!r}"
    )

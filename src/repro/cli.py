"""Command-line interface: train, compress, decompress, inspect and list codecs.

Gives the library the same day-to-day ergonomics as the SZ/ZFP command-line
tools.  ``compress`` writes self-describing archives (codec id, shape, dtype,
error-bound mode + value and codec metadata travel in a framed header), so
``decompress`` needs no ``--dims``/``--compressor`` arguments; codecs are
discovered through :mod:`repro.registry`, so new compressors show up in
``--compressor`` and ``repro list`` without editing this module::

    # list every registered codec
    python -m repro list

    # train a model on one or more snapshots of a field
    python -m repro train --model swae.npz --dims 256 512 --block-size 32 \
        --latent-size 16 snapshot0.f32 snapshot1.f32

    # compress with a value-range-relative bound (the paper's mode) ...
    python -m repro compress --model swae.npz --dims 256 512 --error-bound 1e-2 \
        snapshot9.f32 snapshot9.rpra
    # ... or an absolute / pointwise-relative bound, with any codec
    python -m repro compress --dims 256 512 --error-bound 0.03 --bound-mode abs \
        --compressor szinterp snapshot9.f32 snapshot9.rpra

    # chunked + parallel: stream a memory-mapped field through a worker pool
    # in independent ~4M-element chunks (fields larger than RAM work)
    python -m repro compress --dims 4096 4096 --error-bound 1e-3 \
        --compressor szinterp --chunk-size 4194304 --workers 4 big.f32 big.rpra

    # decompress: the archive knows its codec, dims, dtype and model hash
    python -m repro decompress snapshot9.rpra snapshot9.out.f32 --model swae.npz
    # (add --workers N to decode a chunked archive's chunks in parallel)

    # compare against the original and print ratio / PSNR / max error
    python -m repro info --dims 256 512 snapshot9.f32 snapshot9.out.f32

AE-SZ archives record the model fingerprint; pass ``--embed-model`` during
compression to store the weights in the archive so decompression needs no
``--model`` at all.  A mismatched ``--model`` is refused with a clear error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro import api
from repro.autoencoders import AutoencoderConfig, SlicedWassersteinAutoencoder
from repro.bounds import ErrorBound, MODES
from repro.core import AESZCompressor, AESZConfig
from repro.data.loader import load_f32, map_f32, save_f32
from repro.encoding.container import is_archive
from repro.metrics import compression_ratio, max_rel_error, psnr
from repro.nn import TrainingConfig
from repro.registry import available_compressors, compressor_spec, get_compressor


def _add_dims(parser: argparse.ArgumentParser, required: bool = True) -> None:
    parser.add_argument("--dims", type=int, nargs="+", required=required,
                        help="field dimensions, e.g. --dims 256 512 or --dims 64 64 64"
                             + ("" if required else " (archives carry their own dims;"
                                " when given, used as a cross-check)"))


def _ae_config_from_args(args: argparse.Namespace) -> AutoencoderConfig:
    return AutoencoderConfig(ndim=len(args.dims), block_size=args.block_size,
                             latent_size=args.latent_size,
                             channels=tuple(args.channels), seed=args.seed)


def _load_aesz(args: argparse.Namespace) -> AESZCompressor:
    config = _ae_config_from_args(args)
    model = SlicedWassersteinAutoencoder(config)
    model.load(args.model)
    return AESZCompressor(model, AESZConfig(block_size=config.block_size),
                          model_ref=str(args.model))


def _make_compressor(args: argparse.Namespace):
    if compressor_spec(args.compressor).requires_model:
        if not args.model:
            raise SystemExit(f"--model is required for the {args.compressor} compressor")
        return _load_aesz(args)
    return get_compressor(args.compressor)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro",
                                     description="AE-SZ error-bounded lossy compression")
    sub = parser.add_subparsers(dest="command", required=True)
    # The AE-A/AE-B comparators need a training pass the CLI does not expose,
    # so --compressor offers only the codecs it can construct (aesz builds its
    # model from --model + the architecture flags).  `repro list` shows all.
    codec_names = [n for n in available_compressors()
                   if n == "aesz" or not compressor_spec(n).accepts_model]

    # ------------------------------------------------------------------- list
    sub.add_parser("list", help="list every registered compressor")

    # ------------------------------------------------------------------ train
    train = sub.add_parser("train", help="train an AE-SZ autoencoder on snapshots")
    _add_dims(train)
    train.add_argument("snapshots", nargs="+", help="raw float32 snapshot files")
    train.add_argument("--model", required=True, help="output .npz model path")
    train.add_argument("--block-size", type=int, default=32)
    train.add_argument("--latent-size", type=int, default=16)
    train.add_argument("--channels", type=int, nargs="+", default=[4, 8])
    train.add_argument("--epochs", type=int, default=10)
    train.add_argument("--batch-size", type=int, default=32)
    train.add_argument("--learning-rate", type=float, default=2e-3)
    train.add_argument("--max-blocks", type=int, default=1024)
    train.add_argument("--seed", type=int, default=0)

    # --------------------------------------------------------------- compress
    comp = sub.add_parser("compress", help="compress a raw float32 field into an archive")
    _add_dims(comp)
    comp.add_argument("input", help="raw float32 input file")
    comp.add_argument("output", help="compressed archive output file")
    comp.add_argument("--error-bound", type=float, required=True,
                      help="error-bound value (interpreted per --bound-mode)")
    comp.add_argument("--bound-mode", choices=list(MODES), default="rel",
                      help="rel = value-range-relative (paper's mode), abs = absolute, "
                           "ptw_rel = pointwise-relative")
    comp.add_argument("--compressor", choices=codec_names, default="aesz")
    comp.add_argument("--model", help=".npz model (required for aesz)")
    comp.add_argument("--embed-model", action="store_true",
                      help="store model weights inside the archive so decompression "
                           "needs no --model")
    comp.add_argument("--block-size", type=int, default=32)
    comp.add_argument("--latent-size", type=int, default=16)
    comp.add_argument("--channels", type=int, nargs="+", default=[4, 8])
    comp.add_argument("--seed", type=int, default=0)
    comp.add_argument("--chunk-size", type=int, default=0, metavar="ELEMS",
                      help="compress in independent row-slab chunks of ~ELEMS elements "
                           "(streamed from a memory-mapped input, so fields larger than "
                           "RAM work); 0 = single-shot (default)")
    comp.add_argument("--workers", type=int, default=1,
                      help="process-pool workers for chunked compression (needs "
                           "--chunk-size; output is bit-identical for any worker count)")

    # ------------------------------------------------------------- decompress
    dec = sub.add_parser("decompress", help="decompress an archive produced by 'compress'")
    _add_dims(dec, required=False)
    dec.add_argument("input", help="compressed input file")
    dec.add_argument("output", help="raw float32 output file")
    dec.add_argument("--compressor", choices=codec_names,
                     help="only needed for legacy raw payloads (pre-archive format, "
                          "default aesz); for archives, a cross-check against the header")
    dec.add_argument("--model", help=".npz model (aesz archives without an embedded model)")
    dec.add_argument("--block-size", type=int, default=32)
    dec.add_argument("--latent-size", type=int, default=16)
    dec.add_argument("--channels", type=int, nargs="+", default=[4, 8])
    dec.add_argument("--seed", type=int, default=0)
    dec.add_argument("--workers", type=int, default=1,
                     help="process-pool workers for decoding chunked archives "
                          "(single-shot archives decode in-process)")

    # ------------------------------------------------------------------- info
    info = sub.add_parser("info", help="compare an original and a reconstructed field")
    _add_dims(info)
    info.add_argument("original", help="raw float32 original file")
    info.add_argument("reconstructed", help="raw float32 reconstructed file")
    info.add_argument("--compressed", help="optional compressed file (for the ratio)")
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for name in available_compressors():
        spec = compressor_spec(name)
        rows.append((name,
                     "yes" if spec.error_bounded else "NO",
                     "yes" if spec.requires_model else "no",
                     spec.description))
    widths = [max(len(r[i]) for r in rows + [("name", "bounded", "model", "description")])
              for i in range(4)]
    header = ("name", "bounded", "model", "description")
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip())
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    snapshots = [load_f32(path, args.dims).astype(np.float64) for path in args.snapshots]
    config = _ae_config_from_args(args)
    model = SlicedWassersteinAutoencoder(config)
    compressor = AESZCompressor(model, AESZConfig(block_size=config.block_size))
    history = compressor.train(
        snapshots,
        TrainingConfig(epochs=args.epochs, batch_size=args.batch_size,
                       learning_rate=args.learning_rate, seed=args.seed),
        max_blocks=args.max_blocks, seed=args.seed)
    model.save(args.model)
    print(f"trained on {len(snapshots)} snapshot(s); final loss {history.final_loss:.6f}; "
          f"model written to {args.model}")
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    compressor = _make_compressor(args)
    try:
        bound = ErrorBound(args.bound_mode, args.error_bound)
        if args.workers > 1 and args.chunk_size <= 0:
            raise SystemExit("--workers needs --chunk-size (single-shot "
                             "compression runs in-process)")
        if args.chunk_size > 0:
            # Memory-map the input and stream row slabs through the chunked
            # pipeline — the field never fully resides in RAM; the per-slab
            # float64 cast gives codecs the same input as the single-shot path.
            data = map_f32(args.input, args.dims)
            blob = api.compress_chunked(data, codec=compressor, bound=bound,
                                        chunk_size=args.chunk_size,
                                        workers=args.workers,
                                        embed_model=args.embed_model,
                                        dtype=np.float64)
            detail = (f", {api.read_header(blob).n_chunks} chunks"
                      f", workers {args.workers}")
        else:
            data = load_f32(args.input, args.dims).astype(np.float64)
            blob = api.compress(data, codec=compressor, bound=bound,
                                embed_model=args.embed_model)
            detail = ""
    except ValueError as exc:
        raise SystemExit(str(exc))
    Path(args.output).write_bytes(blob)
    print(f"{args.input}: {data.size * 4} -> {len(blob)} bytes "
          f"(ratio {compression_ratio(data.size * 4, len(blob)):.2f}x, "
          f"bound {bound.mode}={bound.value:g}, codec {args.compressor}{detail})")
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    blob = Path(args.input).read_bytes()
    if is_archive(blob):
        header = api.read_header(blob)
        if args.compressor and compressor_spec(args.compressor).name != header.codec:
            raise SystemExit(
                f"archive was written by codec {header.codec!r}, not {args.compressor!r}")
        if args.dims and tuple(args.dims) != header.shape:
            raise SystemExit(f"archive shape {header.shape} != --dims {tuple(args.dims)}")
        try:
            reconstruction = api.decompress(blob, model=args.model,
                                            workers=args.workers)
        except ValueError as exc:
            raise SystemExit(str(exc))
    else:
        # Legacy raw payload (pre-archive format): decoded exactly as before —
        # --compressor defaults to aesz (which needs the model + architecture
        # flags) and --dims is required because the payload carries no shape.
        if not args.compressor:
            args.compressor = "aesz"
        if not args.dims:
            raise SystemExit("raw (pre-archive) payloads need --dims")
        compressor = _make_compressor(args)
        reconstruction = compressor.decompress(blob)
        if tuple(reconstruction.shape) != tuple(args.dims):
            raise SystemExit(
                f"decompressed shape {reconstruction.shape} != --dims {tuple(args.dims)}")
    save_f32(args.output, reconstruction)
    print(f"{args.input}: reconstructed field written to {args.output}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    original = load_f32(args.original, args.dims).astype(np.float64)
    reconstructed = load_f32(args.reconstructed, args.dims).astype(np.float64)
    print(f"PSNR            : {psnr(original, reconstructed):.2f} dB")
    print(f"max error/range : {max_rel_error(original, reconstructed):.3e}")
    if args.compressed:
        blob = Path(args.compressed).read_bytes()
        if is_archive(blob):
            header = api.read_header(blob)
            chunks = (f", {header.n_chunks} chunks"
                      if hasattr(header, "n_chunks") else "")
            print(f"archive         : codec {header.codec}, shape {header.shape}, "
                  f"dtype {header.dtype}, bound {header.bound_mode}={header.bound_value:g}"
                  f"{chunks}")
        print(f"compression     : {compression_ratio(original.size * 4, len(blob)):.2f}x "
              f"({len(blob)} bytes)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"list": _cmd_list, "train": _cmd_train, "compress": _cmd_compress,
                "decompress": _cmd_decompress, "info": _cmd_info}
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())

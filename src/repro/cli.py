"""Command-line interface: train, compress, decompress, serve, inspect, list codecs.

Gives the library the same day-to-day ergonomics as the SZ/ZFP command-line
tools.  ``compress`` writes self-describing archives (codec id, shape, dtype,
error-bound mode + value and codec metadata travel in a framed header), so
``decompress`` needs no ``--dims``/``--compressor`` arguments; codecs are
discovered through :mod:`repro.registry`, so new compressors show up in
``--compressor`` and ``repro list`` without editing this module::

    # list every registered codec
    python -m repro list

    # train a model on one or more snapshots of a field
    python -m repro train --model swae.npz --dims 256 512 --block-size 32 \
        --latent-size 16 snapshot0.f32 snapshot1.f32

    # compress with a value-range-relative bound (the paper's mode) ...
    python -m repro compress --model swae.npz --dims 256 512 --error-bound 1e-2 \
        snapshot9.f32 snapshot9.rpra
    # ... or an absolute / pointwise-relative bound, with any codec
    python -m repro compress --dims 256 512 --error-bound 0.03 --bound-mode abs \
        --compressor szinterp snapshot9.f32 snapshot9.rpra

    # chunked + parallel: stream a memory-mapped field through a worker pool
    # in independent ~4M-element chunks (fields larger than RAM work)
    python -m repro compress --dims 4096 4096 --error-bound 1e-3 \
        --compressor szinterp --chunk-size 4194304 --workers 4 big.f32 big.rpra

    # N-d chunk grid: tile a 3-d field into independent 32^3 sub-archives so
    # sub-cubes can later be decoded without touching the rest (format v3).
    # (After a multi-value flag like --chunk-shape, separate the positional
    # files with -- or put them first.)
    python -m repro compress big.f32 big.rpra --dims 256 256 256 \
        --error-bound 1e-3 --compressor szinterp --chunk-shape 32 32 32

    # random-access region decode: reads only the intersecting tiles
    python -m repro extract big.rpra corner.f32 --region "10:20,0:64,5:9"

    # serve region reads over HTTP: archives stay open, headers parse once,
    # decoded tiles are shared through a size-bounded LRU cache
    python -m repro serve field=big.rpra --port 8000 --cache-mb 256
    # GET /v1/field/region?r=10:20,0:64,5:9 -> raw bytes (+ shape/dtype headers)

    # decompress: the archive knows its codec, dims, dtype and model hash
    python -m repro decompress snapshot9.rpra snapshot9.out.f32 --model swae.npz
    # (add --workers N to decode a chunked archive's chunks in parallel)

    # inspect an archive: codec, dims, bound mode/value, chunk grid
    python -m repro info snapshot9.rpra

    # compare against the original and print ratio / PSNR / max error
    # (files first: the multi-value --dims flag would swallow them otherwise)
    python -m repro info snapshot9.f32 snapshot9.out.f32 --dims 256 512

AE-SZ archives record the model fingerprint; pass ``--embed-model`` during
compression to store the weights in the archive so decompression needs no
``--model`` at all.  A mismatched ``--model`` is refused with a clear error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path, PurePosixPath
from typing import Optional, Sequence
from urllib.parse import urlsplit

import numpy as np

from repro import api
from repro.sources.base import is_url
from repro.autoencoders import AutoencoderConfig, SlicedWassersteinAutoencoder
from repro.bounds import ErrorBound, MODES
from repro.core import AESZCompressor, AESZConfig
from repro.data.loader import create_f32, load_f32, map_f32, save_f32
from repro.encoding.container import is_archive
from repro.metrics import compression_ratio, max_rel_error, psnr
from repro.nn import TrainingConfig
from repro.registry import available_compressors, compressor_spec, get_compressor


def _add_dims(parser: argparse.ArgumentParser, required: bool = True) -> None:
    parser.add_argument("--dims", type=int, nargs="+", required=required,
                        help="field dimensions, e.g. --dims 256 512 or --dims 64 64 64"
                             + ("" if required else " (archives carry their own dims;"
                                " when given, used as a cross-check)"))


def _ae_config_from_args(args: argparse.Namespace) -> AutoencoderConfig:
    return AutoencoderConfig(ndim=len(args.dims), block_size=args.block_size,
                             latent_size=args.latent_size,
                             channels=tuple(args.channels), seed=args.seed)


def _load_aesz(args: argparse.Namespace) -> AESZCompressor:
    config = _ae_config_from_args(args)
    model = SlicedWassersteinAutoencoder(config)
    model.load(args.model)
    return AESZCompressor(model, AESZConfig(block_size=config.block_size),
                          model_ref=str(args.model))


def _make_compressor(args: argparse.Namespace):
    if compressor_spec(args.compressor).requires_model:
        if not args.model:
            raise SystemExit(f"--model is required for the {args.compressor} compressor")
        return _load_aesz(args)
    return get_compressor(args.compressor)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro",
                                     description="AE-SZ error-bounded lossy compression")
    sub = parser.add_subparsers(dest="command", required=True)
    # The AE-A/AE-B comparators need a training pass the CLI does not expose,
    # so --compressor offers only the codecs it can construct (aesz builds its
    # model from --model + the architecture flags).  `repro list` shows all.
    codec_names = [n for n in available_compressors()
                   if n == "aesz" or not compressor_spec(n).accepts_model]

    # ------------------------------------------------------------------- list
    sub.add_parser("list", help="list every registered compressor")

    # ------------------------------------------------------------------ train
    train = sub.add_parser("train", help="train an AE-SZ autoencoder on snapshots")
    _add_dims(train)
    train.add_argument("snapshots", nargs="+", help="raw float32 snapshot files")
    train.add_argument("--model", required=True, help="output .npz model path")
    train.add_argument("--block-size", type=int, default=32)
    train.add_argument("--latent-size", type=int, default=16)
    train.add_argument("--channels", type=int, nargs="+", default=[4, 8])
    train.add_argument("--epochs", type=int, default=10)
    train.add_argument("--batch-size", type=int, default=32)
    train.add_argument("--learning-rate", type=float, default=2e-3)
    train.add_argument("--max-blocks", type=int, default=1024)
    train.add_argument("--seed", type=int, default=0)

    # --------------------------------------------------------------- compress
    comp = sub.add_parser("compress", help="compress a raw float32 field into an archive")
    _add_dims(comp)
    comp.add_argument("input", help="raw float32 input file")
    comp.add_argument("output", help="compressed archive output file")
    comp.add_argument("--error-bound", type=float, required=True,
                      help="error-bound value (interpreted per --bound-mode)")
    comp.add_argument("--bound-mode", choices=list(MODES), default="rel",
                      help="rel = value-range-relative (paper's mode), abs = absolute, "
                           "ptw_rel = pointwise-relative")
    comp.add_argument("--compressor", choices=codec_names, default="aesz")
    comp.add_argument("--model", help=".npz model (required for aesz)")
    comp.add_argument("--embed-model", action="store_true",
                      help="store model weights inside the archive so decompression "
                           "needs no --model")
    comp.add_argument("--block-size", type=int, default=32)
    comp.add_argument("--latent-size", type=int, default=16)
    comp.add_argument("--channels", type=int, nargs="+", default=[4, 8])
    comp.add_argument("--seed", type=int, default=0)
    comp.add_argument("--chunk-size", type=int, default=0, metavar="ELEMS",
                      help="compress in independent row-slab chunks of ~ELEMS elements "
                           "(streamed from a memory-mapped input, so fields larger than "
                           "RAM work); 0 = single-shot (default)")
    comp.add_argument("--chunk-shape", type=int, nargs="+", metavar="N",
                      help="per-axis tile size for the N-d chunk grid (format v3), "
                           "e.g. --chunk-shape 32 32 32; -1 = full axis. Enables "
                           "random-access 'extract' on the archive; overrides "
                           "--chunk-size")
    comp.add_argument("--workers", type=int, default=1,
                      help="process-pool workers for chunked compression (needs "
                           "--chunk-size or --chunk-shape; output is bit-identical "
                           "for any worker count)")

    # ------------------------------------------------------------- decompress
    dec = sub.add_parser("decompress", help="decompress an archive produced by 'compress'")
    _add_dims(dec, required=False)
    dec.add_argument("input", help="compressed input file")
    dec.add_argument("output", help="raw float32 output file")
    dec.add_argument("--compressor", choices=codec_names,
                     help="only needed for legacy raw payloads (pre-archive format, "
                          "default aesz); for archives, a cross-check against the header")
    dec.add_argument("--model", help=".npz model (aesz archives without an embedded model)")
    dec.add_argument("--block-size", type=int, default=32)
    dec.add_argument("--latent-size", type=int, default=16)
    dec.add_argument("--channels", type=int, nargs="+", default=[4, 8])
    dec.add_argument("--seed", type=int, default=0)
    dec.add_argument("--workers", type=int, default=1,
                     help="process-pool workers for decoding chunked archives "
                          "(single-shot archives decode in-process)")

    # ---------------------------------------------------------------- extract
    ext = sub.add_parser("extract",
                         help="decode a sub-region of an archive without touching "
                              "the rest (random access; needs a chunked/grid archive "
                              "for the I/O saving)")
    ext.add_argument("input", help="compressed archive file")
    ext.add_argument("output", help="raw float32 output file (the region only)")
    ext.add_argument("--region", required=True,
                     help="per-axis slices in full-field coordinates, e.g. "
                          "\"10:20,0:64,5:9\"; ':' = full axis, a bare integer "
                          "keeps its axis with length 1")
    ext.add_argument("--workers", type=int, default=1,
                     help="process-pool workers for decoding the intersecting tiles")
    ext.add_argument("--model", help=".npz model (aesz archives without an "
                                     "embedded model)")

    # ------------------------------------------------------------------ serve
    srv = sub.add_parser("serve",
                         help="serve region reads from archives over HTTP "
                              "(thread-safe store + decoded-tile LRU cache); "
                              "with --root also a durable, writable store")
    srv.add_argument("archives", nargs="*", metavar="KEY=PATH",
                     help="archives to serve, each KEY=PATH or KEY=URL (KEY "
                          "becomes the /v1/KEY/... URL segment) or a bare "
                          "PATH/URL (key = file stem); http(s):// sources "
                          "are read remotely via range requests; optional "
                          "when --root is given")
    srv.add_argument("--root", metavar="DIR",
                     help="store root directory: keys are replayed from its "
                          "durable manifest at startup and (with --writable) "
                          "ingested archives are published under it")
    srv.add_argument("--writable", action="store_true",
                     help="enable POST/DELETE /v1/<key> ingest routes "
                          "(requires --root)")
    srv.add_argument("--auth-token", metavar="TOKEN",
                     help="set the store-wide '*' bearer token in the "
                          "manifest before serving (mutating routes then "
                          "require Authorization: Bearer TOKEN; requires "
                          "--root)")
    srv.add_argument("--quota-mb", type=float, default=1024.0,
                     help="per-key upload quota in MB of raw field bytes "
                          "(default 1024; 0 = unlimited)")
    srv.add_argument("--host", default="127.0.0.1",
                     help="bind address (default 127.0.0.1)")
    srv.add_argument("--port", type=int, default=8000,
                     help="TCP port (0 = pick a free port and print it)")
    srv.add_argument("--cache-mb", type=float, default=256.0,
                     help="decoded-tile LRU cache budget in MB (default 256)")
    srv.add_argument("--model", help=".npz model for AE archives written "
                                     "with embed_model=False (applies to "
                                     "every served archive)")
    srv.add_argument("--server", choices=("selectors", "threaded"),
                     default="selectors",
                     help="front end: 'selectors' (default) multiplexes "
                          "keep-alive connections on one event loop with a "
                          "bounded decode pool; 'threaded' is the "
                          "one-thread-per-connection fallback")
    srv.add_argument("--timeout", type=float, default=30.0, metavar="SECONDS",
                     help="per-connection read timeout: idle or stalled "
                          "clients are dropped after this many seconds "
                          "(default 30; 0 = never)")
    srv.add_argument("--max-connections", type=int, default=512,
                     metavar="N",
                     help="selectors front end only: accepts beyond N open "
                          "connections are answered 503 (default 512)")
    srv.add_argument("--workers", type=int, default=0, metavar="N",
                     help="selectors front end only: decode worker threads "
                          "(default 0 = pick from the CPU count)")
    srv.add_argument("--peer", action="append", default=[], metavar="URL",
                     help="federation: forward GET lookups for unknown keys "
                          "to this peer node (repeatable, tried in order)")
    srv.add_argument("--spill-dir", metavar="DIR",
                     help="spill byte ranges fetched from http(s) archive "
                          "sources to this directory (read-through disk "
                          "cache, persists across restarts)")
    srv.add_argument("--spill-mb", type=float, default=1024.0, metavar="MB",
                     help="byte budget for --spill-dir in MB (default 1024; "
                          "LRU-evicted beyond it)")
    srv.add_argument("--verbose", action="store_true",
                     help="log one line per request to stderr")

    # ------------------------------------------------------------------- push
    push = sub.add_parser("push",
                          help="stream a field to a writable store node "
                               "(POST /v1/KEY with chunked transfer)")
    push.add_argument("url", metavar="URL",
                      help="server base URL, e.g. http://127.0.0.1:8000")
    push.add_argument("key", metavar="KEY",
                      help="the key to publish (one URL path segment)")
    push.add_argument("input", metavar="FIELD", nargs="?",
                      help="field file: .npy (self-describing, opened "
                           "memory-mapped) or raw float32 with --dims "
                           "(omit with --delete)")
    _add_dims(push, required=False)
    push.add_argument("--error-bound", "--bound", dest="error_bound",
                      type=float, default=1e-3,
                      help="error-bound value (default 1e-3, interpreted per "
                           "--mode)")
    push.add_argument("--mode", choices=list(MODES), default="rel",
                      help="bound mode: rel (default), abs, ptw_rel")
    push.add_argument("--compressor", "--codec", dest="compressor",
                      default="sz21",
                      help="codec name on the server (model-free codecs "
                           "only; default sz21)")
    push.add_argument("--token", help="bearer token for the server's "
                                      "mutating routes")
    push.add_argument("--delete", action="store_true",
                      help="delete KEY on the server instead of pushing "
                           "(FIELD is ignored)")

    # ------------------------------------------------------------------- lint
    lint = sub.add_parser("lint",
                          help="run the project's static-analysis rules "
                               "(RPR001..RPR007) over source paths")
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories to lint (default: the "
                           "installed repro package)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue and exit")

    # ------------------------------------------------------------------- info
    info = sub.add_parser("info",
                          help="inspect an archive (codec, dims, bound, chunk grid), "
                               "or compare an original and a reconstructed field")
    _add_dims(info, required=False)
    info.add_argument("files", nargs="+", metavar="FILE",
                      help="one archive file to inspect, or: ORIGINAL RECONSTRUCTED "
                           "raw float32 fields to compare (needs --dims)")
    info.add_argument("--compressed", help="optional compressed file (for the ratio)")
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for name in available_compressors():
        spec = compressor_spec(name)
        rows.append((name,
                     "yes" if spec.error_bounded else "NO",
                     "yes" if spec.requires_model else "no",
                     spec.description))
    widths = [max(len(r[i]) for r in rows + [("name", "bounded", "model", "description")])
              for i in range(4)]
    header = ("name", "bounded", "model", "description")
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip())
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    snapshots = [load_f32(path, args.dims).astype(np.float64) for path in args.snapshots]
    config = _ae_config_from_args(args)
    model = SlicedWassersteinAutoencoder(config)
    compressor = AESZCompressor(model, AESZConfig(block_size=config.block_size))
    history = compressor.train(
        snapshots,
        TrainingConfig(epochs=args.epochs, batch_size=args.batch_size,
                       learning_rate=args.learning_rate, seed=args.seed),
        max_blocks=args.max_blocks, seed=args.seed)
    model.save(args.model)
    print(f"trained on {len(snapshots)} snapshot(s); final loss {history.final_loss:.6f}; "
          f"model written to {args.model}")
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    compressor = _make_compressor(args)
    try:
        bound = ErrorBound(args.bound_mode, args.error_bound)
        if args.workers > 1 and args.chunk_size <= 0 and not args.chunk_shape:
            raise SystemExit("--workers needs --chunk-size or --chunk-shape "
                             "(single-shot compression runs in-process)")
        if args.chunk_shape:
            # N-d chunk grid (format v3): memory-map the input and compress a
            # row-major grid of independent tiles, so `repro extract` can later
            # seek to any sub-region without decoding the rest.
            data = map_f32(args.input, args.dims)
            blob = api.compress_chunked(data, codec=compressor, bound=bound,
                                        chunk_shape=tuple(args.chunk_shape),
                                        workers=args.workers,
                                        embed_model=args.embed_model,
                                        dtype=np.float64)
            header = api.read_header(blob)
            detail = (f", grid {'x'.join(str(g) for g in header.grid_shape)}"
                      f" = {header.n_tiles} tiles, workers {args.workers}")
        elif args.chunk_size > 0:
            # Memory-map the input and stream row slabs through the chunked
            # pipeline — the field never fully resides in RAM; the per-slab
            # float64 cast gives codecs the same input as the single-shot path.
            data = map_f32(args.input, args.dims)
            blob = api.compress_chunked(data, codec=compressor, bound=bound,
                                        chunk_size=args.chunk_size,
                                        workers=args.workers,
                                        embed_model=args.embed_model,
                                        dtype=np.float64)
            detail = (f", {api.read_header(blob).n_chunks} chunks"
                      f", workers {args.workers}")
        else:
            data = load_f32(args.input, args.dims).astype(np.float64)
            blob = api.compress(data, codec=compressor, bound=bound,
                                embed_model=args.embed_model)
            detail = ""
    except ValueError as exc:
        raise SystemExit(str(exc))
    Path(args.output).write_bytes(blob)
    print(f"{args.input}: {data.size * 4} -> {len(blob)} bytes "
          f"(ratio {compression_ratio(data.size * 4, len(blob)):.2f}x, "
          f"bound {bound.mode}={bound.value:g}, codec {args.compressor}{detail})")
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    blob = Path(args.input).read_bytes()
    if is_archive(blob):
        header = api.read_header(blob)
        if args.compressor and compressor_spec(args.compressor).name != header.codec:
            raise SystemExit(
                f"archive was written by codec {header.codec!r}, not {args.compressor!r}")
        if args.dims and tuple(args.dims) != header.shape:
            raise SystemExit(f"archive shape {header.shape} != --dims {tuple(args.dims)}")
        try:
            reconstruction = api.decompress(blob, model=args.model,
                                            workers=args.workers)
        except ValueError as exc:
            raise SystemExit(str(exc))
    else:
        # Legacy raw payload (pre-archive format): decoded exactly as before —
        # --compressor defaults to aesz (which needs the model + architecture
        # flags) and --dims is required because the payload carries no shape.
        if not args.compressor:
            args.compressor = "aesz"
        if not args.dims:
            raise SystemExit("raw (pre-archive) payloads need --dims")
        compressor = _make_compressor(args)
        reconstruction = compressor.decompress(blob)
        if tuple(reconstruction.shape) != tuple(args.dims):
            raise SystemExit(
                f"decompressed shape {reconstruction.shape} != --dims {tuple(args.dims)}")
    save_f32(args.output, reconstruction)
    print(f"{args.input}: reconstructed field written to {args.output}")
    return 0


def _cmd_extract(args: argparse.Namespace) -> int:
    try:
        region = api.parse_region(args.region)
        header = api.read_header(args.input)  # header-only read, however large
        bounds = api.normalize_region(region, header.shape)
        shape = tuple(stop - start for start, stop in bounds)
        if int(np.prod(shape)) == 0:
            Path(args.output).write_bytes(b"")
            print(f"{args.input}: region {args.region} is empty for shape "
                  f"{header.shape}; wrote 0 bytes to {args.output}")
            return 0
        # Gather decoded tiles straight into an on-disk float32 memmap: the
        # region is streamed tile by tile and never materializes in RAM.
        out = create_f32(args.output, shape)
        decoded = 0
        for local, piece in api.iter_region_tiles(args.input, region,
                                                  model=args.model,
                                                  workers=args.workers):
            out[local] = piece  # float32 storage, same convention as decompress
            decoded += 1
        out.flush()
    except (OSError, ValueError) as exc:
        # OSError: an http(s):// input whose endpoint cannot serve ranges
        # (or a plain unreadable file) — same clean exit either way.
        raise SystemExit(str(exc))
    total = getattr(header, "n_tiles", 1)
    print(f"{args.input}: region {args.region} -> {args.output} "
          f"(shape {shape}, decoded {decoded} of {total} tiles)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.store import ArchiveStore, IngestManager, make_server

    if args.writable and not args.root:
        raise SystemExit("--writable needs --root DIR (the ingest path is "
                         "durable: archives and the manifest live under it)")
    if args.auth_token and not args.root:
        raise SystemExit("--auth-token needs --root DIR (tokens persist in "
                         "the root's manifest)")
    if not args.archives and not args.root and not args.peer:
        raise SystemExit("nothing to serve: pass KEY=PATH archives, "
                         "--root DIR and/or --peer URL")
    store = ArchiveStore(cache_bytes=int(args.cache_mb * 1024 * 1024),
                         spill_dir=args.spill_dir,
                         spill_bytes=int(args.spill_mb * 1024 * 1024))
    manager = None
    try:
        if args.root:
            quota = (int(args.quota_mb * 1024 * 1024)
                     if args.quota_mb > 0 else None)
            manager = IngestManager(args.root, store, quota_bytes=quota,
                                    model=args.model)
            for stale in manager.sweep():
                print(f"  swept stale file: {stale}", file=sys.stderr)
            for key, reason in manager.replay():
                print(f"  cannot serve manifest key {key!r}: {reason}",
                      file=sys.stderr)
            if args.auth_token:
                manager.manifest.set_auth("*", args.auth_token)
        for spec in args.archives:
            key, sep, path = spec.partition("=")
            if is_url(spec):
                # A bare URL ('=' may appear in its query string): key from
                # the last URL path segment's stem, like a bare file path.
                name = PurePosixPath(urlsplit(spec).path).stem
                if not name:
                    raise SystemExit(
                        f"cannot derive a key from {spec!r}; pass KEY={spec}")
                key, path = name, spec
            elif (not sep or "/" in key or "\\" in key
                    or Path(spec).is_file()):
                # KEY=PATH only when the left side could be a key and the
                # whole spec is not itself a file — a '=' inside a bare path
                # (/data/run=3/f.rpra, run=3.rpra) must not split it.
                key, path = Path(spec).stem, spec
            store.add(key, path, model=args.model)
    except (OSError, ValueError) as exc:
        store.close()
        raise SystemExit(str(exc))
    try:
        server = make_server(store, args.host, args.port,
                             quiet=not args.verbose,
                             ingest=manager if args.writable else None,
                             server=args.server,
                             read_timeout=args.timeout if args.timeout > 0
                             else None,
                             max_connections=args.max_connections,
                             workers=args.workers if args.workers > 0
                             else None,
                             peers=args.peer or None)
    except OSError as exc:  # e.g. the port is already in use
        store.close()
        raise SystemExit(f"cannot bind {args.host}:{args.port}: {exc}")
    for key in store.keys():
        index = store.info(key)
        print(f"  {server.url}/v1/{key}/region?r=...  "
              f"[{index.codec}, shape {index.shape}, dtype {index.dtype}]")
    mode = " [writable]" if args.writable else ""
    # The port line last, flushed: launchers (tests, scripts) wait for it.
    print(f"serving {len(store.keys())} archive(s) on {server.url}{mode} "
          f"(Ctrl-C to stop)", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        store.close()
    return 0


def _cmd_push(args: argparse.Namespace) -> int:
    from repro.store import PushError, delete_key, push_field

    try:
        if args.delete:
            payload = delete_key(args.url, args.key, token=args.token)
            print(f"{args.key}: deleted from {args.url} "
                  f"(was generation {payload.get('generation', '?')})")
            return 0
        if not args.input:
            raise SystemExit("push needs a FIELD file (or --delete)")
        bound = ErrorBound(args.mode, args.error_bound)
        payload = push_field(args.url, args.key, args.input, bound=bound,
                             dims=args.dims, codec=args.compressor,
                             token=args.token)
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc))
    except PushError as exc:
        raise SystemExit(f"push refused by {args.url}: {exc}")
    verb = "created" if payload.get("created") else "replaced"
    field_bytes = int(np.prod(payload["shape"], dtype=np.int64)
                      * np.dtype(payload["dtype"]).itemsize)
    print(f"{args.input} -> {args.url}/v1/{args.key}: {verb} generation "
          f"{payload['generation']} ({payload['archive_bytes']} bytes, "
          f"ratio {compression_ratio(field_bytes, payload['archive_bytes']):.2f}x, "
          f"codec {payload['codec']}, bound {payload['bound']['mode']}="
          f"{payload['bound']['value']:g}, token {payload['token'][:12]}...)")
    return 0


def _grid_summary(header) -> str:
    """One line describing how an archive is chunked (for `repro info`)."""
    if hasattr(header, "grid_shape"):  # v3 N-d grid
        return (f"chunk shape {tuple(header.chunk_shape)}, grid "
                f"{'x'.join(str(g) for g in header.grid_shape)}, "
                f"{header.n_tiles} tiles")
    if hasattr(header, "n_chunks"):  # v2 axis-0 slabs
        rows = max(b - a for a, b in zip(header.starts, header.starts[1:]))
        return (f"axis {header.axis}, {rows} rows per chunk, "
                f"{header.n_chunks} chunks")
    return "single-shot (1 payload)"


def _info_archive(path: str) -> int:
    # One reader serves both the size and the header parse, so an
    # http(s):// archive is inspected with two small range requests —
    # never a full download.
    try:
        with api.open_reader(path) as reader:
            blob_size = reader.size
            header = api.load_index(reader)
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc))
    bound = ErrorBound(header.bound_mode, header.bound_value)
    kinds = {1: "single-shot", 2: "chunked, axis-0 slabs", 3: "N-d chunk grid"}
    print(f"archive : {path} ({blob_size} bytes)")
    print(f"format  : RPRA v{header.version} ({kinds.get(header.version, 'unknown')})")
    print(f"codec   : {header.codec}")
    print(f"shape   : {header.shape}, dtype {header.dtype}")
    print(f"bound   : {header.bound_mode} = {header.bound_value:g}  "
          f"({bound.description})")
    print(f"tiles   : {_grid_summary(header)}")
    ratio = compression_ratio(header.n_points * np.dtype(header.dtype).itemsize,
                              blob_size)
    print(f"ratio   : {ratio:.2f}x vs uncompressed {header.dtype}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Lazy: the lint engine is pure stdlib but only dev workflows need it.
    from repro.lint import main as lint_main

    argv = list(args.paths)
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


def _cmd_info(args: argparse.Namespace) -> int:
    if len(args.files) == 1:
        return _info_archive(args.files[0])
    if len(args.files) != 2:
        raise SystemExit("info takes one archive file, or two raw fields "
                         "(original reconstructed) to compare")
    if not args.dims:
        raise SystemExit("comparing raw float32 fields needs --dims")
    original = load_f32(args.files[0], args.dims).astype(np.float64)
    reconstructed = load_f32(args.files[1], args.dims).astype(np.float64)
    print(f"PSNR            : {psnr(original, reconstructed):.2f} dB")
    print(f"max error/range : {max_rel_error(original, reconstructed):.3e}")
    if args.compressed:
        blob = Path(args.compressed).read_bytes()
        if is_archive(blob):
            header = api.read_header(blob)
            print(f"archive         : codec {header.codec}, shape {header.shape}, "
                  f"dtype {header.dtype}, bound {header.bound_mode}={header.bound_value:g}"
                  f", {_grid_summary(header)}")
        print(f"compression     : {compression_ratio(original.size * 4, len(blob)):.2f}x "
              f"({len(blob)} bytes)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"list": _cmd_list, "train": _cmd_train, "compress": _cmd_compress,
                "decompress": _cmd_decompress, "extract": _cmd_extract,
                "serve": _cmd_serve, "push": _cmd_push, "info": _cmd_info,
                "lint": _cmd_lint}
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())

"""Command-line interface: train, compress, decompress and inspect.

Gives the library the same day-to-day ergonomics as the SZ/ZFP command-line
tools, operating on raw SDRBench-style binary files::

    # train a model on one or more snapshots of a field
    python -m repro train --model swae.npz --dims 256 512 --block-size 32 \
        --latent-size 16 snapshot0.f32 snapshot1.f32

    # compress / decompress with a value-range-relative error bound
    python -m repro compress   --model swae.npz --dims 256 512 --error-bound 1e-2 \
        snapshot9.f32 snapshot9.aesz
    python -m repro decompress --model swae.npz --dims 256 512 \
        snapshot9.aesz snapshot9.out.f32

    # compare against the original and print ratio / PSNR / max error
    python -m repro info --dims 256 512 snapshot9.f32 snapshot9.out.f32

Baseline compressors are available through ``--compressor`` (``aesz`` needs a
trained ``--model``; ``sz21``, ``zfp``, ``szauto`` and ``szinterp`` do not).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro.autoencoders import AutoencoderConfig, SlicedWassersteinAutoencoder
from repro.compressors import SZ21Compressor, SZAutoCompressor, SZInterpCompressor, ZFPCompressor
from repro.core import AESZCompressor, AESZConfig
from repro.data.loader import load_f32, save_f32
from repro.metrics import compression_ratio, max_rel_error, psnr
from repro.nn import TrainingConfig

BASELINES = {
    "sz21": SZ21Compressor,
    "zfp": ZFPCompressor,
    "szauto": SZAutoCompressor,
    "szinterp": SZInterpCompressor,
}


def _add_dims(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dims", type=int, nargs="+", required=True,
                        help="field dimensions, e.g. --dims 256 512 or --dims 64 64 64")


def _ae_config_from_args(args: argparse.Namespace) -> AutoencoderConfig:
    return AutoencoderConfig(ndim=len(args.dims), block_size=args.block_size,
                             latent_size=args.latent_size,
                             channels=tuple(args.channels), seed=args.seed)


def _load_aesz(args: argparse.Namespace) -> AESZCompressor:
    config = _ae_config_from_args(args)
    model = SlicedWassersteinAutoencoder(config)
    model.load(args.model)
    return AESZCompressor(model, AESZConfig(block_size=config.block_size))


def _make_compressor(args: argparse.Namespace):
    if args.compressor == "aesz":
        if not args.model:
            raise SystemExit("--model is required for the aesz compressor")
        return _load_aesz(args)
    return BASELINES[args.compressor]()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro",
                                     description="AE-SZ error-bounded lossy compression")
    sub = parser.add_subparsers(dest="command", required=True)

    # ------------------------------------------------------------------ train
    train = sub.add_parser("train", help="train an AE-SZ autoencoder on snapshots")
    _add_dims(train)
    train.add_argument("snapshots", nargs="+", help="raw float32 snapshot files")
    train.add_argument("--model", required=True, help="output .npz model path")
    train.add_argument("--block-size", type=int, default=32)
    train.add_argument("--latent-size", type=int, default=16)
    train.add_argument("--channels", type=int, nargs="+", default=[4, 8])
    train.add_argument("--epochs", type=int, default=10)
    train.add_argument("--batch-size", type=int, default=32)
    train.add_argument("--learning-rate", type=float, default=2e-3)
    train.add_argument("--max-blocks", type=int, default=1024)
    train.add_argument("--seed", type=int, default=0)

    # --------------------------------------------------------------- compress
    comp = sub.add_parser("compress", help="compress a raw float32 field")
    _add_dims(comp)
    comp.add_argument("input", help="raw float32 input file")
    comp.add_argument("output", help="compressed output file")
    comp.add_argument("--error-bound", type=float, required=True,
                      help="value-range-relative error bound, e.g. 1e-2")
    comp.add_argument("--compressor", choices=["aesz"] + sorted(BASELINES), default="aesz")
    comp.add_argument("--model", help=".npz model (required for aesz)")
    comp.add_argument("--block-size", type=int, default=32)
    comp.add_argument("--latent-size", type=int, default=16)
    comp.add_argument("--channels", type=int, nargs="+", default=[4, 8])
    comp.add_argument("--seed", type=int, default=0)

    # ------------------------------------------------------------- decompress
    dec = sub.add_parser("decompress", help="decompress a stream produced by 'compress'")
    _add_dims(dec)
    dec.add_argument("input", help="compressed input file")
    dec.add_argument("output", help="raw float32 output file")
    dec.add_argument("--compressor", choices=["aesz"] + sorted(BASELINES), default="aesz")
    dec.add_argument("--model", help=".npz model (required for aesz)")
    dec.add_argument("--block-size", type=int, default=32)
    dec.add_argument("--latent-size", type=int, default=16)
    dec.add_argument("--channels", type=int, nargs="+", default=[4, 8])
    dec.add_argument("--seed", type=int, default=0)

    # ------------------------------------------------------------------- info
    info = sub.add_parser("info", help="compare an original and a reconstructed field")
    _add_dims(info)
    info.add_argument("original", help="raw float32 original file")
    info.add_argument("reconstructed", help="raw float32 reconstructed file")
    info.add_argument("--compressed", help="optional compressed file (for the ratio)")
    return parser


def _cmd_train(args: argparse.Namespace) -> int:
    snapshots = [load_f32(path, args.dims).astype(np.float64) for path in args.snapshots]
    config = _ae_config_from_args(args)
    model = SlicedWassersteinAutoencoder(config)
    compressor = AESZCompressor(model, AESZConfig(block_size=config.block_size))
    history = compressor.train(
        snapshots,
        TrainingConfig(epochs=args.epochs, batch_size=args.batch_size,
                       learning_rate=args.learning_rate, seed=args.seed),
        max_blocks=args.max_blocks, seed=args.seed)
    model.save(args.model)
    print(f"trained on {len(snapshots)} snapshot(s); final loss {history.final_loss:.6f}; "
          f"model written to {args.model}")
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    data = load_f32(args.input, args.dims).astype(np.float64)
    compressor = _make_compressor(args)
    payload = compressor.compress(data, args.error_bound)
    Path(args.output).write_bytes(payload)
    print(f"{args.input}: {data.size * 4} -> {len(payload)} bytes "
          f"(ratio {compression_ratio(data.size * 4, len(payload)):.2f}x)")
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    payload = Path(args.input).read_bytes()
    compressor = _make_compressor(args)
    reconstruction = compressor.decompress(payload)
    expected = tuple(args.dims)
    if tuple(reconstruction.shape) != expected:
        raise SystemExit(f"decompressed shape {reconstruction.shape} != --dims {expected}")
    save_f32(args.output, reconstruction)
    print(f"{args.input}: reconstructed field written to {args.output}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    original = load_f32(args.original, args.dims).astype(np.float64)
    reconstructed = load_f32(args.reconstructed, args.dims).astype(np.float64)
    print(f"PSNR            : {psnr(original, reconstructed):.2f} dB")
    print(f"max error/range : {max_rel_error(original, reconstructed):.3e}")
    if args.compressed:
        nbytes = Path(args.compressed).stat().st_size
        print(f"compression     : {compression_ratio(original.size * 4, nbytes):.2f}x "
              f"({nbytes} bytes)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"train": _cmd_train, "compress": _cmd_compress,
                "decompress": _cmd_decompress, "info": _cmd_info}
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())

"""Error-bounded lossy compressors used as baselines in the paper's evaluation.

All compressors implement the :class:`repro.compressors.base.Compressor`
interface (``compress(data, rel_error_bound) -> bytes`` /
``decompress(bytes) -> ndarray``), which is also satisfied by
:class:`repro.core.aesz.AESZCompressor`.
"""

from repro.compressors.base import Compressor, CompressorResult
from repro.compressors.sz21 import SZ21Compressor
from repro.compressors.zfp import ZFPCompressor
from repro.compressors.szauto import SZAutoCompressor
from repro.compressors.szinterp import SZInterpCompressor
from repro.compressors.ae_a import AEACompressor
from repro.compressors.ae_b import AEBCompressor
from repro.compressors.lossless import LosslessCompressor

__all__ = [
    "Compressor",
    "CompressorResult",
    "SZ21Compressor",
    "ZFPCompressor",
    "SZAutoCompressor",
    "SZInterpCompressor",
    "AEACompressor",
    "AEBCompressor",
    "LosslessCompressor",
]

"""AE-A comparator compressor (Liu et al., "High-ratio lossy compression", 2021).

The original approach reduces flattened 1-D segments by 512x with a
fully-connected autoencoder and then compresses the residual (".dvalue") file
with SZ2.1 under the user's error bound, which is also how the paper evaluates
it.  This wrapper reproduces that pipeline on top of
:class:`repro.autoencoders.ae_a.FullyConnectedAutoencoder` and our SZ2.1
reimplementation, making AE-A error bounded end to end.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.autoencoders.ae_a import FullyConnectedAutoencoder
from repro.compressors.base import Compressor
from repro.compressors.sz21 import SZ21Compressor
from repro.encoding.container import ByteContainer
from repro.nn.serialization import (
    dump_model_blob,
    fingerprint_with_norm,
    restore_archived_model,
)
from repro.nn.training import Trainer, TrainingConfig
from repro.registry import register_compressor
from repro.utils.validation import ensure_float_array, ensure_positive


@register_compressor("ae_a", aliases=("ae-a", "aea"), accepts_model=True,
                     description="AE-A comparator: fully-connected AE + SZ2.1 residuals")
class AEACompressor(Compressor):
    """Fully-connected AE + SZ2.1-compressed residuals."""

    name = "AE-A"

    def __init__(self, autoencoder: Optional[FullyConnectedAutoencoder] = None,
                 segment_length: int = 512, seed: int = 0):
        self.autoencoder = autoencoder or FullyConnectedAutoencoder(
            segment_length=segment_length, seed=seed)
        self.segment_length = self.autoencoder.segment_length
        self._residual_compressor = SZ21Compressor()

    # ------------------------------------------------------------------ train
    def train(self, snapshots: Sequence[np.ndarray],
              training: Optional[TrainingConfig] = None, max_segments: int = 4096,
              seed: int = 0):
        """Train the fully-connected AE on flattened 1-D segments."""
        segments = []
        for snapshot in snapshots:
            segments.append(self._segment(np.asarray(snapshot, dtype=np.float64)))
        all_segments = np.concatenate(segments, axis=0)
        if all_segments.shape[0] > max_segments:
            rng = np.random.default_rng(seed)
            idx = rng.choice(all_segments.shape[0], size=max_segments, replace=False)
            all_segments = all_segments[idx]
        self.autoencoder.fit_normalization(all_segments)
        trainer = Trainer(self.autoencoder, config=training or TrainingConfig())
        return trainer.fit(all_segments[:, None, :])

    # ------------------------------------------------------- archive support
    def archive_state(self, embed_model: bool = True) -> Tuple[dict, Dict[str, bytes]]:
        ae = self.autoencoder
        meta = {
            "model_sha256": fingerprint_with_norm(ae),
            "ae_init": {"segment_length": ae.segment_length, "reduction": ae.reduction,
                        "n_layers": ae.n_layers, "seed": ae.config.seed},
        }
        blobs = {"model": dump_model_blob(ae)} if embed_model else {}
        return meta, blobs

    @classmethod
    def from_archive_state(cls, meta: dict, blobs: Dict[str, bytes],
                           autoencoder: Optional[FullyConnectedAutoencoder] = None,
                           model=None, **opts) -> "AEACompressor":
        autoencoder = restore_archived_model(
            lambda: FullyConnectedAutoencoder(**meta["ae_init"]), meta, blobs,
            autoencoder=autoencoder, model=model, codec_label="AE-A")
        return cls(autoencoder=autoencoder, **opts)

    # ------------------------------------------------------------------ pieces
    def _segment(self, data: np.ndarray) -> np.ndarray:
        flat = data.ravel()
        pad = (-flat.size) % self.segment_length
        if pad:
            flat = np.concatenate([flat, np.full(pad, flat[-1])])
        return flat.reshape(-1, self.segment_length)

    # ---------------------------------------------------------------- compress
    def compress(self, data: np.ndarray, rel_error_bound: float) -> bytes:
        ensure_positive(rel_error_bound, "rel_error_bound")
        data = ensure_float_array(data, "data")
        segments = self._segment(data)
        latents = self.autoencoder.encode(segments)
        ae_recon = self.autoencoder.decode(latents)
        flat_recon = ae_recon.ravel()[: data.size].reshape(data.shape)

        residual = data - flat_recon
        # The user's bound is relative to the *original* field's value range;
        # rescale it so the residual compressor enforces the same absolute bound.
        from repro.utils.validation import value_range

        abs_eb = rel_error_bound * value_range(data) if value_range(data) > 0 else rel_error_bound
        residual_range = value_range(residual)
        residual_rel = abs_eb / residual_range if residual_range > 0 else rel_error_bound
        residual_payload = self._residual_compressor.compress(residual, residual_rel)

        container = ByteContainer()
        container.put_json("meta", {
            "shape": list(data.shape),
            "n_segments": int(segments.shape[0]),
            "rel_error_bound": float(rel_error_bound),
        })
        container["latents"] = latents.astype(np.float32).tobytes()
        container["residual"] = residual_payload
        return container.to_bytes()

    def decompress(self, payload: bytes) -> np.ndarray:
        container = ByteContainer.from_bytes(payload)
        meta = container.get_json("meta")
        shape = tuple(meta["shape"])
        n_segments = int(meta["n_segments"])
        latent_size = self.autoencoder.config.latent_size
        latents = np.frombuffer(container["latents"], dtype=np.float32).astype(np.float64)
        latents = latents.reshape(n_segments, latent_size)
        ae_recon = self.autoencoder.decode(latents)
        n_points = int(np.prod(shape))
        flat_recon = ae_recon.ravel()[:n_points].reshape(shape)
        residual = self._residual_compressor.decompress(container["residual"])
        return flat_recon + residual

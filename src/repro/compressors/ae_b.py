"""AE-B comparator compressor (Glaws et al., 2020).

A pure convolutional autoencoder with a *fixed* compression ratio and *no*
error bound: the compressed stream is simply the latent feature maps stored in
single precision.  The ``rel_error_bound`` argument is accepted for interface
compatibility but ignored (exactly the limitation the paper points out).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.autoencoders.ae_b import ResidualConvAutoencoder
from repro.compressors.base import Compressor
from repro.core.blocking import BlockGrid, reassemble_blocks, split_into_blocks
from repro.encoding.container import ByteContainer
from repro.nn.serialization import (
    dump_model_blob,
    fingerprint_with_norm,
    restore_archived_model,
)
from repro.nn.training import Trainer, TrainingConfig
from repro.registry import register_compressor
from repro.utils.validation import ensure_float_array


@register_compressor("ae_b", aliases=("ae-b", "aeb"), error_bounded=False, accepts_model=True,
                     description="AE-B comparator: fixed-ratio conv AE (NOT error bounded)")
class AEBCompressor(Compressor):
    """Fixed-ratio, non-error-bounded convolutional AE compressor."""

    name = "AE-B"

    def __init__(self, autoencoder: Optional[ResidualConvAutoencoder] = None,
                 block_size: int = 16, ndim: int = 3, seed: int = 0):
        self.autoencoder = autoencoder or ResidualConvAutoencoder(
            block_size=block_size, ndim=ndim, seed=seed)
        self.block_size = self.autoencoder.config.block_size

    def train(self, snapshots: Sequence[np.ndarray],
              training: Optional[TrainingConfig] = None, max_blocks: int = 2048,
              seed: int = 0):
        """Fine-tune / train the residual AE on snapshot blocks."""
        blocks_list = []
        for snapshot in snapshots:
            blocks, _ = split_into_blocks(np.asarray(snapshot, dtype=np.float64),
                                          self.block_size)
            blocks_list.append(blocks)
        all_blocks = np.concatenate(blocks_list, axis=0)
        if all_blocks.shape[0] > max_blocks:
            rng = np.random.default_rng(seed)
            idx = rng.choice(all_blocks.shape[0], size=max_blocks, replace=False)
            all_blocks = all_blocks[idx]
        self.autoencoder.fit_normalization(all_blocks)
        trainer = Trainer(self.autoencoder, config=training or TrainingConfig())
        return trainer.fit(all_blocks[:, None, ...])

    @property
    def fixed_compression_ratio(self) -> float:
        return self.autoencoder.fixed_compression_ratio

    # ------------------------------------------------------- archive support
    def archive_state(self, embed_model: bool = True) -> Tuple[dict, Dict[str, bytes]]:
        ae = self.autoencoder
        meta = {
            "model_sha256": fingerprint_with_norm(ae),
            "ae_init": {"block_size": ae.config.block_size, "ndim": ae.config.ndim,
                        "channels": ae.conv_channels, "latent_channels": ae.latent_channels,
                        "n_residual": ae.n_residual, "n_compression": ae.n_compression,
                        "seed": ae.config.seed},
        }
        blobs = {"model": dump_model_blob(ae)} if embed_model else {}
        return meta, blobs

    @classmethod
    def from_archive_state(cls, meta: dict, blobs: Dict[str, bytes],
                           autoencoder: Optional[ResidualConvAutoencoder] = None,
                           model=None, **opts) -> "AEBCompressor":
        autoencoder = restore_archived_model(
            lambda: ResidualConvAutoencoder(**meta["ae_init"]), meta, blobs,
            autoencoder=autoencoder, model=model, codec_label="AE-B")
        return cls(autoencoder=autoencoder, **opts)

    def compress(self, data: np.ndarray, rel_error_bound: float = 0.0) -> bytes:
        data = ensure_float_array(data, "data")
        blocks, grid = split_into_blocks(data, self.block_size)
        latents = []
        for start in range(0, blocks.shape[0], 256):
            latents.append(self.autoencoder.encode(blocks[start:start + 256]))
        latents = np.concatenate(latents, axis=0)

        container = ByteContainer()
        container.put_json("meta", {
            "grid": grid.to_dict(),
            "latent_size": int(latents.shape[1]),
        })
        container["latents"] = latents.astype(np.float32).tobytes()
        return container.to_bytes()

    def decompress(self, payload: bytes) -> np.ndarray:
        container = ByteContainer.from_bytes(payload)
        meta = container.get_json("meta")
        grid = BlockGrid.from_dict(meta["grid"])
        latent_size = int(meta["latent_size"])
        latents = np.frombuffer(container["latents"], dtype=np.float32).astype(np.float64)
        latents = latents.reshape(grid.n_blocks, latent_size)
        blocks = []
        for start in range(0, grid.n_blocks, 256):
            blocks.append(self.autoencoder.decode(latents[start:start + 256]))
        return reassemble_blocks(np.concatenate(blocks, axis=0), grid)

"""Common compressor interface and result record."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.metrics.error import max_abs_error, psnr
from repro.metrics.rate import bit_rate, compression_ratio


class Compressor:
    """Interface of every (de)compressor in the library.

    ``rel_error_bound`` is a value-range-based relative bound, matching the
    paper's experimental configuration (Section V-A5); the absolute bound is
    derived per input as ``eps * (max(D) - min(D))``.
    """

    name: str = "compressor"

    def compress(self, data: np.ndarray, rel_error_bound: float) -> bytes:
        raise NotImplementedError

    def decompress(self, payload: bytes) -> np.ndarray:
        raise NotImplementedError

    # Convenience -----------------------------------------------------------
    def roundtrip(self, data: np.ndarray, rel_error_bound: float) -> "CompressorResult":
        """Compress + decompress and collect the standard quality metrics."""
        data = np.asarray(data)
        payload = self.compress(data, rel_error_bound)
        reconstructed = self.decompress(payload)
        return CompressorResult(
            compressor=self.name,
            rel_error_bound=float(rel_error_bound),
            compressed_bytes=len(payload),
            original_bytes=int(data.size * 4),
            psnr=psnr(data, reconstructed),
            max_abs_error=max_abs_error(data, reconstructed),
            reconstructed=reconstructed,
        )


@dataclass
class CompressorResult:
    """Metrics of one compress/decompress round trip."""

    compressor: str
    rel_error_bound: float
    compressed_bytes: int
    original_bytes: int
    psnr: float
    max_abs_error: float
    reconstructed: Optional[np.ndarray] = None

    @property
    def compression_ratio(self) -> float:
        return compression_ratio(self.original_bytes, self.compressed_bytes)

    @property
    def bit_rate(self) -> float:
        n_points = self.original_bytes // 4
        return bit_rate(self.compressed_bytes, n_points)

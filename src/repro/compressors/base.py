"""Common compressor interface and result record."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.metrics.error import max_abs_error, psnr
from repro.metrics.rate import bit_rate, compression_ratio


class Compressor:
    """Interface of every (de)compressor in the library.

    ``rel_error_bound`` is a value-range-based relative bound, matching the
    paper's experimental configuration (Section V-A5); the absolute bound is
    derived per input as ``eps * (max(D) - min(D))``.  Absolute and
    pointwise-relative bounds are layered on top by :mod:`repro.api`.
    """

    name: str = "compressor"

    # True for codecs that run their own bound-safe cast back to the input
    # dtype (AE-SZ); tells the facade not to apply its cast plan on top.
    manages_output_dtype: bool = False

    def compress(self, data: np.ndarray, rel_error_bound: float) -> bytes:
        raise NotImplementedError

    def decompress(self, payload: bytes) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------- archive support
    def archive_state(self, embed_model: bool = True) -> Tuple[dict, Dict[str, bytes]]:
        """Codec-private archive contents: JSON-able metadata + binary sections.

        Codecs whose decompression depends on constructor settings record them
        under ``meta["options"]`` (the default restore re-applies them);
        model-backed codecs additionally record the model fingerprint and,
        when ``embed_model`` is true, the weights themselves.
        """
        options = self.archive_options()
        return ({"options": options} if options else {}), {}

    def archive_options(self) -> dict:
        """Constructor kwargs a decompressor needs to rebuild this codec."""
        return {}

    @classmethod
    def from_archive_state(cls, meta: dict, blobs: Dict[str, bytes], **opts) -> "Compressor":
        """Build a decompression-ready instance from :meth:`archive_state` output.

        Archive-recorded options are applied first; caller ``opts`` win.
        """
        return cls(**{**meta.get("options", {}), **opts})

    # Convenience -----------------------------------------------------------
    def roundtrip(self, data: np.ndarray, rel_error_bound: float) -> "CompressorResult":
        """Compress + decompress and collect the standard quality metrics."""
        data = np.asarray(data)
        payload = self.compress(data, rel_error_bound)
        reconstructed = self.decompress(payload)
        return CompressorResult(
            compressor=self.name,
            rel_error_bound=float(rel_error_bound),
            compressed_bytes=len(payload),
            original_bytes=int(data.size * data.dtype.itemsize),
            psnr=psnr(data, reconstructed),
            max_abs_error=max_abs_error(data, reconstructed),
            reconstructed=reconstructed,
            n_points=int(data.size),
            original_dtype=str(data.dtype),
        )


@dataclass
class CompressorResult:
    """Metrics of one compress/decompress round trip.

    ``original_bytes`` counts the input at its true dtype width and
    ``n_points`` / ``original_dtype`` are recorded explicitly, so
    ``compression_ratio`` and ``bit_rate`` are correct for float64/float16
    inputs too (results built by legacy callers without ``n_points`` fall back
    to the historical float32-origin convention).
    """

    compressor: str
    rel_error_bound: float
    compressed_bytes: int
    original_bytes: int
    psnr: float
    max_abs_error: float
    reconstructed: Optional[np.ndarray] = None
    n_points: Optional[int] = None
    original_dtype: str = ""

    @property
    def compression_ratio(self) -> float:
        return compression_ratio(self.original_bytes, self.compressed_bytes)

    @property
    def bit_rate(self) -> float:
        n_points = self.n_points
        if n_points is None:
            itemsize = np.dtype(self.original_dtype).itemsize if self.original_dtype else 4
            n_points = self.original_bytes // itemsize
        return bit_rate(self.compressed_bytes, n_points)

"""Lossless reference compressor (the ~2:1 baseline mentioned in the paper's intro)."""

from __future__ import annotations

import numpy as np

from repro.compressors.base import Compressor
from repro.encoding.container import ByteContainer
from repro.encoding.lossless import get_backend
from repro.registry import register_compressor
from repro.utils.validation import ensure_float_array


@register_compressor("lossless", aliases=("zlib",), exact=True,
                     description="lossless dictionary coding of the raw bytes (exact)")
class LosslessCompressor(Compressor):
    """Dictionary-code the raw float bytes; reconstruction is exact."""

    name = "lossless"

    def __init__(self, backend: str = "zlib"):
        self.backend = str(backend)
        self._backend = get_backend(backend)

    def archive_options(self) -> dict:
        return {"backend": self.backend}

    def compress(self, data: np.ndarray, rel_error_bound: float = 0.0) -> bytes:
        data = np.asarray(data)
        container = ByteContainer()
        container.put_json("meta", {"shape": list(data.shape), "dtype": data.dtype.str})
        container["raw"] = self._backend.compress(np.ascontiguousarray(data).tobytes())
        return container.to_bytes()

    def decompress(self, payload: bytes) -> np.ndarray:
        container = ByteContainer.from_bytes(payload)
        meta = container.get_json("meta")
        raw = self._backend.decompress(container["raw"])
        return np.frombuffer(raw, dtype=np.dtype(meta["dtype"])).reshape(meta["shape"]).copy()

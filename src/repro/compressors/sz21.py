"""SZ2.1-style error-bounded lossy compressor (Liang et al., 2018).

SZ2.1 is the main prediction-based baseline of the paper: data are processed
in small blocks and each block is predicted either by the first-order Lorenzo
predictor (using *reconstructed* neighbour values, which is what limits SZ2.1
at large error bounds) or by a blockwise linear-regression hyperplane; the
prediction errors go through linear-scale quantization, Huffman coding and a
dictionary pass.

The in-block Lorenzo scan is inherently sequential (each point's prediction
depends on the just-reconstructed neighbours); it is implemented as a tight
Python loop over the block, which is the faithful formulation — see DESIGN.md
for the performance note.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.compressors.base import Compressor
from repro.core.blocking import BlockGrid, reassemble_blocks, split_into_blocks
from repro.encoding.container import ByteContainer
from repro.encoding.entropy import EntropyCodec
from repro.encoding.lossless import get_backend
from repro.predictors.lorenzo import lorenzo_predict
from repro.predictors.regression import LinearRegressionPredictor
from repro.quantization.linear import UNPREDICTABLE_CODE
from repro.registry import register_compressor
from repro.utils.validation import ensure_float_array, ensure_positive, value_range

FLAG_LORENZO = 0
FLAG_REGRESSION = 1


def _sequential_lorenzo_encode(block: np.ndarray, error_bound: float, num_bins: int
                               ) -> Tuple[np.ndarray, List[float], np.ndarray]:
    """Classic SZ Lorenzo scan: predict from reconstructed neighbours, quantize."""
    step = 2.0 * error_bound
    center = num_bins // 2
    recon = np.zeros_like(block)
    codes = np.zeros(block.shape, dtype=np.int64)
    unpred: List[float] = []
    it = np.ndindex(*block.shape)
    ndim = block.ndim
    for idx in it:
        if ndim == 1:
            (i,) = idx
            pred = recon[i - 1] if i > 0 else 0.0
        elif ndim == 2:
            i, j = idx
            a = recon[i, j - 1] if j > 0 else 0.0
            b = recon[i - 1, j] if i > 0 else 0.0
            c = recon[i - 1, j - 1] if (i > 0 and j > 0) else 0.0
            pred = a + b - c
        else:
            i, j, k = idx
            f = lambda di, dj, dk: (  # noqa: E731
                recon[i - di, j - dj, k - dk]
                if (i - di >= 0 and j - dj >= 0 and k - dk >= 0) else 0.0
            )
            pred = (f(0, 0, 1) + f(0, 1, 0) + f(1, 0, 0)
                    - f(0, 1, 1) - f(1, 0, 1) - f(1, 1, 0) + f(1, 1, 1))
        orig = block[idx]
        q = int(round((orig - pred) / step))
        code = q + center
        value = pred + step * q
        if 1 <= code < num_bins and abs(value - orig) <= error_bound:
            codes[idx] = code
            recon[idx] = value
        else:
            codes[idx] = UNPREDICTABLE_CODE
            snapped = round(orig / step) * step
            if abs(snapped - orig) > error_bound:
                snapped = orig
            unpred.append(float(snapped))
            recon[idx] = snapped
    return codes, unpred, recon


def _sequential_lorenzo_decode(codes: np.ndarray, unpred: np.ndarray, error_bound: float,
                               num_bins: int) -> np.ndarray:
    """Invert :func:`_sequential_lorenzo_encode`."""
    step = 2.0 * error_bound
    center = num_bins // 2
    recon = np.zeros(codes.shape, dtype=np.float64)
    unpred_iter = iter(np.asarray(unpred, dtype=np.float64).tolist())
    ndim = codes.ndim
    for idx in np.ndindex(*codes.shape):
        if ndim == 1:
            (i,) = idx
            pred = recon[i - 1] if i > 0 else 0.0
        elif ndim == 2:
            i, j = idx
            a = recon[i, j - 1] if j > 0 else 0.0
            b = recon[i - 1, j] if i > 0 else 0.0
            c = recon[i - 1, j - 1] if (i > 0 and j > 0) else 0.0
            pred = a + b - c
        else:
            i, j, k = idx
            f = lambda di, dj, dk: (  # noqa: E731
                recon[i - di, j - dj, k - dk]
                if (i - di >= 0 and j - dj >= 0 and k - dk >= 0) else 0.0
            )
            pred = (f(0, 0, 1) + f(0, 1, 0) + f(1, 0, 0)
                    - f(0, 1, 1) - f(1, 0, 1) - f(1, 1, 0) + f(1, 1, 1))
        code = int(codes[idx])
        if code == UNPREDICTABLE_CODE:
            recon[idx] = next(unpred_iter)
        else:
            recon[idx] = pred + step * (code - center)
    return recon


@register_compressor("sz21", aliases=("sz2.1", "sz"),
                     description="SZ2.1-style blockwise Lorenzo + regression predictor")
class SZ21Compressor(Compressor):
    """Blockwise Lorenzo + linear-regression compressor in the SZ2.1 style."""

    name = "SZ2.1"

    def __init__(self, block_size_2d: int = 16, block_size_3d: int = 8,
                 num_bins: int = 65536, lossless_backend: str = "zlib"):
        self.block_size_2d = int(block_size_2d)
        self.block_size_3d = int(block_size_3d)
        self.num_bins = int(num_bins)
        self.lossless_backend = str(lossless_backend)
        self._entropy = EntropyCodec(backend=get_backend(lossless_backend))
        self._backend = get_backend(lossless_backend)
        self._regression = LinearRegressionPredictor()

    def archive_options(self) -> dict:
        return {"block_size_2d": self.block_size_2d, "block_size_3d": self.block_size_3d,
                "num_bins": self.num_bins, "lossless_backend": self.lossless_backend}

    def _block_size(self, ndim: int) -> int:
        if ndim >= 3:
            return self.block_size_3d
        return self.block_size_2d

    # ----------------------------------------------------------------- compress
    def compress(self, data: np.ndarray, rel_error_bound: float) -> bytes:
        ensure_positive(rel_error_bound, "rel_error_bound")
        data = ensure_float_array(data, "data")
        vrange = value_range(data)
        abs_eb = rel_error_bound * vrange if vrange > 0 else rel_error_bound

        blocks, grid = split_into_blocks(data, self._block_size(data.ndim))
        n_blocks = blocks.shape[0]
        block_axes = tuple(range(1, blocks.ndim))

        flags = np.zeros(n_blocks, dtype=np.uint8)
        all_codes: List[np.ndarray] = []
        all_unpred: List[float] = []
        reg_coefs: List[np.ndarray] = []

        # Pre-compute selection losses (on original data, as SZ2.1's sampling does).
        for b in range(n_blocks):
            block = blocks[b]
            reg_pred, coef = self._regression.fit_predict(block, abs_eb)
            reg_loss = np.abs(block - reg_pred).mean()
            lor_loss = np.abs(block - lorenzo_predict(block)).mean()
            if reg_loss < lor_loss:
                flags[b] = FLAG_REGRESSION
                from repro.quantization.linear import quantize_prediction_errors

                qr = quantize_prediction_errors(block, reg_pred, abs_eb, self.num_bins)
                all_codes.append(qr.codes.ravel())
                all_unpred.extend(qr.unpredictable.tolist())
                reg_coefs.append(np.asarray(coef.values, dtype=np.float64))
            else:
                flags[b] = FLAG_LORENZO
                codes, unpred, _ = _sequential_lorenzo_encode(block, abs_eb, self.num_bins)
                all_codes.append(codes.ravel())
                all_unpred.extend(unpred)

        codes = np.concatenate(all_codes) if all_codes else np.zeros(0, dtype=np.int64)
        container = ByteContainer()
        container.put_json("meta", {
            "grid": grid.to_dict(),
            "abs_error_bound": float(abs_eb),
            "rel_error_bound": float(rel_error_bound),
            "num_bins": int(self.num_bins),
        })
        container["flags"] = self._entropy.encode(flags.astype(np.int64))
        container["codes"] = self._entropy.encode(codes)
        container["unpred"] = self._backend.compress(
            np.asarray(all_unpred, dtype=np.float64).tobytes())
        if reg_coefs:
            container["coefs"] = self._backend.compress(
                np.concatenate(reg_coefs).astype(np.float64).tobytes())
        return container.to_bytes()

    # --------------------------------------------------------------- decompress
    def decompress(self, payload: bytes) -> np.ndarray:
        container = ByteContainer.from_bytes(payload)
        meta = container.get_json("meta")
        grid = BlockGrid.from_dict(meta["grid"])
        abs_eb = float(meta["abs_error_bound"])
        num_bins = int(meta["num_bins"])
        center = num_bins // 2
        step = 2.0 * abs_eb

        flags = self._entropy.decode(container["flags"]).astype(np.uint8)
        codes = self._entropy.decode(container["codes"])
        unpred = np.frombuffer(self._backend.decompress(container["unpred"]), dtype=np.float64)
        coefs = (np.frombuffer(self._backend.decompress(container["coefs"]), dtype=np.float64)
                 if "coefs" in container else np.zeros(0))

        block_shape = grid.block_shape
        block_elems = int(np.prod(block_shape))
        n_coef = len(block_shape) + 1
        blocks = np.zeros((grid.n_blocks,) + block_shape, dtype=np.float64)

        code_pos = 0
        unpred_pos = 0
        coef_pos = 0
        for b in range(grid.n_blocks):
            block_codes = codes[code_pos:code_pos + block_elems].reshape(block_shape)
            code_pos += block_elems
            n_unp = int(np.count_nonzero(block_codes == UNPREDICTABLE_CODE))
            block_unpred = unpred[unpred_pos:unpred_pos + n_unp]
            unpred_pos += n_unp
            if flags[b] == FLAG_REGRESSION:
                coef = coefs[coef_pos:coef_pos + n_coef]
                coef_pos += n_coef
                from repro.predictors.regression import RegressionCoefficients

                pred = self._regression.predict(block_shape, RegressionCoefficients(coef))
                from repro.quantization.linear import dequantize_prediction_errors

                blocks[b] = dequantize_prediction_errors(block_codes, pred, block_unpred,
                                                         abs_eb, num_bins)
            else:
                blocks[b] = _sequential_lorenzo_decode(block_codes, block_unpred, abs_eb,
                                                       num_bins)
        return reassemble_blocks(blocks, grid)

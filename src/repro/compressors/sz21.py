"""SZ2.1-style error-bounded lossy compressor (Liang et al., 2018).

SZ2.1 is the main prediction-based baseline of the paper: data are processed
in small blocks and each block is predicted either by the first-order Lorenzo
predictor (using *reconstructed* neighbour values, which is what limits SZ2.1
at large error bounds) or by a blockwise linear-regression hyperplane; the
prediction errors go through linear-scale quantization, Huffman coding and a
dictionary pass.

The in-block Lorenzo scan is sequential *along anti-diagonals only*: each
point's prediction depends on the just-reconstructed neighbours, but every
point on the hyperplane ``i + j (+ k) = t`` depends only on earlier
hyperplanes.  Both directions therefore run as batched hyperplane sweeps
across all blocks at once (:func:`_lorenzo_encode_blocks`,
:func:`_lorenzo_decode_blocks`): ``O(sum(block_shape))`` vector steps instead
of one Python iteration per point.  The faithful per-element formulations are
retained as the scalar reference paths — ``compress(..., scalar=True)`` /
``decompress(..., scalar=True)`` — and the vectorized paths are proven
bit-identical to them (and byte-identical at the archive level) by the
regression suite in ``tests/test_sz21_vectorized.py``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.compressors.base import Compressor
from repro.core.blocking import BlockGrid, reassemble_blocks, split_into_blocks
from repro.encoding.container import ByteContainer
from repro.encoding.entropy import EntropyCodec
from repro.encoding.lossless import get_backend
from repro.predictors.lorenzo import lorenzo_predict
from repro.predictors.regression import LinearRegressionPredictor
from repro.quantization.linear import UNPREDICTABLE_CODE
from repro.registry import register_compressor
from repro.utils.validation import ensure_float_array, ensure_positive, value_range

FLAG_LORENZO = 0
FLAG_REGRESSION = 1


def _sequential_lorenzo_encode(block: np.ndarray, error_bound: float, num_bins: int
                               ) -> Tuple[np.ndarray, List[float], np.ndarray]:
    """Classic SZ Lorenzo scan: predict from reconstructed neighbours, quantize."""
    step = 2.0 * error_bound
    center = num_bins // 2
    recon = np.zeros_like(block)
    codes = np.zeros(block.shape, dtype=np.int64)
    unpred: List[float] = []
    it = np.ndindex(*block.shape)
    ndim = block.ndim
    for idx in it:
        if ndim == 1:
            (i,) = idx
            pred = recon[i - 1] if i > 0 else 0.0
        elif ndim == 2:
            i, j = idx
            a = recon[i, j - 1] if j > 0 else 0.0
            b = recon[i - 1, j] if i > 0 else 0.0
            c = recon[i - 1, j - 1] if (i > 0 and j > 0) else 0.0
            pred = a + b - c
        else:
            i, j, k = idx
            f = lambda di, dj, dk: (  # noqa: E731
                recon[i - di, j - dj, k - dk]
                if (i - di >= 0 and j - dj >= 0 and k - dk >= 0) else 0.0
            )
            pred = (f(0, 0, 1) + f(0, 1, 0) + f(1, 0, 0)
                    - f(0, 1, 1) - f(1, 0, 1) - f(1, 1, 0) + f(1, 1, 1))
        orig = block[idx]
        q = int(round((orig - pred) / step))
        code = q + center
        value = pred + step * q
        if 1 <= code < num_bins and abs(value - orig) <= error_bound:
            codes[idx] = code
            recon[idx] = value
        else:
            codes[idx] = UNPREDICTABLE_CODE
            snapped = round(orig / step) * step
            if abs(snapped - orig) > error_bound:
                snapped = orig
            unpred.append(float(snapped))
            recon[idx] = snapped
    return codes, unpred, recon


def _sequential_lorenzo_decode(codes: np.ndarray, unpred: np.ndarray, error_bound: float,
                               num_bins: int) -> np.ndarray:
    """Invert :func:`_sequential_lorenzo_encode`."""
    step = 2.0 * error_bound
    center = num_bins // 2
    recon = np.zeros(codes.shape, dtype=np.float64)
    unpred_iter = iter(np.asarray(unpred, dtype=np.float64).tolist())
    ndim = codes.ndim
    for idx in np.ndindex(*codes.shape):
        if ndim == 1:
            (i,) = idx
            pred = recon[i - 1] if i > 0 else 0.0
        elif ndim == 2:
            i, j = idx
            a = recon[i, j - 1] if j > 0 else 0.0
            b = recon[i - 1, j] if i > 0 else 0.0
            c = recon[i - 1, j - 1] if (i > 0 and j > 0) else 0.0
            pred = a + b - c
        else:
            i, j, k = idx
            f = lambda di, dj, dk: (  # noqa: E731
                recon[i - di, j - dj, k - dk]
                if (i - di >= 0 and j - dj >= 0 and k - dk >= 0) else 0.0
            )
            pred = (f(0, 0, 1) + f(0, 1, 0) + f(1, 0, 0)
                    - f(0, 1, 1) - f(1, 0, 1) - f(1, 1, 0) + f(1, 1, 1))
        code = int(codes[idx])
        if code == UNPREDICTABLE_CODE:
            recon[idx] = next(unpred_iter)
        else:
            recon[idx] = pred + step * (code - center)
    return recon


def _lorenzo_decode_blocks(codes: np.ndarray, uvals: np.ndarray, is_unp: np.ndarray,
                           error_bound: float, num_bins: int) -> np.ndarray:
    """Hyperplane-vectorized Lorenzo decode of a whole batch of blocks at once.

    ``codes`` is ``(n_blocks, *block_shape)``; ``uvals`` carries the
    unpredictable literals scattered at their positions and ``is_unp`` marks
    them.  Points on the hyperplane ``i + j (+ k) = t`` only depend on earlier
    hyperplanes, so the in-block scan runs as ``O(sum(block_shape))`` vector
    steps across every block simultaneously instead of one Python iteration
    per point.  Each step evaluates the same expressions in the same order as
    :func:`_sequential_lorenzo_decode`, so the output is bit-identical to the
    scalar path (guarded by a regression test).
    """
    step = 2.0 * error_bound
    center = num_bins // 2
    delta = step * (codes - center)
    shape = codes.shape[1:]
    ndim = len(shape)
    recon = np.zeros(codes.shape, dtype=np.float64)
    if ndim == 1:
        prev = np.zeros(codes.shape[0], dtype=np.float64)
        for i in range(shape[0]):
            val = prev + delta[:, i]
            val = np.where(is_unp[:, i], uvals[:, i], val)
            recon[:, i] = val
            prev = val
    elif ndim == 2:
        h, w = shape
        for t in range(h + w - 1):
            i = np.arange(max(0, t - w + 1), min(t, h - 1) + 1)
            j = t - i
            im = np.maximum(i - 1, 0)
            jm = np.maximum(j - 1, 0)
            a = np.where(j > 0, recon[:, i, jm], 0.0)
            b = np.where(i > 0, recon[:, im, j], 0.0)
            c = np.where((i > 0) & (j > 0), recon[:, im, jm], 0.0)
            pred = a + b - c
            val = pred + delta[:, i, j]
            recon[:, i, j] = np.where(is_unp[:, i, j], uvals[:, i, j], val)
    else:
        d1, d2, d3 = shape
        coords = np.indices(shape).reshape(3, -1)
        plane_of = coords.sum(axis=0)

        def gather(i, j, k, di, dj, dk):
            valid = (i >= di) & (j >= dj) & (k >= dk)
            return np.where(valid, recon[:, np.maximum(i - di, 0),
                                         np.maximum(j - dj, 0),
                                         np.maximum(k - dk, 0)], 0.0)

        for t in range(d1 + d2 + d3 - 2):
            sel = plane_of == t
            i, j, k = coords[0, sel], coords[1, sel], coords[2, sel]
            pred = (gather(i, j, k, 0, 0, 1) + gather(i, j, k, 0, 1, 0)
                    + gather(i, j, k, 1, 0, 0) - gather(i, j, k, 0, 1, 1)
                    - gather(i, j, k, 1, 0, 1) - gather(i, j, k, 1, 1, 0)
                    + gather(i, j, k, 1, 1, 1))
            val = pred + delta[:, i, j, k]
            recon[:, i, j, k] = np.where(is_unp[:, i, j, k], uvals[:, i, j, k], val)
    return recon


def _lorenzo_predict_blocks(batch: np.ndarray) -> np.ndarray:
    """Batched :func:`lorenzo_predict` over ``(n_blocks, *block_shape)``.

    Same pad-and-slice expressions (with the batch axis left untouched) in
    the same order, so each slice equals the per-block result bit-for-bit.
    """
    batch = np.asarray(batch, dtype=np.float64)
    ndim = batch.ndim - 1
    padded = np.pad(batch, [(0, 0)] + [(1, 0)] * ndim, mode="constant")
    if ndim == 1:
        return padded[:, :-1]
    if ndim == 2:
        return (padded[:, 1:, :-1] + padded[:, :-1, 1:] - padded[:, :-1, :-1])
    return (
        padded[:, :-1, 1:, 1:]
        + padded[:, 1:, :-1, 1:]
        + padded[:, 1:, 1:, :-1]
        - padded[:, :-1, :-1, 1:]
        - padded[:, :-1, 1:, :-1]
        - padded[:, 1:, :-1, :-1]
        + padded[:, :-1, :-1, :-1]
    )


def _lorenzo_encode_blocks(batch: np.ndarray, error_bound: float, num_bins: int
                           ) -> Tuple[np.ndarray, np.ndarray]:
    """Hyperplane-vectorized Lorenzo encode of a whole batch of blocks at once.

    The encode counterpart of :func:`_lorenzo_decode_blocks`: quantization
    feeds the reconstructed value back into the next hyperplane's prediction,
    but every point on plane ``i + j (+ k) = t`` needs only its own original
    value and the already-reconstructed earlier planes, so the quantize step
    batches across all blocks per plane.  Each step evaluates the same
    expressions in the same order as :func:`_sequential_lorenzo_encode`
    (``np.rint`` matches Python's banker's-rounding ``round``), so codes and
    reconstruction are bit-identical to the scalar path (guarded by the
    regression suite).  Returns ``(codes, recon)``; the unpredictable
    literals sit in ``recon`` at the positions where ``codes == 0``.
    """
    step = 2.0 * error_bound
    center = num_bins // 2
    shape = batch.shape[1:]
    ndim = len(shape)
    recon = np.zeros(batch.shape, dtype=np.float64)
    codes = np.zeros(batch.shape, dtype=np.int64)

    def quantize(orig: np.ndarray, pred: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        # ``+ 0.0`` normalizes -0.0 to +0.0, matching the scalar path's
        # ``int(round(...))`` quantum (a Python int has no signed zero).
        q = np.rint((orig - pred) / step) + 0.0
        code = q + center
        value = pred + step * q
        ok = (code >= 1.0) & (code < num_bins) & (np.abs(value - orig) <= error_bound)
        snapped = (np.rint(orig / step) + 0.0) * step
        snapped = np.where(np.abs(snapped - orig) > error_bound, orig, snapped)
        # Range-check on the float code before the int cast: a huge quantum
        # must fail the guard, not wrap around int64 into the valid range.
        out = np.where(ok, code, float(UNPREDICTABLE_CODE)).astype(np.int64)
        return out, np.where(ok, value, snapped)

    if ndim == 1:
        prev = np.zeros(batch.shape[0], dtype=np.float64)
        for i in range(shape[0]):
            codes[:, i], val = quantize(batch[:, i], prev)
            recon[:, i] = val
            prev = val
    elif ndim == 2:
        h, w = shape
        for t in range(h + w - 1):
            i = np.arange(max(0, t - w + 1), min(t, h - 1) + 1)
            j = t - i
            im = np.maximum(i - 1, 0)
            jm = np.maximum(j - 1, 0)
            a = np.where(j > 0, recon[:, i, jm], 0.0)
            b = np.where(i > 0, recon[:, im, j], 0.0)
            c = np.where((i > 0) & (j > 0), recon[:, im, jm], 0.0)
            pred = a + b - c
            codes[:, i, j], recon[:, i, j] = quantize(batch[:, i, j], pred)
    else:
        d1, d2, d3 = shape
        coords = np.indices(shape).reshape(3, -1)
        plane_of = coords.sum(axis=0)

        def gather(i, j, k, di, dj, dk):
            valid = (i >= di) & (j >= dj) & (k >= dk)
            return np.where(valid, recon[:, np.maximum(i - di, 0),
                                         np.maximum(j - dj, 0),
                                         np.maximum(k - dk, 0)], 0.0)

        for t in range(d1 + d2 + d3 - 2):
            sel = plane_of == t
            i, j, k = coords[0, sel], coords[1, sel], coords[2, sel]
            pred = (gather(i, j, k, 0, 0, 1) + gather(i, j, k, 0, 1, 0)
                    + gather(i, j, k, 1, 0, 0) - gather(i, j, k, 0, 1, 1)
                    - gather(i, j, k, 1, 0, 1) - gather(i, j, k, 1, 1, 0)
                    + gather(i, j, k, 1, 1, 1))
            codes[:, i, j, k], recon[:, i, j, k] = quantize(batch[:, i, j, k], pred)
    return codes, recon


@register_compressor("sz21", aliases=("sz2.1", "sz"),
                     description="SZ2.1-style blockwise Lorenzo + regression predictor")
class SZ21Compressor(Compressor):
    """Blockwise Lorenzo + linear-regression compressor in the SZ2.1 style."""

    name = "SZ2.1"

    def __init__(self, block_size_2d: int = 16, block_size_3d: int = 8,
                 num_bins: int = 65536, lossless_backend: str = "zlib",
                 scalar: bool = False):
        self.block_size_2d = int(block_size_2d)
        self.block_size_3d = int(block_size_3d)
        self.num_bins = int(num_bins)
        self.lossless_backend = str(lossless_backend)
        # Encode-path selector only — never archived: both paths produce
        # byte-identical payloads, so the flag must not alter archive bytes.
        self.scalar = bool(scalar)
        self._entropy = EntropyCodec(backend=get_backend(lossless_backend))
        self._backend = get_backend(lossless_backend)
        self._regression = LinearRegressionPredictor()

    def archive_options(self) -> dict:
        return {"block_size_2d": self.block_size_2d, "block_size_3d": self.block_size_3d,
                "num_bins": self.num_bins, "lossless_backend": self.lossless_backend}

    def _block_size(self, ndim: int) -> int:
        if ndim >= 3:
            return self.block_size_3d
        return self.block_size_2d

    # ----------------------------------------------------------------- compress
    def _fit_regressions(self, blocks: np.ndarray, abs_eb: float
                         ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-block hyperplane fits: ``(predictions, coefficient rows)``.

        The least-squares solve stays a per-block loop — batching LAPACK's
        SVD is not bit-stable — but it is cheap once the design matrix is
        memoized; everything downstream of it is batched.
        """
        n_blocks = blocks.shape[0]
        reg_preds = np.empty(blocks.shape, dtype=np.float64)
        coef_rows = np.empty((n_blocks, blocks.ndim), dtype=np.float64)
        for b in range(n_blocks):
            reg_preds[b], coef = self._regression.fit_predict(blocks[b], abs_eb)
            coef_rows[b] = np.asarray(coef.values, dtype=np.float64)
        return reg_preds, coef_rows

    def _encode_blocks_scalar(self, blocks: np.ndarray, abs_eb: float
                              ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                         Optional[np.ndarray]]:
        """Per-element reference encode (the original SZ2.1 formulation)."""
        from repro.quantization.linear import quantize_prediction_errors

        n_blocks = blocks.shape[0]
        flags = np.zeros(n_blocks, dtype=np.uint8)
        all_codes: List[np.ndarray] = []
        all_unpred: List[float] = []
        reg_coefs: List[np.ndarray] = []

        # Selection losses are computed on original data, as SZ2.1's sampling does.
        for b in range(n_blocks):
            block = blocks[b]
            reg_pred, coef = self._regression.fit_predict(block, abs_eb)
            reg_loss = np.abs(block - reg_pred).mean()
            lor_loss = np.abs(block - lorenzo_predict(block)).mean()
            if reg_loss < lor_loss:
                flags[b] = FLAG_REGRESSION
                qr = quantize_prediction_errors(block, reg_pred, abs_eb, self.num_bins)
                all_codes.append(qr.codes.ravel())
                all_unpred.extend(qr.unpredictable.tolist())
                reg_coefs.append(np.asarray(coef.values, dtype=np.float64))
            else:
                flags[b] = FLAG_LORENZO
                codes, unpred, _ = _sequential_lorenzo_encode(block, abs_eb, self.num_bins)
                all_codes.append(codes.ravel())
                all_unpred.extend(unpred)

        codes = np.concatenate(all_codes) if all_codes else np.zeros(0, dtype=np.int64)
        unpred_arr = np.asarray(all_unpred, dtype=np.float64)
        coefs = np.concatenate(reg_coefs) if reg_coefs else None
        return flags, codes, unpred_arr, coefs

    def _encode_blocks(self, blocks: np.ndarray, abs_eb: float
                       ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                  Optional[np.ndarray]]:
        """Vectorized encode: batched selection, quantization and Lorenzo sweep.

        Bit-identical to :meth:`_encode_blocks_scalar` — same per-point
        arithmetic in the same order, with the unpredictable-literal stream
        recovered from the batched reconstruction in C order (which equals the
        scalar path's block-by-block append order).
        """
        from repro.quantization.linear import quantize_prediction_errors

        n_blocks = blocks.shape[0]
        flags = np.zeros(n_blocks, dtype=np.uint8)
        if n_blocks == 0:
            return flags, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64), None

        reg_preds, coef_rows = self._fit_regressions(blocks, abs_eb)
        reg_loss = np.abs(blocks - reg_preds).reshape(n_blocks, -1).mean(axis=1)
        lor_loss = np.abs(blocks - _lorenzo_predict_blocks(blocks)).reshape(
            n_blocks, -1).mean(axis=1)
        flags[reg_loss < lor_loss] = FLAG_REGRESSION
        reg_idx = np.flatnonzero(flags == FLAG_REGRESSION)
        lor_idx = np.flatnonzero(flags == FLAG_LORENZO)

        codes_all = np.empty(blocks.shape, dtype=np.int64)
        recon_all = np.empty(blocks.shape, dtype=np.float64)
        if reg_idx.size:
            qr = quantize_prediction_errors(blocks[reg_idx], reg_preds[reg_idx],
                                            abs_eb, self.num_bins)
            codes_all[reg_idx] = qr.codes
            scatter = np.zeros(qr.codes.shape, dtype=np.float64)
            scatter[qr.codes == UNPREDICTABLE_CODE] = qr.unpredictable
            recon_all[reg_idx] = scatter
        if lor_idx.size:
            codes_l, recon_l = _lorenzo_encode_blocks(blocks[lor_idx], abs_eb,
                                                      self.num_bins)
            codes_all[lor_idx] = codes_l
            recon_all[lor_idx] = recon_l

        codes = codes_all.reshape(-1)
        unpred_arr = recon_all[codes_all == UNPREDICTABLE_CODE]
        coefs = coef_rows[reg_idx].ravel() if reg_idx.size else None
        return flags, codes, unpred_arr, coefs

    def compress(self, data: np.ndarray, rel_error_bound: float,
                 scalar: Optional[bool] = None) -> bytes:
        """Encode ``data``; ``scalar=True`` forces the per-element reference
        encoder (byte-identical to the default vectorized one — kept for the
        regression suite and as executable documentation of the scan order).
        ``scalar=None`` defers to the constructor's ``scalar`` flag."""
        ensure_positive(rel_error_bound, "rel_error_bound")
        data = ensure_float_array(data, "data")
        vrange = value_range(data)
        abs_eb = rel_error_bound * vrange if vrange > 0 else rel_error_bound

        blocks, grid = split_into_blocks(data, self._block_size(data.ndim))
        use_scalar = self.scalar if scalar is None else bool(scalar)
        encode = self._encode_blocks_scalar if use_scalar else self._encode_blocks
        flags, codes, unpred_arr, coefs = encode(blocks, abs_eb)

        container = ByteContainer()
        container.put_json("meta", {
            "grid": grid.to_dict(),
            "abs_error_bound": float(abs_eb),
            "rel_error_bound": float(rel_error_bound),
            "num_bins": int(self.num_bins),
        })
        container["flags"] = self._entropy.encode(flags.astype(np.int64))
        container["codes"] = self._entropy.encode(codes)
        container["unpred"] = self._backend.compress(unpred_arr.tobytes())
        if coefs is not None:
            container["coefs"] = self._backend.compress(
                coefs.astype(np.float64).tobytes())
        return container.to_bytes()

    # --------------------------------------------------------------- decompress
    def decompress(self, payload: bytes, scalar: bool = False) -> np.ndarray:
        """Decode a payload; ``scalar=True`` forces the per-element reference
        path (bit-identical to the default vectorized one — kept for the
        regression test and as executable documentation of the scan order)."""
        container = ByteContainer.from_bytes(payload)
        meta = container.get_json("meta")
        grid = BlockGrid.from_dict(meta["grid"])
        abs_eb = float(meta["abs_error_bound"])
        num_bins = int(meta["num_bins"])

        flags = self._entropy.decode(container["flags"]).astype(np.uint8)
        codes = self._entropy.decode(container["codes"])
        unpred = np.frombuffer(self._backend.decompress(container["unpred"]), dtype=np.float64)
        coefs = (np.frombuffer(self._backend.decompress(container["coefs"]), dtype=np.float64)
                 if "coefs" in container else np.zeros(0))

        block_shape = grid.block_shape
        block_elems = int(np.prod(block_shape))
        n_coef = len(block_shape) + 1
        if len(flags) != grid.n_blocks or len(codes) != grid.n_blocks * block_elems:
            raise ValueError("corrupt payload: stream sizes do not match the block grid")
        if not np.all((flags == FLAG_LORENZO) | (flags == FLAG_REGRESSION)):
            raise ValueError("corrupt payload: unknown block predictor flag")
        blocks = np.zeros((grid.n_blocks,) + block_shape, dtype=np.float64)

        codes_all = codes.reshape((grid.n_blocks,) + block_shape)
        unp_mask = codes_all == UNPREDICTABLE_CODE
        counts = unp_mask.reshape(grid.n_blocks, -1).sum(axis=1)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        if offsets[-1] != unpred.size:
            raise ValueError("corrupt payload: unpredictable-value stream size mismatch")

        n_regression = int(np.count_nonzero(flags == FLAG_REGRESSION))
        if len(coefs) != n_regression * n_coef:
            raise ValueError("corrupt payload: regression coefficient stream size mismatch")

        lorenzo_idx = np.flatnonzero(flags == FLAG_LORENZO)
        if lorenzo_idx.size:
            if scalar:
                for b in lorenzo_idx:
                    blocks[b] = _sequential_lorenzo_decode(
                        codes_all[b], unpred[offsets[b]:offsets[b + 1]], abs_eb, num_bins)
            else:
                sel_mask = unp_mask[lorenzo_idx]
                uvals = np.zeros((lorenzo_idx.size,) + block_shape, dtype=np.float64)
                if counts[lorenzo_idx].sum():
                    # Boolean assignment scatters in C order, matching the
                    # order the encoder emitted the per-block literals.
                    uvals[sel_mask] = np.concatenate(
                        [unpred[offsets[b]:offsets[b + 1]] for b in lorenzo_idx])
                blocks[lorenzo_idx] = _lorenzo_decode_blocks(
                    codes_all[lorenzo_idx], uvals, sel_mask, abs_eb, num_bins)

        coef_pos = 0
        for b in np.flatnonzero(flags == FLAG_REGRESSION):
            coef = coefs[coef_pos:coef_pos + n_coef]
            coef_pos += n_coef
            from repro.predictors.regression import RegressionCoefficients

            pred = self._regression.predict(block_shape, RegressionCoefficients(coef))
            from repro.quantization.linear import dequantize_prediction_errors

            blocks[b] = dequantize_prediction_errors(
                codes_all[b], pred, unpred[offsets[b]:offsets[b + 1]], abs_eb, num_bins)
        return reassemble_blocks(blocks, grid)

"""SZauto-style compressor (Zhao et al., HPDC 2020).

SZauto augments the SZ model with second-order Lorenzo prediction and automatic
parameter selection.  This reproduction implements the two ingredients that
matter for the paper's comparison:

* integer dual-quantization Lorenzo prediction of first *and* second order
  (the same formulation SZauto/cuSZ use, which keeps every step vectorized and
  strictly error-bounded);
* automatic selection of the predictor order (and of the dictionary backend
  effort) per input by estimating the entropy of the resulting quantization
  codes on a sample.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.compressors.base import Compressor
from repro.encoding.container import ByteContainer
from repro.encoding.entropy import EntropyCodec
from repro.encoding.lossless import get_backend
from repro.predictors.lorenzo import (
    lorenzo_inverse_transform,
    lorenzo_transform,
    second_order_lorenzo_inverse,
    second_order_lorenzo_transform,
)
from repro.quantization.uniform import UniformQuantizer
from repro.registry import register_compressor
from repro.utils.validation import ensure_float_array, ensure_positive, value_range


def _code_entropy(codes: np.ndarray) -> float:
    """Empirical Shannon entropy (bits/symbol) of an integer code array."""
    if codes.size == 0:
        return 0.0
    _, counts = np.unique(codes, return_counts=True)
    p = counts / counts.sum()
    return float(-(p * np.log2(p)).sum())


@register_compressor("szauto",
                     description="SZauto-style dual-quantization Lorenzo with auto order tuning")
class SZAutoCompressor(Compressor):
    """Dual-quantization Lorenzo compressor with automatic predictor-order tuning."""

    name = "SZauto"

    def __init__(self, lossless_backend: str = "zlib", sample_fraction: float = 0.05):
        if not (0 < sample_fraction <= 1):
            raise ValueError("sample_fraction must be in (0, 1]")
        self.lossless_backend = str(lossless_backend)
        self._entropy = EntropyCodec(backend=get_backend(lossless_backend))
        self.sample_fraction = float(sample_fraction)

    def archive_options(self) -> dict:
        return {"lossless_backend": self.lossless_backend}

    def compress(self, data: np.ndarray, rel_error_bound: float) -> bytes:
        ensure_positive(rel_error_bound, "rel_error_bound")
        data = ensure_float_array(data, "data")
        vrange = value_range(data)
        abs_eb = rel_error_bound * vrange if vrange > 0 else rel_error_bound

        quantizer = UniformQuantizer(abs_eb)
        q = quantizer.quantize(data)

        first = lorenzo_transform(q)
        second = second_order_lorenzo_transform(q)

        # Automatic order selection: estimate code entropy on a subsample.
        n_sample = max(1, int(self.sample_fraction * q.size))
        idx = np.linspace(0, q.size - 1, n_sample).astype(np.int64)
        order = 1 if _code_entropy(first.ravel()[idx]) <= _code_entropy(second.ravel()[idx]) else 2
        diffs = first if order == 1 else second
        offset = int(diffs.min())

        container = ByteContainer()
        container.put_json("meta", {
            "shape": list(data.shape),
            "abs_error_bound": float(abs_eb),
            "rel_error_bound": float(rel_error_bound),
            "order": order,
            "offset": offset,
        })
        container["codes"] = self._entropy.encode(diffs - offset)
        return container.to_bytes()

    def decompress(self, payload: bytes) -> np.ndarray:
        container = ByteContainer.from_bytes(payload)
        meta = container.get_json("meta")
        shape = tuple(meta["shape"])
        abs_eb = float(meta["abs_error_bound"])
        order = int(meta["order"])
        offset = int(meta["offset"])

        diffs = self._entropy.decode(container["codes"]).reshape(shape) + offset
        q = lorenzo_inverse_transform(diffs) if order == 1 else second_order_lorenzo_inverse(diffs)
        return UniformQuantizer(abs_eb).dequantize(q)

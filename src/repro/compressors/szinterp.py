"""SZinterp-style compressor (Zhao et al., ICDE 2021).

SZinterp replaces SZ's blockwise predictors with global multi-level spline
interpolation and is the strongest traditional baseline in the paper's
evaluation.  The heavy lifting lives in
:mod:`repro.predictors.interpolation`; this class adds the entropy-coding and
stream format.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.compressors.base import Compressor
from repro.encoding.container import ByteContainer
from repro.encoding.entropy import EntropyCodec
from repro.encoding.lossless import get_backend
from repro.predictors.interpolation import (
    multilevel_interpolation_decode,
    multilevel_interpolation_encode,
    multilevel_interpolation_encode_scalar,
)
from repro.registry import register_compressor
from repro.utils.validation import ensure_float_array, ensure_positive, value_range


@register_compressor("szinterp", aliases=("sz3",),
                     description="SZinterp-style multi-level spline interpolation compressor")
class SZInterpCompressor(Compressor):
    """Multi-level cubic-spline interpolation compressor."""

    name = "SZinterp"

    def __init__(self, num_bins: int = 65536, lossless_backend: str = "zlib",
                 scalar: bool = False):
        self.num_bins = int(num_bins)
        self.lossless_backend = str(lossless_backend)
        # Encode-path selector only — never archived: both paths produce
        # byte-identical payloads, so the flag must not alter archive bytes.
        self.scalar = bool(scalar)
        self._entropy = EntropyCodec(backend=get_backend(lossless_backend))
        self._backend = get_backend(lossless_backend)

    def archive_options(self) -> dict:
        return {"num_bins": self.num_bins, "lossless_backend": self.lossless_backend}

    def compress(self, data: np.ndarray, rel_error_bound: float,
                 scalar: Optional[bool] = None) -> bytes:
        """Encode ``data``; ``scalar=True`` forces the per-point reference
        encoder (byte-identical to the default vectorized one).  ``None``
        defers to the constructor's ``scalar`` flag."""
        ensure_positive(rel_error_bound, "rel_error_bound")
        data = ensure_float_array(data, "data")
        vrange = value_range(data)
        abs_eb = rel_error_bound * vrange if vrange > 0 else rel_error_bound

        use_scalar = self.scalar if scalar is None else bool(scalar)
        encode = (multilevel_interpolation_encode_scalar if use_scalar
                  else multilevel_interpolation_encode)
        enc = encode(data, abs_eb, self.num_bins)
        anchor_offset = int(enc.anchor_codes.min()) if enc.anchor_codes.size else 0

        container = ByteContainer()
        container.put_json("meta", {
            "shape": list(data.shape),
            "abs_error_bound": float(abs_eb),
            "rel_error_bound": float(rel_error_bound),
            "num_bins": int(self.num_bins),
            "anchor_offset": anchor_offset,
            "anchor_shape": list(enc.anchor_codes.shape),
        })
        container["anchors"] = self._entropy.encode(enc.anchor_codes - anchor_offset)
        container["codes"] = self._entropy.encode(enc.codes)
        container["unpred"] = self._backend.compress(
            enc.unpredictable.astype(np.float64).tobytes())
        return container.to_bytes()

    def decompress(self, payload: bytes) -> np.ndarray:
        container = ByteContainer.from_bytes(payload)
        meta = container.get_json("meta")
        shape = tuple(meta["shape"])
        abs_eb = float(meta["abs_error_bound"])
        anchor_shape = tuple(meta["anchor_shape"])
        anchors = self._entropy.decode(container["anchors"]).reshape(anchor_shape) \
            + int(meta["anchor_offset"])
        codes = self._entropy.decode(container["codes"])
        unpred = np.frombuffer(self._backend.decompress(container["unpred"]), dtype=np.float64)
        return multilevel_interpolation_decode(anchors, codes, unpred, shape, abs_eb,
                                               int(meta["num_bins"]))

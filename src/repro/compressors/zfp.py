"""ZFP-style transform-based error-bounded compressor (Lindstrom, 2014).

ZFP partitions the field into 4^d blocks, decorrelates each block with a
separable orthogonal-ish transform, and encodes the coefficients by bit planes.
This reproduction keeps the structure that matters for the paper's comparison
(blockwise transform coding in fixed-accuracy mode):

* 4^d blocks (edge-padded at boundaries);
* a separable orthonormal DCT-II decorrelating transform per block;
* uniform dead-zone quantization of the transform coefficients with a step
  chosen from the requested error tolerance and the transform's worst-case
  L-infinity amplification, so the pointwise bound is guaranteed;
* Huffman + dictionary coding of the coefficient indices.

The embedded bit-plane coder of real ZFP achieves somewhat better ratios at a
given tolerance, but the qualitative behaviour (transform coding that trails
prediction-based compressors at high compression ratios on these fields) is
preserved — see DESIGN.md.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

from repro.compressors.base import Compressor
from repro.core.blocking import BlockGrid, reassemble_blocks, split_into_blocks
from repro.encoding.container import ByteContainer
from repro.encoding.entropy import EntropyCodec
from repro.encoding.lossless import get_backend
from repro.registry import register_compressor
from repro.utils.validation import ensure_float_array, ensure_positive, value_range

BLOCK_EDGE = 4


@lru_cache(maxsize=None)
def _dct_matrix(n: int = BLOCK_EDGE) -> np.ndarray:
    """Orthonormal DCT-II matrix of size ``n``."""
    k = np.arange(n)[:, None]
    i = np.arange(n)[None, :]
    mat = np.cos(np.pi * (2 * i + 1) * k / (2 * n))
    mat[0, :] *= np.sqrt(1.0 / n)
    mat[1:, :] *= np.sqrt(2.0 / n)
    return mat


@lru_cache(maxsize=None)
def _linf_gain(ndim: int) -> float:
    """Worst-case L-infinity amplification of the inverse separable transform."""
    inv = _dct_matrix().T  # orthonormal: inverse = transpose
    row_gain = float(np.abs(inv).sum(axis=1).max())
    return row_gain**ndim


def _forward_transform(blocks: np.ndarray) -> np.ndarray:
    """Apply the separable transform along every spatial axis (axis 0 = block)."""
    mat = _dct_matrix()
    out = blocks
    for axis in range(1, blocks.ndim):
        out = np.moveaxis(np.tensordot(mat, np.moveaxis(out, axis, 0), axes=(1, 0)), 0, axis)
    return out


def _inverse_transform(coeffs: np.ndarray) -> np.ndarray:
    mat = _dct_matrix().T
    out = coeffs
    for axis in range(1, coeffs.ndim):
        out = np.moveaxis(np.tensordot(mat, np.moveaxis(out, axis, 0), axes=(1, 0)), 0, axis)
    return out


@register_compressor("zfp", description="ZFP-style fixed-accuracy blockwise transform coder")
class ZFPCompressor(Compressor):
    """Fixed-accuracy transform coder over 4^d blocks."""

    name = "ZFP"

    def __init__(self, lossless_backend: str = "zlib"):
        self.lossless_backend = str(lossless_backend)
        self._entropy = EntropyCodec(backend=get_backend(lossless_backend))
        self._backend = get_backend(lossless_backend)

    def archive_options(self) -> dict:
        return {"lossless_backend": self.lossless_backend}

    def compress(self, data: np.ndarray, rel_error_bound: float) -> bytes:
        ensure_positive(rel_error_bound, "rel_error_bound")
        data = ensure_float_array(data, "data")
        vrange = value_range(data)
        abs_eb = rel_error_bound * vrange if vrange > 0 else rel_error_bound

        blocks, grid = split_into_blocks(data, BLOCK_EDGE)
        coeffs = _forward_transform(blocks)
        # Quantization step guaranteeing |reconstruction error| <= abs_eb.
        step = 2.0 * abs_eb / _linf_gain(data.ndim)
        codes = np.rint(coeffs / step).astype(np.int64)
        offset = int(codes.min()) if codes.size else 0

        container = ByteContainer()
        container.put_json("meta", {
            "grid": grid.to_dict(),
            "abs_error_bound": float(abs_eb),
            "rel_error_bound": float(rel_error_bound),
            "step": float(step),
            "offset": offset,
        })
        container["codes"] = self._entropy.encode(codes - offset)
        return container.to_bytes()

    def decompress(self, payload: bytes) -> np.ndarray:
        container = ByteContainer.from_bytes(payload)
        meta = container.get_json("meta")
        grid = BlockGrid.from_dict(meta["grid"])
        step = float(meta["step"])
        offset = int(meta["offset"])
        codes = self._entropy.decode(container["codes"]).reshape(
            (grid.n_blocks,) + grid.block_shape) + offset
        coeffs = codes.astype(np.float64) * step
        blocks = _inverse_transform(coeffs)
        return reassemble_blocks(blocks, grid)

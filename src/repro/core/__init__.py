"""AE-SZ: the paper's primary contribution.

``AESZCompressor`` implements the full pipeline of Fig. 2 / Algorithm 1:
block splitting, per-block prediction by a pre-trained convolutional
autoencoder or (mean-)Lorenzo, error-controlled linear-scale quantization,
lossy latent-vector compression, and Huffman + dictionary coding.
"""

from repro.core.config import AESZConfig, AutoencoderConfig, default_autoencoder_config
from repro.core.blocking import BlockGrid, split_into_blocks, reassemble_blocks
from repro.core.latent_codec import LatentCodec, LatentEncoding
from repro.core.aesz import AESZCompressor, CompressionStats

__all__ = [
    "AESZConfig",
    "AutoencoderConfig",
    "default_autoencoder_config",
    "BlockGrid",
    "split_into_blocks",
    "reassemble_blocks",
    "LatentCodec",
    "LatentEncoding",
    "AESZCompressor",
    "CompressionStats",
]

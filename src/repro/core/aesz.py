"""The AE-SZ error-bounded lossy compressor (paper Section IV, Algorithm 1).

Pipeline per input field:

1. split into fixed-size blocks (32x32 / 8x8x8 by default);
2. predict every block with (a) the pre-trained convolutional autoencoder,
   decoding *lossily compressed* latent vectors, and (b) the (mean-)Lorenzo
   predictor; select the predictor with the lower L1 loss per block;
3. quantize prediction errors with error-controlled linear-scale quantization;
4. entropy-code quantization codes (Huffman + dictionary backend) and store
   the compressed latents of AE-predicted blocks.

Decompression runs the same predictors from the stored information, so the
reconstruction is bit-identical to what the compressor computed and the
user-specified error bound holds for every point.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.autoencoders.base import BlockAutoencoder
from repro.autoencoders.config import AutoencoderConfig
from repro.autoencoders.factory import AE_REGISTRY, create_autoencoder
from repro.compressors.base import Compressor
from repro.core.blocking import BlockGrid, reassemble_blocks, split_into_blocks
from repro.core.config import AESZConfig
from repro.core.latent_codec import LatentCodec
from repro.encoding.container import ByteContainer
from repro.encoding.entropy import EntropyCodec
from repro.encoding.lossless import get_backend
from repro.nn.serialization import (
    dump_model_blob,
    fingerprint_with_norm,
    restore_archived_model,
)
from repro.nn.training import Trainer, TrainingConfig
from repro.quantization.linear import (
    dequantize_prediction_errors,
    quantize_prediction_errors,
)
from repro.registry import register_compressor
from repro.utils.validation import ensure_float_array, ensure_positive, value_range

# Per-block predictor flags stored in the stream.
FLAG_AE = 0
FLAG_LORENZO = 1
FLAG_MEAN = 2


@dataclass
class CompressionStats:
    """Bookkeeping produced by :meth:`AESZCompressor.compress` (used for Fig. 10).

    ``original_bytes`` reflects the true input dtype (``original_dtype``), so
    ``compression_ratio`` is the real achieved ratio.  This differs from
    :class:`repro.compressors.base.CompressorResult`, which deliberately keeps
    the paper's float32-origin convention (32 bits/value) so cross-compressor
    tables stay comparable with the published numbers.
    """

    n_blocks: int = 0
    n_ae_blocks: int = 0
    n_lorenzo_blocks: int = 0
    n_mean_blocks: int = 0
    compressed_bytes: int = 0
    original_bytes: int = 0
    original_dtype: str = ""
    section_bytes: dict = field(default_factory=dict)

    @property
    def ae_block_fraction(self) -> float:
        """Fraction of blocks predicted by the autoencoder (y-axis of Fig. 10)."""
        return self.n_ae_blocks / self.n_blocks if self.n_blocks else 0.0

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes == 0:
            return float("inf")
        return self.original_bytes / self.compressed_bytes


def output_dtype_and_bound(data: np.ndarray, abs_eb: float,
                            dtype: np.dtype) -> Tuple[np.dtype, float]:
    """Decide the reconstruction dtype and the internal quantization bound.

    Casting the float64 reconstruction to a narrower float adds up to half an
    ulp of rounding.  When the input dtype is narrower than float64, the
    internal bound is *tightened* by that worst-case rounding so the
    user-requested bound still holds after the cast — by construction, not by
    luck.  If the rounding is not small against ``abs_eb`` (bounds near the
    dtype's precision) or values would overflow the dtype, the reconstruction
    stays float64, which always honours the bound.
    """
    dtype = np.dtype(dtype)
    if not np.issubdtype(dtype, np.floating) or dtype.itemsize >= 8:
        return np.dtype(np.float64), abs_eb
    max_abs = float(np.max(np.abs(data))) if data.size else 0.0
    info = np.finfo(dtype)
    if max_abs + abs_eb > float(info.max):
        return np.dtype(np.float64), abs_eb
    # Reconstruction values satisfy |v| <= max_abs + abs_eb, so this is the
    # worst-case round-to-nearest error of the final cast.
    cast_err = 0.5 * float(np.spacing(np.asarray(max_abs + abs_eb, dtype=dtype)))
    if not np.isfinite(cast_err) or cast_err >= 0.25 * abs_eb:
        return np.dtype(np.float64), abs_eb
    return dtype, abs_eb - cast_err


def _batched_lorenzo_predict(blocks: np.ndarray) -> np.ndarray:
    """First-order Lorenzo prediction applied independently to every block."""
    ndim = blocks.ndim - 1
    padded = np.pad(blocks, [(0, 0)] + [(1, 0)] * ndim, mode="constant")
    if ndim == 1:
        return padded[:, :-1]
    if ndim == 2:
        return padded[:, 1:, :-1] + padded[:, :-1, 1:] - padded[:, :-1, :-1]
    return (
        padded[:, :-1, 1:, 1:]
        + padded[:, 1:, :-1, 1:]
        + padded[:, 1:, 1:, :-1]
        - padded[:, :-1, :-1, 1:]
        - padded[:, :-1, 1:, :-1]
        - padded[:, 1:, :-1, :-1]
        + padded[:, :-1, :-1, :-1]
    )


def _batched_lorenzo_transform(grid: np.ndarray) -> np.ndarray:
    """Blockwise first-order Lorenzo differences on an integer grid (axis 0 = block)."""
    out = grid.copy()
    for axis in range(1, grid.ndim):
        out = np.diff(out, axis=axis, prepend=np.zeros_like(np.take(out, [0], axis=axis)))
    return out


def _batched_lorenzo_inverse(diffs: np.ndarray) -> np.ndarray:
    out = diffs.copy()
    for axis in range(1, diffs.ndim):
        out = np.cumsum(out, axis=axis)
    return out


class AESZCompressor(Compressor):
    """Autoencoder-based error-bounded lossy compressor.

    Parameters
    ----------
    autoencoder:
        A trained :class:`repro.autoencoders.base.BlockAutoencoder` whose block
        shape matches ``config.block_size``.  The model is *not* part of the
        raw compressed stream (it is reused across snapshots, as in the paper);
        the archive layer records its fingerprint — and, optionally, the
        weights themselves — via :meth:`archive_state`.
    config:
        Pipeline configuration; defaults follow the paper.
    model_ref:
        Optional human-readable reference (e.g. the ``.npz`` path the model was
        loaded from), recorded in archive headers for diagnostics.
    """

    name = "AE-SZ"

    def __init__(self, autoencoder: BlockAutoencoder, config: Optional[AESZConfig] = None,
                 model_ref: Optional[str] = None):
        self.autoencoder = autoencoder
        self.config = config or AESZConfig(block_size=autoencoder.config.block_size)
        if self.config.block_size != autoencoder.config.block_size:
            raise ValueError(
                f"config.block_size {self.config.block_size} does not match the "
                f"autoencoder block size {autoencoder.config.block_size}"
            )
        self.latent_codec = LatentCodec(self.config.lossless_backend)
        self._entropy = EntropyCodec(backend=get_backend(self.config.lossless_backend))
        self._backend = get_backend(self.config.lossless_backend)
        self.last_stats: Optional[CompressionStats] = None
        self.model_ref = model_ref

    # ------------------------------------------------------- archive support
    # The compressor casts its reconstruction back to the (bound-safe) input
    # dtype itself, so the facade must not run its own cast plan on top.
    manages_output_dtype = True

    def model_fingerprint(self) -> str:
        """sha256 identity of the attached model (weights + normalization)."""
        return fingerprint_with_norm(self.autoencoder)

    def archive_state(self, embed_model: bool = True) -> Tuple[dict, Dict[str, bytes]]:
        ae = self.autoencoder
        ae_kind = next((kind for kind, klass in AE_REGISTRY.items()
                        if type(ae) is klass), None)
        meta = {
            "model_sha256": self.model_fingerprint(),
            "model_ref": self.model_ref,
            "ae_kind": ae_kind,
            "ae_config": {
                "ndim": ae.config.ndim, "block_size": ae.config.block_size,
                "latent_size": ae.config.latent_size,
                "channels": list(ae.config.channels),
                "kernel_size": ae.config.kernel_size, "seed": ae.config.seed,
            },
            "aesz_config": asdict(self.config),
        }
        blobs: Dict[str, bytes] = {}
        if embed_model:
            if ae_kind is None:
                raise ValueError(
                    f"cannot embed the model: {type(ae).__name__} is not in the "
                    f"autoencoder registry (AE_REGISTRY), so the archive could not "
                    f"rebuild it; compress with embed_model=False and pass "
                    f"autoencoder=... at decompression"
                )
            blobs["model"] = dump_model_blob(ae)
        return meta, blobs

    @classmethod
    def from_archive_state(cls, meta: dict, blobs: Dict[str, bytes],
                           autoencoder: Optional[BlockAutoencoder] = None,
                           model=None, **opts) -> "AESZCompressor":
        model_ref = meta.get("model_ref")

        def build() -> BlockAutoencoder:
            if meta.get("ae_kind") is None:
                raise ValueError(
                    "this AE-SZ archive does not record a rebuildable model "
                    "architecture (the autoencoder class was not registered); "
                    "pass autoencoder=... instead"
                )
            return create_autoencoder(meta["ae_kind"], AutoencoderConfig(**meta["ae_config"]))

        ref = f"AE-SZ (written from {model_ref!r})" if model_ref else "AE-SZ"
        restored = restore_archived_model(build, meta, blobs, autoencoder=autoencoder,
                                          model=model, codec_label=ref)
        if autoencoder is None and model is not None:
            model_ref = str(model)
        return cls(restored, AESZConfig(**meta["aesz_config"]), model_ref=model_ref)

    # ------------------------------------------------------------------ train
    def train(self, snapshots: Sequence[np.ndarray],
              training: Optional[TrainingConfig] = None,
              max_blocks: int = 4096, seed: int = 0):
        """Train the autoencoder on snapshot blocks (offline stage of Fig. 2)."""
        blocks_list = []
        for snapshot in snapshots:
            blocks, _ = split_into_blocks(np.asarray(snapshot, dtype=np.float64),
                                          self.config.block_size)
            blocks_list.append(blocks)
        all_blocks = np.concatenate(blocks_list, axis=0)
        if all_blocks.shape[0] > max_blocks:
            rng = np.random.default_rng(seed)
            idx = rng.choice(all_blocks.shape[0], size=max_blocks, replace=False)
            all_blocks = all_blocks[idx]
        self.autoencoder.fit_normalization(all_blocks)
        trainer = Trainer(self.autoencoder, config=training or TrainingConfig())
        return trainer.fit(all_blocks[:, None, ...])

    # ------------------------------------------------------------- prediction
    def _ae_predictions(self, blocks: np.ndarray, latent_error_bound: float,
                        batch: int = 512) -> Tuple[np.ndarray, np.ndarray]:
        """Encode blocks, lossily compress latents, decode predictions.

        Returns ``(latents, predictions)`` where ``predictions`` come from the
        *decompressed* latents (exactly what the decompressor will see).
        """
        n = blocks.shape[0]
        latents = []
        for start in range(0, n, batch):
            latents.append(self.autoencoder.encode(blocks[start:start + batch]))
        latents = np.concatenate(latents, axis=0)
        from repro.quantization.uniform import UniformQuantizer

        decoded_latents = UniformQuantizer(latent_error_bound).roundtrip(latents)[1]
        preds = []
        for start in range(0, n, batch):
            preds.append(self.autoencoder.decode(decoded_latents[start:start + batch]))
        return latents, np.concatenate(preds, axis=0)

    def _decode_latents(self, decoded_latents: np.ndarray, batch: int = 512) -> np.ndarray:
        preds = []
        for start in range(0, decoded_latents.shape[0], batch):
            preds.append(self.autoencoder.decode(decoded_latents[start:start + batch]))
        return np.concatenate(preds, axis=0)

    # --------------------------------------------------------------- compress
    def compress(self, data: np.ndarray, rel_error_bound: float) -> bytes:
        """Compress ``data`` under a value-range-based relative error bound."""
        ensure_positive(rel_error_bound, "rel_error_bound")
        src_dtype = np.asarray(data).dtype
        data = ensure_float_array(data, "data")
        # The reconstruction dtype reported to the decompressor: floating
        # inputs round-trip to their own dtype (when bound-safe), integer
        # inputs to float64 (the lossy pipeline cannot restore exact integers).
        in_dtype = data.dtype
        # Run the pipeline itself in float64 so predictor selection and
        # quantization behave identically for float32 and float64 inputs.
        data = data.astype(np.float64, copy=False)
        vrange = value_range(data)
        abs_eb = rel_error_bound * vrange if vrange > 0 else rel_error_bound
        out_dtype, abs_eb = output_dtype_and_bound(data, abs_eb, in_dtype)

        blocks, grid = split_into_blocks(data, self.config.block_size)
        n_blocks = blocks.shape[0]
        block_axes = tuple(range(1, blocks.ndim))
        mode = self.config.predictor_mode

        # --- candidate predictions ------------------------------------------
        use_ae = mode in ("hybrid", "ae")
        use_lorenzo = mode in ("hybrid", "lorenzo")
        latent_eb = self.config.latent_error_bound_ratio * abs_eb

        if use_ae:
            latents, ae_pred = self._ae_predictions(blocks, latent_eb)
            ae_loss = np.abs(blocks - ae_pred).mean(axis=block_axes)
        else:
            latents = ae_pred = None
            ae_loss = np.full(n_blocks, np.inf)

        if use_lorenzo:
            # Score Lorenzo from the 2e-grid (pre-quantized) values: that is what
            # the integer Lorenzo encoder actually predicts from, and it gives the
            # selection the same error-bound dependence as SZ's reconstructed-
            # neighbour prediction (the mechanism behind paper Fig. 10).
            step = 2.0 * abs_eb
            quantized_blocks = np.rint(blocks / step) * step
            lorenzo_pred = _batched_lorenzo_predict(quantized_blocks)
            lorenzo_loss = np.abs(blocks - lorenzo_pred).mean(axis=block_axes)
        else:
            lorenzo_loss = np.full(n_blocks, np.inf)

        if use_lorenzo and self.config.use_mean_lorenzo:
            means = blocks.mean(axis=block_axes)
            mean_pred_err = np.abs(blocks - means.reshape((-1,) + (1,) * (blocks.ndim - 1)))
            mean_loss = mean_pred_err.mean(axis=block_axes)
        else:
            means = None
            mean_loss = np.full(n_blocks, np.inf)

        losses = np.stack([ae_loss, lorenzo_loss, mean_loss], axis=1)
        flags = np.argmin(losses, axis=1).astype(np.uint8)

        ae_idx = np.nonzero(flags == FLAG_AE)[0]
        lor_idx = np.nonzero(flags == FLAG_LORENZO)[0]
        mean_idx = np.nonzero(flags == FLAG_MEAN)[0]

        container = ByteContainer()
        step = 2.0 * abs_eb
        section_bytes = {}

        # --- AE-predicted blocks --------------------------------------------
        if ae_idx.size:
            encoding = self.latent_codec.compress(latents[ae_idx], latent_eb)
            container["latents"] = encoding.payload
            qr = quantize_prediction_errors(blocks[ae_idx], ae_pred[ae_idx], abs_eb,
                                            self.config.num_bins)
            container["ae_codes"] = self._entropy.encode(qr.codes.ravel())
            container["ae_unpred"] = self._backend.compress(
                qr.unpredictable.astype(np.float64).tobytes())
            section_bytes["latents"] = len(container["latents"])
            section_bytes["ae_codes"] = len(container["ae_codes"])

        # --- Lorenzo-predicted blocks (integer dual-quantization) -------------
        lorenzo_offset = 0
        if lor_idx.size:
            q_int = np.rint(blocks[lor_idx] / step).astype(np.int64)
            diffs = _batched_lorenzo_transform(q_int)
            lorenzo_offset = int(diffs.min())
            container["lorenzo_codes"] = self._entropy.encode(diffs - lorenzo_offset)
            section_bytes["lorenzo_codes"] = len(container["lorenzo_codes"])

        # --- mean-predicted blocks --------------------------------------------
        if mean_idx.size:
            sel_means = means[mean_idx]
            pred = np.broadcast_to(
                sel_means.reshape((-1,) + (1,) * (blocks.ndim - 1)), blocks[mean_idx].shape
            )
            qr_mean = quantize_prediction_errors(blocks[mean_idx], pred, abs_eb,
                                                 self.config.num_bins)
            container["mean_codes"] = self._entropy.encode(qr_mean.codes.ravel())
            container["mean_unpred"] = self._backend.compress(
                qr_mean.unpredictable.astype(np.float64).tobytes())
            container["means"] = self._backend.compress(sel_means.astype(np.float64).tobytes())
            section_bytes["mean_codes"] = len(container["mean_codes"])

        # --- header ------------------------------------------------------------
        container["flags"] = self._entropy.encode(flags.astype(np.int64))
        container.put_json("meta", {
            "grid": grid.to_dict(),
            "abs_error_bound": float(abs_eb),
            "rel_error_bound": float(rel_error_bound),
            "num_bins": int(self.config.num_bins),
            "lorenzo_offset": lorenzo_offset,
            "latent_error_bound": float(latent_eb),
            "predictor_mode": mode,
            "dtype": str(in_dtype),
            # Written only by compressors that ran the bound-safety analysis
            # in output_dtype_and_bound; decompress casts on this key alone,
            # so legacy payloads (which recorded "dtype" without tightening
            # the bound) keep returning float64 as the seed decompressor did.
            "output_dtype": str(out_dtype),
        })
        payload = container.to_bytes()

        self.last_stats = CompressionStats(
            n_blocks=n_blocks,
            n_ae_blocks=int(ae_idx.size),
            n_lorenzo_blocks=int(lor_idx.size),
            n_mean_blocks=int(mean_idx.size),
            compressed_bytes=len(payload),
            original_bytes=int(data.size * src_dtype.itemsize),
            original_dtype=str(src_dtype),
            section_bytes=section_bytes,
        )
        return payload

    # ------------------------------------------------------------- decompress
    def decompress(self, payload: bytes) -> np.ndarray:
        """Reconstruct the field compressed by :meth:`compress`."""
        container = ByteContainer.from_bytes(payload)
        meta = container.get_json("meta")
        grid = BlockGrid.from_dict(meta["grid"])
        abs_eb = float(meta["abs_error_bound"])
        num_bins = int(meta["num_bins"])
        step = 2.0 * abs_eb

        flags = self._entropy.decode(container["flags"]).astype(np.uint8)
        n_blocks = grid.n_blocks
        if flags.size != n_blocks:
            raise ValueError("corrupt stream: block flag count mismatch")
        block_shape = grid.block_shape
        blocks = np.zeros((n_blocks,) + block_shape, dtype=np.float64)

        ae_idx = np.nonzero(flags == FLAG_AE)[0]
        lor_idx = np.nonzero(flags == FLAG_LORENZO)[0]
        mean_idx = np.nonzero(flags == FLAG_MEAN)[0]

        if ae_idx.size:
            decoded_latents = self.latent_codec.decompress(container["latents"])
            ae_pred = self._decode_latents(decoded_latents)
            codes = self._entropy.decode(container["ae_codes"]).reshape(
                (ae_idx.size,) + block_shape)
            unpred = np.frombuffer(self._backend.decompress(container["ae_unpred"]),
                                   dtype=np.float64)
            blocks[ae_idx] = dequantize_prediction_errors(codes, ae_pred, unpred, abs_eb,
                                                          num_bins)

        if lor_idx.size:
            diffs = self._entropy.decode(container["lorenzo_codes"]).reshape(
                (lor_idx.size,) + block_shape) + int(meta["lorenzo_offset"])
            q_int = _batched_lorenzo_inverse(diffs)
            blocks[lor_idx] = q_int.astype(np.float64) * step

        if mean_idx.size:
            sel_means = np.frombuffer(self._backend.decompress(container["means"]),
                                      dtype=np.float64)
            pred = np.broadcast_to(
                sel_means.reshape((-1,) + (1,) * len(block_shape)),
                (mean_idx.size,) + block_shape)
            codes = self._entropy.decode(container["mean_codes"]).reshape(
                (mean_idx.size,) + block_shape)
            unpred = np.frombuffer(self._backend.decompress(container["mean_unpred"]),
                                   dtype=np.float64)
            blocks[mean_idx] = dequantize_prediction_errors(codes, pred, unpred, abs_eb,
                                                            num_bins)

        out = reassemble_blocks(blocks, grid)
        return out.astype(np.dtype(meta.get("output_dtype", "float64")), copy=False)


def build_aesz(autoencoder: Optional[BlockAutoencoder] = None, model=None,
               ae_kind: str = "swae", ae_config=None,
               config: Optional[AESZConfig] = None, **config_opts) -> AESZCompressor:
    """Registry factory for the ``aesz`` codec.

    Accepts either a ready ``autoencoder`` instance or a saved ``model`` (.npz
    path) plus the ``ae_config`` (dict or :class:`AutoencoderConfig`) that
    describes its architecture — the weight file alone does not carry it.
    """
    model_ref = None
    if autoencoder is None:
        if model is None:
            raise ValueError(
                "the 'aesz' codec needs a trained model: pass autoencoder=<BlockAutoencoder> "
                "or model=<path.npz> together with ae_config=..."
            )
        if ae_config is None:
            raise ValueError(
                "rebuilding 'aesz' from model=<path.npz> needs ae_config= "
                "(an AutoencoderConfig or a dict of its fields)"
            )
        if isinstance(ae_config, Mapping):
            ae_config = AutoencoderConfig(**ae_config)
        autoencoder = create_autoencoder(ae_kind, ae_config)
        autoencoder.load(model)
        model_ref = str(model)
    if config is None:
        config = AESZConfig(block_size=autoencoder.config.block_size, **config_opts)
    return AESZCompressor(autoencoder, config, model_ref=model_ref)


register_compressor(
    "aesz", build_aesz, aliases=("ae_sz", "ae-sz"), requires_model=True,
    restorer=AESZCompressor.from_archive_state, cls=AESZCompressor,
    description="AE-SZ: autoencoder + Lorenzo hybrid, error bounded (needs a trained model)",
)

"""Splitting fields into fixed-size blocks and reassembling them.

AE-SZ compresses data block by block (32x32 for 2D fields, 8x8x8 for 3D fields
by default).  Fields whose extents are not multiples of the block size are
edge-padded; the :class:`BlockGrid` records the original shape so
:func:`reassemble_blocks` can crop the padding away again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple, Union

import numpy as np

from repro.utils.validation import ensure_dims

IntOrSeq = Union[int, Sequence[int]]


@dataclass(frozen=True)
class BlockGrid:
    """Geometry of a block decomposition."""

    original_shape: Tuple[int, ...]
    padded_shape: Tuple[int, ...]
    block_shape: Tuple[int, ...]
    grid_shape: Tuple[int, ...]

    @property
    def n_blocks(self) -> int:
        return int(np.prod(self.grid_shape))

    @property
    def ndim(self) -> int:
        return len(self.original_shape)

    def to_dict(self) -> dict:
        return {
            "original_shape": list(self.original_shape),
            "padded_shape": list(self.padded_shape),
            "block_shape": list(self.block_shape),
            "grid_shape": list(self.grid_shape),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "BlockGrid":
        return cls(
            original_shape=tuple(d["original_shape"]),
            padded_shape=tuple(d["padded_shape"]),
            block_shape=tuple(d["block_shape"]),
            grid_shape=tuple(d["grid_shape"]),
        )


def _normalize_block_shape(block_size: IntOrSeq, ndim: int) -> Tuple[int, ...]:
    if np.isscalar(block_size):
        shape = (int(block_size),) * ndim
    else:
        shape = tuple(int(b) for b in block_size)
        if len(shape) != ndim:
            raise ValueError(f"block_size must have {ndim} entries, got {len(shape)}")
    if any(b <= 0 for b in shape):
        raise ValueError(f"block sizes must be positive, got {shape}")
    return shape


def split_into_blocks(data: np.ndarray, block_size: IntOrSeq) -> Tuple[np.ndarray, BlockGrid]:
    """Split ``data`` into non-overlapping blocks.

    Returns ``(blocks, grid)`` where ``blocks`` has shape
    ``(n_blocks, *block_shape)`` in row-major block order.
    """
    data = np.asarray(data, dtype=np.float64)
    ensure_dims(data.ndim, (1, 2, 3), "data")
    block_shape = _normalize_block_shape(block_size, data.ndim)

    pad = [(0, (-s) % b) for s, b in zip(data.shape, block_shape)]
    padded = np.pad(data, pad, mode="edge") if any(p[1] for p in pad) else data
    grid_shape = tuple(p // b for p, b in zip(padded.shape, block_shape))

    # Reshape into (g0, b0, g1, b1, ...) then move grid axes to the front.
    interleaved_shape = tuple(x for g, b in zip(grid_shape, block_shape) for x in (g, b))
    reshaped = padded.reshape(interleaved_shape)
    grid_axes = tuple(range(0, 2 * data.ndim, 2))
    block_axes = tuple(range(1, 2 * data.ndim, 2))
    blocks = reshaped.transpose(grid_axes + block_axes).reshape((-1,) + block_shape)

    grid = BlockGrid(
        original_shape=tuple(data.shape),
        padded_shape=tuple(padded.shape),
        block_shape=block_shape,
        grid_shape=grid_shape,
    )
    return np.ascontiguousarray(blocks), grid


def reassemble_blocks(blocks: np.ndarray, grid: BlockGrid) -> np.ndarray:
    """Invert :func:`split_into_blocks` (cropping any edge padding)."""
    blocks = np.asarray(blocks, dtype=np.float64)
    expected = (grid.n_blocks,) + grid.block_shape
    if blocks.shape != expected:
        raise ValueError(f"blocks shape {blocks.shape} does not match grid {expected}")
    ndim = grid.ndim
    arranged = blocks.reshape(grid.grid_shape + grid.block_shape)
    # Interleave grid and block axes back: (g0, g1, ..., b0, b1, ...) -> (g0, b0, g1, b1, ...)
    perm = tuple(x for i in range(ndim) for x in (i, ndim + i))
    padded = arranged.transpose(perm).reshape(grid.padded_shape)
    crop = tuple(slice(0, s) for s in grid.original_shape)
    return np.ascontiguousarray(padded[crop])

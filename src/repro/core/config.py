"""Configuration objects for the AE-SZ compressor."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.autoencoders.config import AutoencoderConfig

# Paper Table VI (original channel widths); the scaled defaults below divide the
# widths by 8 so the pure-NumPy implementation trains in CPU-friendly time.
PAPER_TABLE_VI = {
    "CESM-CLDHGH": dict(ndim=2, block_size=32, latent_size=16, channels=(32, 64, 128, 256)),
    "CESM-FREQSH": dict(ndim=2, block_size=32, latent_size=32, channels=(32, 64, 128, 256)),
    "EXAFEL-raw": dict(ndim=2, block_size=32, latent_size=16, channels=(32, 64, 128, 256)),
    "RTM-snapshot": dict(ndim=3, block_size=16, latent_size=16, channels=(32, 64, 128, 256)),
    "NYX-baryon_density": dict(ndim=3, block_size=8, latent_size=16, channels=(32, 64, 128)),
    "NYX-temperature": dict(ndim=3, block_size=8, latent_size=16, channels=(32, 64, 128)),
    "NYX-dark_matter_density": dict(ndim=3, block_size=8, latent_size=16, channels=(32, 64, 128)),
    "Hurricane-U": dict(ndim=3, block_size=8, latent_size=8, channels=(32, 64, 128)),
    "Hurricane-QVAPOR": dict(ndim=3, block_size=8, latent_size=16, channels=(32, 64, 128)),
}

_SCALE_DIVISOR = 8


def default_autoencoder_config(field_name: str, scaled: bool = True,
                               seed: int = 0) -> AutoencoderConfig:
    """Autoencoder configuration for a known field (paper Table VI).

    ``scaled=True`` (default) divides the channel widths by 8 and caps the
    number of stages so training is tractable on CPU; ``scaled=False`` returns
    the exact paper configuration.
    """
    if field_name not in PAPER_TABLE_VI:
        raise KeyError(
            f"no Table VI configuration for {field_name!r}; choices: {sorted(PAPER_TABLE_VI)}"
        )
    entry = dict(PAPER_TABLE_VI[field_name])
    channels = entry.pop("channels")
    if scaled:
        channels = tuple(max(4, c // _SCALE_DIVISOR) for c in channels)
        # Keep at most 3 stages for 2D-32 blocks and 2 for 8^3 blocks so the
        # reduced spatial size stays >= 2 and the CPU cost stays low.
        max_stages = 3 if entry["block_size"] >= 32 else 2
        channels = channels[:max_stages]
    return AutoencoderConfig(channels=tuple(channels), seed=seed, **entry)


@dataclass
class AESZConfig:
    """Compression-pipeline configuration of AE-SZ.

    Attributes
    ----------
    block_size:
        Edge of the square/cubic block (must match the autoencoder's config).
    num_bins:
        Maximum number of linear-scale quantization bins (65,536 as in SZ2.1).
    latent_error_bound_ratio:
        The latent vectors are lossily compressed with an error bound of
        ``ratio * e`` (0.1 in the paper, Section IV-E).
    predictor_mode:
        ``"hybrid"`` (AE + Lorenzo, the paper's design), ``"ae"`` or
        ``"lorenzo"`` — the two ablations of Fig. 11.
    use_mean_lorenzo:
        Enable the per-block mean fallback of the Lorenzo predictor.
    lossless_backend:
        Name of the dictionary backend applied after Huffman coding.
    """

    block_size: int = 32
    num_bins: int = 65536
    latent_error_bound_ratio: float = 0.1
    predictor_mode: str = "hybrid"
    use_mean_lorenzo: bool = True
    lossless_backend: str = "zlib"

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.num_bins < 2:
            raise ValueError("num_bins must be >= 2")
        if not (0 < self.latent_error_bound_ratio <= 1):
            raise ValueError("latent_error_bound_ratio must be in (0, 1]")
        if self.predictor_mode not in ("hybrid", "ae", "lorenzo"):
            raise ValueError("predictor_mode must be 'hybrid', 'ae' or 'lorenzo'")

"""Lossy compression of AE latent vectors (paper Section IV-E, Takeaway 3).

The customized codec ("custo." in Table IV) quantizes every latent coefficient
uniformly with an error bound of ``0.1 * e`` and entropy-codes the integer
codes with Huffman + the dictionary backend.  Crucially the codec treats every
latent coefficient independently (no cross-block prediction), because latents
of Lorenzo-predicted blocks are simply not stored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.encoding.container import ByteContainer
from repro.encoding.entropy import EntropyCodec
from repro.encoding.lossless import get_backend
from repro.quantization.uniform import UniformQuantizer
from repro.utils.validation import ensure_positive


@dataclass
class LatentEncoding:
    """Result of compressing a latent matrix."""

    payload: bytes
    decoded: np.ndarray  # the decompressed latents (used for prediction)

    @property
    def nbytes(self) -> int:
        return len(self.payload)


class LatentCodec:
    """Uniform quantization + entropy coding of latent matrices."""

    def __init__(self, lossless_backend: str = "zlib"):
        self._entropy = EntropyCodec(backend=get_backend(lossless_backend))

    def compress(self, latents: np.ndarray, error_bound: float) -> LatentEncoding:
        """Compress a ``(n_blocks, latent_size)`` float matrix.

        Returns both the payload and the decompressed latents so the caller can
        generate predictions from exactly what the decompressor will see.
        """
        ensure_positive(error_bound, "error_bound")
        latents = np.asarray(latents, dtype=np.float64)
        if latents.ndim != 2:
            raise ValueError(f"latents must be 2-D (n_blocks, latent_size), got {latents.shape}")

        quantizer = UniformQuantizer(error_bound)
        codes, decoded = quantizer.roundtrip(latents)
        offset = int(codes.min()) if codes.size else 0
        shifted = codes - offset

        container = ByteContainer()
        container.put_json("meta", {
            "shape": list(latents.shape),
            "error_bound": float(error_bound),
            "offset": offset,
        })
        container["codes"] = self._entropy.encode(shifted)
        return LatentEncoding(payload=container.to_bytes(), decoded=decoded)

    def decompress(self, payload: bytes) -> np.ndarray:
        """Recover the (lossy) latent matrix from :meth:`compress` output.

        Raises ``ValueError`` on malformed payloads (bad container, corrupt
        entropy stream, or a code count that does not match the stored shape).
        """
        container = ByteContainer.from_bytes(payload)
        meta = container.get_json("meta")
        shape = tuple(meta["shape"])
        error_bound = float(meta["error_bound"])
        offset = int(meta["offset"])
        codes = self._entropy.decode(container["codes"])
        if codes.size != int(np.prod(shape)):
            raise ValueError("corrupt latent stream: code count "
                             f"{codes.size} does not match shape {shape}")
        codes = codes.reshape(shape) + offset
        return UniformQuantizer(error_bound).dequantize(codes)

"""Synthetic SDRBench-like scientific datasets.

The paper evaluates on five SDRBench applications (CESM-ATM, RTM, NYX,
Hurricane ISABEL, EXAFEL).  Those datasets cannot be downloaded in this offline
environment, so this package generates synthetic fields that mimic each
application's spatial statistics — multi-scale smoothness, sharp localized
features, value ranges and temporal evolution across snapshots — which are the
properties error-bounded compressors are sensitive to (see DESIGN.md,
substitution table).

Every generator is deterministic in ``(field, timestep, seed)`` so the
train/test snapshot splits of paper Table VII can be reproduced exactly.
"""

from repro.data.fields import gaussian_random_field, radial_coordinates
from repro.data.catalog import (
    DATASETS,
    FieldSpec,
    SyntheticDataset,
    get_dataset,
    load_field_snapshot,
    load_training_blocks,
    train_test_snapshots,
)
from repro.data.loader import create_f32, load_f32, map_f32, save_f32

__all__ = [
    "gaussian_random_field",
    "radial_coordinates",
    "DATASETS",
    "FieldSpec",
    "SyntheticDataset",
    "get_dataset",
    "load_field_snapshot",
    "load_training_blocks",
    "train_test_snapshots",
    "create_f32",
    "load_f32",
    "map_f32",
    "save_f32",
]

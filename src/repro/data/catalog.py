"""Dataset catalog: field specs, default shapes, snapshot splits (paper Table VII).

The default shapes are scaled down from the SDRBench originals (e.g. CESM
1800x3600 -> 256x512, NYX 512^3 -> 64^3) so that the pure-NumPy pipeline runs
in CPU-friendly time; the catalog keeps the original shapes for reference and
any benchmark can request larger shapes explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.generators import GENERATORS
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class FieldSpec:
    """Description of one scientific data field."""

    app: str
    field: str
    dimensionality: int
    default_shape: Tuple[int, ...]
    paper_shape: Tuple[int, ...]
    domain: str
    generator_key: str

    @property
    def name(self) -> str:
        return f"{self.app}-{self.field}"


@dataclass(frozen=True)
class SnapshotSplit:
    """Train/test snapshot (time step) ranges, mirroring paper Table VII."""

    train_timesteps: Tuple[int, ...]
    test_timesteps: Tuple[int, ...]
    test_seed_offset: int = 0  # non-zero = "another simulation" (NYX)


FIELDS: Dict[str, FieldSpec] = {
    spec.name: spec
    for spec in [
        FieldSpec("CESM", "CLDHGH", 2, (256, 512), (1800, 3600), "Weather", "CESM-CLDHGH"),
        FieldSpec("CESM", "FREQSH", 2, (256, 512), (1800, 3600), "Weather", "CESM-FREQSH"),
        FieldSpec("EXAFEL", "raw", 2, (370, 194), (5920, 388), "Crystallography", "EXAFEL-raw"),
        FieldSpec("NYX", "baryon_density", 3, (64, 64, 64), (512, 512, 512), "Cosmology",
                  "NYX-baryon_density"),
        FieldSpec("NYX", "temperature", 3, (64, 64, 64), (512, 512, 512), "Cosmology",
                  "NYX-temperature"),
        FieldSpec("NYX", "dark_matter_density", 3, (64, 64, 64), (512, 512, 512), "Cosmology",
                  "NYX-dark_matter_density"),
        FieldSpec("Hurricane", "U", 3, (32, 96, 96), (100, 500, 500), "Weather", "Hurricane-U"),
        FieldSpec("Hurricane", "QVAPOR", 3, (32, 96, 96), (100, 500, 500), "Weather",
                  "Hurricane-QVAPOR"),
        FieldSpec("RTM", "snapshot", 3, (72, 72, 40), (449, 449, 235), "Seismic Wave",
                  "RTM-snapshot"),
    ]
}

# Scaled-down equivalents of Table VII (train range / test range per application).
SPLITS: Dict[str, SnapshotSplit] = {
    "CESM": SnapshotSplit(tuple(range(0, 10)), tuple(range(10, 13))),
    "EXAFEL": SnapshotSplit(tuple(range(0, 10)), tuple(range(10, 13))),
    "RTM": SnapshotSplit(tuple(range(20, 30)), tuple(range(31, 37, 2))),
    "NYX": SnapshotSplit(tuple(range(0, 4)), (4,), test_seed_offset=1),
    "Hurricane": SnapshotSplit(tuple(range(1, 9)), tuple(range(9, 12))),
}


class SyntheticDataset:
    """Snapshot-level access to one application's synthetic fields."""

    def __init__(self, app: str, seed: int = 0):
        if app not in SPLITS:
            raise KeyError(f"unknown application {app!r}; choices: {sorted(SPLITS)}")
        self.app = app
        self.seed = int(seed)
        self.split = SPLITS[app]

    @property
    def fields(self) -> List[str]:
        return [spec.field for spec in FIELDS.values() if spec.app == self.app]

    def field_spec(self, field_name: str) -> FieldSpec:
        key = f"{self.app}-{field_name}"
        if key not in FIELDS:
            raise KeyError(f"unknown field {field_name!r} for {self.app}")
        return FIELDS[key]

    def snapshot(self, field_name: str, timestep: int,
                 shape: Optional[Sequence[int]] = None,
                 seed_offset: int = 0) -> np.ndarray:
        spec = self.field_spec(field_name)
        shape = tuple(shape) if shape is not None else spec.default_shape
        gen = GENERATORS[spec.generator_key]
        return gen(shape, int(timestep), seed=self.seed + seed_offset)

    def train_snapshots(self, field_name: str, shape: Optional[Sequence[int]] = None,
                        limit: Optional[int] = None) -> List[np.ndarray]:
        steps = self.split.train_timesteps[:limit]
        return [self.snapshot(field_name, t, shape) for t in steps]

    def test_snapshots(self, field_name: str, shape: Optional[Sequence[int]] = None,
                       limit: Optional[int] = None) -> List[np.ndarray]:
        steps = self.split.test_timesteps[:limit]
        return [
            self.snapshot(field_name, t, shape, seed_offset=self.split.test_seed_offset)
            for t in steps
        ]


DATASETS = tuple(sorted(SPLITS))


def get_dataset(app: str, seed: int = 0) -> SyntheticDataset:
    """Instantiate the synthetic dataset for one application."""
    return SyntheticDataset(app, seed=seed)


def load_field_snapshot(field_name: str, timestep: int = 0, split: str = "test",
                        shape: Optional[Sequence[int]] = None, seed: int = 0) -> np.ndarray:
    """Convenience accessor: ``load_field_snapshot("CESM-CLDHGH")``."""
    if field_name not in FIELDS:
        raise KeyError(f"unknown field {field_name!r}; choices: {sorted(FIELDS)}")
    spec = FIELDS[field_name]
    dataset = SyntheticDataset(spec.app, seed=seed)
    if split == "train":
        steps = dataset.split.train_timesteps
        offset = 0
    elif split == "test":
        steps = dataset.split.test_timesteps
        offset = dataset.split.test_seed_offset
    else:
        raise ValueError("split must be 'train' or 'test'")
    step = steps[min(timestep, len(steps) - 1)]
    return dataset.snapshot(spec.field, step, shape, seed_offset=offset)


def train_test_snapshots(field_name: str, shape: Optional[Sequence[int]] = None,
                         seed: int = 0, train_limit: Optional[int] = None,
                         test_limit: Optional[int] = None):
    """Return (train_snapshots, test_snapshots) lists for a field."""
    spec = FIELDS[field_name]
    dataset = SyntheticDataset(spec.app, seed=seed)
    return (
        dataset.train_snapshots(spec.field, shape, limit=train_limit),
        dataset.test_snapshots(spec.field, shape, limit=test_limit),
    )


def load_training_blocks(field_name: str, block_size: int, max_blocks: int = 4096,
                         shape: Optional[Sequence[int]] = None, seed: int = 0,
                         train_limit: Optional[int] = 3) -> np.ndarray:
    """Cut training snapshots of a field into AE training blocks.

    Returns an array of shape ``(n_blocks, 1, *block_shape)`` (channel-first,
    as expected by the autoencoders), normalized later by the AE itself.
    """
    from repro.core.blocking import split_into_blocks

    train, _ = train_test_snapshots(field_name, shape=shape, seed=seed, train_limit=train_limit)
    blocks = []
    for snapshot in train:
        blk, _ = split_into_blocks(snapshot.astype(np.float64), block_size)
        blocks.append(blk)
    all_blocks = np.concatenate(blocks, axis=0)
    if all_blocks.shape[0] > max_blocks:
        rng = np.random.default_rng(derive_seed(seed, field_name, "blocks"))
        idx = rng.choice(all_blocks.shape[0], size=max_blocks, replace=False)
        all_blocks = all_blocks[idx]
    return all_blocks[:, None, ...]

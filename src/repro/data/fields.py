"""Building blocks for synthetic scientific fields."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng


def gaussian_random_field(
    shape: Sequence[int],
    power_exponent: float = 3.0,
    rng: SeedLike = None,
    phase_shift: Sequence[float] | None = None,
) -> np.ndarray:
    """Isotropic Gaussian random field with power spectrum ``k^-power_exponent``.

    Spectral synthesis: complex white noise is shaped by the target spectrum
    and inverse-FFT'd.  ``phase_shift`` (in grid units per axis) translates the
    field periodically, which is how snapshots at different "time steps" are
    produced while keeping the same statistics.

    The output is normalized to zero mean and unit standard deviation.
    """
    shape = tuple(int(s) for s in shape)
    rng = as_rng(rng)
    noise = rng.normal(size=shape) + 1j * rng.normal(size=shape)
    freqs = np.meshgrid(*[np.fft.fftfreq(s) for s in shape], indexing="ij")
    k = np.sqrt(sum(f**2 for f in freqs))
    k[(0,) * len(shape)] = 1.0  # avoid division by zero at the DC component
    amplitude = k ** (-power_exponent / 2.0)
    amplitude[(0,) * len(shape)] = 0.0
    spectrum = noise * amplitude
    if phase_shift is not None:
        phase = sum(
            -2j * np.pi * f * float(d) for f, d in zip(freqs, phase_shift)
        )
        spectrum = spectrum * np.exp(phase)
    field = np.real(np.fft.ifftn(spectrum))
    std = field.std()
    if std > 0:
        field = (field - field.mean()) / std
    return field


def radial_coordinates(shape: Sequence[int], center: Sequence[float] | None = None
                       ) -> np.ndarray:
    """Euclidean distance of every grid point from ``center`` (default: middle)."""
    shape = tuple(int(s) for s in shape)
    if center is None:
        center = [(s - 1) / 2.0 for s in shape]
    grids = np.meshgrid(*[np.arange(s, dtype=np.float64) for s in shape], indexing="ij")
    return np.sqrt(sum((g - c) ** 2 for g, c in zip(grids, center)))


def gaussian_bumps(
    shape: Sequence[int],
    n_bumps: int,
    amplitude_range: Tuple[float, float],
    width_range: Tuple[float, float],
    rng: SeedLike = None,
) -> np.ndarray:
    """Sum of randomly placed Gaussian bumps (halos, Bragg peaks, ...)."""
    shape = tuple(int(s) for s in shape)
    rng = as_rng(rng)
    out = np.zeros(shape, dtype=np.float64)
    grids = np.meshgrid(*[np.arange(s, dtype=np.float64) for s in shape], indexing="ij")
    for _ in range(int(n_bumps)):
        center = [rng.uniform(0, s - 1) for s in shape]
        width = rng.uniform(*width_range)
        amp = rng.uniform(*amplitude_range)
        r2 = sum((g - c) ** 2 for g, c in zip(grids, center))
        out += amp * np.exp(-r2 / (2.0 * width * width))
    return out


def ricker_wavelet(r: np.ndarray, radius: float, width: float) -> np.ndarray:
    """Ricker ("Mexican hat") wavefront shell at distance ``radius`` from a source."""
    x = (r - radius) / max(width, 1e-9)
    return (1.0 - x * x) * np.exp(-0.5 * x * x)


def smooth_ramp(shape: Sequence[int], axis: int, low: float, high: float) -> np.ndarray:
    """Monotone ramp along one axis (latitudinal / vertical background gradients)."""
    shape = tuple(int(s) for s in shape)
    ramp = np.linspace(low, high, shape[axis])
    view = [1] * len(shape)
    view[axis] = shape[axis]
    return np.broadcast_to(ramp.reshape(view), shape).copy()

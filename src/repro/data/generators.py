"""Per-application synthetic field generators.

Each generator returns one snapshot of one field as ``float32`` (the paper's
datasets are all single precision).  Snapshots are deterministic in
``(timestep, seed)``; consecutive time steps are strongly correlated (structures
advect / evolve), and a different base seed emulates "another simulation run"
(used for the NYX test split, Table VII).
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from repro.data.fields import (
    gaussian_bumps,
    gaussian_random_field,
    radial_coordinates,
    ricker_wavelet,
    smooth_ramp,
)
from repro.utils.rng import as_rng, derive_seed


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


# --------------------------------------------------------------------------- CESM
def cesm_cldhgh(shape: Sequence[int], timestep: int, seed: int = 0) -> np.ndarray:
    """CESM-ATM CLDHGH: high-cloud fraction in [0, 1].

    Real CLDHGH fields combine large-scale cloud systems with considerable
    pixel-scale variability (sharp cloud edges); both components are modelled
    here — a smooth advected base plus a rough fine-scale field — because that
    mix is what drives the Lorenzo-vs-autoencoder trade-off the paper studies.
    """
    rng_seed = derive_seed(seed, "cesm", "cldhgh")
    drift = 1.5 * timestep
    base = gaussian_random_field(shape, power_exponent=3.2, rng=rng_seed,
                                 phase_shift=(0.2 * timestep, drift))
    detail = gaussian_random_field(shape, power_exponent=2.2, rng=rng_seed + 11,
                                   phase_shift=(0.1 * timestep, 0.6 * drift))
    bands = smooth_ramp(shape, axis=0, low=-1.0, high=1.0)
    zonal = np.cos(2.0 * np.pi * (np.linspace(0, 1, shape[0]))[:, None] * 2 + 0.05 * timestep)
    field = _sigmoid(3.0 * base + 0.6 * detail + 0.8 * zonal - 0.5 * bands**2)
    return field.astype(np.float32)


def cesm_freqsh(shape: Sequence[int], timestep: int, seed: int = 0) -> np.ndarray:
    """CESM-ATM FREQSH: shallow-convection frequency, sparser and sharper than CLDHGH."""
    rng_seed = derive_seed(seed, "cesm", "freqsh")
    drift = 1.1 * timestep
    base = gaussian_random_field(shape, power_exponent=2.6, rng=rng_seed,
                                 phase_shift=(0.1 * timestep, drift))
    detail = gaussian_random_field(shape, power_exponent=2.0, rng=rng_seed + 1,
                                   phase_shift=(0.05 * timestep, 0.7 * drift))
    field = _sigmoid(2.5 * base + 0.7 * detail - 0.8)
    field = np.where(field < 0.15, 0.0, field)  # large dry regions are exactly zero
    return field.astype(np.float32)


# ---------------------------------------------------------------------------- NYX
def _nyx_log_density(shape: Sequence[int], timestep: int, seed: int, n_halos: int,
                     halo_amp: Tuple[float, float], beta: float) -> np.ndarray:
    base_seed = derive_seed(seed, "nyx", beta, n_halos)
    growth = 1.0 + 0.04 * timestep  # structure growth with decreasing redshift
    base = gaussian_random_field(shape, power_exponent=beta, rng=base_seed,
                                 phase_shift=(0.3 * timestep,) * len(tuple(shape)))
    halos = gaussian_bumps(shape, n_bumps=n_halos, amplitude_range=halo_amp,
                           width_range=(1.5, 4.0), rng=base_seed + 7)
    return growth * base + halos


def nyx_baryon_density(shape: Sequence[int], timestep: int, seed: int = 0) -> np.ndarray:
    """NYX baryon density (log10 of the density field, as compressed in the paper)."""
    log_density = _nyx_log_density(shape, timestep, seed, n_halos=40,
                                   halo_amp=(1.0, 3.0), beta=2.8)
    return (log_density + 2.0).astype(np.float32)


def nyx_temperature(shape: Sequence[int], timestep: int, seed: int = 0) -> np.ndarray:
    """NYX temperature (log10 K): correlated with density plus a smooth background."""
    log_density = _nyx_log_density(shape, timestep, seed, n_halos=25,
                                   halo_amp=(0.5, 1.5), beta=3.0)
    background = smooth_ramp(shape, axis=0, low=3.8, high=4.4)
    return (background + 0.6 * log_density).astype(np.float32)


def nyx_dark_matter_density(shape: Sequence[int], timestep: int, seed: int = 0) -> np.ndarray:
    """NYX dark matter density (log10): more sharply peaked than the baryon field."""
    log_density = _nyx_log_density(shape, timestep, seed, n_halos=70,
                                   halo_amp=(1.5, 4.0), beta=2.4)
    return (log_density + 1.0).astype(np.float32)


# ----------------------------------------------------------------------- Hurricane
def hurricane_u(shape: Sequence[int], timestep: int, seed: int = 0) -> np.ndarray:
    """Hurricane ISABEL U: zonal wind component of a translating vortex + turbulence."""
    base_seed = derive_seed(seed, "hurricane", "u")
    nz, ny, nx = shape
    cy = ny * (0.35 + 0.004 * timestep)
    cx = nx * (0.40 + 0.006 * timestep)
    y, x = np.meshgrid(np.arange(ny, dtype=np.float64), np.arange(nx, dtype=np.float64),
                       indexing="ij")
    r = np.sqrt((y - cy) ** 2 + (x - cx) ** 2) + 1e-6
    r_max = 0.12 * min(ny, nx)
    # Rankine-like tangential wind profile.
    v_t = np.where(r < r_max, 60.0 * r / r_max, 60.0 * (r_max / r) ** 0.6)
    u_plane = -v_t * (y - cy) / r
    vertical = np.exp(-np.linspace(0, 2.5, nz))[:, None, None]
    turbulence = gaussian_random_field(shape, power_exponent=2.8, rng=base_seed,
                                       phase_shift=(0.0, 0.3 * timestep, 0.5 * timestep))
    field = vertical * u_plane[None, :, :] + 6.0 * turbulence
    return field.astype(np.float32)


def hurricane_qvapor(shape: Sequence[int], timestep: int, seed: int = 0) -> np.ndarray:
    """Hurricane ISABEL QVAPOR: water-vapor mixing ratio (positive, decays with height)."""
    base_seed = derive_seed(seed, "hurricane", "qvapor")
    nz, ny, nx = shape
    vertical = np.exp(-np.linspace(0, 3.5, nz))[:, None, None]
    moisture = gaussian_random_field(shape, power_exponent=3.0, rng=base_seed,
                                     phase_shift=(0.0, 0.2 * timestep, 0.4 * timestep))
    cy, cx = ny * 0.45, nx * (0.4 + 0.005 * timestep)
    y, x = np.meshgrid(np.arange(ny, dtype=np.float64), np.arange(nx, dtype=np.float64),
                       indexing="ij")
    core = np.exp(-((y - cy) ** 2 + (x - cx) ** 2) / (2 * (0.15 * nx) ** 2))
    field = 0.02 * vertical * (1.0 + 0.8 * core[None, :, :] + 0.35 * moisture)
    return np.maximum(field, 0.0).astype(np.float32)


# ----------------------------------------------------------------------------- RTM
def rtm_snapshot(shape: Sequence[int], timestep: int, seed: int = 0) -> np.ndarray:
    """RTM seismic wavefield: expanding band-limited wavefronts over layered media."""
    base_seed = derive_seed(seed, "rtm")
    rng = as_rng(base_seed)
    r = radial_coordinates(shape, center=[0.1 * shape[0], 0.5 * shape[1], 0.5 * shape[2]])
    radius = 2.0 + 1.8 * timestep
    wave = ricker_wavelet(r, radius, width=3.0)
    # Secondary (reflected) front from a deeper interface.
    r2 = radial_coordinates(shape, center=[0.9 * shape[0], 0.5 * shape[1], 0.5 * shape[2]])
    wave2 = 0.5 * ricker_wavelet(r2, radius * 0.7, width=3.5)
    layers = 0.05 * np.sin(np.linspace(0, 6 * np.pi, shape[0]))[:, None, None]
    noise = 0.01 * gaussian_random_field(shape, power_exponent=2.0, rng=base_seed + 3)
    field = wave + wave2 + layers + noise
    return field.astype(np.float32)


# -------------------------------------------------------------------------- EXAFEL
def exafel_panel(shape: Sequence[int], timestep: int, seed: int = 0) -> np.ndarray:
    """EXAFEL: X-ray diffraction panels (background + rings + Bragg peaks)."""
    base_seed = derive_seed(seed, "exafel", timestep)
    rng = as_rng(base_seed)
    r = radial_coordinates(shape, center=[shape[0] * 0.5, shape[1] * 1.1])
    background = 40.0 * np.exp(-r / (0.8 * max(shape)))
    rings = 12.0 * np.exp(-((np.sin(r / 9.0 + 0.15 * timestep)) ** 2) * 8.0)
    peaks = gaussian_bumps(shape, n_bumps=60, amplitude_range=(50.0, 400.0),
                           width_range=(0.8, 1.8), rng=base_seed + 1)
    noise = rng.normal(scale=2.5, size=tuple(shape))
    field = background + rings + peaks + noise
    return np.maximum(field, 0.0).astype(np.float32)


GENERATORS: Dict[str, Callable[..., np.ndarray]] = {
    "CESM-CLDHGH": cesm_cldhgh,
    "CESM-FREQSH": cesm_freqsh,
    "NYX-baryon_density": nyx_baryon_density,
    "NYX-temperature": nyx_temperature,
    "NYX-dark_matter_density": nyx_dark_matter_density,
    "Hurricane-U": hurricane_u,
    "Hurricane-QVAPOR": hurricane_qvapor,
    "RTM-snapshot": rtm_snapshot,
    "EXAFEL-raw": exafel_panel,
}

"""Binary snapshot I/O in the SDRBench convention (raw little-endian ``.f32``)."""

from __future__ import annotations

import os
from typing import Sequence, Tuple, Union

import numpy as np

PathLike = Union[str, os.PathLike]


def save_f32(path: PathLike, data: np.ndarray) -> None:
    """Write a field as raw little-endian float32 (SDRBench layout, C order)."""
    arr = np.ascontiguousarray(np.asarray(data), dtype="<f4")
    arr.tofile(path)


def load_f32(path: PathLike, shape: Sequence[int]) -> np.ndarray:
    """Read a raw little-endian float32 field with the given shape."""
    shape = tuple(int(s) for s in shape)
    expected = int(np.prod(shape))
    arr = np.fromfile(path, dtype="<f4")
    if arr.size != expected:
        raise ValueError(
            f"file {path!r} holds {arr.size} float32 values, expected {expected} for shape {shape}"
        )
    return arr.reshape(shape)


def map_f32(path: PathLike, shape: Sequence[int]) -> np.ndarray:
    """Memory-map a raw little-endian float32 field (out-of-core reads).

    The chunked compression pipeline slices row slabs out of the returned
    ``numpy.memmap``, so fields larger than RAM stream through without ever
    being materialized whole.
    """
    shape = tuple(int(s) for s in shape)
    expected = int(np.prod(shape)) * 4
    actual = os.path.getsize(path)
    if actual != expected:
        raise ValueError(
            f"file {path!r} holds {actual // 4} float32 values, "
            f"expected {expected // 4} for shape {shape}"
        )
    return np.memmap(path, dtype="<f4", mode="r", shape=shape)


def create_f32(path: PathLike, shape: Sequence[int]) -> np.ndarray:
    """Create a raw little-endian float32 field on disk as a writable memmap.

    The region-extract path gathers decoded tiles straight into the returned
    ``numpy.memmap`` (``mm[local_slices] = piece``), so an extracted region is
    streamed tile by tile to disk and never materializes in RAM.  The caller
    should ``flush()`` when done.  Empty shapes cannot be memory-mapped; the
    caller handles those by writing an empty file.
    """
    shape = tuple(int(s) for s in shape)
    if int(np.prod(shape)) == 0:
        raise ValueError(f"cannot memory-map an empty field of shape {shape}")
    return np.memmap(path, dtype="<f4", mode="w+", shape=shape)


def save_f64(path: PathLike, data: np.ndarray) -> None:
    """Write a field as raw little-endian float64."""
    np.ascontiguousarray(np.asarray(data), dtype="<f8").tofile(path)


def load_f64(path: PathLike, shape: Sequence[int]) -> np.ndarray:
    """Read a raw little-endian float64 field with the given shape."""
    shape = tuple(int(s) for s in shape)
    expected = int(np.prod(shape))
    arr = np.fromfile(path, dtype="<f8")
    if arr.size != expected:
        raise ValueError(
            f"file {path!r} holds {arr.size} float64 values, expected {expected} for shape {shape}"
        )
    return arr.reshape(shape)

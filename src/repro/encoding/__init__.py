"""Entropy/dictionary coding substrate.

AE-SZ's final lossless stage is "Huffman + Zstd" (paper Fig. 2 / Algorithm 1).
This package provides a from-scratch canonical Huffman coder, a bit-stream
abstraction, a DEFLATE-based dictionary backend standing in for Zstd
(documented substitution, see DESIGN.md), and a small container format used to
serialize compressed streams.
"""

from repro.encoding.bitstream import BitReader, BitWriter, pack_bits, unpack_bits
from repro.encoding.huffman import MAX_CODE_LENGTH, HuffmanCodec, huffman_code_lengths
from repro.encoding.lossless import LosslessBackend, ZlibBackend, StoreBackend, get_backend
from repro.encoding.entropy import EntropyCodec
from repro.encoding.container import ByteContainer

__all__ = [
    "BitReader",
    "BitWriter",
    "pack_bits",
    "unpack_bits",
    "HuffmanCodec",
    "MAX_CODE_LENGTH",
    "huffman_code_lengths",
    "LosslessBackend",
    "ZlibBackend",
    "StoreBackend",
    "get_backend",
    "EntropyCodec",
    "ByteContainer",
]

"""Bit-level packing helpers built on ``numpy.packbits`` / ``unpackbits``."""

from __future__ import annotations

from typing import Optional

import numpy as np


def pack_bits(bits: np.ndarray) -> bytes:
    """Pack an array of 0/1 values (most-significant bit first) into bytes."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 1:
        raise ValueError("bits must be a 1-D array")
    return np.packbits(bits).tobytes()


def unpack_bits(data: bytes, n_bits: int) -> np.ndarray:
    """Unpack ``n_bits`` bits from ``data`` into a 0/1 uint8 array."""
    if n_bits < 0:
        raise ValueError("n_bits must be non-negative")
    arr = np.frombuffer(data, dtype=np.uint8)
    bits = np.unpackbits(arr)
    if bits.size < n_bits:
        raise ValueError(f"bitstream too short: need {n_bits} bits, have {bits.size}")
    return bits[:n_bits]


class BitWriter:
    """Accumulate variable-length big-endian bit fields and emit packed bytes."""

    def __init__(self):
        self._chunks: list[np.ndarray] = []
        self._n_bits = 0

    @property
    def n_bits(self) -> int:
        return self._n_bits

    def write_bits_array(self, bits: np.ndarray) -> None:
        """Append a 0/1 uint8 array of bits."""
        bits = np.asarray(bits, dtype=np.uint8).ravel()
        self._chunks.append(bits)
        self._n_bits += bits.size

    def write_uint(self, value: int, width: int) -> None:
        """Append ``value`` as a fixed-width big-endian unsigned field."""
        if width <= 0 or width > 64:
            raise ValueError("width must be in [1, 64]")
        if value < 0 or value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        bits = np.array([(value >> (width - 1 - i)) & 1 for i in range(width)], dtype=np.uint8)
        self.write_bits_array(bits)

    def getvalue(self) -> bytes:
        if not self._chunks:
            return b""
        all_bits = np.concatenate(self._chunks)
        return pack_bits(all_bits)


class BitReader:
    """Sequential reader over a packed bitstream."""

    def __init__(self, data: bytes, n_bits: Optional[int] = None):
        total = len(data) * 8 if n_bits is None else n_bits
        self._bits = unpack_bits(data, total)
        self._pos = 0

    @property
    def remaining(self) -> int:
        return self._bits.size - self._pos

    def read_bit(self) -> int:
        if self._pos >= self._bits.size:
            raise EOFError("bitstream exhausted")
        bit = int(self._bits[self._pos])
        self._pos += 1
        return bit

    def read_uint(self, width: int) -> int:
        if width <= 0 or width > 64:
            raise ValueError("width must be in [1, 64]")
        if self._pos + width > self._bits.size:
            raise EOFError("bitstream exhausted")
        value = 0
        chunk = self._bits[self._pos : self._pos + width]
        for bit in chunk:
            value = (value << 1) | int(bit)
        self._pos += width
        return value

    def read_bits_array(self, n: int) -> np.ndarray:
        if self._pos + n > self._bits.size:
            raise EOFError("bitstream exhausted")
        out = self._bits[self._pos : self._pos + n]
        self._pos += n
        return out

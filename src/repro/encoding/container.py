"""Byte containers: the per-codec section container and the archive envelope.

Compressed outputs consist of named sections (header metadata, latent stream,
quantization codes, unpredictable values, ...).  ``ByteContainer`` serializes a
mapping of section name -> bytes with explicit lengths so decompression never
guesses offsets.

``Archive`` is the self-describing envelope written by :func:`repro.compress`
around every codec's raw payload: a versioned framed header carrying the codec
id, the original shape/dtype, the error-bound mode + value and codec-private
metadata, so ``repro.decompress(blob)`` can reconstruct the array with no
side-channel arguments.  Malformed archives raise ``ValueError("corrupt ...")``
consistently with the entropy-stream convention.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple

import numpy as np

_MAGIC = b"RPRC"
_LEN = struct.Struct("<I")
_QLEN = struct.Struct("<Q")


class ByteContainer:
    """Ordered mapping of named byte sections with a compact binary encoding."""

    def __init__(self, sections: Mapping[str, bytes] | None = None):
        self._sections: Dict[str, bytes] = {}
        if sections:
            for key, value in sections.items():
                self[key] = value

    # ------------------------------------------------------------- mapping
    def __setitem__(self, key: str, value: bytes) -> None:
        if not isinstance(key, str) or not key:
            raise TypeError("section names must be non-empty strings")
        if not isinstance(value, (bytes, bytearray, memoryview)):
            raise TypeError(f"section {key!r} must be bytes, got {type(value)!r}")
        self._sections[key] = bytes(value)

    def __getitem__(self, key: str) -> bytes:
        return self._sections[key]

    def __contains__(self, key: str) -> bool:
        return key in self._sections

    def get(self, key: str, default: bytes = b"") -> bytes:
        return self._sections.get(key, default)

    def keys(self) -> Iterable[str]:
        return self._sections.keys()

    def items(self):
        return self._sections.items()

    def __len__(self) -> int:
        return len(self._sections)

    # --------------------------------------------------------- json helpers
    def put_json(self, key: str, obj) -> None:
        """Store a JSON-serializable object (used for small metadata headers)."""
        self[key] = json.dumps(obj, separators=(",", ":"), sort_keys=True).encode()

    def get_json(self, key: str):
        return json.loads(self[key].decode())

    def put_array(self, key: str, arr: np.ndarray) -> None:
        """Store an ndarray with dtype/shape metadata (lossless, uncompressed)."""
        arr = np.ascontiguousarray(arr)
        header = json.dumps({"dtype": arr.dtype.str, "shape": list(arr.shape)}).encode()
        self[key] = _LEN.pack(len(header)) + header + arr.tobytes()

    def get_array(self, key: str) -> np.ndarray:
        raw = self[key]
        (hlen,) = _LEN.unpack_from(raw, 0)
        meta = json.loads(raw[_LEN.size : _LEN.size + hlen].decode())
        data = raw[_LEN.size + hlen :]
        arr = np.frombuffer(data, dtype=np.dtype(meta["dtype"]))
        return arr.reshape(meta["shape"]).copy()

    # ------------------------------------------------------------ serialize
    def to_bytes(self) -> bytes:
        out = bytearray()
        out += _MAGIC
        out += _LEN.pack(len(self._sections))
        for key, value in self._sections.items():
            kb = key.encode()
            out += _LEN.pack(len(kb))
            out += kb
            out += _QLEN.pack(len(value))
            out += value
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ByteContainer":
        if data[:4] != _MAGIC:
            raise ValueError("not a repro byte container (bad magic)")
        pos = 4
        (n,) = _LEN.unpack_from(data, pos)
        pos += _LEN.size
        container = cls()
        for _ in range(n):
            (klen,) = _LEN.unpack_from(data, pos)
            pos += _LEN.size
            key = data[pos : pos + klen].decode()
            pos += klen
            (vlen,) = _QLEN.unpack_from(data, pos)
            pos += _QLEN.size
            container[key] = data[pos : pos + vlen]
            pos += vlen
        return container

    @property
    def nbytes(self) -> int:
        """Total serialized size in bytes."""
        return len(self.to_bytes())


# ---------------------------------------------------------------------------
# Self-describing archive envelope
# ---------------------------------------------------------------------------

ARCHIVE_MAGIC = b"RPRA"
ARCHIVE_VERSION = 1

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")

# Layout (little endian):
#   magic "RPRA" | u16 version | u32 header_len | header JSON | u64 payload_len
#   | payload | u8 n_extra | n_extra * (u16 key_len | key | u64 len | bytes)
# The header JSON carries {codec, shape, dtype, bound: {mode, value}, meta, crc};
# ``extra`` holds binary side-sections (embedded model weights, pointwise-
# relative sign/zero masks) that would bloat the JSON header.  ``crc`` records
# a CRC-32 of the payload and of every section, so any byte flip in the body is
# caught deterministically (zlib streams can otherwise absorb flips silently).


def is_archive(data: bytes) -> bool:
    """True when ``data`` starts with the archive magic (vs a raw codec payload)."""
    return bytes(data[:4]) == ARCHIVE_MAGIC


@dataclass
class Archive:
    """The parsed form of a self-describing compressed archive."""

    codec: str
    shape: Tuple[int, ...]
    dtype: str
    bound_mode: str
    bound_value: float
    payload: bytes
    meta: dict = field(default_factory=dict)
    extra: Dict[str, bytes] = field(default_factory=dict)
    version: int = ARCHIVE_VERSION

    @property
    def n_points(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1

    # ------------------------------------------------------------ serialize
    def to_bytes(self) -> bytes:
        import zlib

        header = {
            "codec": self.codec,
            "shape": [int(s) for s in self.shape],
            "dtype": str(self.dtype),
            "bound": {"mode": self.bound_mode, "value": float(self.bound_value)},
            "meta": self.meta,
            "crc": {"payload": zlib.crc32(self.payload),
                    "extra": {k: zlib.crc32(v) for k, v in self.extra.items()}},
        }
        header_bytes = json.dumps(header, separators=(",", ":"), sort_keys=True).encode()
        if len(self.extra) > 255:
            raise ValueError("archives support at most 255 extra sections")
        out = bytearray()
        out += ARCHIVE_MAGIC
        out += _U16.pack(ARCHIVE_VERSION)
        out += _LEN.pack(len(header_bytes))
        out += header_bytes
        out += _QLEN.pack(len(self.payload))
        out += self.payload
        out += _U8.pack(len(self.extra))
        for key, value in self.extra.items():
            kb = key.encode()
            out += _U16.pack(len(kb))
            out += kb
            out += _QLEN.pack(len(value))
            out += value
        return bytes(out)

    # -------------------------------------------------------------- parse
    @classmethod
    def from_bytes(cls, data: bytes) -> "Archive":
        data = bytes(data)

        def take(pos: int, n: int, what: str) -> Tuple[bytes, int]:
            if pos + n > len(data):
                raise ValueError(f"corrupt archive: truncated {what}")
            return data[pos:pos + n], pos + n

        if len(data) < 4 or data[:4] != ARCHIVE_MAGIC:
            raise ValueError("corrupt archive: bad magic (not a repro archive)")
        raw, pos = take(4, _U16.size, "version field")
        (version,) = _U16.unpack(raw)
        if version != ARCHIVE_VERSION:
            raise ValueError(
                f"unsupported archive version {version} (this build reads "
                f"version {ARCHIVE_VERSION})"
            )
        raw, pos = take(pos, _LEN.size, "header length")
        (hlen,) = _LEN.unpack(raw)
        raw, pos = take(pos, hlen, "header")
        try:
            header = json.loads(raw.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"corrupt archive: unreadable header ({exc})") from None
        if not isinstance(header, dict):
            raise ValueError("corrupt archive: header is not a JSON object")
        try:
            codec = str(header["codec"])
            shape = tuple(int(s) for s in header["shape"])
            dtype = str(header["dtype"])
            bound = header["bound"]
            bound_mode = str(bound["mode"])
            bound_value = float(bound["value"])
            meta = header.get("meta", {})
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"corrupt archive: malformed header ({exc})") from None
        if not isinstance(meta, dict):
            raise ValueError("corrupt archive: header meta is not a JSON object")

        raw, pos = take(pos, _QLEN.size, "payload length")
        (plen,) = _QLEN.unpack(raw)
        payload, pos = take(pos, plen, "payload")
        raw, pos = take(pos, _U8.size, "section count")
        (n_extra,) = _U8.unpack(raw)
        extra: Dict[str, bytes] = {}
        for _ in range(n_extra):
            raw, pos = take(pos, _U16.size, "section key length")
            (klen,) = _U16.unpack(raw)
            raw, pos = take(pos, klen, "section key")
            try:
                key = raw.decode()
            except UnicodeDecodeError:
                raise ValueError("corrupt archive: undecodable section key") from None
            raw, pos = take(pos, _QLEN.size, "section length")
            (vlen,) = _QLEN.unpack(raw)
            extra[key], pos = take(pos, vlen, f"section {key!r}")
        if pos != len(data):
            raise ValueError(f"corrupt archive: {len(data) - pos} trailing bytes")

        crc = header.get("crc")
        if crc is not None:
            import zlib

            extra_crc = crc.get("extra", {}) if isinstance(crc, dict) else None
            if not isinstance(crc, dict) or not isinstance(extra_crc, dict):
                raise ValueError("corrupt archive: malformed crc field")
            if zlib.crc32(payload) != crc.get("payload"):
                raise ValueError("corrupt archive: payload checksum mismatch")
            for key, value in extra.items():
                if zlib.crc32(value) != extra_crc.get(key):
                    raise ValueError(
                        f"corrupt archive: section {key!r} checksum mismatch")
        return cls(codec=codec, shape=shape, dtype=dtype, bound_mode=bound_mode,
                   bound_value=bound_value, payload=payload, meta=meta, extra=extra,
                   version=version)

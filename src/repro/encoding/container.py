"""A tiny tagged byte container used by every compressor's stream format.

Compressed outputs consist of named sections (header metadata, latent stream,
quantization codes, unpredictable values, ...).  ``ByteContainer`` serializes a
mapping of section name -> bytes with explicit lengths so decompression never
guesses offsets.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, Iterable, Mapping

import numpy as np

_MAGIC = b"RPRC"
_LEN = struct.Struct("<I")
_QLEN = struct.Struct("<Q")


class ByteContainer:
    """Ordered mapping of named byte sections with a compact binary encoding."""

    def __init__(self, sections: Mapping[str, bytes] | None = None):
        self._sections: Dict[str, bytes] = {}
        if sections:
            for key, value in sections.items():
                self[key] = value

    # ------------------------------------------------------------- mapping
    def __setitem__(self, key: str, value: bytes) -> None:
        if not isinstance(key, str) or not key:
            raise TypeError("section names must be non-empty strings")
        if not isinstance(value, (bytes, bytearray, memoryview)):
            raise TypeError(f"section {key!r} must be bytes, got {type(value)!r}")
        self._sections[key] = bytes(value)

    def __getitem__(self, key: str) -> bytes:
        return self._sections[key]

    def __contains__(self, key: str) -> bool:
        return key in self._sections

    def get(self, key: str, default: bytes = b"") -> bytes:
        return self._sections.get(key, default)

    def keys(self) -> Iterable[str]:
        return self._sections.keys()

    def items(self):
        return self._sections.items()

    def __len__(self) -> int:
        return len(self._sections)

    # --------------------------------------------------------- json helpers
    def put_json(self, key: str, obj) -> None:
        """Store a JSON-serializable object (used for small metadata headers)."""
        self[key] = json.dumps(obj, separators=(",", ":"), sort_keys=True).encode()

    def get_json(self, key: str):
        return json.loads(self[key].decode())

    def put_array(self, key: str, arr: np.ndarray) -> None:
        """Store an ndarray with dtype/shape metadata (lossless, uncompressed)."""
        arr = np.ascontiguousarray(arr)
        header = json.dumps({"dtype": arr.dtype.str, "shape": list(arr.shape)}).encode()
        self[key] = _LEN.pack(len(header)) + header + arr.tobytes()

    def get_array(self, key: str) -> np.ndarray:
        raw = self[key]
        (hlen,) = _LEN.unpack_from(raw, 0)
        meta = json.loads(raw[_LEN.size : _LEN.size + hlen].decode())
        data = raw[_LEN.size + hlen :]
        arr = np.frombuffer(data, dtype=np.dtype(meta["dtype"]))
        return arr.reshape(meta["shape"]).copy()

    # ------------------------------------------------------------ serialize
    def to_bytes(self) -> bytes:
        out = bytearray()
        out += _MAGIC
        out += _LEN.pack(len(self._sections))
        for key, value in self._sections.items():
            kb = key.encode()
            out += _LEN.pack(len(kb))
            out += kb
            out += _QLEN.pack(len(value))
            out += value
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ByteContainer":
        if data[:4] != _MAGIC:
            raise ValueError("not a repro byte container (bad magic)")
        pos = 4
        (n,) = _LEN.unpack_from(data, pos)
        pos += _LEN.size
        container = cls()
        for _ in range(n):
            (klen,) = _LEN.unpack_from(data, pos)
            pos += _LEN.size
            key = data[pos : pos + klen].decode()
            pos += klen
            (vlen,) = _QLEN.unpack_from(data, pos)
            pos += _QLEN.size
            container[key] = data[pos : pos + vlen]
            pos += vlen
        return container

    @property
    def nbytes(self) -> int:
        """Total serialized size in bytes."""
        return len(self.to_bytes())

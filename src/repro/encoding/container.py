"""Byte containers: the per-codec section container and the archive envelope.

Compressed outputs consist of named sections (header metadata, latent stream,
quantization codes, unpredictable values, ...).  ``ByteContainer`` serializes a
mapping of section name -> bytes with explicit lengths so decompression never
guesses offsets.

``Archive`` is the self-describing envelope written by :func:`repro.compress`
around every codec's raw payload: a versioned framed header carrying the codec
id, the original shape/dtype, the error-bound mode + value and codec-private
metadata, so ``repro.decompress(blob)`` can reconstruct the array with no
side-channel arguments.  Malformed archives raise ``ValueError("corrupt ...")``
consistently with the entropy-stream convention.
"""

from __future__ import annotations

import itertools
import json
import struct
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

_MAGIC = b"RPRC"
_LEN = struct.Struct("<I")
_QLEN = struct.Struct("<Q")


class ByteContainer:
    """Ordered mapping of named byte sections with a compact binary encoding."""

    def __init__(self, sections: Mapping[str, bytes] | None = None):
        self._sections: Dict[str, bytes] = {}
        if sections:
            for key, value in sections.items():
                self[key] = value

    # ------------------------------------------------------------- mapping
    def __setitem__(self, key: str, value: bytes) -> None:
        if not isinstance(key, str) or not key:
            raise TypeError("section names must be non-empty strings")
        if not isinstance(value, (bytes, bytearray, memoryview)):
            raise TypeError(f"section {key!r} must be bytes, got {type(value)!r}")
        self._sections[key] = bytes(value)

    def __getitem__(self, key: str) -> bytes:
        return self._sections[key]

    def __contains__(self, key: str) -> bool:
        return key in self._sections

    def get(self, key: str, default: bytes = b"") -> bytes:
        return self._sections.get(key, default)

    def keys(self) -> Iterable[str]:
        return self._sections.keys()

    def items(self):
        return self._sections.items()

    def __len__(self) -> int:
        return len(self._sections)

    # --------------------------------------------------------- json helpers
    def put_json(self, key: str, obj) -> None:
        """Store a JSON-serializable object (used for small metadata headers)."""
        self[key] = json.dumps(obj, separators=(",", ":"), sort_keys=True).encode()

    def get_json(self, key: str):
        return json.loads(self[key].decode())

    def put_array(self, key: str, arr: np.ndarray) -> None:
        """Store an ndarray with dtype/shape metadata (lossless, uncompressed)."""
        arr = np.ascontiguousarray(arr)
        header = json.dumps({"dtype": arr.dtype.str, "shape": list(arr.shape)}).encode()
        self[key] = _LEN.pack(len(header)) + header + arr.tobytes()

    def get_array(self, key: str) -> np.ndarray:
        raw = self[key]
        (hlen,) = _LEN.unpack_from(raw, 0)
        meta = json.loads(raw[_LEN.size : _LEN.size + hlen].decode())
        data = raw[_LEN.size + hlen :]
        arr = np.frombuffer(data, dtype=np.dtype(meta["dtype"]))
        return arr.reshape(meta["shape"]).copy()

    # ------------------------------------------------------------ serialize
    def to_bytes(self) -> bytes:
        out = bytearray()
        out += _MAGIC
        out += _LEN.pack(len(self._sections))
        for key, value in self._sections.items():
            kb = key.encode()
            out += _LEN.pack(len(kb))
            out += kb
            out += _QLEN.pack(len(value))
            out += value
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ByteContainer":
        if data[:4] != _MAGIC:
            raise ValueError("not a repro byte container (bad magic)")
        pos = 4
        total = len(data)

        def take_uint(fmt: struct.Struct, what: str) -> int:
            nonlocal pos
            if pos + fmt.size > total:
                raise ValueError(f"corrupt byte container: truncated {what}")
            (value,) = fmt.unpack_from(data, pos)
            pos += fmt.size
            return value

        n = take_uint(_LEN, "section count")
        container = cls()
        for _ in range(n):
            klen = take_uint(_LEN, "section name length")
            if klen == 0 or pos + klen > total:
                raise ValueError("corrupt byte container: bad section name")
            try:
                key = data[pos : pos + klen].decode()
            except UnicodeDecodeError:
                raise ValueError(
                    "corrupt byte container: section name is not UTF-8") from None
            pos += klen
            vlen = take_uint(_QLEN, f"length of section {key!r}")
            if pos + vlen > total:
                raise ValueError(
                    f"corrupt byte container: truncated section {key!r}")
            container[key] = data[pos : pos + vlen]
            pos += vlen
        return container

    @property
    def nbytes(self) -> int:
        """Total serialized size in bytes."""
        return len(self.to_bytes())


# ---------------------------------------------------------------------------
# Self-describing archive envelope
# ---------------------------------------------------------------------------

ARCHIVE_MAGIC = b"RPRA"
ARCHIVE_VERSION = 1

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")

# Layout (little endian):
#   magic "RPRA" | u16 version | u32 header_len | header JSON | u64 payload_len
#   | payload | u8 n_extra | n_extra * (u16 key_len | key | u64 len | bytes)
# The header JSON carries {codec, shape, dtype, bound: {mode, value}, meta, crc};
# ``extra`` holds binary side-sections (embedded model weights, pointwise-
# relative sign/zero masks) that would bloat the JSON header.  ``crc`` records
# a CRC-32 of the payload and of every section, so any byte flip in the body is
# caught deterministically (zlib streams can otherwise absorb flips silently).


def is_archive(data: bytes) -> bool:
    """True when ``data`` starts with the archive magic (vs a raw codec payload)."""
    return bytes(data[:4]) == ARCHIVE_MAGIC


@dataclass
class Archive:
    """The parsed form of a self-describing compressed archive."""

    codec: str
    shape: Tuple[int, ...]
    dtype: str
    bound_mode: str
    bound_value: float
    payload: bytes
    meta: dict = field(default_factory=dict)
    extra: Dict[str, bytes] = field(default_factory=dict)
    version: int = ARCHIVE_VERSION

    @property
    def n_points(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1

    # ------------------------------------------------------------ serialize
    def to_bytes(self) -> bytes:
        import zlib

        header = {
            "codec": self.codec,
            "shape": [int(s) for s in self.shape],
            "dtype": str(self.dtype),
            "bound": {"mode": self.bound_mode, "value": float(self.bound_value)},
            "meta": self.meta,
            "crc": {"payload": zlib.crc32(self.payload),
                    "extra": {k: zlib.crc32(v) for k, v in self.extra.items()}},
        }
        header_bytes = json.dumps(header, separators=(",", ":"), sort_keys=True).encode()
        if len(self.extra) > 255:
            raise ValueError("archives support at most 255 extra sections")
        out = bytearray()
        out += ARCHIVE_MAGIC
        out += _U16.pack(ARCHIVE_VERSION)
        out += _LEN.pack(len(header_bytes))
        out += header_bytes
        out += _QLEN.pack(len(self.payload))
        out += self.payload
        out += _U8.pack(len(self.extra))
        for key, value in self.extra.items():
            kb = key.encode()
            out += _U16.pack(len(kb))
            out += kb
            out += _QLEN.pack(len(value))
            out += value
        return bytes(out)

    # -------------------------------------------------------------- parse
    @classmethod
    def from_bytes(cls, data: bytes) -> "Archive":
        data = bytes(data)

        def take(pos: int, n: int, what: str) -> Tuple[bytes, int]:
            if pos + n > len(data):
                raise ValueError(f"corrupt archive: truncated {what}")
            return data[pos:pos + n], pos + n

        if len(data) < 4 or data[:4] != ARCHIVE_MAGIC:
            raise ValueError("corrupt archive: bad magic (not a repro archive)")
        raw, pos = take(4, _U16.size, "version field")
        (version,) = _U16.unpack(raw)
        if version == CHUNKED_ARCHIVE_VERSION:
            raise ValueError(
                "this is a chunked (multi-chunk) archive; parse it with "
                "ChunkedIndex.from_bytes or decode it via repro.decompress"
            )
        if version == GRID_ARCHIVE_VERSION:
            raise ValueError(
                "this is a grid (N-d tiled) archive; parse it with "
                "GridIndex.from_bytes or decode it via repro.decompress / "
                "repro.read_region"
            )
        if version != ARCHIVE_VERSION:
            raise ValueError(
                f"unsupported archive version {version} (this build reads "
                f"versions {ARCHIVE_VERSION}, {CHUNKED_ARCHIVE_VERSION} and "
                f"{GRID_ARCHIVE_VERSION})"
            )
        raw, pos = take(pos, _LEN.size, "header length")
        (hlen,) = _LEN.unpack(raw)
        raw, pos = take(pos, hlen, "header")
        try:
            header = json.loads(raw.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"corrupt archive: unreadable header ({exc})") from None
        if not isinstance(header, dict):
            raise ValueError("corrupt archive: header is not a JSON object")
        try:
            codec = str(header["codec"])
            shape = tuple(int(s) for s in header["shape"])
            dtype = str(header["dtype"])
            bound = header["bound"]
            bound_mode = str(bound["mode"])
            bound_value = float(bound["value"])
            meta = header.get("meta", {})
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"corrupt archive: malformed header ({exc})") from None
        if not isinstance(meta, dict):
            raise ValueError("corrupt archive: header meta is not a JSON object")

        raw, pos = take(pos, _QLEN.size, "payload length")
        (plen,) = _QLEN.unpack(raw)
        payload, pos = take(pos, plen, "payload")
        raw, pos = take(pos, _U8.size, "section count")
        (n_extra,) = _U8.unpack(raw)
        extra: Dict[str, bytes] = {}
        for _ in range(n_extra):
            raw, pos = take(pos, _U16.size, "section key length")
            (klen,) = _U16.unpack(raw)
            raw, pos = take(pos, klen, "section key")
            try:
                key = raw.decode()
            except UnicodeDecodeError:
                raise ValueError("corrupt archive: undecodable section key") from None
            raw, pos = take(pos, _QLEN.size, "section length")
            (vlen,) = _QLEN.unpack(raw)
            extra[key], pos = take(pos, vlen, f"section {key!r}")
        if pos != len(data):
            raise ValueError(f"corrupt archive: {len(data) - pos} trailing bytes")

        crc = header.get("crc")
        if crc is not None:
            import zlib

            extra_crc = crc.get("extra", {}) if isinstance(crc, dict) else None
            if not isinstance(crc, dict) or not isinstance(extra_crc, dict):
                raise ValueError("corrupt archive: malformed crc field")
            if zlib.crc32(payload) != crc.get("payload"):
                raise ValueError("corrupt archive: payload checksum mismatch")
            for key, value in extra.items():
                if zlib.crc32(value) != extra_crc.get(key):
                    raise ValueError(
                        f"corrupt archive: section {key!r} checksum mismatch")
        return cls(codec=codec, shape=shape, dtype=dtype, bound_mode=bound_mode,
                   bound_value=bound_value, payload=payload, meta=meta, extra=extra,
                   version=version)


# ---------------------------------------------------------------------------
# Chunked (multi-chunk) archive envelope — format version 2
# ---------------------------------------------------------------------------

CHUNKED_ARCHIVE_VERSION = 2
GRID_ARCHIVE_VERSION = 3

#: Bytes of fixed-size front matter before the JSON header: magic (4) +
#: version (u16) + header length (u32).  Reading this prefix is enough to know
#: how many more bytes the full front (and thus the chunk/tile index) needs.
FRONT_PREFIX = 4 + _U16.size + _LEN.size


def front_size(prefix: bytes) -> int:
    """Total front-matter size (magic through header JSON) of an archive.

    Needs only the first :data:`FRONT_PREFIX` bytes.  Region readers use this
    to fetch a multi-gigabyte archive's index with two small reads: one for
    the fixed prefix, one for the JSON header it sizes.
    """
    prefix = bytes(prefix[:FRONT_PREFIX])
    if prefix[:4] != ARCHIVE_MAGIC:
        raise ValueError("corrupt archive: bad magic (not a repro archive)")
    if len(prefix) < FRONT_PREFIX:
        # Valid magic but the source ended inside the fixed front matter:
        # report truncation, not a misleading magic failure.
        raise ValueError(
            f"corrupt archive: truncated front matter ({len(prefix)} bytes, "
            f"need at least {FRONT_PREFIX})")
    (hlen,) = _LEN.unpack_from(prefix, 4 + _U16.size)
    return FRONT_PREFIX + hlen


def parse_front(data: bytes) -> Tuple[int, dict, int]:
    """Parse the envelope front: ``(version, header_dict, data_start)``.

    ``data`` may be a prefix of the archive — it must cover the front matter
    (magic | u16 version | u32 header len | header JSON) but none of the body
    bytes that follow, which is what lets index parsing stay O(header) for
    arbitrarily large chunked/grid archives.
    """
    data = bytes(data)
    if len(data) < 4 or data[:4] != ARCHIVE_MAGIC:
        raise ValueError("corrupt archive: bad magic (not a repro archive)")
    if len(data) < FRONT_PREFIX:
        raise ValueError("corrupt archive: truncated front matter")
    (version,) = _U16.unpack_from(data, 4)
    (hlen,) = _LEN.unpack_from(data, 4 + _U16.size)
    if FRONT_PREFIX + hlen > len(data):
        raise ValueError("corrupt archive: truncated header")
    try:
        header = json.loads(data[FRONT_PREFIX:FRONT_PREFIX + hlen].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"corrupt archive: unreadable header ({exc})") from None
    if not isinstance(header, dict):
        raise ValueError("corrupt archive: header is not a JSON object")
    return version, header, FRONT_PREFIX + hlen


def _common_header_fields(header: dict):
    """Extract the fields every envelope version shares from a header dict."""
    try:
        codec = str(header["codec"])
        shape = tuple(int(s) for s in header["shape"])
        dtype = str(header["dtype"])
        bound = header["bound"]
        bound_mode = str(bound["mode"])
        bound_value = float(bound["value"])
        meta = header.get("meta", {})
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"corrupt archive: malformed header ({exc})") from None
    if not isinstance(meta, dict):
        raise ValueError("corrupt archive: header meta is not a JSON object")
    return codec, shape, dtype, bound_mode, bound_value, meta


def _check_contiguous(offsets: Sequence[int], lengths: Sequence[int],
                      data_start: int, total_size: int, what: str) -> None:
    """Validate that byte ranges tile [data_start, total_size) back to back."""
    end = 0
    for off, length in zip(offsets, lengths):
        if off != end or length < 0:
            raise ValueError(f"corrupt archive: non-contiguous {what} offsets")
        end += length
    if data_start + end != total_size:
        missing = data_start + end - total_size
        if missing > 0:
            raise ValueError(f"corrupt archive: truncated {what} data")
        raise ValueError(f"corrupt archive: {-missing} trailing bytes")


def _index_tile_key(index, i: int) -> Tuple[int, int, int, int]:
    """Shared ``tile_key`` implementation for both index classes.

    ``(tile index, byte offset, length, CRC-32)`` from the front-header index
    table alone — no tile bytes read or hashed — so a decoded-tile cache can
    key on ``(archive identity, tile_key)`` and an in-place rewrite of the
    tile (new CRC, almost surely new offset/length) can never alias a stale
    entry.
    """
    if not 0 <= i < index.n_tiles:
        raise IndexError(f"tile index {i} out of range ({index.n_tiles} tiles)")
    return (int(i), int(index.offsets[i]), int(index.lengths[i]),
            int(index.crcs[i]))


def _check_blob(raw: bytes, length: int, crc: int, label: str) -> bytes:
    """Validate one chunk/tile blob (length + CRC-32) as read from storage."""
    import zlib

    raw = bytes(raw)
    if len(raw) != length or zlib.crc32(raw) != crc:
        raise ValueError(f"corrupt archive: {label} checksum mismatch")
    return raw


def _blob_table(blobs: Sequence[bytes]):
    """The contiguous (offsets, lengths, crcs) index arrays for blob bodies."""
    import zlib

    offsets, lengths, crcs = [], [], []
    pos = 0
    for blob in blobs:
        offsets.append(pos)
        lengths.append(len(blob))
        crcs.append(zlib.crc32(blob))
        pos += len(blob)
    return offsets, lengths, crcs


def _assemble_envelope(version: int, header: dict,
                       blobs: Iterable[bytes]) -> bytes:
    """Serialize magic | version | header len | canonical JSON | blob bodies."""
    header_bytes = json.dumps(header, separators=(",", ":"), sort_keys=True).encode()
    out = bytearray()
    out += ARCHIVE_MAGIC
    out += _U16.pack(version)
    out += _LEN.pack(len(header_bytes))
    out += header_bytes
    for blob in blobs:
        out += blob
    return bytes(out)


def grid_shape_of(shape: Sequence[int], chunk_shape: Sequence[int]) -> Tuple[int, ...]:
    """Tiles per axis for a chunk grid: ``ceil(shape[ax] / chunk_shape[ax])``."""
    return tuple(-(-int(d) // int(c)) for d, c in zip(shape, chunk_shape))

# Layout (little endian):
#   magic "RPRA" | u16 version=2 | u32 header_len | header JSON | chunk blobs
# The header JSON carries {codec, shape, dtype, bound: {mode, value}, meta,
# chunks: {axis, starts, offsets, lengths, crcs}}.  Each chunk blob is a
# complete version-1 archive (its own header, CRC and error-bound record), and
# the index table sits entirely in the front header: ``offsets[i]`` /
# ``lengths[i]`` locate chunk ``i`` relative to the end of the header and
# ``crcs[i]`` is the CRC-32 of the whole chunk blob, so any chunk can be
# located, integrity-checked and decoded independently and in any order
# without touching the others.  ``starts`` are the chunk boundaries along
# ``axis`` (``starts[i]:starts[i+1]`` is chunk ``i``'s slab of the full
# field); a 0-d field is a single chunk with ``starts == [0, 1]``.


def archive_version(data: bytes) -> int:
    """Format version of an archive blob (1 = single-shot, 2 = chunked,
    3 = N-d grid)."""
    data = bytes(data[: 4 + _U16.size])
    if len(data) < 4 + _U16.size or data[:4] != ARCHIVE_MAGIC:
        raise ValueError("corrupt archive: bad magic (not a repro archive)")
    (version,) = _U16.unpack_from(data, 4)
    return version


def is_chunked_archive(data: bytes) -> bool:
    """True when ``data`` is a version-2 (multi-chunk) archive."""
    try:
        return archive_version(data) == CHUNKED_ARCHIVE_VERSION
    except ValueError:
        return False


def is_grid_archive(data: bytes) -> bool:
    """True when ``data`` is a version-3 (N-d chunk grid) archive."""
    try:
        return archive_version(data) == GRID_ARCHIVE_VERSION
    except ValueError:
        return False


@dataclass
class ChunkedIndex:
    """The parsed front matter of a chunked archive: everything but the chunks.

    Mirrors :class:`Archive`'s header attributes (``codec`` / ``shape`` /
    ``dtype`` / ``bound_mode`` / ``bound_value`` / ``meta``) so inspection code
    can treat both formats uniformly, and adds the chunk index table.
    """

    codec: str
    shape: Tuple[int, ...]
    dtype: str
    bound_mode: str
    bound_value: float
    axis: int
    starts: Tuple[int, ...]      # chunk boundaries along ``axis``, len n_chunks+1
    offsets: Tuple[int, ...]     # chunk byte offsets relative to ``data_start``
    lengths: Tuple[int, ...]
    crcs: Tuple[int, ...]
    data_start: int              # absolute byte offset of the first chunk blob
    meta: dict = field(default_factory=dict)
    version: int = CHUNKED_ARCHIVE_VERSION

    @property
    def n_chunks(self) -> int:
        return len(self.offsets)

    @property
    def n_points(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1

    def chunk_slice(self, i: int) -> slice:
        """The slab of the full field covered by chunk ``i`` (along ``axis``)."""
        return slice(self.starts[i], self.starts[i + 1])

    def chunk_shape(self, i: int) -> Tuple[int, ...]:
        if not self.shape:  # 0-d field: one chunk holding the scalar itself
            return ()
        rows = self.starts[i + 1] - self.starts[i]
        return self.shape[:self.axis] + (rows,) + self.shape[self.axis + 1:]

    def chunk_bytes(self, blob: bytes, i: int) -> bytes:
        """Slice chunk ``i``'s archive out of the full blob, CRC-checked."""
        if not 0 <= i < self.n_chunks:
            raise IndexError(f"chunk index {i} out of range ({self.n_chunks} chunks)")
        start = self.data_start + self.offsets[i]
        end = start + self.lengths[i]
        if end > len(blob):
            raise ValueError(f"corrupt archive: truncated chunk {i}")
        return self.check_tile(i, blob[start:end])

    # -------------------------------------------------- tile protocol (v2/v3)
    # The uniform random-access surface shared with :class:`GridIndex`: a v2
    # archive is served by region readers as a degenerate 1-d grid whose tiles
    # are the axis-0 slabs.

    @property
    def n_tiles(self) -> int:
        return self.n_chunks

    def tile_slices(self, i: int) -> Tuple[slice, ...]:
        """Tile ``i``'s extent in full-field coordinates, one slice per axis."""
        if not self.shape:
            return ()
        return ((self.chunk_slice(i),)
                + tuple(slice(0, dim) for dim in self.shape[1:]))

    def tile_shape(self, i: int) -> Tuple[int, ...]:
        return self.chunk_shape(i)

    def check_tile(self, i: int, raw: bytes) -> bytes:
        """Validate tile ``i``'s bytes (length + CRC-32) as read from storage."""
        return _check_blob(raw, self.lengths[i], self.crcs[i], f"chunk {i}")

    def tile_key(self, i: int) -> Tuple[int, int, int, int]:
        """Cheap per-tile cache key from the index table alone
        (see :func:`_index_tile_key`)."""
        return _index_tile_key(self, i)

    def tile_bytes(self, blob: bytes, i: int) -> bytes:
        return self.chunk_bytes(blob, i)

    def region_tiles(self, bounds: Sequence[Tuple[int, int]]) -> List[int]:
        """Indices of the chunks intersecting ``bounds`` (per-axis start/stop).

        ``bounds`` must be normalized (one ``(start, stop)`` pair per axis,
        ``0 <= start <= stop <= dim``); an empty axis selects no chunks.
        """
        if len(bounds) != len(self.shape):
            raise ValueError(
                f"region has {len(bounds)} axes, archive field has {len(self.shape)}")
        if any(b0 >= b1 for b0, b1 in bounds):
            return []
        if not self.shape:
            return [0]
        b0, b1 = bounds[0]
        first = max(0, bisect_right(self.starts, b0) - 1)
        out = []
        for i in range(first, self.n_chunks):
            if self.starts[i] >= b1:
                break
            if self.starts[i + 1] > b0:  # skip empty chunks touching the edge
                out.append(i)
        return out

    # -------------------------------------------------------------- parse
    @classmethod
    def from_header(cls, header: dict, data_start: int,
                    total_size: int) -> "ChunkedIndex":
        """Build (and fully validate) an index from a parsed front header.

        ``total_size`` is the archive's complete byte length — for an
        in-memory blob ``len(blob)``, for an on-disk archive the file size —
        so index validation never needs the body bytes themselves.
        """
        codec, shape, dtype, bound_mode, bound_value, meta = \
            _common_header_fields(header)
        try:
            chunks = header["chunks"]
            axis = int(chunks["axis"])
            starts = tuple(int(s) for s in chunks["starts"])
            offsets = tuple(int(o) for o in chunks["offsets"])
            lengths = tuple(int(n) for n in chunks["lengths"])
            crcs = tuple(int(c) for c in chunks["crcs"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"corrupt archive: malformed header ({exc})") from None
        n = len(offsets)
        if n == 0 or len(lengths) != n or len(crcs) != n or len(starts) != n + 1:
            raise ValueError("corrupt archive: inconsistent chunk index table")
        if axis != 0:
            # The writer only emits axis-0 slabs; anything else would be
            # silently misplaced by the axis-0 reassembly paths.
            raise ValueError(
                f"unsupported chunk axis {axis} (this build reads axis-0 "
                f"chunked archives)"
            )
        if any(starts[i] > starts[i + 1] for i in range(n)) or starts[0] != 0:
            raise ValueError("corrupt archive: non-monotonic chunk starts")
        expected_rows = shape[axis] if shape else 1
        if starts[-1] != expected_rows:
            raise ValueError("corrupt archive: chunk starts do not cover the field")
        _check_contiguous(offsets, lengths, data_start, total_size, "chunk")
        return cls(codec=codec, shape=shape, dtype=dtype, bound_mode=bound_mode,
                   bound_value=bound_value, axis=axis, starts=starts, offsets=offsets,
                   lengths=lengths, crcs=crcs, data_start=data_start, meta=meta,
                   version=CHUNKED_ARCHIVE_VERSION)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ChunkedIndex":
        data = bytes(data)
        version, header, data_start = parse_front(data)
        if version != CHUNKED_ARCHIVE_VERSION:
            raise ValueError(
                f"not a chunked archive (version {version}); use Archive.from_bytes"
            )
        return cls.from_header(header, data_start, len(data))


def build_chunked_archive(*, codec: str, shape: Tuple[int, ...], dtype: str,
                          bound_mode: str, bound_value: float, axis: int,
                          starts: Iterable[int], chunk_blobs: Iterable[bytes],
                          meta: Optional[dict] = None) -> bytes:
    """Assemble a version-2 chunked archive from per-chunk version-1 blobs."""
    chunk_blobs = [bytes(b) for b in chunk_blobs]
    starts = [int(s) for s in starts]
    if not chunk_blobs:
        raise ValueError("a chunked archive needs at least one chunk")
    if len(starts) != len(chunk_blobs) + 1:
        raise ValueError("starts must have exactly one more entry than chunk_blobs")
    offsets, lengths, crcs = _blob_table(chunk_blobs)
    header = {
        "codec": str(codec),
        "shape": [int(s) for s in shape],
        "dtype": str(dtype),
        "bound": {"mode": str(bound_mode), "value": float(bound_value)},
        "meta": meta or {},
        "chunks": {"axis": int(axis), "starts": starts, "offsets": offsets,
                   "lengths": lengths, "crcs": crcs},
    }
    return _assemble_envelope(CHUNKED_ARCHIVE_VERSION, header, chunk_blobs)


# ---------------------------------------------------------------------------
# N-d chunk-grid archive envelope — format version 3
# ---------------------------------------------------------------------------

# Layout (little endian):
#   magic "RPRA" | u16 version=3 | u32 header_len | header JSON | tile blobs
# The header JSON carries {codec, shape, dtype, bound: {mode, value}, meta,
# grid: {chunk_shape, offsets, lengths, crcs}}.  ``chunk_shape`` is the
# per-axis tile size; the grid has ``ceil(shape[ax] / chunk_shape[ax])`` tiles
# along each axis (edge tiles are smaller) and the index arrays enumerate the
# tiles in **row-major order over the grid**.  Each tile blob is a complete
# version-1 archive of its sub-array; ``offsets[i]`` / ``lengths[i]`` locate
# tile ``i`` relative to the end of the header and ``crcs[i]`` is the CRC-32
# of the whole tile blob.  A reader wanting the sub-cube ``region`` therefore
# touches only the front header plus the tiles whose per-axis index lies in
# ``[start // chunk_shape[ax], ceil(stop / chunk_shape[ax]))`` — O(region)
# bytes, not O(archive).


@dataclass
class GridIndex:
    """The parsed front matter of a version-3 (N-d chunk grid) archive.

    Mirrors :class:`Archive`'s header attributes (``codec`` / ``shape`` /
    ``dtype`` / ``bound_mode`` / ``bound_value`` / ``meta``) and exposes the
    same tile protocol as :class:`ChunkedIndex` (``n_tiles`` /
    ``tile_slices`` / ``tile_shape`` / ``check_tile`` / ``tile_bytes`` /
    ``region_tiles``), so region readers treat both formats uniformly.
    """

    codec: str
    shape: Tuple[int, ...]
    dtype: str
    bound_mode: str
    bound_value: float
    chunk_shape: Tuple[int, ...]  # per-axis tile size, len == len(shape)
    grid_shape: Tuple[int, ...]   # tiles per axis: ceil(shape / chunk_shape)
    offsets: Tuple[int, ...]      # row-major over the grid, from ``data_start``
    lengths: Tuple[int, ...]
    crcs: Tuple[int, ...]
    data_start: int               # absolute byte offset of the first tile blob
    meta: dict = field(default_factory=dict)
    version: int = GRID_ARCHIVE_VERSION

    @property
    def n_tiles(self) -> int:
        return len(self.offsets)

    @property
    def n_points(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1

    # --------------------------------------------------------- tile protocol
    def tile_coords(self, i: int) -> Tuple[int, ...]:
        """Tile ``i``'s per-axis grid coordinates (row-major flat order)."""
        if not 0 <= i < self.n_tiles:
            raise IndexError(f"tile index {i} out of range ({self.n_tiles} tiles)")
        return tuple(int(c) for c in np.unravel_index(i, self.grid_shape))

    def tile_slices(self, i: int) -> Tuple[slice, ...]:
        """Tile ``i``'s extent in full-field coordinates, one slice per axis."""
        return tuple(
            slice(c * cs, min((c + 1) * cs, dim))
            for c, cs, dim in zip(self.tile_coords(i), self.chunk_shape, self.shape))

    def tile_shape(self, i: int) -> Tuple[int, ...]:
        return tuple(s.stop - s.start for s in self.tile_slices(i))

    def check_tile(self, i: int, raw: bytes) -> bytes:
        """Validate tile ``i``'s bytes (length + CRC-32) as read from storage."""
        return _check_blob(raw, self.lengths[i], self.crcs[i], f"tile {i}")

    def tile_key(self, i: int) -> Tuple[int, int, int, int]:
        """Cheap per-tile cache key from the index table alone
        (see :func:`_index_tile_key`)."""
        return _index_tile_key(self, i)

    def tile_bytes(self, blob: bytes, i: int) -> bytes:
        """Slice tile ``i``'s archive out of the full blob, CRC-checked."""
        if not 0 <= i < self.n_tiles:
            raise IndexError(f"tile index {i} out of range ({self.n_tiles} tiles)")
        start = self.data_start + self.offsets[i]
        end = start + self.lengths[i]
        if end > len(blob):
            raise ValueError(f"corrupt archive: truncated tile {i}")
        return self.check_tile(i, blob[start:end])

    def region_tiles(self, bounds: Sequence[Tuple[int, int]]) -> List[int]:
        """Flat indices of the tiles intersecting ``bounds``, in row-major order.

        ``bounds`` must be normalized (one ``(start, stop)`` pair per axis,
        ``0 <= start <= stop <= dim``); an empty axis selects no tiles.
        """
        if len(bounds) != len(self.shape):
            raise ValueError(
                f"region has {len(bounds)} axes, archive field has {len(self.shape)}")
        if any(b0 >= b1 for b0, b1 in bounds):
            return []
        if not self.shape:
            return [0]
        axis_ranges = [range(b0 // cs, -(-b1 // cs))
                       for (b0, b1), cs in zip(bounds, self.chunk_shape)]
        return [int(np.ravel_multi_index(coords, self.grid_shape))
                for coords in itertools.product(*axis_ranges)]

    # -------------------------------------------------------------- parse
    @classmethod
    def from_header(cls, header: dict, data_start: int,
                    total_size: int) -> "GridIndex":
        """Build (and fully validate) an index from a parsed front header.

        ``total_size`` is the archive's complete byte length — for an
        in-memory blob ``len(blob)``, for an on-disk archive the file size —
        so index validation never needs the tile bytes themselves.
        """
        codec, shape, dtype, bound_mode, bound_value, meta = \
            _common_header_fields(header)
        try:
            grid = header["grid"]
            chunk_shape = tuple(int(c) for c in grid["chunk_shape"])
            offsets = tuple(int(o) for o in grid["offsets"])
            lengths = tuple(int(n) for n in grid["lengths"])
            crcs = tuple(int(c) for c in grid["crcs"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"corrupt archive: malformed header ({exc})") from None
        if len(chunk_shape) != len(shape):
            raise ValueError(
                f"corrupt archive: chunk_shape has {len(chunk_shape)} axes, "
                f"shape has {len(shape)}")
        if any(c < 1 for c in chunk_shape) or any(d < 1 for d in shape):
            raise ValueError("corrupt archive: non-positive grid dimensions")
        grid_shape = grid_shape_of(shape, chunk_shape)
        n = int(np.prod(grid_shape, dtype=np.int64)) if grid_shape else 1
        if len(offsets) != n or len(lengths) != n or len(crcs) != n:
            raise ValueError(
                f"corrupt archive: grid index has {len(offsets)} tiles, "
                f"grid shape {grid_shape} needs {n}")
        _check_contiguous(offsets, lengths, data_start, total_size, "tile")
        return cls(codec=codec, shape=shape, dtype=dtype, bound_mode=bound_mode,
                   bound_value=bound_value, chunk_shape=chunk_shape,
                   grid_shape=grid_shape, offsets=offsets, lengths=lengths,
                   crcs=crcs, data_start=data_start, meta=meta,
                   version=GRID_ARCHIVE_VERSION)

    @classmethod
    def from_bytes(cls, data: bytes) -> "GridIndex":
        data = bytes(data)
        version, header, data_start = parse_front(data)
        if version != GRID_ARCHIVE_VERSION:
            raise ValueError(
                f"not a grid archive (version {version}); use Archive.from_bytes "
                f"or ChunkedIndex.from_bytes"
            )
        return cls.from_header(header, data_start, len(data))


def build_grid_archive(*, codec: str, shape: Tuple[int, ...], dtype: str,
                       bound_mode: str, bound_value: float,
                       chunk_shape: Tuple[int, ...], tile_blobs: Iterable[bytes],
                       meta: Optional[dict] = None) -> bytes:
    """Assemble a version-3 grid archive from per-tile version-1 blobs.

    ``tile_blobs`` must enumerate the grid in row-major order (the order
    ``numpy.ndindex(grid_shape)`` yields).
    """
    shape = tuple(int(s) for s in shape)
    chunk_shape = tuple(int(c) for c in chunk_shape)
    tile_blobs = [bytes(b) for b in tile_blobs]
    if len(chunk_shape) != len(shape):
        raise ValueError(
            f"chunk_shape has {len(chunk_shape)} axes, shape has {len(shape)}")
    if any(c < 1 for c in chunk_shape) or any(d < 1 for d in shape):
        raise ValueError("grid archives need positive shape and chunk_shape entries")
    grid_shape = grid_shape_of(shape, chunk_shape)
    n = int(np.prod(grid_shape, dtype=np.int64)) if grid_shape else 1
    if len(tile_blobs) != n:
        raise ValueError(
            f"grid shape {grid_shape} needs {n} tiles, got {len(tile_blobs)}")
    offsets, lengths, crcs = _blob_table(tile_blobs)
    header = {
        "codec": str(codec),
        "shape": list(shape),
        "dtype": str(dtype),
        "bound": {"mode": str(bound_mode), "value": float(bound_value)},
        "meta": meta or {},
        "grid": {"chunk_shape": list(chunk_shape), "offsets": offsets,
                 "lengths": lengths, "crcs": crcs},
    }
    return _assemble_envelope(GRID_ARCHIVE_VERSION, header, tile_blobs)

"""The combined "Huffman + Zstd" entropy stage used by SZ-family compressors."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.encoding.huffman import HuffmanCodec
from repro.encoding.lossless import LosslessBackend, ZlibBackend, get_backend

_RAW_HEADER_BYTES = 9  # flag byte + u64 element count


class EntropyCodec:
    """Encode integer quantization codes: canonical Huffman then a dictionary pass.

    Parameters
    ----------
    backend:
        Lossless byte backend applied after Huffman coding (``"zlib"``/``"zstd"``
        by default, per the substitution documented in DESIGN.md).
    use_huffman:
        Disable to study the contribution of the Huffman stage in ablations.
    """

    def __init__(self, backend: Optional[LosslessBackend] = None, use_huffman: bool = True):
        self.backend = backend if backend is not None else ZlibBackend()
        self.use_huffman = bool(use_huffman)
        self._huffman = HuffmanCodec()

    def encode(self, codes: np.ndarray) -> bytes:
        """Compress an integer code array into a self-contained byte stream."""
        codes = np.ascontiguousarray(codes)
        if codes.size and not np.issubdtype(codes.dtype, np.integer):
            raise TypeError("EntropyCodec encodes integer arrays")
        if self.use_huffman:
            stage1 = self._huffman.encode(codes)
            flag = b"\x01"
        else:
            stage1 = np.asarray(codes, dtype=np.int64).tobytes()
            flag = b"\x00" + np.uint64(codes.size).tobytes()
        return flag + self.backend.compress(stage1)

    def decode(self, data: bytes) -> np.ndarray:
        """Invert :meth:`encode`; returns an ``int64`` array.

        Any malformed or truncated stream raises ``ValueError`` — backend
        errors, bad flags, and short headers are never surfaced raw.
        """
        if not data:
            raise ValueError("empty entropy stream")
        flag = data[0]
        if flag == 1:
            stage1 = self._decompress_backend(data[1:])
            return self._huffman.decode(stage1)
        if flag != 0:
            raise ValueError(f"corrupt entropy stream: unknown flag byte {flag}")
        if len(data) < _RAW_HEADER_BYTES:
            raise ValueError("corrupt entropy stream: truncated raw header")
        n = int(np.frombuffer(data[1:_RAW_HEADER_BYTES], dtype=np.uint64)[0])
        stage1 = self._decompress_backend(data[_RAW_HEADER_BYTES:])
        if len(stage1) < 8 * n:
            raise ValueError("corrupt entropy stream: raw payload shorter than count")
        return np.frombuffer(stage1, dtype=np.int64, count=n).copy()

    def _decompress_backend(self, blob: bytes) -> bytes:
        try:
            return self.backend.decompress(blob)
        except Exception as exc:  # zlib.error, lzma/bz2 EOFError, OSError, ...
            raise ValueError("corrupt entropy stream: backend decompression "
                             f"failed ({exc})") from exc

"""Canonical Huffman coding of integer symbol streams.

This is the "Huffman encoding" stage of AE-SZ / SZ2.1 (Algorithm 1, line 17).
Symbols are the non-negative linear-scale quantization codes.  Both directions
are vectorized with NumPy: the encoder extracts every payload bit in one
``repeat``-based pass over the concatenated codes (O(total_bits) work, chunked
to bound scratch; a bit-serial reference packer is retained behind
``encode(..., scalar=True)`` and proven byte-identical), and the decoder uses
a lane-wise table-driven kernel (see below) instead of a per-symbol Python
loop.

Stream format v2 (current, produced by :meth:`HuffmanCodec.encode`)::

    [magic:4s = b"HUF2"]
    [n_distinct:u32][n_total:u64][max_symbol:u64][n_lanes:u32]
    [lane_chunk:u32][sym_width:u8]
    [distinct symbols: u{sym_width*8} * n_distinct]   (ascending)
    [code lengths:     u8 * n_distinct]
    [lane bit lengths: u32 * n_lanes]
    [n_payload_bits:u64][payload bytes]               (MSB-first bit packing)

The payload is a single contiguous bitstream of canonical codes, identical to
what v1 produced; the lane table additionally records the bit length of every
``lane_chunk``-symbol segment so the decoder can start decoding all lanes in
parallel.  Symbols are stored with the smallest unsigned width that holds
``max_symbol`` (1/2/4/8 bytes), so alphabets with symbols >= 2**32 — which
crashed the v1 encoder — are representable by design.  A degenerate
single-symbol stream stores no lane table (``n_lanes == 0``) and a payload of
``n_total`` zero bits.

Stream format v1 (legacy, still decoded)::

    [n_distinct:u32][n_total:u64][max_symbol:u32]
    [distinct symbols:u32 * n_distinct][code lengths:u8 * n_distinct]
    [n_payload_bits:u64][payload bytes]

Version detection keys on the 4-byte magic; a v1 stream would only be
misread as v2 if it contained exactly 0x32465548 distinct symbols (~844M),
far beyond what the v1 u32 symbol table could usefully hold.

Decoder kernel
--------------
Canonical codes sorted by (length, symbol) are monotone when left-justified
to ``max_len`` bits, so decoding a ``max_len``-bit window ``W`` reduces to a
``searchsorted`` of ``W`` against the left-justified one-past-the-end code of
every length, followed by an index offset — no tree walk.  The decoder keeps
one bit cursor per lane and decodes one symbol per lane per step, gathering
each lane's next 64-bit window from a precomputed big-endian window array.
All malformed input (truncated headers/tables/payloads, impossible code-length
tables, misaligned lane boundaries) raises ``ValueError``.
"""

from __future__ import annotations

import heapq
import struct
from typing import List, Tuple

import numpy as np

_MAGIC_V2 = b"HUF2"
_HEADER_V1 = struct.Struct("<IQI")
_HEADER_V2 = struct.Struct("<IQQIIB")
_BITS_HEADER = struct.Struct("<Q")

MAX_CODE_LENGTH = 63

# Longest code the vectorized kernel can handle: a max_len-bit window gathered
# from a u64 may be misaligned by up to 7 bits, so max_len + 7 <= 64.
_MAX_VECTOR_CODE_LENGTH = 57

# Lane sizing: target symbols per lane and a cap on the lane table size.
_LANE_SYMBOLS = 128
_MAX_LANES = 8192

_INT64_MAX = np.iinfo(np.int64).max

# Chunk size (in payload bits) for the vectorized bit packer: bounds the
# per-chunk scratch (a few int64/uint64 temporaries of this length) while
# keeping the Python-level loop negligible.
_PACK_CHUNK_BITS = 1 << 20


def _pack_codes(sym_codes: np.ndarray, sym_lens: np.ndarray) -> Tuple[bytes, int]:
    """Concatenate per-symbol canonical codes MSB-first into packed bytes.

    Fully vectorized: every payload bit ``p`` belongs to symbol
    ``s = searchsorted(cumlens, p)`` at bit position ``p - start[s]`` within
    that symbol's code, so one ``repeat`` + shift extracts all bits at once.
    Processed in bounded chunks so scratch stays O(_PACK_CHUNK_BITS).
    Returns ``(payload_bytes, total_bits)``.
    """
    ends = np.cumsum(sym_lens)
    total_bits = int(ends[-1]) if ends.size else 0
    starts = ends - sym_lens
    bits = np.empty(total_bits, dtype=np.uint8)
    # Symbol index where each chunk of _PACK_CHUNK_BITS payload bits begins.
    cut_bits = np.arange(0, total_bits, _PACK_CHUNK_BITS, dtype=np.int64)
    cut_syms = np.searchsorted(ends, cut_bits, side="right")
    cut_syms = np.append(cut_syms, sym_lens.size)
    for c in range(cut_syms.size - 1):
        s0, s1 = int(cut_syms[c]), int(cut_syms[c + 1])
        lens = sym_lens[s0:s1]
        b0, b1 = int(starts[s0]), int(ends[s1 - 1])
        within = np.arange(b1 - b0, dtype=np.int64) - np.repeat(starts[s0:s1] - b0, lens)
        shift = (np.repeat(lens, lens) - 1 - within).astype(np.uint64)
        bits[b0:b1] = ((np.repeat(sym_codes[s0:s1], lens) >> shift)
                       & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits).tobytes(), total_bits


def _pack_codes_scalar(sym_codes: np.ndarray, sym_lens: np.ndarray) -> Tuple[bytes, int]:
    """Bit-serial reference packer: one symbol at a time through a bit buffer.

    Retained as the proven-equivalent baseline for :func:`_pack_codes`; the
    bit-exactness suite asserts both produce identical payload bytes.
    """
    out = bytearray()
    acc = 0
    nacc = 0
    total_bits = 0
    for code, length in zip(sym_codes.tolist(), sym_lens.tolist()):
        acc = (acc << length) | code
        nacc += length
        total_bits += length
        while nacc >= 8:
            nacc -= 8
            out.append((acc >> nacc) & 0xFF)
            acc &= (1 << nacc) - 1
    if nacc:
        out.append((acc << (8 - nacc)) & 0xFF)
    return bytes(out), total_bits


def huffman_code_lengths(counts: np.ndarray) -> np.ndarray:
    """Compute Huffman code lengths for positive symbol ``counts``.

    Uses the classic heap construction; returns one length per entry of
    ``counts``.  A single-symbol alphabet gets length 1.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.ndim != 1 or counts.size == 0:
        raise ValueError("counts must be a non-empty 1-D array")
    if np.any(counts <= 0):
        raise ValueError("all counts must be positive")
    n = counts.size
    if n == 1:
        return np.array([1], dtype=np.int64)

    # Heap items: (count, tiebreak, node_id).  Internal nodes get ids >= n.
    heap: List[Tuple[int, int, int]] = [(int(c), i, i) for i, c in enumerate(counts)]
    heapq.heapify(heap)
    parent = np.full(2 * n - 1, -1, dtype=np.int64)
    next_id = n
    tiebreak = n
    while len(heap) > 1:
        c1, _, id1 = heapq.heappop(heap)
        c2, _, id2 = heapq.heappop(heap)
        parent[id1] = next_id
        parent[id2] = next_id
        heapq.heappush(heap, (c1 + c2, tiebreak, next_id))
        next_id += 1
        tiebreak += 1

    # Leaf depths by vectorized pointer chasing: every leaf climbs one parent
    # link per iteration, so the loop runs tree-height times, not n times.
    node = np.arange(n, dtype=np.int64)
    depth = np.zeros(n, dtype=np.int64)
    while True:
        par = parent[node]
        alive = par != -1
        if not alive.any():
            break
        node = np.where(alive, par, node)
        depth += alive
    if depth.max() > MAX_CODE_LENGTH:
        raise ValueError(f"Huffman code length exceeds {MAX_CODE_LENGTH} bits")
    return depth


def _canonical_codes(symbols: np.ndarray, lengths: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Assign canonical codes.

    Returns ``(sorted_symbols, sorted_lengths, codes, order)`` where ``order``
    is the (length, symbol)-lexsort permutation, so callers building
    per-symbol LUTs do not have to redo the sort.
    """
    order = np.lexsort((symbols, lengths))
    sym_sorted = symbols[order]
    len_sorted = lengths[order]
    max_len = int(len_sorted[-1])

    # next_code[l] = first canonical code of length l (Deutsch, RFC 1951).
    bl_count = np.bincount(len_sorted, minlength=max_len + 1).tolist()
    next_code = [0] * (max_len + 1)
    code = 0
    for length in range(1, max_len + 1):
        code = (code + bl_count[length - 1]) << 1
        next_code[length] = code
    next_code_arr = np.array(next_code, dtype=np.uint64)

    # Rank of each entry within its length run (entries are length-sorted).
    starts = np.searchsorted(len_sorted, np.arange(max_len + 1))
    rank = (np.arange(len_sorted.size) - starts[len_sorted]).astype(np.uint64)
    codes = next_code_arr[len_sorted] + rank
    return sym_sorted, len_sorted, codes, order


def _sym_width(max_symbol: int) -> int:
    if max_symbol < 1 << 8:
        return 1
    if max_symbol < 1 << 16:
        return 2
    if max_symbol < 1 << 32:
        return 4
    return 8


class _DecodeTables:
    """Canonical decode tables shared by the scalar and vectorized kernels."""

    __slots__ = ("sym_sorted", "max_len",
                 "first_code", "first_index", "count_by_len", "lj_limits")

    def __init__(self, distinct: np.ndarray, lengths: np.ndarray):
        if lengths.size != distinct.size or distinct.size < 2:
            raise ValueError("corrupt Huffman stream: bad symbol table")
        if lengths.min() < 1 or lengths.max() > MAX_CODE_LENGTH:
            raise ValueError("corrupt Huffman stream: invalid code length")
        # A Huffman tree is complete: the Kraft sum must be exactly one.
        kraft = sum(int(c) << (MAX_CODE_LENGTH - length)
                    for length, c in enumerate(np.bincount(lengths).tolist()) if length)
        if kraft != 1 << MAX_CODE_LENGTH:
            raise ValueError("corrupt Huffman stream: code lengths do not form "
                             "a complete prefix code")

        sym_sorted, len_sorted, codes, _ = _canonical_codes(distinct, lengths)
        max_len = int(len_sorted[-1])
        first_code = np.zeros(max_len + 1, dtype=np.uint64)
        first_index = np.zeros(max_len + 1, dtype=np.uint64)
        count_by_len = np.zeros(max_len + 1, dtype=np.int64)
        lj_limits = np.zeros(max_len + 1, dtype=np.uint64)
        starts = np.searchsorted(len_sorted, np.arange(max_len + 2))
        run = 0
        for length in range(1, max_len + 1):
            lo, hi = int(starts[length]), int(starts[length + 1])
            count_by_len[length] = hi - lo
            if hi > lo:
                first_code[length] = codes[lo]
                first_index[length] = lo
                run = (int(codes[hi - 1]) + 1) << (max_len - length)
            lj_limits[length] = run

        self.sym_sorted = sym_sorted
        self.max_len = max_len
        self.first_code = first_code
        self.first_index = first_index
        self.count_by_len = count_by_len
        self.lj_limits = lj_limits


# Above this payload size the whole-payload window precompute (8 bytes of u64
# per payload byte) is swapped for per-step 8-byte gathers at the lane cursors,
# capping the decoder's extra memory at O(n_lanes) instead of O(payload).
_WINDOW_PRECOMPUTE_LIMIT = 8 << 20


def _window_u64(payload: np.ndarray) -> np.ndarray:
    """Big-endian u64 read of ``payload[j:j+8]`` (zero padded) for every j."""
    n = payload.size + 1
    ext = np.concatenate([payload, np.zeros(8, dtype=np.uint8)])
    windows = np.zeros(n, dtype=np.uint64)
    for i in range(8):
        windows = (windows << np.uint64(8)) | ext[i:i + n].astype(np.uint64)
    return windows


def _decode_lanes(payload: np.ndarray, tables: _DecodeTables,
                  lane_starts: np.ndarray, lane_counts: np.ndarray,
                  lane_ends: np.ndarray, n_total: int) -> np.ndarray:
    """Vectorized lane decode: one symbol per lane per step."""
    max_len = tables.max_len
    lj = tables.lj_limits[1:]
    n_lanes = lane_starts.size
    steps = int(lane_counts.max())
    last_count = int(lane_counts[-1])

    # Pad the payload so cursors never index past the buffers: a lane cannot
    # advance more than MAX_CODE_LENGTH bits per step (corrupt streams
    # included — lane starts are bounded by the validated total bit count).
    pad = (MAX_CODE_LENGTH * steps) // 8 + 16
    padded = np.concatenate([payload, np.zeros(pad, dtype=np.uint8)])
    eight = np.uint64(8)
    if padded.size <= _WINDOW_PRECOMPUTE_LIMIT:
        windows = _window_u64(padded)

        def fetch(byte_idx: np.ndarray) -> np.ndarray:
            return windows[byte_idx]
    else:
        def fetch(byte_idx: np.ndarray) -> np.ndarray:
            w = padded[byte_idx].astype(np.uint64)
            for i in range(1, 8):
                w = (w << eight) | padded[byte_idx + np.uint64(i)]
            return w

    seven = np.uint64(7)
    three = np.uint64(3)
    base_shift = np.uint64(64 - max_len)
    width = np.uint64(max_len)
    mask = np.uint64((1 << max_len) - 1)

    # symbol_index = code + (first_index[len] - first_code[len]); one gather.
    offsets = tables.first_index.astype(np.int64) - tables.first_code.astype(np.int64)

    pos = lane_starts.astype(np.uint64)
    out = np.empty((steps, n_lanes), dtype=np.int64)
    last_lane_end = 0
    for t in range(steps):
        window = (fetch(pos >> three) >> (base_shift - (pos & seven))) & mask
        length = (np.searchsorted(lj, window, side="right") + 1).astype(np.uint64)
        code = (window >> (width - length)).astype(np.int64)
        out[t] = tables.sym_sorted[code + offsets[length]]
        pos += length
        if t + 1 == last_count:
            last_lane_end = int(pos[-1])

    if n_lanes > 1 and not np.array_equal(pos[:-1].astype(np.int64), lane_ends[:-1]):
        raise ValueError("corrupt Huffman stream: lane boundary mismatch")
    if last_lane_end != int(lane_ends[-1]):
        raise ValueError("corrupt Huffman stream: payload length mismatch")

    if n_lanes == 1:
        return out[:, 0][:n_total]
    full = out[:, :-1].T.ravel()
    return np.concatenate([full, out[:last_count, -1]])[:n_total]


def _decode_scalar(payload: np.ndarray, tables: _DecodeTables,
                   total_bits: int, n_total: int) -> np.ndarray:
    """Bit-serial canonical decode (legacy v1 streams and >57-bit codes)."""
    bits = np.unpackbits(payload)
    if bits.size < total_bits:
        raise ValueError("corrupt Huffman stream: truncated payload")
    bit_list = bits[:total_bits].tolist()
    sym_list = tables.sym_sorted.tolist()
    fc = tables.first_code.astype(np.int64).tolist()
    fi = tables.first_index.astype(np.int64).tolist()
    cbl = tables.count_by_len.tolist()
    max_len = tables.max_len

    out = np.empty(n_total, dtype=np.int64)
    bpos = 0
    for i in range(n_total):
        code = 0
        length = 0
        while True:
            if bpos >= total_bits:
                raise ValueError("corrupt Huffman stream: truncated payload")
            code = (code << 1) | bit_list[bpos]
            bpos += 1
            length += 1
            if length > max_len:
                raise ValueError("corrupt Huffman stream: code longer than table")
            if cbl[length] and fc[length] <= code < fc[length] + cbl[length]:
                out[i] = sym_list[fi[length] + code - fc[length]]
                break
    return out


def _require(data: bytes, pos: int, nbytes: int, what: str) -> None:
    if len(data) - pos < nbytes:
        raise ValueError(f"corrupt Huffman stream: truncated {what}")


def _validate_symbol_table(distinct: np.ndarray, max_symbol: int) -> None:
    """Reject tables that are not ascending non-negative ending at max_symbol.

    Catches corrupt table bytes (e.g. a u64 entry wrapping negative through
    the int64 cast) that would otherwise decode silently to wrong symbols.
    """
    if int(distinct[0]) < 0 or int(distinct[-1]) != max_symbol:
        raise ValueError("corrupt Huffman stream: symbol table out of range")
    if distinct.size > 1 and int(np.diff(distinct).min()) <= 0:
        raise ValueError("corrupt Huffman stream: symbol table not ascending")


class HuffmanCodec:
    """Self-contained canonical Huffman codec for non-negative integer arrays."""

    def encode(self, symbols: np.ndarray, *, scalar: bool = False) -> bytes:
        symbols = np.ascontiguousarray(symbols)
        if symbols.size == 0:
            return _MAGIC_V2 + _HEADER_V2.pack(0, 0, 0, 0, 0, 1) + _BITS_HEADER.pack(0)
        if not np.issubdtype(symbols.dtype, np.integer):
            raise TypeError("HuffmanCodec encodes integer symbols only")
        flat = symbols.ravel()
        if np.issubdtype(flat.dtype, np.unsignedinteger) and int(flat.max()) > _INT64_MAX:
            raise ValueError(f"symbols must be <= {_INT64_MAX}")
        flat = flat.astype(np.int64)
        if flat.min() < 0:
            raise ValueError("symbols must be non-negative")

        distinct, inverse, counts = np.unique(flat, return_inverse=True, return_counts=True)
        max_symbol = int(distinct[-1])
        width = _sym_width(max_symbol)

        if distinct.size == 1:
            # Degenerate stream: one length-1 code of all-zero bits.
            header = _HEADER_V2.pack(1, flat.size, max_symbol, 0, 0, width)
            table = distinct.astype(f"<u{width}").tobytes() + b"\x01"
            payload = np.zeros((flat.size + 7) // 8, dtype=np.uint8).tobytes()
            return _MAGIC_V2 + header + table + _BITS_HEADER.pack(flat.size) + payload

        lengths = huffman_code_lengths(counts)
        sym_sorted, len_sorted, codes, order = _canonical_codes(distinct, lengths)

        # Per-symbol code / length lookup in the order of ``distinct``.
        code_lut = np.zeros(distinct.size, dtype=np.uint64)
        len_lut = np.zeros(distinct.size, dtype=np.int64)
        code_lut[order] = codes
        len_lut[order] = len_sorted

        sym_codes = code_lut[inverse]
        sym_lens = len_lut[inverse]

        pack = _pack_codes_scalar if scalar else _pack_codes
        payload, total_bits = pack(sym_codes, sym_lens)

        # Lane sync table: bit length of every ``chunk``-symbol segment.
        chunk = max(_LANE_SYMBOLS, -(-flat.size // _MAX_LANES))
        lane_starts_idx = np.arange(0, flat.size, chunk)
        lane_bits = np.add.reduceat(sym_lens, lane_starts_idx)
        header = _HEADER_V2.pack(int(distinct.size), int(flat.size), max_symbol,
                                 int(lane_starts_idx.size), chunk, width)
        table = (distinct.astype(f"<u{width}").tobytes()
                 + len_lut.astype(np.uint8).tobytes()
                 + lane_bits.astype("<u4").tobytes())
        return _MAGIC_V2 + header + table + _BITS_HEADER.pack(total_bits) + payload

    def decode(self, data: bytes) -> np.ndarray:
        if data[:4] == _MAGIC_V2:
            return self._decode_v2(data)
        return self._decode_v1(data)

    # ------------------------------------------------------------------ v2
    def _decode_v2(self, data: bytes) -> np.ndarray:
        pos = len(_MAGIC_V2)
        _require(data, pos, _HEADER_V2.size, "header")
        n_distinct, n_total, max_symbol, n_lanes, chunk, width = _HEADER_V2.unpack_from(data, pos)
        pos += _HEADER_V2.size
        if n_distinct == 0:
            if n_total:
                raise ValueError("corrupt Huffman stream: empty table with symbols")
            return np.zeros(0, dtype=np.int64)
        if width not in (1, 2, 4, 8) or max_symbol > _INT64_MAX:
            raise ValueError("corrupt Huffman stream: bad symbol width")

        _require(data, pos, width * n_distinct, "symbol table")
        distinct = np.frombuffer(data, dtype=f"<u{width}", count=n_distinct,
                                 offset=pos).astype(np.int64)
        pos += width * n_distinct
        _validate_symbol_table(distinct, max_symbol)
        _require(data, pos, n_distinct, "length table")
        lengths = np.frombuffer(data, dtype=np.uint8, count=n_distinct,
                                offset=pos).astype(np.int64)
        pos += n_distinct
        _require(data, pos, 4 * n_lanes, "lane table")
        lane_bits = np.frombuffer(data, dtype="<u4", count=n_lanes, offset=pos).astype(np.int64)
        pos += 4 * n_lanes
        _require(data, pos, _BITS_HEADER.size, "bit count")
        (total_bits,) = _BITS_HEADER.unpack_from(data, pos)
        pos += _BITS_HEADER.size

        payload = np.frombuffer(data, dtype=np.uint8, offset=pos)
        if total_bits > 8 * payload.size:
            raise ValueError("corrupt Huffman stream: truncated payload")
        if n_total > total_bits:
            raise ValueError("corrupt Huffman stream: symbol count exceeds payload bits")

        if n_distinct == 1:
            if total_bits != n_total:
                raise ValueError("corrupt Huffman stream: degenerate stream bit count")
            return np.full(n_total, distinct[0], dtype=np.int64)

        if n_lanes == 0 or chunk == 0:
            raise ValueError("corrupt Huffman stream: missing lane table")
        if not (chunk * (n_lanes - 1) < n_total <= chunk * n_lanes):
            raise ValueError("corrupt Huffman stream: lane geometry mismatch")
        if int(lane_bits.sum()) != total_bits:
            raise ValueError("corrupt Huffman stream: lane bit lengths mismatch")

        tables = _DecodeTables(distinct, lengths)
        if tables.max_len > _MAX_VECTOR_CODE_LENGTH:
            return _decode_scalar(payload, tables, total_bits, n_total)

        lane_starts = np.concatenate(([0], np.cumsum(lane_bits)[:-1]))
        lane_ends = lane_starts + lane_bits
        lane_counts = np.full(n_lanes, chunk, dtype=np.int64)
        lane_counts[-1] = n_total - chunk * (n_lanes - 1)
        return _decode_lanes(payload, tables, lane_starts, lane_counts,
                             lane_ends, n_total)

    # ------------------------------------------------------------------ v1
    def _decode_v1(self, data: bytes) -> np.ndarray:
        _require(data, 0, _HEADER_V1.size, "header")
        n_distinct, n_total, _max_symbol = _HEADER_V1.unpack_from(data, 0)
        pos = _HEADER_V1.size
        if n_distinct == 0:
            if n_total:
                raise ValueError("corrupt Huffman stream: empty table with symbols")
            return np.zeros(0, dtype=np.int64)

        _require(data, pos, 4 * n_distinct, "symbol table")
        distinct = np.frombuffer(data, dtype=np.uint32, count=n_distinct,
                                 offset=pos).astype(np.int64)
        pos += 4 * n_distinct
        _validate_symbol_table(distinct, _max_symbol)
        _require(data, pos, n_distinct, "length table")
        lengths = np.frombuffer(data, dtype=np.uint8, count=n_distinct,
                                offset=pos).astype(np.int64)
        pos += n_distinct
        _require(data, pos, _BITS_HEADER.size, "bit count")
        (total_bits,) = _BITS_HEADER.unpack_from(data, pos)
        pos += _BITS_HEADER.size
        payload = np.frombuffer(data, dtype=np.uint8, offset=pos)
        if total_bits > 8 * payload.size:
            raise ValueError("corrupt Huffman stream: truncated payload")

        if n_distinct == 1:
            if total_bits != n_total:
                raise ValueError("corrupt Huffman stream: degenerate stream bit count")
            return np.full(n_total, distinct[0], dtype=np.int64)

        if n_total > total_bits:
            raise ValueError("corrupt Huffman stream: symbol count exceeds payload bits")
        tables = _DecodeTables(distinct, lengths)
        return _decode_scalar(payload, tables, total_bits, n_total)

"""Canonical Huffman coding of integer symbol streams.

This is the "Huffman encoding" stage of AE-SZ / SZ2.1 (Algorithm 1, line 17).
Symbols are the non-negative linear-scale quantization codes.  The encoder is
fully vectorized with NumPy (bit planes of the per-symbol codes are written in
at most ``max_code_length`` vectorized passes); the decoder walks the canonical
code table bit by bit, which is fast enough for the snapshot sizes used in the
benchmarks.

The byte format produced by :meth:`HuffmanCodec.encode` is self-contained:

``[n_distinct:u32][n_total:u64][max_symbol:u32]``
``[distinct symbols:u32 * n_distinct][code lengths:u8 * n_distinct]``
``[n_payload_bits:u64][payload bytes]``
"""

from __future__ import annotations

import heapq
import struct
from typing import Dict, List, Tuple

import numpy as np

_HEADER = struct.Struct("<IQI")
_BITS_HEADER = struct.Struct("<Q")

MAX_CODE_LENGTH = 63


def huffman_code_lengths(counts: np.ndarray) -> np.ndarray:
    """Compute Huffman code lengths for positive symbol ``counts``.

    Uses the classic heap construction; returns one length per entry of
    ``counts``.  A single-symbol alphabet gets length 1.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.ndim != 1 or counts.size == 0:
        raise ValueError("counts must be a non-empty 1-D array")
    if np.any(counts <= 0):
        raise ValueError("all counts must be positive")
    n = counts.size
    if n == 1:
        return np.array([1], dtype=np.int64)

    # Heap items: (count, tiebreak, node_id).  Internal nodes get ids >= n.
    heap: List[Tuple[int, int, int]] = [(int(c), i, i) for i, c in enumerate(counts)]
    heapq.heapify(heap)
    parent = np.full(2 * n - 1, -1, dtype=np.int64)
    next_id = n
    tiebreak = n
    while len(heap) > 1:
        c1, _, id1 = heapq.heappop(heap)
        c2, _, id2 = heapq.heappop(heap)
        parent[id1] = next_id
        parent[id2] = next_id
        heapq.heappush(heap, (c1 + c2, tiebreak, next_id))
        next_id += 1
        tiebreak += 1

    lengths = np.zeros(n, dtype=np.int64)
    for i in range(n):
        depth = 0
        node = i
        while parent[node] != -1:
            node = parent[node]
            depth += 1
        lengths[i] = depth
    if lengths.max() > MAX_CODE_LENGTH:
        raise ValueError(f"Huffman code length exceeds {MAX_CODE_LENGTH} bits")
    return lengths


def _canonical_codes(symbols: np.ndarray, lengths: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Assign canonical codes; returns (sorted_symbols, sorted_lengths, codes)."""
    order = np.lexsort((symbols, lengths))
    sym_sorted = symbols[order]
    len_sorted = lengths[order]
    codes = np.zeros(len(sym_sorted), dtype=np.uint64)
    code = 0
    prev_len = int(len_sorted[0])
    for i in range(len(sym_sorted)):
        cur_len = int(len_sorted[i])
        if i > 0:
            code = (code + 1) << (cur_len - prev_len)
        codes[i] = code
        prev_len = cur_len
    return sym_sorted, len_sorted, codes


class HuffmanCodec:
    """Self-contained canonical Huffman codec for non-negative integer arrays."""

    def encode(self, symbols: np.ndarray) -> bytes:
        symbols = np.ascontiguousarray(symbols)
        if symbols.size == 0:
            return _HEADER.pack(0, 0, 0) + _BITS_HEADER.pack(0)
        if not np.issubdtype(symbols.dtype, np.integer):
            raise TypeError("HuffmanCodec encodes integer symbols only")
        flat = symbols.ravel().astype(np.int64)
        if flat.min() < 0:
            raise ValueError("symbols must be non-negative")

        distinct, inverse, counts = np.unique(flat, return_inverse=True, return_counts=True)
        lengths = huffman_code_lengths(counts)
        sym_sorted, len_sorted, codes = _canonical_codes(distinct, lengths)

        # Per-symbol code / length lookup in the order of ``distinct``.
        lut_order = np.argsort(sym_sorted, kind="stable")
        # sym_sorted[lut_order] == distinct (both sorted unique), so:
        code_lut = np.zeros(distinct.size, dtype=np.uint64)
        len_lut = np.zeros(distinct.size, dtype=np.int64)
        code_lut[np.searchsorted(distinct, sym_sorted)] = codes
        len_lut[np.searchsorted(distinct, sym_sorted)] = len_sorted

        sym_codes = code_lut[inverse]
        sym_lens = len_lut[inverse]

        total_bits = int(sym_lens.sum())
        offsets = np.concatenate(([0], np.cumsum(sym_lens)[:-1]))
        bits = np.zeros(total_bits, dtype=np.uint8)
        max_len = int(sym_lens.max())
        for b in range(max_len):
            mask = sym_lens > b
            if not np.any(mask):
                break
            shift = (sym_lens[mask] - 1 - b).astype(np.uint64)
            bitvals = ((sym_codes[mask] >> shift) & np.uint64(1)).astype(np.uint8)
            bits[offsets[mask] + b] = bitvals

        payload = np.packbits(bits).tobytes()
        header = _HEADER.pack(int(distinct.size), int(flat.size), int(distinct.max()))
        table = distinct.astype(np.uint32).tobytes() + len_lut.astype(np.uint8).tobytes()
        return header + table + _BITS_HEADER.pack(total_bits) + payload

    def decode(self, data: bytes) -> np.ndarray:
        if len(data) < _HEADER.size:
            raise ValueError("truncated Huffman stream")
        n_distinct, n_total, _max_symbol = _HEADER.unpack_from(data, 0)
        pos = _HEADER.size
        if n_distinct == 0:
            return np.zeros(0, dtype=np.int64)

        distinct = np.frombuffer(data, dtype=np.uint32, count=n_distinct, offset=pos).astype(np.int64)
        pos += 4 * n_distinct
        lengths = np.frombuffer(data, dtype=np.uint8, count=n_distinct, offset=pos).astype(np.int64)
        pos += n_distinct
        (total_bits,) = _BITS_HEADER.unpack_from(data, pos)
        pos += _BITS_HEADER.size

        if n_distinct == 1:
            # Degenerate single-symbol stream.
            return np.full(n_total, distinct[0], dtype=np.int64)

        sym_sorted, len_sorted, codes = _canonical_codes(distinct, lengths)
        max_len = int(len_sorted.max())

        # Canonical decode tables indexed by code length.
        first_code = np.zeros(max_len + 1, dtype=np.int64)
        first_index = np.zeros(max_len + 1, dtype=np.int64)
        count_by_len = np.zeros(max_len + 1, dtype=np.int64)
        for length in range(1, max_len + 1):
            idx = np.nonzero(len_sorted == length)[0]
            count_by_len[length] = idx.size
            if idx.size:
                first_code[length] = int(codes[idx[0]])
                first_index[length] = int(idx[0])

        payload = data[pos:]
        bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))
        if bits.size < total_bits:
            raise ValueError("truncated Huffman payload")
        bit_list = bits[:total_bits].tolist()
        sym_list = sym_sorted.tolist()
        fc = first_code.tolist()
        fi = first_index.tolist()
        cbl = count_by_len.tolist()

        out = np.empty(n_total, dtype=np.int64)
        bpos = 0
        for i in range(n_total):
            code = 0
            length = 0
            while True:
                code = (code << 1) | bit_list[bpos]
                bpos += 1
                length += 1
                if cbl[length] and (code - fc[length]) < cbl[length] and code >= fc[length]:
                    out[i] = sym_list[fi[length] + code - fc[length]]
                    break
                if length > max_len:
                    raise ValueError("corrupt Huffman stream: code longer than table")
        return out

"""Lossless dictionary backends.

The paper's final stage is Zstd.  libzstd is not available offline, so the
default backend is DEFLATE (``zlib`` from the standard library), which plays
the same role (LZ77 dictionary matching + entropy coding) on the byte streams
produced by the Huffman stage; see DESIGN.md for the substitution note.
"""

from __future__ import annotations

import bz2
import lzma
import zlib
from typing import Dict, Type


class LosslessBackend:
    """Interface of a lossless byte-stream compressor."""

    name = "identity"

    def compress(self, data: bytes) -> bytes:
        raise NotImplementedError

    def decompress(self, data: bytes) -> bytes:
        raise NotImplementedError


class StoreBackend(LosslessBackend):
    """No-op backend (useful for isolating the effect of the entropy stage)."""

    name = "store"

    def compress(self, data: bytes) -> bytes:
        return bytes(data)

    def decompress(self, data: bytes) -> bytes:
        return bytes(data)


class ZlibBackend(LosslessBackend):
    """DEFLATE backend standing in for Zstd (dictionary + entropy coding)."""

    name = "zlib"

    def __init__(self, level: int = 6):
        if not (0 <= level <= 9):
            raise ValueError("zlib level must be in [0, 9]")
        self.level = int(level)

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(bytes(data), self.level)

    def decompress(self, data: bytes) -> bytes:
        try:
            return zlib.decompress(bytes(data))
        except zlib.error as exc:
            raise ValueError(f"corrupt stream: zlib payload undecodable ({exc})") from None


class Bz2Backend(LosslessBackend):
    """BZ2 backend (slower, sometimes tighter; available for experiments)."""

    name = "bz2"

    def __init__(self, level: int = 9):
        if not (1 <= level <= 9):
            raise ValueError("bz2 level must be in [1, 9]")
        self.level = int(level)

    def compress(self, data: bytes) -> bytes:
        return bz2.compress(bytes(data), self.level)

    def decompress(self, data: bytes) -> bytes:
        try:
            return bz2.decompress(bytes(data))
        except (OSError, ValueError) as exc:
            raise ValueError(f"corrupt stream: bz2 payload undecodable ({exc})") from None


class LzmaBackend(LosslessBackend):
    """LZMA backend (closest ratio proxy for strong dictionary coders)."""

    name = "lzma"

    def __init__(self, preset: int = 1):
        if not (0 <= preset <= 9):
            raise ValueError("lzma preset must be in [0, 9]")
        self.preset = int(preset)

    def compress(self, data: bytes) -> bytes:
        return lzma.compress(bytes(data), preset=self.preset)

    def decompress(self, data: bytes) -> bytes:
        try:
            return lzma.decompress(bytes(data))
        except lzma.LZMAError as exc:
            raise ValueError(f"corrupt stream: lzma payload undecodable ({exc})") from None


_BACKENDS: Dict[str, Type[LosslessBackend]] = {
    "store": StoreBackend,
    "zlib": ZlibBackend,
    "zstd": ZlibBackend,  # alias: the role Zstd plays in the paper
    "bz2": Bz2Backend,
    "lzma": LzmaBackend,
}


def get_backend(name: str, **kwargs) -> LosslessBackend:
    """Instantiate a lossless backend by name ('zlib', 'zstd', 'bz2', 'lzma', 'store')."""
    key = name.lower()
    if key not in _BACKENDS:
        raise KeyError(f"unknown lossless backend {name!r}; choices: {sorted(_BACKENDS)}")
    return _BACKENDS[key](**kwargs)

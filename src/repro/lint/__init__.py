"""Project-invariant static analysis for the repro codebase.

Run it as ``python -m repro.lint [paths]`` (or ``python -m repro lint``);
it prints ``path:line:col: CODE message`` diagnostics and exits nonzero when
any are found.  The rules encode this project's own invariants — the ones
that used to live only in comments and review memory:

========  ===============================================================
RPR001    ``# guarded by:`` lock-discipline annotations are honored
RPR002    parsers re-raise stdlib decode errors as ``ValueError("corrupt ...")``
RPR003    no bare ``except:`` / silent ``except Exception: pass``
RPR004    no mutable default arguments
RPR005    every concrete ``Compressor`` in ``compressors/`` is registered
RPR006    ``http.server``/``socketserver`` stay off the ``import repro`` path
RPR007    every ``repro.__all__`` name appears in ``docs/api.md``
========  ===============================================================

See ``docs/quality.md`` for the full rule descriptions and the matching
runtime sanitizer (``REPRO_SANITIZE=1``, :mod:`repro.utils.concurrency`).
"""

from repro.lint.core import Diagnostic
from repro.lint.runner import (FILE_RULES, PROJECT_RULES, lint_paths,
                               lint_source, main)

__all__ = ["Diagnostic", "FILE_RULES", "PROJECT_RULES", "lint_paths",
           "lint_source", "main"]

"""``python -m repro.lint [paths]`` — run the project lint rules."""

import sys

from repro.lint import main

if __name__ == "__main__":
    sys.exit(main())

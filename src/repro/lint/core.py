"""Shared infrastructure for the project lint rules.

Each rule module exposes ``check(ctx) -> list[Diagnostic]`` (per-file rules,
fed a parsed :class:`FileContext`) or ``check(package_dir) -> list[Diagnostic]``
(project rules, fed the root of the ``repro`` package so they can reason about
the whole import graph / public surface).  The runner wires them together.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["Diagnostic", "FileContext", "exc_names", "parse_file"]


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: ``path:line:col: CODE message``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _comment_map(source: str) -> Dict[int, str]:
    """line number -> comment text (``ast`` drops comments; ``tokenize`` keeps them)."""
    comments: Dict[int, str] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comments[tok.start[0]] = tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # the parser already reported the real problem
    return comments


class FileContext:
    """One parsed file plus the comment map the AST rules need."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.posix = Path(path).as_posix()
        self.source = source
        self.tree = tree
        self.comments = _comment_map(source)

    def diag(self, node: Union[ast.AST, int], code: str, message: str) -> Diagnostic:
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        return Diagnostic(self.path, line, col, code, message)

    def comment_between(self, lo: int, hi: int, pattern: "re.Pattern") -> Optional[str]:
        """First ``pattern`` capture among the comments on lines lo..hi."""
        for line in range(lo, hi + 1):
            match = pattern.search(self.comments.get(line, ""))
            if match:
                return match.group(1)
        return None


def parse_file(path: Path) -> Tuple[Optional[FileContext], List[Diagnostic]]:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return None, [Diagnostic(str(path), exc.lineno or 1, 0, "RPR000",
                                 f"syntax error: {exc.msg}")]
    return FileContext(str(path), source, tree), []


def exc_names(node: Optional[ast.AST]) -> List[str]:
    """Dotted names of the exceptions an ``except`` clause catches."""
    if node is None:
        return []
    if isinstance(node, ast.Tuple):
        out: List[str] = []
        for elt in node.elts:
            out.extend(exc_names(elt))
        return out
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        inner = exc_names(node.value)
        return [f"{inner[0]}.{node.attr}"] if inner else [node.attr]
    return []

"""RPR002 — corrupt-input convention in parsing modules.

Archive/stream parsers report malformed input as ``ValueError("corrupt ...")``
(the contract :mod:`repro.api` documents and the fuzz suites rely on).  In
the parsing modules, an ``except`` clause inside a ``parse_*`` / ``from_*`` /
``read_*`` / ``load_*`` function that catches a decode-level stdlib exception
(``struct.error``, ``KeyError``, ``zlib.error``, ...) must therefore re-raise
a ``ValueError`` whose message contains ``"corrupt"`` — anything else lets a
raw stdlib traceback escape to callers feeding untrusted bytes.
"""

from __future__ import annotations

import ast
import re
from typing import List

from repro.lint.core import Diagnostic, FileContext, exc_names

CODE = "RPR002"

#: Modules whose job is decoding untrusted bytes.  The store modules parse
#: network-supplied upload bodies and on-disk manifests — both untrusted.
PARSING_MODULE_SUFFIXES = (
    "repro/encoding/container.py",
    "repro/encoding/huffman.py",
    "repro/encoding/entropy.py",
    "repro/encoding/bitstream.py",
    "repro/api.py",
    "repro/store/manifest.py",
    "repro/store/ingest.py",
    "repro/sources/base.py",
    "repro/sources/http.py",
    "repro/sources/spill.py",
)

#: Function-name shapes that take raw input bytes apart.
PARSER_NAME_RE = re.compile(r"^_*(parse|from|read|load)_")

#: Exceptions that mean "the bytes were malformed" when raised mid-decode.
#: ``ValueError``/``TypeError`` are deliberately absent: handlers catching
#: those are usually translating an *already*-classified error.
DECODE_EXCEPTIONS = frozenset({
    "struct.error", "zlib.error", "lzma.LZMAError", "json.JSONDecodeError",
    "KeyError", "IndexError", "UnicodeDecodeError", "EOFError",
    "OverflowError", "Exception", "BaseException",
})

_FuncDef = (ast.FunctionDef, ast.AsyncFunctionDef)


def _message_text(node: ast.expr) -> str:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        return "".join(part.value for part in node.values
                       if isinstance(part, ast.Constant)
                       and isinstance(part.value, str))
    return ""


def _reraises_corrupt(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if not (isinstance(node, ast.Raise) and isinstance(node.exc, ast.Call)):
            continue
        func = node.exc.func
        if isinstance(func, ast.Name) and func.id == "ValueError":
            if any("corrupt" in _message_text(arg) for arg in node.exc.args):
                return True
    return False


def check(ctx: FileContext) -> List[Diagnostic]:
    if not ctx.posix.endswith(PARSING_MODULE_SUFFIXES):
        return []
    diags: List[Diagnostic] = []
    for func in ast.walk(ctx.tree):
        if not (isinstance(func, _FuncDef) and PARSER_NAME_RE.match(func.name)):
            continue
        for node in ast.walk(func):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = sorted(set(exc_names(node.type)) & DECODE_EXCEPTIONS)
            if not caught or _reraises_corrupt(node):
                continue
            diags.append(ctx.diag(node, CODE,
                                  f"except clause in parser {func.name}() "
                                  f"catches {', '.join(caught)} but does not "
                                  f"re-raise ValueError('corrupt ...')"))
    return diags

"""RPR004 — no mutable default arguments.

A ``def f(x=[])`` default is evaluated once and shared by every call; in a
library serving concurrent requests that is a data race and a correctness
bug in one.  Flags literal/comprehension defaults and calls to the mutable
builtin constructors.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.core import Diagnostic, FileContext

CODE = "RPR004"

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set,
                     ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray",
                  "defaultdict", "OrderedDict", "Counter", "deque"}


def _is_mutable(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


def check(ctx: FileContext) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            continue
        defaults = list(node.args.defaults) + [d for d in node.args.kw_defaults
                                               if d is not None]
        name = getattr(node, "name", "<lambda>")
        for default in defaults:
            if _is_mutable(default):
                diags.append(ctx.diag(default, CODE,
                                      f"mutable default argument in {name}(); "
                                      f"default to None and create the "
                                      f"object inside the function"))
    return diags

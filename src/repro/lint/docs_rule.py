"""RPR007 — every public name in ``repro.__all__`` is documented.

``docs/api.md`` is the public API reference; a name exported from
``repro.__all__`` that never appears there is an undocumented public
surface.  Dunders (``__version__``) are exempt.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import List, Optional

from repro.lint.core import Diagnostic

CODE = "RPR007"


def _find_docs(package_dir: Path) -> Optional[Path]:
    base = package_dir
    for _ in range(4):  # src/repro -> src -> repo root -> one above
        base = base.parent
        candidate = base / "docs" / "api.md"
        if candidate.is_file():
            return candidate
    return None


def _all_assignment(tree: ast.Module) -> Optional[ast.expr]:
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                return stmt.value
    return None


def check(package_dir: Path) -> List[Diagnostic]:
    init = package_dir / "__init__.py"
    try:
        tree = ast.parse(init.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return []  # reported elsewhere
    value = _all_assignment(tree)
    if value is None or not isinstance(value, (ast.List, ast.Tuple)):
        return []
    docs = _find_docs(package_dir)
    if docs is None:
        return [Diagnostic(str(init), value.lineno, 0, CODE,
                           "docs/api.md not found near the package; the "
                           "public API reference is missing")]
    text = docs.read_text(encoding="utf-8")
    diags: List[Diagnostic] = []
    for element in value.elts:
        if not (isinstance(element, ast.Constant)
                and isinstance(element.value, str)):
            continue
        name = element.value
        if name.startswith("__"):
            continue
        if not re.search(rf"\b{re.escape(name)}\b", text):
            diags.append(Diagnostic(str(init), element.lineno, 0, CODE,
                                    f"public name {name!r} from "
                                    f"{package_dir.name}.__all__ does not "
                                    f"appear in {docs.name}; document it in "
                                    f"the API reference"))
    return diags

"""RPR003 — no bare ``except:`` and no silent ``except Exception: pass``."""

from __future__ import annotations

import ast
from typing import List

from repro.lint.core import Diagnostic, FileContext, exc_names

CODE = "RPR003"

_BROAD = {"Exception", "BaseException"}


def _is_silent(body: List[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant)
                and stmt.value.value in (Ellipsis,)):
            continue
        return False
    return True


def check(ctx: FileContext) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            diags.append(ctx.diag(node, CODE,
                                  "bare `except:` swallows everything, "
                                  "including KeyboardInterrupt/SystemExit; "
                                  "catch a specific exception"))
        elif set(exc_names(node.type)) & _BROAD and _is_silent(node.body):
            diags.append(ctx.diag(node, CODE,
                                  "`except Exception: pass` silently discards "
                                  "the error; handle it, log it, or narrow "
                                  "the exception type"))
    return diags

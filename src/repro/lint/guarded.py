"""RPR001 — guarded-by lock discipline.

A ``# guarded by: self._lock`` comment on an attribute assignment in
``__init__`` (or ``# guarded by: _LOCK`` on a module-level assignment)
declares that every read/write of that attribute outside ``__init__`` must
happen lexically inside ``with self._lock:`` (resp. ``with _LOCK:``) or in a
function whose docstring declares ``Must hold ``self._lock``.``.

The check is lexical, not a full escape analysis: a nested function body
starts with an empty held-set (it runs later, possibly on another thread)
and re-earns locks through its own ``with`` blocks or docstring declaration.
Module top-level code and class bodies are exempt — they run during import,
before any concurrent access exists.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Set, Tuple, Union

from repro.lint.core import Diagnostic, FileContext

CODE = "RPR001"

GUARD_RE = re.compile(r"#\s*guarded\s+by:\s*([A-Za-z_][A-Za-z0-9_.]*)")

_FuncDef = (ast.FunctionDef, ast.AsyncFunctionDef)


def _targets(stmt: ast.stmt) -> List[ast.expr]:
    if isinstance(stmt, ast.Assign):
        return list(stmt.targets)
    if isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        return [stmt.target]
    return []


def _guard_lock(ctx: FileContext, stmt: ast.stmt) -> str:
    lock = ctx.comment_between(stmt.lineno, stmt.end_lineno or stmt.lineno,
                               GUARD_RE)
    return lock or ""


def collect_guards(ctx: FileContext) -> Tuple[
        Dict[str, str], Dict[str, Dict[str, str]], List[Diagnostic]]:
    """(module guards, per-class attribute guards, malformed-annotation diags).

    Module guards map a global name to the bare lock name; class guards map
    ``class name -> {attribute -> lock attribute}`` (both sides are the part
    after ``self.``).
    """
    diags: List[Diagnostic] = []
    module_guards: Dict[str, str] = {}
    for stmt in ctx.tree.body:
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            continue
        lock = _guard_lock(ctx, stmt)
        if not lock:
            continue
        if "." in lock:
            diags.append(ctx.diag(stmt, CODE,
                                  f"guarded-by annotation on a module global "
                                  f"must name a bare module lock, got {lock!r}"))
            continue
        for target in _targets(stmt):
            if isinstance(target, ast.Name):
                module_guards[target.id] = lock

    class_guards: Dict[str, Dict[str, str]] = {}
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        init = next((s for s in node.body
                     if isinstance(s, _FuncDef) and s.name == "__init__"), None)
        if init is None:
            continue
        guards: Dict[str, str] = {}
        for stmt in ast.walk(init):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                continue
            lock = _guard_lock(ctx, stmt)
            if not lock:
                continue
            if not lock.startswith("self.") or lock.count(".") != 1:
                diags.append(ctx.diag(stmt, CODE,
                                      f"guarded-by annotation on an instance "
                                      f"attribute must name self.<lock>, got "
                                      f"{lock!r}"))
                continue
            lock_attr = lock.split(".", 1)[1]
            for target in _targets(stmt):
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    guards[target.attr] = lock_attr
        if guards:
            class_guards[node.name] = guards
    return module_guards, class_guards, diags


def _with_locks(node: Union[ast.With, ast.AsyncWith]) -> Tuple[Set[str], Set[str]]:
    attrs: Set[str] = set()
    names: Set[str] = set()
    for item in node.items:
        expr = item.context_expr
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name) and expr.value.id == "self"):
            attrs.add(expr.attr)
        elif isinstance(expr, ast.Name):
            names.add(expr.id)
    return attrs, names


def _docstring_locks(node, attr_guards: Dict[str, str],
                     name_guards: Dict[str, str]) -> Tuple[Set[str], Set[str]]:
    doc = ast.get_docstring(node) or ""
    held_attrs = {lock for lock in set(attr_guards.values())
                  if f"Must hold ``self.{lock}``" in doc}
    held_names = {lock for lock in set(name_guards.values())
                  if f"Must hold ``{lock}``" in doc}
    return held_attrs, held_names


def _scan(ctx: FileContext, node: ast.AST,
          attr_guards: Dict[str, str], name_guards: Dict[str, str],
          held_attrs: Set[str], held_names: Set[str],
          diags: List[Diagnostic]) -> None:
    if isinstance(node, ast.ClassDef):
        return  # classes are checked separately, with their own guard sets
    if isinstance(node, _FuncDef):
        for extra in (node.decorator_list + node.args.defaults
                      + [d for d in node.args.kw_defaults if d is not None]):
            _scan(ctx, extra, attr_guards, name_guards,
                  held_attrs, held_names, diags)
        inner_attrs, inner_names = _docstring_locks(node, attr_guards, name_guards)
        for stmt in node.body:
            _scan(ctx, stmt, attr_guards, name_guards,
                  inner_attrs, inner_names, diags)
        return
    if isinstance(node, ast.Lambda):
        _scan(ctx, node.body, attr_guards, name_guards, set(), set(), diags)
        return
    if isinstance(node, (ast.With, ast.AsyncWith)):
        taken_attrs, taken_names = _with_locks(node)
        for item in node.items:
            _scan(ctx, item.context_expr, attr_guards, name_guards,
                  held_attrs, held_names, diags)
        for stmt in node.body:
            _scan(ctx, stmt, attr_guards, name_guards,
                  held_attrs | taken_attrs, held_names | taken_names, diags)
        return
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name) and node.value.id == "self"):
        lock = attr_guards.get(node.attr)
        if lock and lock not in held_attrs:
            diags.append(ctx.diag(node, CODE,
                                  f"access to self.{node.attr} (guarded by "
                                  f"self.{lock}) outside `with self.{lock}:` "
                                  f"and without a `Must hold ``self.{lock}```"
                                  f" docstring"))
        return
    if isinstance(node, ast.Name):
        lock = name_guards.get(node.id)
        if lock and lock not in held_names:
            diags.append(ctx.diag(node, CODE,
                                  f"access to {node.id} (guarded by {lock}) "
                                  f"outside `with {lock}:` and without a "
                                  f"`Must hold ``{lock}``` docstring"))
        return
    for child in ast.iter_child_nodes(node):
        _scan(ctx, child, attr_guards, name_guards,
              held_attrs, held_names, diags)


def check(ctx: FileContext) -> List[Diagnostic]:
    name_guards, class_guards, diags = collect_guards(ctx)

    # Module-level functions see module guards only (self has no meaning).
    if name_guards:
        for stmt in ctx.tree.body:
            if isinstance(stmt, _FuncDef):
                _scan(ctx, stmt, {}, name_guards, set(), set(), diags)

    # Methods see their class's attribute guards plus the module guards.
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        attr_guards = class_guards.get(node.name, {})
        if not attr_guards and not name_guards:
            continue
        for stmt in node.body:
            if isinstance(stmt, _FuncDef) and stmt.name != "__init__":
                _scan(ctx, stmt, attr_guards, name_guards, set(), set(), diags)
    return diags

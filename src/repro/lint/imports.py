"""RPR006 — import hygiene on the ``import repro`` path.

``import repro`` is executed by every library user, every CLI run and every
test worker; the serving shell (``http.server``/``socketserver``) must stay
off that path (the store package loads it lazily, via a module
``__getattr__``).  This rule builds the *static* top-level import graph of
the package, computes which modules are reachable from the package root, and
flags any reachable module that imports a banned module at top level —
catching the regression at lint time instead of as an import-cost surprise.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Set, Tuple

from repro.lint.core import Diagnostic

CODE = "RPR006"

#: Modules that must only ever be imported lazily (inside a function).
BANNED_TOP_LEVEL = frozenset({"http.server", "socketserver"})


def _module_map(package_dir: Path) -> Dict[str, Path]:
    pkg = package_dir.name
    modules: Dict[str, Path] = {}
    for path in sorted(package_dir.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        parts = (pkg,) + path.relative_to(package_dir).with_suffix("").parts
        if parts[-1] == "__init__":
            parts = parts[:-1]
        modules[".".join(parts)] = path
    return modules


def _is_type_checking(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _top_level_statements(body: List[ast.stmt]):
    """Statements executed at import time (recursing through if/try/with/class,
    skipping function bodies and ``if TYPE_CHECKING:`` blocks)."""
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield stmt
        if isinstance(stmt, ast.If):
            if not _is_type_checking(stmt.test):
                yield from _top_level_statements(stmt.body)
            yield from _top_level_statements(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            yield from _top_level_statements(stmt.body)
            for handler in stmt.handlers:
                yield from _top_level_statements(handler.body)
            yield from _top_level_statements(stmt.orelse)
            yield from _top_level_statements(stmt.finalbody)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            yield from _top_level_statements(stmt.body)
        elif isinstance(stmt, ast.ClassDef):
            yield from _top_level_statements(stmt.body)


def _resolve_relative(current: str, is_package: bool, level: int,
                      module: str) -> str:
    anchor = current.split(".")
    if not is_package:
        anchor = anchor[:-1]
    if level > 1:
        anchor = anchor[:len(anchor) - (level - 1)]
    return ".".join(anchor + (module.split(".") if module else []))


def _scan_module(tree: ast.Module, current: str, is_package: bool,
                 known: Dict[str, Path]) -> Tuple[Set[str], List[Tuple[int, str]]]:
    """(intra-package deps, [(line, banned module)]) of one module's top level."""
    deps: Set[str] = set()
    banned: List[Tuple[int, str]] = []

    def note(name: str, line: int) -> None:
        if name in BANNED_TOP_LEVEL:
            banned.append((line, name))
        parts = name.split(".")
        for k in range(1, len(parts) + 1):
            prefix = ".".join(parts[:k])
            if prefix in known:
                deps.add(prefix)

    for stmt in _top_level_statements(tree.body):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                note(alias.name, stmt.lineno)
        elif isinstance(stmt, ast.ImportFrom):
            base = (_resolve_relative(current, is_package, stmt.level,
                                      stmt.module or "")
                    if stmt.level else (stmt.module or ""))
            note(base, stmt.lineno)
            for alias in stmt.names:
                if alias.name != "*":
                    note(f"{base}.{alias.name}", stmt.lineno)
    return deps, banned


def check(package_dir: Path) -> List[Diagnostic]:
    modules = _module_map(package_dir)
    pkg = package_dir.name
    deps: Dict[str, Set[str]] = {}
    banned: Dict[str, List[Tuple[int, str]]] = {}
    for name, path in modules.items():
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError:
            continue  # RPR000 already reported by the per-file pass
        is_package = path.name == "__init__.py"
        deps[name], bad = _scan_module(tree, name, is_package, modules)
        if bad:
            banned[name] = bad
        # Importing a submodule imports its ancestor packages too.
        parts = name.split(".")
        for k in range(1, len(parts)):
            ancestor = ".".join(parts[:k])
            if ancestor in modules:
                deps[name].add(ancestor)

    reachable: Set[str] = set()
    frontier = [pkg]
    while frontier:
        module = frontier.pop()
        if module in reachable or module not in deps:
            continue
        reachable.add(module)
        frontier.extend(deps[module])

    diags: List[Diagnostic] = []
    for name in sorted(reachable):
        for line, target in banned.get(name, []):
            diags.append(Diagnostic(str(modules[name]), line, 0, CODE,
                                    f"module {name} is reachable from "
                                    f"`import {pkg}` but imports {target} at "
                                    f"top level; import it lazily inside the "
                                    f"function that needs it"))
    return diags

"""RPR005 — registry completeness for compressors.

Every concrete ``Compressor`` subclass defined under ``compressors/`` must be
registered with :func:`repro.registry.register_compressor` (as a decorator or
a module-level call naming the class) — otherwise the codec silently never
shows up in ``repro list`` / ``compress(codec=...)`` and the archive restore
path cannot find it.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.lint.core import Diagnostic, FileContext

CODE = "RPR005"

_ABSTRACT_BASES = {"ABC", "ABCMeta", "Protocol"}
_ABSTRACT_DECORATORS = {"abstractmethod", "abstractproperty"}


def _name_of(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _name_of(node.func)
    return ""


def _is_register_call(node: ast.expr) -> bool:
    return _name_of(node) == "register_compressor"


def _registered_by_call(tree: ast.Module) -> Set[str]:
    """Class names registered via a module-level ``register_compressor(...)``."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and _is_register_call(node.func)):
            continue
        for kw in node.keywords:
            if kw.arg == "cls" and isinstance(kw.value, ast.Name):
                names.add(kw.value.id)
        for arg in node.args:
            if isinstance(arg, ast.Name):
                names.add(arg.id)
    return names


def _is_abstract(cls: ast.ClassDef) -> bool:
    if any(_name_of(base) in _ABSTRACT_BASES for base in cls.bases):
        return True
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if any(_name_of(dec) in _ABSTRACT_DECORATORS
                   for dec in stmt.decorator_list):
                return True
    return False


def check(ctx: FileContext) -> List[Diagnostic]:
    if "/compressors/" not in f"/{ctx.posix}" or ctx.posix.endswith("__init__.py"):
        return []
    registered = _registered_by_call(ctx.tree)
    diags: List[Diagnostic] = []
    for cls in ctx.tree.body:
        if not isinstance(cls, ast.ClassDef):
            continue
        base_names = {_name_of(base) for base in cls.bases}
        if not any(name.endswith("Compressor") for name in base_names):
            continue
        if cls.name.startswith("_") or _is_abstract(cls):
            continue  # internal/abstract intermediate, not a codec
        if cls.name in registered:
            continue
        if any(_is_register_call(dec) for dec in cls.decorator_list):
            continue
        diags.append(ctx.diag(cls, CODE,
                              f"concrete Compressor subclass {cls.name!r} is "
                              f"not registered with register_compressor; it "
                              f"will be invisible to the registry, the CLI "
                              f"and archive restore"))
    return diags

"""Collect files, dispatch the rules, format the report."""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.lint import (corrupt, defaults, docs_rule, excepts, guarded,
                        imports, registry_rule)
from repro.lint.core import Diagnostic, FileContext, parse_file

#: (code, one-line summary, check) — per-file rules, fed a FileContext.
FILE_RULES = (
    ("RPR001", "guarded-by lock discipline", guarded.check),
    ("RPR002", "parsers re-raise ValueError('corrupt ...')", corrupt.check),
    ("RPR003", "no bare except / silent except Exception", excepts.check),
    ("RPR004", "no mutable default arguments", defaults.check),
    ("RPR005", "compressors are registered", registry_rule.check),
)

#: (code, one-line summary, check) — project rules, fed the package root.
PROJECT_RULES = (
    ("RPR006", "no http.server/socketserver on the import path", imports.check),
    ("RPR007", "repro.__all__ is documented in docs/api.md", docs_rule.check),
)


def lint_source(source: str, path: str = "<snippet>") -> List[Diagnostic]:
    """Run every per-file rule over ``source`` (as if it lived at ``path``).

    ``path`` matters: the scoped rules (RPR002's parsing modules, RPR005's
    ``compressors/``) key off it.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Diagnostic(path, exc.lineno or 1, 0, "RPR000",
                           f"syntax error: {exc.msg}")]
    ctx = FileContext(path, source, tree)
    diags: List[Diagnostic] = []
    for _code, _summary, rule in FILE_RULES:
        diags.extend(rule(ctx))
    return sorted(diags)


def _collect_files(paths: Iterable[Path]) -> List[Path]:
    files: List[Path] = []
    seen = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            key = candidate.resolve()
            if key not in seen:
                seen.add(key)
                files.append(candidate)
    return files


def _package_root(file: Path) -> Optional[Path]:
    """The repro-shaped package dir, when ``file`` is its ``__init__.py``."""
    if (file.name == "__init__.py"
            and (file.parent / "registry.py").is_file()
            and (file.parent / "api.py").is_file()):
        return file.parent
    return None


def lint_paths(paths: Sequence) -> List[Diagnostic]:
    """Lint files/directories; project rules run once per package root found."""
    diags: List[Diagnostic] = []
    roots: List[Path] = []
    for file in _collect_files(Path(p) for p in paths):
        ctx, parse_diags = parse_file(file)
        diags.extend(parse_diags)
        if ctx is not None:
            for _code, _summary, rule in FILE_RULES:
                diags.extend(rule(ctx))
        root = _package_root(file)
        if root is not None and root not in roots:
            roots.append(root)
    for root in roots:
        for _code, _summary, rule in PROJECT_RULES:
            diags.extend(rule(root))
    return sorted(diags)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Project-invariant static analysis for the repro codebase "
                    "(RPR001..RPR007). Exits 1 when findings exist.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: the "
                             "installed repro package)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)
    if args.list_rules:
        for code, summary, _rule in FILE_RULES + PROJECT_RULES:
            print(f"{code}  {summary}")
        return 0
    paths = args.paths or [str(Path(__file__).resolve().parent.parent)]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        for p in missing:
            print(f"repro.lint: no such file or directory: {p}", file=sys.stderr)
        return 2
    findings = lint_paths(paths)
    for diagnostic in findings:
        print(diagnostic.format())
    if findings:
        print(f"repro.lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0

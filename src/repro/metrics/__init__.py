"""Compression quality metrics (PSNR, bit-rate, rate distortion, bound checks)."""

from repro.metrics.error import (
    psnr,
    nrmse,
    mse,
    max_abs_error,
    max_rel_error,
    prediction_psnr,
)
from repro.metrics.rate import (
    bit_rate,
    compression_ratio,
    RateDistortionPoint,
    RateDistortionCurve,
    rate_distortion_sweep,
)
from repro.metrics.verification import verify_error_bound, BoundViolation

__all__ = [
    "psnr",
    "nrmse",
    "mse",
    "max_abs_error",
    "max_rel_error",
    "prediction_psnr",
    "bit_rate",
    "compression_ratio",
    "RateDistortionPoint",
    "RateDistortionCurve",
    "rate_distortion_sweep",
    "verify_error_bound",
    "BoundViolation",
]

"""Pointwise error metrics.

PSNR follows the paper's definition (Eq. 4): it is computed against the value
*range* of the original data, ``PSNR = 20 log10 vrange(D) - 10 log10 mse``.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import value_range


def _check_pair(original: np.ndarray, reconstructed: np.ndarray):
    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    if original.shape != reconstructed.shape:
        raise ValueError(
            f"original shape {original.shape} != reconstructed shape {reconstructed.shape}"
        )
    if original.size == 0:
        raise ValueError("cannot compute metrics on empty arrays")
    return original, reconstructed


def mse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean squared error."""
    original, reconstructed = _check_pair(original, reconstructed)
    diff = original - reconstructed
    return float(np.mean(diff * diff))


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB, relative to the original value range."""
    original, reconstructed = _check_pair(original, reconstructed)
    err = mse(original, reconstructed)
    vrange = value_range(original)
    if err == 0.0:
        return float("inf")
    if vrange == 0.0:
        return float("inf") if err == 0 else float("-inf")
    return float(20.0 * np.log10(vrange) - 10.0 * np.log10(err))


def prediction_psnr(original: np.ndarray, predicted: np.ndarray) -> float:
    """Alias of :func:`psnr` used when scoring predictors (Tables I/II)."""
    return psnr(original, predicted)


def nrmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Root-mean-square error normalized by the value range."""
    original, reconstructed = _check_pair(original, reconstructed)
    vrange = value_range(original)
    rmse = float(np.sqrt(mse(original, reconstructed)))
    if vrange == 0.0:
        return 0.0 if rmse == 0.0 else float("inf")
    return rmse / vrange


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Maximum pointwise absolute error."""
    original, reconstructed = _check_pair(original, reconstructed)
    return float(np.max(np.abs(original - reconstructed)))


def max_rel_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Maximum pointwise error relative to the original value range."""
    original, reconstructed = _check_pair(original, reconstructed)
    vrange = value_range(original)
    max_err = max_abs_error(original, reconstructed)
    if vrange == 0.0:
        return 0.0 if max_err == 0.0 else float("inf")
    return max_err / vrange

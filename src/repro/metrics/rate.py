"""Rate metrics and rate-distortion sweeps.

Bit rate is defined as the average number of bits per data point *in the
compressed representation*; compression ratio is original bytes over compressed
bytes (Section III-B2 / V-A5 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from repro.metrics.error import max_abs_error, psnr


def compression_ratio(original_nbytes: int, compressed_nbytes: int) -> float:
    """Compression ratio rho = |D| / |D'|."""
    if original_nbytes <= 0:
        raise ValueError("original_nbytes must be positive")
    if compressed_nbytes <= 0:
        raise ValueError("compressed_nbytes must be positive")
    return original_nbytes / compressed_nbytes


def bit_rate(compressed_nbytes: int, n_points: int) -> float:
    """Average number of bits used per data point."""
    if n_points <= 0:
        raise ValueError("n_points must be positive")
    if compressed_nbytes < 0:
        raise ValueError("compressed_nbytes must be non-negative")
    return compressed_nbytes * 8.0 / n_points


@dataclass
class RateDistortionPoint:
    """One point of a rate-distortion curve."""

    error_bound: float
    bit_rate: float
    compression_ratio: float
    psnr: float
    max_abs_error: float
    compress_seconds: float = 0.0
    decompress_seconds: float = 0.0

    def as_row(self) -> dict:
        return {
            "error_bound": self.error_bound,
            "bit_rate": self.bit_rate,
            "compression_ratio": self.compression_ratio,
            "psnr": self.psnr,
            "max_abs_error": self.max_abs_error,
            "compress_seconds": self.compress_seconds,
            "decompress_seconds": self.decompress_seconds,
        }


@dataclass
class RateDistortionCurve:
    """A named sequence of rate-distortion points (one compressor, one field)."""

    label: str
    points: List[RateDistortionPoint] = field(default_factory=list)

    def add(self, point: RateDistortionPoint) -> None:
        self.points.append(point)

    def bit_rates(self) -> np.ndarray:
        return np.array([p.bit_rate for p in self.points])

    def psnrs(self) -> np.ndarray:
        return np.array([p.psnr for p in self.points])

    def compression_ratios(self) -> np.ndarray:
        return np.array([p.compression_ratio for p in self.points])

    def psnr_at_bit_rate(self, target_bit_rate: float) -> float:
        """Linearly interpolate PSNR at a given bit rate (for curve comparisons)."""
        if not self.points:
            raise ValueError("empty curve")
        order = np.argsort(self.bit_rates())
        br = self.bit_rates()[order]
        ps = self.psnrs()[order]
        return float(np.interp(target_bit_rate, br, ps))

    def bit_rate_at_psnr(self, target_psnr: float) -> float:
        """Linearly interpolate the bit rate needed to reach a given PSNR."""
        if not self.points:
            raise ValueError("empty curve")
        order = np.argsort(self.psnrs())
        ps = self.psnrs()[order]
        br = self.bit_rates()[order]
        return float(np.interp(target_psnr, ps, br))

    def compression_ratio_at_psnr(self, target_psnr: float) -> float:
        """Interpolated compression ratio at a target PSNR (paper's "same PSNR" claims)."""
        bits_per_value = 32.0  # datasets are single precision in the paper
        br = self.bit_rate_at_psnr(target_psnr)
        if br <= 0:
            return float("inf")
        return bits_per_value / br


def rate_distortion_sweep(
    compressor,
    data: np.ndarray,
    error_bounds: Sequence[float],
    label: Optional[str] = None,
    original_dtype_bytes: int = 4,
) -> RateDistortionCurve:
    """Run ``compressor`` over a list of relative error bounds and collect RD points.

    ``compressor`` must follow the :class:`repro.compressors.base.Compressor`
    interface.  The original size is accounted as single-precision (4 bytes per
    value), matching the paper's datasets.
    """
    import time

    data = np.asarray(data)
    curve = RateDistortionCurve(label=label or compressor.name)
    n_points = data.size
    original_nbytes = n_points * original_dtype_bytes
    for eb in error_bounds:
        start = time.perf_counter()
        compressed = compressor.compress(data, eb)
        t_comp = time.perf_counter() - start
        start = time.perf_counter()
        reconstructed = compressor.decompress(compressed)
        t_decomp = time.perf_counter() - start
        nbytes = len(compressed)
        curve.add(
            RateDistortionPoint(
                error_bound=float(eb),
                bit_rate=bit_rate(nbytes, n_points),
                compression_ratio=compression_ratio(original_nbytes, nbytes),
                psnr=psnr(data, reconstructed),
                max_abs_error=max_abs_error(data, reconstructed),
                compress_seconds=t_comp,
                decompress_seconds=t_decomp,
            )
        )
    return curve

"""Error-bound verification (the property every error-bounded compressor must hold)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.validation import absolute_error_bound


@dataclass
class BoundViolation:
    """Description of an error-bound violation found by :func:`verify_error_bound`."""

    index: tuple
    original: float
    reconstructed: float
    error: float
    bound: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"bound violated at {self.index}: |{self.original} - {self.reconstructed}| "
            f"= {self.error} > {self.bound}"
        )


def verify_error_bound(
    original: np.ndarray,
    reconstructed: np.ndarray,
    rel_error_bound: float,
    rtol: float = 1e-9,
) -> Optional[BoundViolation]:
    """Check ``|d_i - d'_i| <= eps * vrange(D)`` for every point.

    Returns ``None`` when the bound holds, otherwise the worst violation.
    ``rtol`` adds a tiny relative slack for floating-point round-off in the
    verification itself (not in the compressors).
    """
    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    if original.shape != reconstructed.shape:
        raise ValueError("shape mismatch between original and reconstructed data")
    bound = absolute_error_bound(original, rel_error_bound)
    errors = np.abs(original - reconstructed)
    tol = bound * (1.0 + rtol)
    worst = int(np.argmax(errors))
    if errors.flat[worst] <= tol:
        return None
    index = np.unravel_index(worst, original.shape)
    return BoundViolation(
        index=tuple(int(i) for i in index),
        original=float(original[index]),
        reconstructed=float(reconstructed[index]),
        error=float(errors[index]),
        bound=float(bound),
    )

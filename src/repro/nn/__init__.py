"""A small, self-contained NumPy deep-learning substrate.

The environment used for this reproduction has no GPU deep-learning framework,
so AE-SZ's convolutional autoencoders are built on this package: explicit
forward/backward layers, im2col-based (de)convolutions for 2D and 3D data,
Generalized Divisive Normalization (GDN/iGDN), standard losses, Adam/SGD
optimizers and a minimal training loop.

The public surface mirrors the subset of a typical DL framework that the paper
needs; every layer implements

``forward(x, training=True) -> y`` and ``backward(grad_y) -> grad_x``

with parameter gradients accumulated on :class:`repro.nn.module.Parameter`.
"""

from repro.nn.module import Module, Parameter
from repro.nn.network import Sequential
from repro.nn.layers import (
    Dense,
    Conv2d,
    Conv3d,
    ConvTranspose2d,
    ConvTranspose3d,
    GDN,
    IGDN,
    ReLU,
    LeakyReLU,
    Tanh,
    Sigmoid,
    Identity,
    Flatten,
    Reshape,
    BatchNorm,
)
from repro.nn.losses import MSELoss, L1Loss, LogCoshLoss
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.training import Trainer, TrainingConfig, iterate_minibatches
from repro.nn.serialization import save_module, load_module_state, state_dict, load_state_dict
from repro.nn.gradcheck import numerical_gradient, check_layer_gradients

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Dense",
    "Conv2d",
    "Conv3d",
    "ConvTranspose2d",
    "ConvTranspose3d",
    "GDN",
    "IGDN",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Flatten",
    "Reshape",
    "BatchNorm",
    "MSELoss",
    "L1Loss",
    "LogCoshLoss",
    "SGD",
    "Adam",
    "Optimizer",
    "Trainer",
    "TrainingConfig",
    "iterate_minibatches",
    "save_module",
    "load_module_state",
    "state_dict",
    "load_state_dict",
    "numerical_gradient",
    "check_layer_gradients",
]

"""Numerical gradient checking utilities (used heavily by the test suite)."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.nn.module import Module


def numerical_gradient(f: Callable[[np.ndarray], float], x: np.ndarray,
                       eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of a scalar function ``f`` at ``x``."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = f(x)
        flat[i] = orig - eps
        f_minus = f(x)
        flat[i] = orig
        gflat[i] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def check_layer_gradients(layer: Module, x: np.ndarray, eps: float = 1e-5,
                          rtol: float = 1e-4, atol: float = 1e-6,
                          check_params: bool = True) -> Dict[str, float]:
    """Compare analytic and numerical gradients of ``0.5 * sum(layer(x)**2)``.

    Returns a dict of maximum absolute deviations; raises ``AssertionError``
    if any gradient disagrees beyond tolerance.
    """
    x = np.asarray(x, dtype=np.float64)

    def loss_for_input(inp: np.ndarray) -> float:
        out = layer.forward(inp, training=True)
        return 0.5 * float(np.sum(out * out))

    # Analytic gradients.
    layer.zero_grad()
    out = layer.forward(x, training=True)
    analytic_dx = layer.backward(out.copy())

    deviations: Dict[str, float] = {}

    numeric_dx = numerical_gradient(loss_for_input, x.copy(), eps=eps)
    dev = float(np.max(np.abs(analytic_dx - numeric_dx)))
    deviations["input"] = dev
    np.testing.assert_allclose(analytic_dx, numeric_dx, rtol=rtol, atol=atol)

    if check_params:
        for name, param in layer.named_parameters():
            analytic = np.array(param.grad, copy=True)

            def loss_for_param(values: np.ndarray, _param=param) -> float:
                backup = np.array(_param.value, copy=True)
                _param.value[...] = values
                try:
                    return loss_for_input(x)
                finally:
                    _param.value[...] = backup

            numeric = numerical_gradient(loss_for_param, np.array(param.value, copy=True), eps=eps)
            dev = float(np.max(np.abs(analytic - numeric)))
            deviations[name] = dev
            np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)

    return deviations

"""im2col / col2im kernels for N-dimensional convolutions.

Convolutions in :mod:`repro.nn.layers.conv` are expressed as a single matrix
multiplication over patch matrices.  The patch extraction uses
``numpy.lib.stride_tricks.sliding_window_view`` (zero-copy) and the inverse
``col2im`` accumulates contributions with a small loop over kernel offsets
(at most ``3**d`` iterations for the 3x3 / 3x3x3 kernels used by AE-SZ), which
is fully vectorized over batch, channels and spatial positions.

The functions support arbitrary spatial dimensionality (1, 2 or 3 in this
library) with per-axis stride and padding.
"""

from __future__ import annotations

from itertools import product
from typing import Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view


def _normalize(value, ndim: int, name: str) -> Tuple[int, ...]:
    """Broadcast an int or sequence to a per-axis tuple of length ``ndim``."""
    if np.isscalar(value):
        out = (int(value),) * ndim
    else:
        out = tuple(int(v) for v in value)
        if len(out) != ndim:
            raise ValueError(f"{name} must have {ndim} entries, got {len(out)}")
    if any(v < 0 for v in out):
        raise ValueError(f"{name} entries must be non-negative, got {out}")
    return out


def conv_output_shape(
    spatial: Sequence[int],
    kernel: Sequence[int],
    stride: Sequence[int],
    padding: Sequence[int],
) -> Tuple[int, ...]:
    """Spatial output shape of a strided convolution."""
    out = []
    for s, k, st, p in zip(spatial, kernel, stride, padding):
        o = (s + 2 * p - k) // st + 1
        if o <= 0:
            raise ValueError(
                f"convolution output collapsed to {o} for input={s}, kernel={k}, "
                f"stride={st}, padding={p}"
            )
        out.append(o)
    return tuple(out)


def conv_transpose_output_shape(
    spatial: Sequence[int],
    kernel: Sequence[int],
    stride: Sequence[int],
    padding: Sequence[int],
    output_padding: Sequence[int],
) -> Tuple[int, ...]:
    """Spatial output shape of a strided transposed convolution."""
    out = []
    for s, k, st, p, op in zip(spatial, kernel, stride, padding, output_padding):
        o = (s - 1) * st - 2 * p + k + op
        if o <= 0:
            raise ValueError("transposed convolution output collapsed to non-positive size")
        out.append(o)
    return tuple(out)


def im2col(
    x: np.ndarray,
    kernel: Sequence[int],
    stride: Sequence[int],
    padding: Sequence[int],
) -> np.ndarray:
    """Extract convolution patches.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, *spatial)``.
    kernel, stride, padding:
        Per-spatial-axis kernel size, stride and zero padding.

    Returns
    -------
    ndarray of shape ``(N, C * prod(kernel), prod(out_spatial))``.
    """
    ndim = x.ndim - 2
    kernel = _normalize(kernel, ndim, "kernel")
    stride = _normalize(stride, ndim, "stride")
    padding = _normalize(padding, ndim, "padding")

    if any(p > 0 for p in padding):
        pad_width = [(0, 0), (0, 0)] + [(p, p) for p in padding]
        x = np.pad(x, pad_width, mode="constant")

    n, c = x.shape[:2]
    spatial = x.shape[2:]
    out_spatial = conv_output_shape(spatial, kernel, stride, (0,) * ndim)

    # windows: (N, C, *windows_spatial, *kernel)
    windows = sliding_window_view(x, kernel, axis=tuple(range(2, 2 + ndim)))
    # subsample by stride on the window axes
    slicer = (slice(None), slice(None)) + tuple(slice(None, None, st) for st in stride)
    windows = windows[slicer]
    # -> (N, C, *kernel, *out_spatial)
    perm = (0, 1) + tuple(range(2 + ndim, 2 + 2 * ndim)) + tuple(range(2, 2 + ndim))
    windows = windows.transpose(perm)
    cols = np.ascontiguousarray(windows).reshape(
        n, c * int(np.prod(kernel)), int(np.prod(out_spatial))
    )
    return cols


def col2im(
    cols: np.ndarray,
    input_shape: Sequence[int],
    kernel: Sequence[int],
    stride: Sequence[int],
    padding: Sequence[int],
) -> np.ndarray:
    """Scatter-add patch columns back into an input-shaped array.

    This is the exact adjoint of :func:`im2col` (overlapping contributions are
    summed), which is what the convolution backward pass and the transposed
    convolution forward pass require.

    Parameters
    ----------
    cols:
        ``(N, C * prod(kernel), prod(out_spatial))`` patch matrix.
    input_shape:
        The *unpadded* input shape ``(N, C, *spatial)`` to scatter into.
    """
    n, c = int(input_shape[0]), int(input_shape[1])
    spatial = tuple(int(s) for s in input_shape[2:])
    ndim = len(spatial)
    kernel = _normalize(kernel, ndim, "kernel")
    stride = _normalize(stride, ndim, "stride")
    padding = _normalize(padding, ndim, "padding")

    padded_spatial = tuple(s + 2 * p for s, p in zip(spatial, padding))
    out_spatial = conv_output_shape(padded_spatial, kernel, stride, (0,) * ndim)

    cols = cols.reshape((n, c) + kernel + out_spatial)
    out = np.zeros((n, c) + padded_spatial, dtype=cols.dtype)

    # Accumulate one kernel offset at a time; each assignment is a strided,
    # fully vectorized slice covering every output position.
    for offset in product(*(range(k) for k in kernel)):
        src = cols[(slice(None), slice(None)) + offset]
        dst_slices = tuple(
            slice(o, o + st * osz, st) for o, st, osz in zip(offset, stride, out_spatial)
        )
        out[(slice(None), slice(None)) + dst_slices] += src

    if any(p > 0 for p in padding):
        unpad = tuple(slice(p, p + s) for p, s in zip(padding, spatial))
        out = out[(slice(None), slice(None)) + unpad]
    return out

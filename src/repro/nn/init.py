"""Weight initialization schemes."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng


def xavier_uniform(shape: Tuple[int, ...], fan_in: int, fan_out: int, rng: SeedLike = None) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    rng = as_rng(rng)
    limit = np.sqrt(6.0 / max(1, fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: Tuple[int, ...], fan_in: int, rng: SeedLike = None) -> np.ndarray:
    """He (Kaiming) normal initialization, suited to ReLU-family activations."""
    rng = as_rng(rng)
    std = np.sqrt(2.0 / max(1, fan_in))
    return rng.normal(0.0, std, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)

"""Neural-network layers."""

from repro.nn.layers.dense import Dense
from repro.nn.layers.conv import Conv2d, Conv3d, ConvNd
from repro.nn.layers.conv_transpose import ConvTranspose2d, ConvTranspose3d, ConvTransposeNd
from repro.nn.layers.gdn import GDN, IGDN
from repro.nn.layers.activations import ReLU, LeakyReLU, Tanh, Sigmoid, Identity
from repro.nn.layers.reshape import Flatten, Reshape
from repro.nn.layers.norm import BatchNorm

__all__ = [
    "Dense",
    "Conv2d",
    "Conv3d",
    "ConvNd",
    "ConvTranspose2d",
    "ConvTranspose3d",
    "ConvTransposeNd",
    "GDN",
    "IGDN",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Flatten",
    "Reshape",
    "BatchNorm",
]

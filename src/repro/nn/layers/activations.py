"""Pointwise activation layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self):
        self._mask = None

    def forward(self, x: np.ndarray, training: Optional[bool] = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad, 0.0)


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.2):
        self.negative_slope = float(negative_slope)
        self._mask = None

    def forward(self, x: np.ndarray, training: Optional[bool] = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad, self.negative_slope * grad)


class Tanh(Module):
    """Hyperbolic tangent; used as the final decoder activation in AE-SZ."""

    def __init__(self):
        self._out = None

    def forward(self, x: np.ndarray, training: Optional[bool] = None) -> np.ndarray:
        self._out = np.tanh(np.asarray(x, dtype=np.float64))
        return self._out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad * (1.0 - self._out**2)


class Sigmoid(Module):
    """Logistic sigmoid."""

    def __init__(self):
        self._out = None

    def forward(self, x: np.ndarray, training: Optional[bool] = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._out = 1.0 / (1.0 + np.exp(-x))
        return self._out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad * self._out * (1.0 - self._out)


class Identity(Module):
    """Pass-through layer (useful as a configurable activation placeholder)."""

    def forward(self, x: np.ndarray, training: Optional[bool] = None) -> np.ndarray:
        return np.asarray(x, dtype=np.float64)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad

"""Strided N-dimensional convolutions built on im2col."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn import init as nn_init
from repro.nn.im2col import _normalize, col2im, conv_output_shape, im2col
from repro.nn.module import Module, Parameter
from repro.utils.rng import SeedLike, as_rng

IntOrSeq = Union[int, Sequence[int]]


class ConvNd(Module):
    """N-dimensional convolution over inputs of shape ``(N, C, *spatial)``.

    The forward pass is a single batched matmul over im2col patch matrices;
    the backward pass computes weight gradients with the transposed patch
    matrix and input gradients with :func:`repro.nn.im2col.col2im`.
    """

    def __init__(
        self,
        ndim: int,
        in_channels: int,
        out_channels: int,
        kernel_size: IntOrSeq,
        stride: IntOrSeq = 1,
        padding: IntOrSeq = 0,
        bias: bool = True,
        rng: SeedLike = None,
    ):
        if ndim not in (1, 2, 3):
            raise ValueError(f"ConvNd supports 1D/2D/3D, got ndim={ndim}")
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("channel counts must be positive")
        rng = as_rng(rng)
        self.ndim = ndim
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = _normalize(kernel_size, ndim, "kernel_size")
        self.stride = _normalize(stride, ndim, "stride")
        self.padding = _normalize(padding, ndim, "padding")

        k_elems = int(np.prod(self.kernel_size))
        fan_in = in_channels * k_elems
        weight_shape = (out_channels, in_channels) + self.kernel_size
        self.weight = Parameter(
            nn_init.he_normal(weight_shape, fan_in, rng), name=f"conv{ndim}d.weight"
        )
        self.bias = (
            Parameter(nn_init.zeros((out_channels,)), name=f"conv{ndim}d.bias") if bias else None
        )
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, ...], Tuple[int, ...]]] = None

    # ------------------------------------------------------------------ api
    def output_spatial(self, spatial: Sequence[int]) -> Tuple[int, ...]:
        """Spatial output shape for a given spatial input shape."""
        return conv_output_shape(spatial, self.kernel_size, self.stride, self.padding)

    def forward(self, x: np.ndarray, training: Optional[bool] = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != self.ndim + 2:
            raise ValueError(
                f"Conv{self.ndim}d expected {self.ndim + 2}D input (N, C, *spatial), got shape {x.shape}"
            )
        if x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv{self.ndim}d expected {self.in_channels} input channels, got {x.shape[1]}"
            )
        n = x.shape[0]
        out_spatial = self.output_spatial(x.shape[2:])
        cols = im2col(x, self.kernel_size, self.stride, self.padding)
        w_flat = self.weight.value.reshape(self.out_channels, -1)
        out = np.einsum("fk,nkl->nfl", w_flat, cols, optimize=True)
        if self.bias is not None:
            out += self.bias.value[None, :, None]
        self._cache = (cols, x.shape, out_spatial)
        return out.reshape((n, self.out_channels) + out_spatial)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cols, x_shape, out_spatial = self._cache
        n = x_shape[0]
        grad = np.asarray(grad, dtype=np.float64).reshape(n, self.out_channels, -1)

        w_flat = self.weight.value.reshape(self.out_channels, -1)
        dw = np.einsum("nfl,nkl->fk", grad, cols, optimize=True)
        self.weight.grad += dw.reshape(self.weight.value.shape)
        if self.bias is not None:
            self.bias.grad += grad.sum(axis=(0, 2))

        dcols = np.einsum("fk,nfl->nkl", w_flat, grad, optimize=True)
        return col2im(dcols, x_shape, self.kernel_size, self.stride, self.padding)


class Conv2d(ConvNd):
    """2D convolution (inputs ``(N, C, H, W)``)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: IntOrSeq,
                 stride: IntOrSeq = 1, padding: IntOrSeq = 0, bias: bool = True,
                 rng: SeedLike = None):
        super().__init__(2, in_channels, out_channels, kernel_size, stride, padding, bias, rng)


class Conv3d(ConvNd):
    """3D convolution (inputs ``(N, C, D, H, W)``)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: IntOrSeq,
                 stride: IntOrSeq = 1, padding: IntOrSeq = 0, bias: bool = True,
                 rng: SeedLike = None):
        super().__init__(3, in_channels, out_channels, kernel_size, stride, padding, bias, rng)

"""Strided N-dimensional transposed convolutions (a.k.a. deconvolutions).

The forward pass of a transposed convolution is exactly the adjoint of the
corresponding convolution, so it is implemented with
:func:`repro.nn.im2col.col2im`, and its backward pass with
:func:`repro.nn.im2col.im2col`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn import init as nn_init
from repro.nn.im2col import (
    _normalize,
    col2im,
    conv_transpose_output_shape,
    im2col,
)
from repro.nn.module import Module, Parameter
from repro.utils.rng import SeedLike, as_rng

IntOrSeq = Union[int, Sequence[int]]


class ConvTransposeNd(Module):
    """N-dimensional transposed convolution over inputs ``(N, C, *spatial)``."""

    def __init__(
        self,
        ndim: int,
        in_channels: int,
        out_channels: int,
        kernel_size: IntOrSeq,
        stride: IntOrSeq = 1,
        padding: IntOrSeq = 0,
        output_padding: IntOrSeq = 0,
        bias: bool = True,
        rng: SeedLike = None,
    ):
        if ndim not in (1, 2, 3):
            raise ValueError(f"ConvTransposeNd supports 1D/2D/3D, got ndim={ndim}")
        rng = as_rng(rng)
        self.ndim = ndim
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = _normalize(kernel_size, ndim, "kernel_size")
        self.stride = _normalize(stride, ndim, "stride")
        self.padding = _normalize(padding, ndim, "padding")
        self.output_padding = _normalize(output_padding, ndim, "output_padding")
        for op, st in zip(self.output_padding, self.stride):
            if op >= st and not (op == 0 and st == 1):
                raise ValueError("output_padding must be smaller than stride")

        k_elems = int(np.prod(self.kernel_size))
        fan_in = in_channels * k_elems
        weight_shape = (in_channels, out_channels) + self.kernel_size
        self.weight = Parameter(
            nn_init.he_normal(weight_shape, fan_in, rng), name=f"convtranspose{ndim}d.weight"
        )
        self.bias = (
            Parameter(nn_init.zeros((out_channels,)), name=f"convtranspose{ndim}d.bias")
            if bias
            else None
        )
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, ...], Tuple[int, ...]]] = None

    def output_spatial(self, spatial: Sequence[int]) -> Tuple[int, ...]:
        """Spatial output shape for a given spatial input shape."""
        return conv_transpose_output_shape(
            spatial, self.kernel_size, self.stride, self.padding, self.output_padding
        )

    def forward(self, x: np.ndarray, training: Optional[bool] = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != self.ndim + 2:
            raise ValueError(
                f"ConvTranspose{self.ndim}d expected {self.ndim + 2}D input, got shape {x.shape}"
            )
        if x.shape[1] != self.in_channels:
            raise ValueError(
                f"ConvTranspose{self.ndim}d expected {self.in_channels} input channels, got {x.shape[1]}"
            )
        n = x.shape[0]
        in_spatial = x.shape[2:]
        out_spatial = self.output_spatial(in_spatial)

        x_flat = x.reshape(n, self.in_channels, -1)
        w_flat = self.weight.value.reshape(self.in_channels, -1)  # (C_in, C_out*prod(k))
        cols = np.einsum("ck,ncl->nkl", w_flat, x_flat, optimize=True)
        out = col2im(
            cols,
            (n, self.out_channels) + out_spatial,
            self.kernel_size,
            self.stride,
            self.padding,
        )
        if self.bias is not None:
            out += self.bias.value.reshape((1, self.out_channels) + (1,) * self.ndim)
        self._cache = (x_flat, (n,) + in_spatial, out_spatial)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_flat, n_and_in_spatial, out_spatial = self._cache
        n = n_and_in_spatial[0]
        in_spatial = n_and_in_spatial[1:]
        grad = np.asarray(grad, dtype=np.float64)

        if self.bias is not None:
            self.bias.grad += grad.sum(axis=(0,) + tuple(range(2, 2 + self.ndim)))

        dcols = im2col(grad, self.kernel_size, self.stride, self.padding)
        w_flat = self.weight.value.reshape(self.in_channels, -1)
        dw = np.einsum("ncl,nkl->ck", x_flat, dcols, optimize=True)
        self.weight.grad += dw.reshape(self.weight.value.shape)

        dx_flat = np.einsum("ck,nkl->ncl", w_flat, dcols, optimize=True)
        return dx_flat.reshape((n, self.in_channels) + in_spatial)


class ConvTranspose2d(ConvTransposeNd):
    """2D transposed convolution (inputs ``(N, C, H, W)``)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: IntOrSeq,
                 stride: IntOrSeq = 1, padding: IntOrSeq = 0, output_padding: IntOrSeq = 0,
                 bias: bool = True, rng: SeedLike = None):
        super().__init__(2, in_channels, out_channels, kernel_size, stride, padding,
                         output_padding, bias, rng)


class ConvTranspose3d(ConvTransposeNd):
    """3D transposed convolution (inputs ``(N, C, D, H, W)``)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: IntOrSeq,
                 stride: IntOrSeq = 1, padding: IntOrSeq = 0, output_padding: IntOrSeq = 0,
                 bias: bool = True, rng: SeedLike = None):
        super().__init__(3, in_channels, out_channels, kernel_size, stride, padding,
                         output_padding, bias, rng)

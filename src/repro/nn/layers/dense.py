"""Fully connected layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init as nn_init
from repro.nn.module import Module, Parameter
from repro.utils.rng import SeedLike, as_rng


class Dense(Module):
    """Affine transform ``y = x @ W + b`` on inputs of shape ``(N, in_features)``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng: SeedLike = None):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Dense layer sizes must be positive")
        rng = as_rng(rng)
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight = Parameter(
            nn_init.xavier_uniform((in_features, out_features), in_features, out_features, rng),
            name="dense.weight",
        )
        self.bias = Parameter(nn_init.zeros((out_features,)), name="dense.bias") if bias else None
        self._cache_x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: Optional[bool] = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense expected input of shape (N, {self.in_features}), got {x.shape}"
            )
        self._cache_x = x
        out = x @ self.weight.value
        if self.bias is not None:
            out = out + self.bias.value
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache_x is None:
            raise RuntimeError("backward called before forward")
        x = self._cache_x
        grad = np.asarray(grad, dtype=np.float64)
        self.weight.grad += x.T @ grad
        if self.bias is not None:
            self.bias.grad += grad.sum(axis=0)
        return grad @ self.weight.value.T

"""Generalized Divisive Normalization (GDN) and its inverse (iGDN).

GDN [Balle et al., 2016] is the channel-wise normalization used as the
activation function in AE-SZ's convolutional blocks (paper Section IV-B):

    y_i = x_i / sqrt(beta_i + sum_j gamma_ij * x_j^2)

iGDN multiplies instead of dividing and is used in the decoder's
deconvolutional blocks.  ``beta`` and ``gamma`` are trainable; after every
optimizer step they are projected back onto their feasible set
(``beta >= beta_min``, ``gamma >= 0``) via :meth:`Module.project`, matching the
projected-gradient treatment in the reference implementations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module, Parameter


class _GDNBase(Module):
    def __init__(self, channels: int, beta_init: float = 1.0, gamma_init: float = 0.1,
                 beta_min: float = 1e-6):
        if channels <= 0:
            raise ValueError("channels must be positive")
        self.channels = int(channels)
        self.beta_min = float(beta_min)
        self.beta = Parameter(np.full(channels, float(beta_init)), name="gdn.beta")
        gamma = np.full((channels, channels), 0.0)
        np.fill_diagonal(gamma, float(gamma_init))
        self.gamma = Parameter(gamma, name="gdn.gamma")
        self._cache = None

    def project(self) -> None:
        np.maximum(self.beta.value, self.beta_min, out=self.beta.value)
        np.maximum(self.gamma.value, 0.0, out=self.gamma.value)

    def _norm_pool(self, x: np.ndarray):
        """Compute u_i = beta_i + sum_j gamma_ij x_j^2 and z_i = sqrt(u_i).

        ``x`` has shape ``(N, C, *spatial)``; the sum runs over channels at
        every spatial location independently.
        """
        x2 = x * x
        u = np.einsum("ij,nj...->ni...", self.gamma.value, x2, optimize=True)
        u += self.beta.value.reshape((1, self.channels) + (1,) * (x.ndim - 2))
        np.maximum(u, self.beta_min, out=u)
        z = np.sqrt(u)
        return x2, u, z


class GDN(_GDNBase):
    """Divisive normalization: ``y_i = x_i / sqrt(beta_i + sum_j gamma_ij x_j^2)``."""

    def forward(self, x: np.ndarray, training: Optional[bool] = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim < 2 or x.shape[1] != self.channels:
            raise ValueError(f"GDN expected {self.channels} channels, got input shape {x.shape}")
        x2, u, z = self._norm_pool(x)
        y = x / z
        self._cache = (x, x2, u, z)
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x, x2, u, z = self._cache
        grad = np.asarray(grad, dtype=np.float64)
        spatial_axes = tuple(range(2, x.ndim))

        # dL/du_i = g_i * x_i * (-1/2) * u_i^{-3/2}
        du = grad * x * (-0.5) * u ** (-1.5)

        # Parameter gradients.
        self.beta.grad += du.sum(axis=(0,) + spatial_axes)
        self.gamma.grad += np.einsum("ni...,nj...->ij", du, x2, optimize=True)

        # Input gradient: g_k / z_k + 2 x_k * sum_i du_i * gamma_ik
        s = np.einsum("ij,ni...->nj...", self.gamma.value, du, optimize=True)
        return grad / z + 2.0 * x * s


class IGDN(_GDNBase):
    """Inverse GDN: ``y_i = x_i * sqrt(beta_i + sum_j gamma_ij x_j^2)``."""

    def forward(self, x: np.ndarray, training: Optional[bool] = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim < 2 or x.shape[1] != self.channels:
            raise ValueError(f"IGDN expected {self.channels} channels, got input shape {x.shape}")
        x2, u, z = self._norm_pool(x)
        y = x * z
        self._cache = (x, x2, u, z)
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x, x2, u, z = self._cache
        grad = np.asarray(grad, dtype=np.float64)
        spatial_axes = tuple(range(2, x.ndim))

        # dL/du_i = g_i * x_i * (1/2) * u_i^{-1/2}
        du = grad * x * 0.5 / z

        self.beta.grad += du.sum(axis=(0,) + spatial_axes)
        self.gamma.grad += np.einsum("ni...,nj...->ij", du, x2, optimize=True)

        s = np.einsum("ij,ni...->nj...", self.gamma.value, du, optimize=True)
        return grad * z + 2.0 * x * s

"""Batch normalization (used by comparator autoencoders such as AE-B)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module, Parameter


class BatchNorm(Module):
    """Per-channel batch normalization over ``(N, C, *spatial)`` or ``(N, C)`` inputs."""

    def __init__(self, channels: int, momentum: float = 0.1, eps: float = 1e-5):
        if channels <= 0:
            raise ValueError("channels must be positive")
        self.channels = int(channels)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.gamma = Parameter(np.ones(channels), name="bn.gamma")
        self.beta = Parameter(np.zeros(channels), name="bn.beta")
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self._cache = None

    def _reduce_axes(self, x: np.ndarray):
        return (0,) + tuple(range(2, x.ndim))

    def _bshape(self, x: np.ndarray):
        return (1, self.channels) + (1,) * (x.ndim - 2)

    def forward(self, x: np.ndarray, training: Optional[bool] = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim < 2 or x.shape[1] != self.channels:
            raise ValueError(f"BatchNorm expected {self.channels} channels, got shape {x.shape}")
        training = self._resolve_training(training)
        axes = self._reduce_axes(x)
        bshape = self._bshape(x)

        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var
        else:
            mean = self.running_mean
            var = self.running_var

        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean.reshape(bshape)) * inv_std.reshape(bshape)
        out = self.gamma.value.reshape(bshape) * x_hat + self.beta.value.reshape(bshape)
        self._cache = (x_hat, inv_std, x.shape, training)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std, shape, was_training = self._cache
        grad = np.asarray(grad, dtype=np.float64)
        axes = self._reduce_axes(grad)
        bshape = self._bshape(grad)

        self.gamma.grad += (grad * x_hat).sum(axis=axes)
        self.beta.grad += grad.sum(axis=axes)

        g = self.gamma.value.reshape(bshape)
        if not was_training:
            return grad * g * inv_std.reshape(bshape)

        m = grad.size / self.channels
        dxhat = grad * g
        term = dxhat - dxhat.mean(axis=axes, keepdims=True) - x_hat * (dxhat * x_hat).mean(
            axis=axes, keepdims=True
        )
        return term * inv_std.reshape(bshape)

"""Shape-manipulation layers."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.nn.module import Module


class Flatten(Module):
    """Flatten all non-batch dimensions: ``(N, ...) -> (N, prod(...))``."""

    def __init__(self):
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: Optional[bool] = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad).reshape(self._shape)


class Reshape(Module):
    """Reshape non-batch dimensions to a fixed target shape."""

    def __init__(self, target_shape: Sequence[int]):
        self.target_shape = tuple(int(s) for s in target_shape)
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: Optional[bool] = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._shape = x.shape
        return x.reshape((x.shape[0],) + self.target_shape)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad).reshape(self._shape)

"""Reconstruction losses.

Each loss exposes ``__call__(prediction, target) -> (loss_value, grad_wrt_prediction)``
so models can feed the gradient straight into their ``backward`` chain.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


class Loss:
    """Base class for losses (mean-reduced over all elements)."""

    def __call__(self, prediction: np.ndarray, target: np.ndarray) -> Tuple[float, np.ndarray]:
        raise NotImplementedError

    @staticmethod
    def _check(prediction: np.ndarray, target: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        prediction = np.asarray(prediction, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if prediction.shape != target.shape:
            raise ValueError(
                f"prediction shape {prediction.shape} != target shape {target.shape}"
            )
        return prediction, target


class MSELoss(Loss):
    """Mean squared error, the reconstruction term of Eq. (1) in the paper."""

    def __call__(self, prediction: np.ndarray, target: np.ndarray) -> Tuple[float, np.ndarray]:
        prediction, target = self._check(prediction, target)
        diff = prediction - target
        loss = float(np.mean(diff * diff))
        grad = (2.0 / diff.size) * diff
        return loss, grad


class L1Loss(Loss):
    """Mean absolute error; also used for AE-vs-Lorenzo predictor selection."""

    def __call__(self, prediction: np.ndarray, target: np.ndarray) -> Tuple[float, np.ndarray]:
        prediction, target = self._check(prediction, target)
        diff = prediction - target
        loss = float(np.mean(np.abs(diff)))
        grad = np.sign(diff) / diff.size
        return loss, grad


class LogCoshLoss(Loss):
    """log-cosh reconstruction loss (used by the LogCosh-VAE comparator)."""

    def __call__(self, prediction: np.ndarray, target: np.ndarray) -> Tuple[float, np.ndarray]:
        prediction, target = self._check(prediction, target)
        diff = prediction - target
        # log(cosh(d)) computed stably as |d| + log1p(exp(-2|d|)) - log(2).
        a = np.abs(diff)
        loss = float(np.mean(a + np.log1p(np.exp(-2.0 * a)) - np.log(2.0)))
        grad = np.tanh(diff) / diff.size
        return loss, grad

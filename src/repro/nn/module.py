"""Base classes for the NumPy neural-network substrate."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np


class Parameter:
    """A trainable tensor with an accumulated gradient."""

    __slots__ = ("value", "grad", "name")

    def __init__(self, value: np.ndarray, name: str = "param"):
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"


class Module:
    """Base class of all layers and models.

    Sub-classes register :class:`Parameter` objects as attributes and/or child
    modules; :meth:`parameters` and :meth:`named_parameters` traverse the tree.
    """

    training: bool = True

    # ------------------------------------------------------------------ tree
    def children(self) -> Iterator["Module"]:
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for attr, value in self.__dict__.items():
            name = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{name}.{i}.")
                    elif isinstance(item, Parameter):
                        yield f"{name}.{i}", item

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of trainable scalars in this module tree."""
        return sum(p.size for p in self.parameters())

    # -------------------------------------------------------------- training
    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self.children():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def project(self) -> None:
        """Project parameters back onto their feasible set (e.g. GDN beta > 0).

        Called by optimizers after each step; the default is a no-op.
        """
        for child in self.children():
            child.project()

    # --------------------------------------------------------------- compute
    def forward(self, x: np.ndarray, training: Optional[bool] = None) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray, training: Optional[bool] = None) -> np.ndarray:
        return self.forward(x, training=training)

    def _resolve_training(self, training: Optional[bool]) -> bool:
        return self.training if training is None else bool(training)

"""Layer composition."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.module import Module


class Sequential(Module):
    """Run layers in order on forward, in reverse order on backward."""

    def __init__(self, *layers: Module):
        if len(layers) == 1 and isinstance(layers[0], (list, tuple)):
            layers = tuple(layers[0])
        for layer in layers:
            if not isinstance(layer, Module):
                raise TypeError(f"Sequential expects Module instances, got {type(layer)!r}")
        self.layers: List[Module] = list(layers)

    def append(self, layer: Module) -> "Sequential":
        if not isinstance(layer, Module):
            raise TypeError(f"Sequential expects Module instances, got {type(layer)!r}")
        self.layers.append(layer)
        return self

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]

    def __iter__(self):
        return iter(self.layers)

    def forward(self, x: np.ndarray, training: Optional[bool] = None) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

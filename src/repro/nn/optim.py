"""Gradient-descent optimizers."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.nn.module import Module, Parameter


class Optimizer:
    """Base optimizer over a list of :class:`Parameter` objects.

    ``modules`` can also be passed so that constrained layers (e.g. GDN) are
    projected back onto their feasible set right after each update.
    """

    def __init__(self, parameters: Sequence[Parameter], lr: float,
                 modules: Optional[Sequence[Module]] = None):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer needs at least one parameter")
        self.lr = float(lr)
        self.modules: List[Module] = list(modules) if modules else []

    @classmethod
    def for_module(cls, module: Module, lr: float, **kwargs) -> "Optimizer":
        """Convenience constructor wiring up parameters and projection."""
        return cls(module.parameters(), lr=lr, modules=[module], **kwargs)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        self._update()
        for module in self.modules:
            module.project()

    def _update(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0, modules: Optional[Sequence[Module]] = None):
        super().__init__(parameters, lr, modules)
        if not (0.0 <= momentum < 1.0):
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def _update(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if self.momentum > 0:
                v *= self.momentum
                v -= self.lr * p.grad
                p.value += v
            else:
                p.value -= self.lr * p.grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015); the default for all AE training here."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0, modules: Optional[Sequence[Module]] = None):
        super().__init__(parameters, lr, modules)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._t = 0

    def _update(self) -> None:
        self._t += 1
        b1t = 1.0 - self.beta1**self._t
        b2t = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.value
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / b1t
            v_hat = v / b2t
            p.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

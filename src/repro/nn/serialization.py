"""Saving and loading model weights.

AE-SZ keeps the trained network *outside* the compressed stream (paper
Section IV-B: the model is reused across time steps and simulations), so the
library persists weights as ``.npz`` archives keyed by parameter path.
"""

from __future__ import annotations

import io
import os
from typing import Dict, Union

import numpy as np

from repro.nn.module import Module

PathLike = Union[str, os.PathLike]


def state_dict(module: Module) -> Dict[str, np.ndarray]:
    """Collect a copy of every parameter value keyed by its qualified name."""
    return {name: np.array(p.value, copy=True) for name, p in module.named_parameters()}


def load_state_dict(module: Module, state: Dict[str, np.ndarray], strict: bool = True) -> None:
    """Load parameter values into ``module`` (shapes must match)."""
    params = dict(module.named_parameters())
    missing = set(params) - set(state)
    unexpected = set(state) - set(params)
    if strict and (missing or unexpected):
        raise KeyError(
            f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
        )
    for name, value in state.items():
        if name not in params:
            continue
        param = params[name]
        value = np.asarray(value, dtype=np.float64)
        if value.shape != param.value.shape:
            raise ValueError(
                f"shape mismatch for {name!r}: expected {param.value.shape}, got {value.shape}"
            )
        param.value[...] = value


def save_module(module: Module, path: PathLike) -> None:
    """Serialize a module's parameters to an ``.npz`` file."""
    np.savez_compressed(path, **state_dict(module))


def load_module_state(module: Module, path: PathLike, strict: bool = True) -> None:
    """Load ``.npz`` parameters previously written by :func:`save_module`."""
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    load_state_dict(module, state, strict=strict)


def load_embedded_model(model, blob: bytes) -> None:
    """Load weights from an in-archive model blob onto ``model`` (via its ``load``).

    A flipped byte in the embedded ``.npz`` makes ``np.load`` fail in assorted
    ways (zipfile/seek/struct errors); map them all to the library's
    ``ValueError("corrupt ...")`` convention.
    """
    import io

    try:
        model.load(io.BytesIO(blob))
    except Exception as exc:
        raise ValueError(f"corrupt archive: embedded model unreadable ({exc})") from None


def dump_model_blob(model) -> bytes:
    """Serialize a model (via its ``save``) into the bytes an archive embeds."""
    import io

    buf = io.BytesIO()
    model.save(buf)
    return buf.getvalue()


def fingerprint_with_norm(model) -> str:
    """Model fingerprint including its normalization range (the archive identity)."""
    return model_fingerprint(model, extra={"norm_min": model.norm_min,
                                           "norm_max": model.norm_max})


def check_model_fingerprint(model, expected: "str | None") -> None:
    """Refuse a model whose fingerprint differs from the one an archive recorded."""
    got = fingerprint_with_norm(model)
    if expected is not None and got != expected:
        raise ValueError(
            f"model mismatch: archive was written with model sha256 {expected}, "
            f"got {got}"
        )


def restore_archived_model(build, meta: dict, blobs: Dict[str, bytes],
                           autoencoder=None, model=None, codec_label: str = "this"):
    """Shared restore flow for model-backed codecs' ``from_archive_state``.

    Priority: an explicit ``autoencoder`` instance, then ``model`` (a saved
    ``.npz`` path, loaded onto a freshly ``build()``-built architecture), then
    the archive's embedded ``model`` blob.  Whatever the source, the result is
    fingerprint-checked against the archive before use.
    """
    expected = meta.get("model_sha256")
    if autoencoder is None:
        if model is not None:
            autoencoder = build()
            autoencoder.load(model)
        elif "model" in blobs:
            autoencoder = build()
            load_embedded_model(autoencoder, blobs["model"])
        else:
            raise ValueError(
                f"{codec_label} archive has no embedded model; pass model=<path.npz> "
                f"or autoencoder=... (expected sha256 {expected})"
            )
    check_model_fingerprint(autoencoder, expected)
    return autoencoder


def model_fingerprint(module: Module, extra: Dict[str, float] | None = None) -> str:
    """Deterministic sha256 over a module's parameters (plus optional scalars).

    Used by the archive format: AE-based archives record the fingerprint of the
    model they were written with, so decompression can refuse a mismatched
    model instead of silently reconstructing garbage.  Parameters are hashed as
    name + shape + little-endian float64 bytes, in sorted name order.
    """
    import hashlib

    digest = hashlib.sha256()
    for name, value in sorted(state_dict(module).items()):
        arr = np.ascontiguousarray(value, dtype="<f8")
        digest.update(name.encode())
        digest.update(repr(arr.shape).encode())
        digest.update(arr.tobytes())
    for key, value in sorted((extra or {}).items()):
        digest.update(f"{key}={float(value)!r}".encode())
    return digest.hexdigest()

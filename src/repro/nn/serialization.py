"""Saving and loading model weights.

AE-SZ keeps the trained network *outside* the compressed stream (paper
Section IV-B: the model is reused across time steps and simulations), so the
library persists weights as ``.npz`` archives keyed by parameter path.
"""

from __future__ import annotations

import io
import os
from typing import Dict, Union

import numpy as np

from repro.nn.module import Module

PathLike = Union[str, os.PathLike]


def state_dict(module: Module) -> Dict[str, np.ndarray]:
    """Collect a copy of every parameter value keyed by its qualified name."""
    return {name: np.array(p.value, copy=True) for name, p in module.named_parameters()}


def load_state_dict(module: Module, state: Dict[str, np.ndarray], strict: bool = True) -> None:
    """Load parameter values into ``module`` (shapes must match)."""
    params = dict(module.named_parameters())
    missing = set(params) - set(state)
    unexpected = set(state) - set(params)
    if strict and (missing or unexpected):
        raise KeyError(
            f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
        )
    for name, value in state.items():
        if name not in params:
            continue
        param = params[name]
        value = np.asarray(value, dtype=np.float64)
        if value.shape != param.value.shape:
            raise ValueError(
                f"shape mismatch for {name!r}: expected {param.value.shape}, got {value.shape}"
            )
        param.value[...] = value


def save_module(module: Module, path: PathLike) -> None:
    """Serialize a module's parameters to an ``.npz`` file."""
    np.savez_compressed(path, **state_dict(module))


def load_module_state(module: Module, path: PathLike, strict: bool = True) -> None:
    """Load ``.npz`` parameters previously written by :func:`save_module`."""
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    load_state_dict(module, state, strict=strict)

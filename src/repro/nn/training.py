"""Minimal training loop shared by all autoencoder models."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.optim import Adam, Optimizer
from repro.utils.rng import SeedLike, as_rng


def iterate_minibatches(
    data: np.ndarray,
    batch_size: int,
    shuffle: bool = True,
    rng: SeedLike = None,
    drop_last: bool = False,
) -> Iterator[np.ndarray]:
    """Yield mini-batches of rows of ``data`` (first axis is the sample axis)."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    n = data.shape[0]
    indices = np.arange(n)
    if shuffle:
        as_rng(rng).shuffle(indices)
    for start in range(0, n, batch_size):
        batch_idx = indices[start : start + batch_size]
        if drop_last and len(batch_idx) < batch_size:
            break
        yield data[batch_idx]


@dataclass
class TrainingConfig:
    """Hyper-parameters for :class:`Trainer`.

    The paper trains every AE-SZ autoencoder for 100 epochs on a V100 GPU; the
    pure-NumPy defaults here are much smaller so that benchmarks run on CPU,
    but all paper values remain expressible.
    """

    epochs: int = 5
    batch_size: int = 32
    learning_rate: float = 1e-3
    shuffle: bool = True
    seed: Optional[int] = 0
    verbose: bool = False
    log_every: int = 1

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")


@dataclass
class TrainingHistory:
    """Per-epoch training metrics returned by :meth:`Trainer.fit`."""

    epoch_losses: List[float] = field(default_factory=list)
    epoch_times: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")

    @property
    def total_time(self) -> float:
        return float(sum(self.epoch_times))


class Trainer:
    """Drive training of a model exposing ``train_step(batch) -> float``.

    All autoencoder classes in :mod:`repro.autoencoders` implement
    ``train_step``; the trainer only handles batching, the optimizer step and
    bookkeeping so that custom losses (sliced-Wasserstein, KL, MMD, ...) stay
    inside the model classes.
    """

    def __init__(self, model, optimizer: Optional[Optimizer] = None,
                 config: Optional[TrainingConfig] = None):
        self.model = model
        self.config = config or TrainingConfig()
        if optimizer is None:
            optimizer = Adam.for_module(model, lr=self.config.learning_rate)
        self.optimizer = optimizer

    def fit(self, data: np.ndarray, callback: Optional[Callable[[int, float], None]] = None
            ) -> TrainingHistory:
        """Train on ``data`` (sample axis first) and return the loss history."""
        data = np.asarray(data, dtype=np.float64)
        if data.shape[0] == 0:
            raise ValueError("training data is empty")
        history = TrainingHistory()
        rng = as_rng(self.config.seed)
        self.model.train(True)
        for epoch in range(self.config.epochs):
            start = time.perf_counter()
            losses: List[float] = []
            for batch in iterate_minibatches(
                data, self.config.batch_size, shuffle=self.config.shuffle, rng=rng
            ):
                self.optimizer.zero_grad()
                loss = float(self.model.train_step(batch))
                self.optimizer.step()
                losses.append(loss)
            epoch_loss = float(np.mean(losses)) if losses else float("nan")
            elapsed = time.perf_counter() - start
            history.epoch_losses.append(epoch_loss)
            history.epoch_times.append(elapsed)
            if callback is not None:
                callback(epoch, epoch_loss)
            if self.config.verbose and (epoch % self.config.log_every == 0):
                print(f"[trainer] epoch {epoch + 1}/{self.config.epochs} "
                      f"loss={epoch_loss:.6f} ({elapsed:.2f}s)")
        self.model.train(False)
        return history

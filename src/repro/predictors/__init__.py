"""Data predictors used by AE-SZ and the baseline compressors."""

from repro.predictors.lorenzo import (
    LorenzoPredictor,
    lorenzo_predict,
    lorenzo_transform,
    lorenzo_inverse_transform,
    second_order_lorenzo_transform,
    second_order_lorenzo_inverse,
)
from repro.predictors.mean import MeanPredictor
from repro.predictors.regression import LinearRegressionPredictor
from repro.predictors.interpolation import SplineInterpolationPredictor

__all__ = [
    "LorenzoPredictor",
    "lorenzo_predict",
    "lorenzo_transform",
    "lorenzo_inverse_transform",
    "second_order_lorenzo_transform",
    "second_order_lorenzo_inverse",
    "MeanPredictor",
    "LinearRegressionPredictor",
    "SplineInterpolationPredictor",
]

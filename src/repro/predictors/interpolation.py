"""Multi-level spline-interpolation prediction (the SZinterp / SZ3 approach).

SZinterp [Zhao et al., ICDE 2021] replaces SZ's blockwise predictors by a
global, level-by-level interpolation: a coarse anchor grid is stored first and
every refinement level predicts the mid-points along one dimension at a time by
cubic (or linear, near boundaries) interpolation of already-reconstructed
points.  Prediction therefore only ever uses reconstructed values, so the
compressor and the decompressor stay in lockstep and the error bound holds.

The implementation is vectorized per (level, dimension) pass; each pass is one
fancy-indexing gather plus one call to the linear-scale quantizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.predictors.lorenzo import lorenzo_inverse_transform, lorenzo_transform
from repro.quantization.linear import (
    DEFAULT_NUM_BINS,
    dequantize_prediction_errors,
    quantize_prediction_errors,
)
from repro.quantization.uniform import UniformQuantizer
from repro.utils.validation import ensure_dims, ensure_positive

MAX_ANCHOR_STRIDE = 64


@dataclass
class InterpolationPlan:
    """The deterministic traversal shared by encoder and decoder."""

    shape: Tuple[int, ...]
    anchor_stride: int
    passes: List[Tuple[int, int]] = field(default_factory=list)  # (stride, dim)

    @classmethod
    def for_shape(cls, shape: Sequence[int], max_anchor_stride: int = MAX_ANCHOR_STRIDE
                  ) -> "InterpolationPlan":
        shape = tuple(int(s) for s in shape)
        ensure_dims(len(shape), (1, 2, 3), "data")
        longest = max(shape)
        stride = 1
        while stride * 2 < longest and stride * 2 <= max_anchor_stride:
            stride *= 2
        passes: List[Tuple[int, int]] = []
        s = stride
        while s >= 1:
            for dim in range(len(shape)):
                passes.append((s, dim))
            s //= 2
        return cls(shape=shape, anchor_stride=stride * 2 if stride > 1 or longest > 1 else 1,
                   passes=passes)


def _anchor_slices(shape: Tuple[int, ...], stride: int) -> Tuple[slice, ...]:
    return tuple(slice(0, None, stride) for _ in shape)


def _target_grids(shape: Tuple[int, ...], stride: int, dim: int) -> List[np.ndarray]:
    """Index vectors (per dimension) of the points predicted in one pass."""
    grids = []
    for d, n in enumerate(shape):
        if d == dim:
            idx = np.arange(stride, n, 2 * stride)
        elif d < dim:
            idx = np.arange(0, n, stride)
        else:
            idx = np.arange(0, n, 2 * stride)
        grids.append(idx)
    return grids


def _interp_prediction(recon: np.ndarray, idx_grids: List[np.ndarray], dim: int,
                       stride: int) -> np.ndarray:
    """Cubic/linear interpolation of target points along ``dim`` from ``recon``."""
    shape = recon.shape
    n = shape[dim]
    target_idx = idx_grids[dim]

    mesh = np.meshgrid(*idx_grids, indexing="ij")

    def take(offset_steps: int) -> Tuple[np.ndarray, np.ndarray]:
        """Values at target ± offset_steps*stride along dim, plus validity mask."""
        idx = mesh[dim] + offset_steps * stride
        valid = (idx >= 0) & (idx < n)
        idx_clipped = np.clip(idx, 0, n - 1)
        gather = list(mesh)
        gather[dim] = idx_clipped
        return recon[tuple(gather)], valid

    left1, vl1 = take(-1)
    right1, vr1 = take(+1)
    left2, vl2 = take(-3)
    right2, vr2 = take(+3)

    # Default: copy the left neighbour (always valid because targets start at
    # index ``stride``).
    pred = left1.copy()
    # Linear where both first neighbours exist.
    lin_mask = vl1 & vr1
    pred[lin_mask] = 0.5 * (left1[lin_mask] + right1[lin_mask])
    # Cubic where all four neighbours exist.
    cub_mask = lin_mask & vl2 & vr2
    pred[cub_mask] = (
        -left2[cub_mask] + 9.0 * left1[cub_mask] + 9.0 * right1[cub_mask] - right2[cub_mask]
    ) / 16.0
    return pred


@dataclass
class InterpolationEncoding:
    """Everything the decoder needs (besides shape/error bound)."""

    anchor_codes: np.ndarray
    codes: np.ndarray
    unpredictable: np.ndarray
    reconstructed: np.ndarray


def multilevel_interpolation_encode(
    data: np.ndarray,
    error_bound: float,
    num_bins: int = DEFAULT_NUM_BINS,
) -> InterpolationEncoding:
    """Encode ``data`` with anchor storage + level-by-level interpolation."""
    ensure_positive(error_bound, "error_bound")
    data = np.asarray(data, dtype=np.float64)
    plan = InterpolationPlan.for_shape(data.shape)
    recon = np.zeros_like(data)

    # --- anchors: uniform-quantized, Lorenzo-differenced integer grid --------
    quantizer = UniformQuantizer(error_bound)
    anchor_view = data[_anchor_slices(data.shape, plan.anchor_stride)]
    anchor_q = quantizer.quantize(anchor_view)
    anchor_codes = lorenzo_transform(anchor_q)
    recon[_anchor_slices(data.shape, plan.anchor_stride)] = quantizer.dequantize(anchor_q)

    code_chunks: List[np.ndarray] = []
    unpred_chunks: List[np.ndarray] = []
    for stride, dim in plan.passes:
        idx_grids = _target_grids(data.shape, stride, dim)
        if any(g.size == 0 for g in idx_grids):
            continue
        pred = _interp_prediction(recon, idx_grids, dim, stride)
        mesh = np.meshgrid(*idx_grids, indexing="ij")
        target = data[tuple(mesh)]
        qr = quantize_prediction_errors(target, pred, error_bound, num_bins)
        recon[tuple(mesh)] = qr.reconstructed
        code_chunks.append(qr.codes.ravel())
        unpred_chunks.append(qr.unpredictable)

    codes = np.concatenate(code_chunks) if code_chunks else np.zeros(0, dtype=np.int64)
    unpred = np.concatenate(unpred_chunks) if unpred_chunks else np.zeros(0)
    return InterpolationEncoding(
        anchor_codes=anchor_codes, codes=codes, unpredictable=unpred, reconstructed=recon
    )


def multilevel_interpolation_decode(
    anchor_codes: np.ndarray,
    codes: np.ndarray,
    unpredictable: np.ndarray,
    shape: Sequence[int],
    error_bound: float,
    num_bins: int = DEFAULT_NUM_BINS,
) -> np.ndarray:
    """Invert :func:`multilevel_interpolation_encode`."""
    ensure_positive(error_bound, "error_bound")
    shape = tuple(int(s) for s in shape)
    plan = InterpolationPlan.for_shape(shape)
    recon = np.zeros(shape, dtype=np.float64)

    quantizer = UniformQuantizer(error_bound)
    anchor_q = lorenzo_inverse_transform(np.asarray(anchor_codes, dtype=np.int64))
    recon[_anchor_slices(shape, plan.anchor_stride)] = quantizer.dequantize(anchor_q)

    codes = np.asarray(codes, dtype=np.int64)
    unpredictable = np.asarray(unpredictable, dtype=np.float64)
    code_pos = 0
    unpred_pos = 0
    for stride, dim in plan.passes:
        idx_grids = _target_grids(shape, stride, dim)
        if any(g.size == 0 for g in idx_grids):
            continue
        pred = _interp_prediction(recon, idx_grids, dim, stride)
        n_points = pred.size
        chunk = codes[code_pos : code_pos + n_points].reshape(pred.shape)
        code_pos += n_points
        n_unpred = int(np.count_nonzero(chunk == 0))
        u_chunk = unpredictable[unpred_pos : unpred_pos + n_unpred]
        unpred_pos += n_unpred
        values = dequantize_prediction_errors(chunk, pred, u_chunk, error_bound, num_bins)
        mesh = np.meshgrid(*idx_grids, indexing="ij")
        recon[tuple(mesh)] = values
    if code_pos != codes.size:
        raise ValueError("interpolation code stream length mismatch")
    return recon


class SplineInterpolationPredictor:
    """Thin OO facade over the functional encode/decode API."""

    def __init__(self, num_bins: int = DEFAULT_NUM_BINS):
        self.num_bins = int(num_bins)

    def encode(self, data: np.ndarray, error_bound: float) -> InterpolationEncoding:
        return multilevel_interpolation_encode(data, error_bound, self.num_bins)

    def decode(self, encoding_or_parts, shape, error_bound: float) -> np.ndarray:
        if isinstance(encoding_or_parts, InterpolationEncoding):
            enc = encoding_or_parts
            return multilevel_interpolation_decode(
                enc.anchor_codes, enc.codes, enc.unpredictable, shape, error_bound, self.num_bins
            )
        anchor_codes, codes, unpredictable = encoding_or_parts
        return multilevel_interpolation_decode(
            anchor_codes, codes, unpredictable, shape, error_bound, self.num_bins
        )

"""Multi-level spline-interpolation prediction (the SZinterp / SZ3 approach).

SZinterp [Zhao et al., ICDE 2021] replaces SZ's blockwise predictors by a
global, level-by-level interpolation: a coarse anchor grid is stored first and
every refinement level predicts the mid-points along one dimension at a time by
cubic (or linear, near boundaries) interpolation of already-reconstructed
points.  Prediction therefore only ever uses reconstructed values, so the
compressor and the decompressor stay in lockstep and the error bound holds.

The implementation is vectorized per (level, dimension) pass; each pass is one
fancy-indexing gather plus one call to the linear-scale quantizer.  A
per-point reference encoder (:func:`multilevel_interpolation_encode_scalar`)
is retained and proven bit-identical by the regression suite.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.predictors.lorenzo import lorenzo_inverse_transform, lorenzo_transform
from repro.quantization.linear import (
    DEFAULT_NUM_BINS,
    UNPREDICTABLE_CODE,
    dequantize_prediction_errors,
    quantize_prediction_errors,
)
from repro.quantization.uniform import UniformQuantizer
from repro.utils.validation import ensure_dims, ensure_positive

MAX_ANCHOR_STRIDE = 64


@dataclass
class InterpolationPlan:
    """The deterministic traversal shared by encoder and decoder."""

    shape: Tuple[int, ...]
    anchor_stride: int
    passes: List[Tuple[int, int]] = field(default_factory=list)  # (stride, dim)

    @classmethod
    def for_shape(cls, shape: Sequence[int], max_anchor_stride: int = MAX_ANCHOR_STRIDE
                  ) -> "InterpolationPlan":
        shape = tuple(int(s) for s in shape)
        ensure_dims(len(shape), (1, 2, 3), "data")
        longest = max(shape)
        stride = 1
        while stride * 2 < longest and stride * 2 <= max_anchor_stride:
            stride *= 2
        passes: List[Tuple[int, int]] = []
        s = stride
        while s >= 1:
            for dim in range(len(shape)):
                passes.append((s, dim))
            s //= 2
        return cls(shape=shape, anchor_stride=stride * 2 if stride > 1 or longest > 1 else 1,
                   passes=passes)


def _anchor_slices(shape: Tuple[int, ...], stride: int) -> Tuple[slice, ...]:
    return tuple(slice(0, None, stride) for _ in shape)


def _target_grids(shape: Tuple[int, ...], stride: int, dim: int) -> List[np.ndarray]:
    """Index vectors (per dimension) of the points predicted in one pass."""
    grids = []
    for d, n in enumerate(shape):
        if d == dim:
            idx = np.arange(stride, n, 2 * stride)
        elif d < dim:
            idx = np.arange(0, n, stride)
        else:
            idx = np.arange(0, n, 2 * stride)
        grids.append(idx)
    return grids


def _interp_prediction(recon: np.ndarray, idx_grids: List[np.ndarray], dim: int,
                       stride: int) -> np.ndarray:
    """Cubic/linear interpolation of target points along ``dim`` from ``recon``."""
    shape = recon.shape
    n = shape[dim]
    target_idx = idx_grids[dim]

    mesh = np.meshgrid(*idx_grids, indexing="ij")

    def take(offset_steps: int) -> Tuple[np.ndarray, np.ndarray]:
        """Values at target ± offset_steps*stride along dim, plus validity mask."""
        idx = mesh[dim] + offset_steps * stride
        valid = (idx >= 0) & (idx < n)
        idx_clipped = np.clip(idx, 0, n - 1)
        gather = list(mesh)
        gather[dim] = idx_clipped
        return recon[tuple(gather)], valid

    left1, vl1 = take(-1)
    right1, vr1 = take(+1)
    left2, vl2 = take(-3)
    right2, vr2 = take(+3)

    # Default: copy the left neighbour (always valid because targets start at
    # index ``stride``).
    pred = left1.copy()
    # Linear where both first neighbours exist.
    lin_mask = vl1 & vr1
    pred[lin_mask] = 0.5 * (left1[lin_mask] + right1[lin_mask])
    # Cubic where all four neighbours exist.
    cub_mask = lin_mask & vl2 & vr2
    pred[cub_mask] = (
        -left2[cub_mask] + 9.0 * left1[cub_mask] + 9.0 * right1[cub_mask] - right2[cub_mask]
    ) / 16.0
    return pred


@dataclass
class InterpolationEncoding:
    """Everything the decoder needs (besides shape/error bound)."""

    anchor_codes: np.ndarray
    codes: np.ndarray
    unpredictable: np.ndarray
    reconstructed: np.ndarray


def multilevel_interpolation_encode(
    data: np.ndarray,
    error_bound: float,
    num_bins: int = DEFAULT_NUM_BINS,
) -> InterpolationEncoding:
    """Encode ``data`` with anchor storage + level-by-level interpolation."""
    ensure_positive(error_bound, "error_bound")
    data = np.asarray(data, dtype=np.float64)
    plan = InterpolationPlan.for_shape(data.shape)
    recon = np.zeros_like(data)

    # --- anchors: uniform-quantized, Lorenzo-differenced integer grid --------
    quantizer = UniformQuantizer(error_bound)
    anchor_view = data[_anchor_slices(data.shape, plan.anchor_stride)]
    anchor_q = quantizer.quantize(anchor_view)
    anchor_codes = lorenzo_transform(anchor_q)
    recon[_anchor_slices(data.shape, plan.anchor_stride)] = quantizer.dequantize(anchor_q)

    code_chunks: List[np.ndarray] = []
    unpred_chunks: List[np.ndarray] = []
    for stride, dim in plan.passes:
        idx_grids = _target_grids(data.shape, stride, dim)
        if any(g.size == 0 for g in idx_grids):
            continue
        pred = _interp_prediction(recon, idx_grids, dim, stride)
        mesh = np.meshgrid(*idx_grids, indexing="ij")
        target = data[tuple(mesh)]
        qr = quantize_prediction_errors(target, pred, error_bound, num_bins)
        recon[tuple(mesh)] = qr.reconstructed
        code_chunks.append(qr.codes.ravel())
        unpred_chunks.append(qr.unpredictable)

    codes = np.concatenate(code_chunks) if code_chunks else np.zeros(0, dtype=np.int64)
    unpred = np.concatenate(unpred_chunks) if unpred_chunks else np.zeros(0)
    return InterpolationEncoding(
        anchor_codes=anchor_codes, codes=codes, unpredictable=unpred, reconstructed=recon
    )


def _quantize_point(orig: float, pred: float, error_bound: float, num_bins: int
                    ) -> Tuple[int, float, Optional[float]]:
    """Scalar mirror of :func:`quantize_prediction_errors` for one value.

    Same arithmetic in the same order (Python's ``round`` is banker's
    rounding, matching ``np.rint``), including the ``1 + 1e-12`` rounding
    tolerances.  Returns ``(code, reconstructed, unpredictable_literal)``
    where the literal is ``None`` for predictable points.
    """
    step = 2.0 * error_bound
    center = num_bins // 2
    tol = error_bound * (1 + 1e-12)
    raw = round((orig - pred) / step)
    code = raw + center
    recon = pred + step * raw
    if 1 <= code < num_bins and abs(recon - orig) <= tol:
        return code, recon, None
    # The vectorized quantizer snaps with ``np.rint``, which keeps the sign
    # of a zero quantum; Python's ``round`` returns an int, so restore it.
    snapped_q = float(round(orig / step))
    if snapped_q == 0.0:
        snapped_q = math.copysign(0.0, orig / step)
    snapped = snapped_q * step
    if abs(snapped - orig) > tol:
        snapped = orig
    return UNPREDICTABLE_CODE, snapped, snapped


def _interp_point_prediction(recon: np.ndarray, coords: Tuple[int, ...], dim: int,
                             stride: int) -> float:
    """Per-point mirror of :func:`_interp_prediction` for one target."""
    n = recon.shape[dim]

    def take(offset_steps: int) -> Tuple[float, bool]:
        idx = coords[dim] + offset_steps * stride
        clipped = min(max(idx, 0), n - 1)
        gather = coords[:dim] + (clipped,) + coords[dim + 1:]
        return float(recon[gather]), 0 <= idx < n

    left1, vl1 = take(-1)
    right1, vr1 = take(+1)
    left2, vl2 = take(-3)
    right2, vr2 = take(+3)
    pred = left1
    if vl1 and vr1:
        pred = 0.5 * (left1 + right1)
        if vl2 and vr2:
            pred = (-left2 + 9.0 * left1 + 9.0 * right1 - right2) / 16.0
    return pred


def multilevel_interpolation_encode_scalar(
    data: np.ndarray,
    error_bound: float,
    num_bins: int = DEFAULT_NUM_BINS,
) -> InterpolationEncoding:
    """Per-point reference for :func:`multilevel_interpolation_encode`.

    Everything runs one point at a time in plain Python arithmetic: anchor
    quantization, the inclusion–exclusion form of the integer Lorenzo
    difference, the cubic/linear neighbour prediction and the linear-scale
    quantizer.  Bit-identical to the vectorized encoder for finite inputs
    (the regression suite asserts archive-level byte equality); kept as
    executable documentation of the traversal order.
    """
    ensure_positive(error_bound, "error_bound")
    data = np.asarray(data, dtype=np.float64)
    plan = InterpolationPlan.for_shape(data.shape)
    recon = np.zeros_like(data)
    step = 2.0 * error_bound

    anchor_view = data[_anchor_slices(data.shape, plan.anchor_stride)]
    anchor_q = np.zeros(anchor_view.shape, dtype=np.int64)
    recon_anchor = np.zeros(anchor_view.shape, dtype=np.float64)
    for idx in np.ndindex(*anchor_view.shape):
        q = round(float(anchor_view[idx]) / step)
        anchor_q[idx] = q
        recon_anchor[idx] = float(q) * step
    # First-order Lorenzo difference, written as the per-point
    # inclusion–exclusion over the 2^ndim causal corner neighbours.
    anchor_codes = np.zeros_like(anchor_q)
    for idx in np.ndindex(*anchor_q.shape):
        total = 0
        for offs in itertools.product((0, 1), repeat=anchor_q.ndim):
            src = tuple(i - o for i, o in zip(idx, offs))
            if any(s < 0 for s in src):
                continue
            total += (-1) ** sum(offs) * int(anchor_q[src])
        anchor_codes[idx] = total
    recon[_anchor_slices(data.shape, plan.anchor_stride)] = recon_anchor

    codes_list: List[int] = []
    unpred_list: List[float] = []
    for stride, dim in plan.passes:
        idx_grids = _target_grids(data.shape, stride, dim)
        if any(g.size == 0 for g in idx_grids):
            continue
        # Neighbours sit at even multiples of ``stride`` along ``dim`` and
        # targets at odd ones, so no target in a pass reads another target's
        # freshly written value: the in-place scan equals the batched pass.
        for mi in np.ndindex(*(g.size for g in idx_grids)):
            coords = tuple(int(idx_grids[d][mi[d]]) for d in range(len(idx_grids)))
            pred = _interp_point_prediction(recon, coords, dim, stride)
            code, value, literal = _quantize_point(float(data[coords]), pred,
                                                   error_bound, num_bins)
            codes_list.append(code)
            recon[coords] = value
            if literal is not None:
                unpred_list.append(literal)

    return InterpolationEncoding(
        anchor_codes=anchor_codes,
        codes=np.asarray(codes_list, dtype=np.int64),
        unpredictable=np.asarray(unpred_list, dtype=np.float64),
        reconstructed=recon,
    )


def multilevel_interpolation_decode(
    anchor_codes: np.ndarray,
    codes: np.ndarray,
    unpredictable: np.ndarray,
    shape: Sequence[int],
    error_bound: float,
    num_bins: int = DEFAULT_NUM_BINS,
) -> np.ndarray:
    """Invert :func:`multilevel_interpolation_encode`."""
    ensure_positive(error_bound, "error_bound")
    shape = tuple(int(s) for s in shape)
    plan = InterpolationPlan.for_shape(shape)
    recon = np.zeros(shape, dtype=np.float64)

    quantizer = UniformQuantizer(error_bound)
    anchor_q = lorenzo_inverse_transform(np.asarray(anchor_codes, dtype=np.int64))
    recon[_anchor_slices(shape, plan.anchor_stride)] = quantizer.dequantize(anchor_q)

    codes = np.asarray(codes, dtype=np.int64)
    unpredictable = np.asarray(unpredictable, dtype=np.float64)
    code_pos = 0
    unpred_pos = 0
    for stride, dim in plan.passes:
        idx_grids = _target_grids(shape, stride, dim)
        if any(g.size == 0 for g in idx_grids):
            continue
        pred = _interp_prediction(recon, idx_grids, dim, stride)
        n_points = pred.size
        chunk = codes[code_pos : code_pos + n_points].reshape(pred.shape)
        code_pos += n_points
        n_unpred = int(np.count_nonzero(chunk == 0))
        u_chunk = unpredictable[unpred_pos : unpred_pos + n_unpred]
        unpred_pos += n_unpred
        values = dequantize_prediction_errors(chunk, pred, u_chunk, error_bound, num_bins)
        mesh = np.meshgrid(*idx_grids, indexing="ij")
        recon[tuple(mesh)] = values
    if code_pos != codes.size:
        raise ValueError("interpolation code stream length mismatch")
    return recon


class SplineInterpolationPredictor:
    """Thin OO facade over the functional encode/decode API."""

    def __init__(self, num_bins: int = DEFAULT_NUM_BINS):
        self.num_bins = int(num_bins)

    def encode(self, data: np.ndarray, error_bound: float) -> InterpolationEncoding:
        return multilevel_interpolation_encode(data, error_bound, self.num_bins)

    def decode(self, encoding_or_parts, shape, error_bound: float) -> np.ndarray:
        if isinstance(encoding_or_parts, InterpolationEncoding):
            enc = encoding_or_parts
            return multilevel_interpolation_decode(
                enc.anchor_codes, enc.codes, enc.unpredictable, shape, error_bound, self.num_bins
            )
        anchor_codes, codes, unpredictable = encoding_or_parts
        return multilevel_interpolation_decode(
            anchor_codes, codes, unpredictable, shape, error_bound, self.num_bins
        )

"""Lorenzo predictors (first- and second-order).

Two complementary views are provided:

* :func:`lorenzo_predict` — the classic neighbour-sum prediction used to score
  the Lorenzo predictor against the autoencoder during AE-SZ's per-block
  predictor selection (Algorithm 1, line 7) and to reproduce the prediction
  error distributions of Fig. 7.

* :func:`lorenzo_transform` / :func:`lorenzo_inverse_transform` — the integer
  "dual-quantization" formulation used for actual encoding: values are first
  snapped onto a uniform ``2e`` grid, the (invertible) Lorenzo finite-difference
  operator is applied to the integer grid indices, and decompression inverts it
  exactly with cumulative sums.  This is the same trick used by cuSZ / SZauto
  and guarantees the error bound while keeping every step vectorized.

The second-order variants implement the higher-order differences used by the
SZauto baseline.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.validation import ensure_dims


def lorenzo_predict(data: np.ndarray) -> np.ndarray:
    """First-order Lorenzo prediction from *original* causal neighbours.

    For 2D, point (i, j) is predicted by ``d[i,j-1] + d[i-1,j] - d[i-1,j-1]``;
    the 3D version uses the 7-neighbour formula from the paper.  Out-of-range
    neighbours are treated as 0, matching SZ's behaviour at block borders.
    """
    data = np.asarray(data, dtype=np.float64)
    ensure_dims(data.ndim, (1, 2, 3), "data")
    padded = np.pad(data, [(1, 0)] * data.ndim, mode="constant")
    if data.ndim == 1:
        return padded[:-1]
    if data.ndim == 2:
        return padded[1:, :-1] + padded[:-1, 1:] - padded[:-1, :-1]
    return (
        padded[:-1, 1:, 1:]
        + padded[1:, :-1, 1:]
        + padded[1:, 1:, :-1]
        - padded[:-1, :-1, 1:]
        - padded[:-1, 1:, :-1]
        - padded[1:, :-1, :-1]
        + padded[:-1, :-1, :-1]
    )


def lorenzo_transform(grid: np.ndarray) -> np.ndarray:
    """Apply the first-order Lorenzo difference operator to an integer grid.

    Equivalent to ``grid - lorenzo_predict(grid)`` but exact in integer
    arithmetic; inverted by :func:`lorenzo_inverse_transform`.
    """
    grid = np.asarray(grid)
    ensure_dims(grid.ndim, (1, 2, 3), "grid")
    out = grid.copy()
    for axis in range(grid.ndim):
        out = np.diff(out, axis=axis, prepend=np.zeros_like(np.take(out, [0], axis=axis)))
    return out


def lorenzo_inverse_transform(diffs: np.ndarray) -> np.ndarray:
    """Invert :func:`lorenzo_transform` with cumulative sums along each axis."""
    diffs = np.asarray(diffs)
    ensure_dims(diffs.ndim, (1, 2, 3), "diffs")
    out = diffs.copy()
    for axis in range(diffs.ndim):
        out = np.cumsum(out, axis=axis)
    return out


def second_order_lorenzo_transform(grid: np.ndarray) -> np.ndarray:
    """Second-order Lorenzo differences (SZauto's higher-order predictor)."""
    grid = np.asarray(grid)
    ensure_dims(grid.ndim, (1, 2, 3), "grid")
    out = grid.copy()
    for axis in range(grid.ndim):
        for _ in range(2):
            out = np.diff(out, axis=axis, prepend=np.zeros_like(np.take(out, [0], axis=axis)))
    return out


def second_order_lorenzo_inverse(diffs: np.ndarray) -> np.ndarray:
    """Invert :func:`second_order_lorenzo_transform`."""
    diffs = np.asarray(diffs)
    ensure_dims(diffs.ndim, (1, 2, 3), "diffs")
    out = diffs.copy()
    for axis in range(diffs.ndim):
        for _ in range(2):
            out = np.cumsum(out, axis=axis)
    return out


def second_order_lorenzo_predict(data: np.ndarray) -> np.ndarray:
    """Second-order Lorenzo prediction from original neighbours (for scoring)."""
    data = np.asarray(data, dtype=np.float64)
    return data - second_order_lorenzo_transform(data)


class LorenzoPredictor:
    """Object wrapper exposing the classic and mean-Lorenzo block predictions.

    AE-SZ selects, per block, between the classic Lorenzo prediction and the
    block-mean prediction (Section IV-A): if a block is better predicted by its
    mean value, the mean is used and stored losslessly.
    """

    def __init__(self, use_mean_fallback: bool = True):
        self.use_mean_fallback = bool(use_mean_fallback)

    def predict(self, block: np.ndarray) -> Tuple[np.ndarray, dict]:
        """Return the better of classic-Lorenzo / mean prediction and metadata."""
        block = np.asarray(block, dtype=np.float64)
        classic = lorenzo_predict(block)
        if not self.use_mean_fallback:
            return classic, {"mode": "classic"}
        mean = float(block.mean())
        mean_pred = np.full_like(block, mean)
        if np.abs(block - mean_pred).sum() < np.abs(block - classic).sum():
            return mean_pred, {"mode": "mean", "mean": mean}
        return classic, {"mode": "classic"}

    def loss(self, block: np.ndarray) -> float:
        """Element-wise L1 loss of the (best) Lorenzo prediction for a block."""
        pred, _ = self.predict(block)
        block = np.asarray(block, dtype=np.float64)
        return float(np.abs(block - pred).mean())

"""Block-mean predictor (the "mean-Lorenzo" fallback of AE-SZ)."""

from __future__ import annotations

from typing import Tuple

import numpy as np


class MeanPredictor:
    """Predict every point of a block by the block mean.

    The mean is stored losslessly per block (8 bytes), which the paper notes is
    effective for (nearly) constant blocks common in scientific data.
    """

    def predict(self, block: np.ndarray) -> Tuple[np.ndarray, float]:
        block = np.asarray(block, dtype=np.float64)
        mean = float(block.mean())
        return np.full_like(block, mean), mean

    def predict_from_value(self, shape, mean: float) -> np.ndarray:
        return np.full(shape, float(mean), dtype=np.float64)

    def loss(self, block: np.ndarray) -> float:
        pred, _ = self.predict(block)
        return float(np.abs(np.asarray(block, dtype=np.float64) - pred).mean())

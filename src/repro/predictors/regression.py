"""Blockwise linear (hyperplane) regression predictor, as used by SZ2.1.

SZ2.1 fits, per block, a first-order polynomial ``f(i,j,k) = b0 + b1 i + b2 j
+ b3 k`` by least squares and predicts every point from it; the (quantized)
coefficients are stored in the compressed stream.  The paper contrasts this
"flat hyperplane" predictor with AE-SZ's autoencoder (Section IV-A) and uses it
in the prediction-error comparison of Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import ensure_dims, ensure_positive


@dataclass
class RegressionCoefficients:
    """Hyperplane coefficients ``values[0] + sum_i values[i+1] * x_i``."""

    values: np.ndarray  # shape (ndim + 1,)

    def quantized(self, error_bound: float, block_size: int) -> "RegressionCoefficients":
        """Quantize coefficients the way SZ2.1 does (scaled by block extent)."""
        ensure_positive(error_bound, "error_bound")
        vals = np.array(self.values, dtype=np.float64)
        # Intercept precision: eb/4; slope precision: eb / (4 * block_size) so the
        # accumulated error across a block stays within a fraction of eb.
        steps = np.empty_like(vals)
        steps[0] = error_bound / 4.0
        steps[1:] = error_bound / (4.0 * max(1, block_size))
        q = np.rint(vals / steps) * steps
        return RegressionCoefficients(values=q)


@lru_cache(maxsize=64)
def _design_matrix_cached(shape: Tuple[int, ...]) -> np.ndarray:
    grids = np.meshgrid(*[np.arange(s, dtype=np.float64) for s in shape], indexing="ij")
    cols = [np.ones(int(np.prod(shape)))] + [g.ravel() for g in grids]
    out = np.stack(cols, axis=1)
    out.setflags(write=False)  # cached and shared: callers must not mutate
    return out


def _design_matrix(shape: Sequence[int]) -> np.ndarray:
    """Design matrix [1, i, j, k] for every point of a block (row-major order).

    A pure function of ``shape``, so it is memoized — blockwise encoders call
    it once per block with only a handful of distinct shapes.  The returned
    array is read-only.
    """
    return _design_matrix_cached(tuple(int(s) for s in shape))


class LinearRegressionPredictor:
    """Least-squares hyperplane fit per block."""

    def fit(self, block: np.ndarray) -> RegressionCoefficients:
        block = np.asarray(block, dtype=np.float64)
        ensure_dims(block.ndim, (1, 2, 3), "block")
        design = _design_matrix(block.shape)
        coef, *_ = np.linalg.lstsq(design, block.ravel(), rcond=None)
        return RegressionCoefficients(values=coef)

    def predict(self, shape: Sequence[int], coefficients: RegressionCoefficients) -> np.ndarray:
        design = _design_matrix(shape)
        values = design @ np.asarray(coefficients.values, dtype=np.float64)
        return values.reshape(tuple(shape))

    def fit_predict(self, block: np.ndarray,
                    error_bound: Optional[float] = None) -> Tuple[np.ndarray, RegressionCoefficients]:
        """Fit, optionally quantize the coefficients, and predict the block."""
        coef = self.fit(block)
        if error_bound is not None:
            coef = coef.quantized(error_bound, max(block.shape))
        return self.predict(block.shape, coef), coef

    def loss(self, block: np.ndarray, error_bound: Optional[float] = None) -> float:
        pred, _ = self.fit_predict(block, error_bound)
        return float(np.abs(np.asarray(block, dtype=np.float64) - pred).mean())

"""Error-controlled quantization."""

from repro.quantization.linear import (
    LinearQuantizer,
    QuantizationResult,
    quantize_prediction_errors,
    dequantize_prediction_errors,
)
from repro.quantization.uniform import UniformQuantizer

__all__ = [
    "LinearQuantizer",
    "QuantizationResult",
    "quantize_prediction_errors",
    "dequantize_prediction_errors",
    "UniformQuantizer",
]

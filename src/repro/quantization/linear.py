"""Linear-scale quantization of prediction errors (SZ / AE-SZ, Algorithm 1 line 14).

Given original values ``d``, predicted values ``p`` and an absolute error bound
``e``, each point is mapped to an integer code

    q = round((d - p) / (2e)) + R/2

where ``R`` is the maximum number of quantization bins (65,536 by default, as
in SZ2.1).  The reconstructed value ``p + 2e*(q - R/2)`` is then guaranteed to
be within ``e`` of ``d``.  Points whose code falls outside ``[1, R)`` are
*unpredictable*: they get the reserved code 0 and their value is stored
separately (quantized onto a global 2e grid so the bound still holds while
remaining compressible).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.utils.validation import ensure_positive

DEFAULT_NUM_BINS = 65536
UNPREDICTABLE_CODE = 0


@dataclass
class QuantizationResult:
    """Output of :func:`quantize_prediction_errors`.

    Attributes
    ----------
    codes:
        Integer codes, same shape as the input; 0 marks unpredictable points.
    unpredictable:
        The reconstructed values of unpredictable points, in scan order.
    reconstructed:
        Decompression-identical reconstruction of the input values.
    """

    codes: np.ndarray
    unpredictable: np.ndarray
    reconstructed: np.ndarray

    @property
    def n_unpredictable(self) -> int:
        return int(self.unpredictable.size)


def quantize_prediction_errors(
    original: np.ndarray,
    predicted: np.ndarray,
    error_bound: float,
    num_bins: int = DEFAULT_NUM_BINS,
) -> QuantizationResult:
    """Quantize ``original - predicted`` with a strict absolute error bound."""
    ensure_positive(error_bound, "error_bound")
    if num_bins < 2:
        raise ValueError("num_bins must be >= 2")
    original = np.asarray(original, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    if original.shape != predicted.shape:
        raise ValueError(
            f"original shape {original.shape} != predicted shape {predicted.shape}"
        )

    step = 2.0 * error_bound
    center = num_bins // 2
    raw = np.rint((original - predicted) / step).astype(np.int64)
    codes = raw + center

    reconstructed = predicted + step * raw
    # Points outside the code range, or whose rounding failed the bound (can
    # happen at the extreme edges of floating-point rounding), are escaped.
    in_range = (codes >= 1) & (codes < num_bins)
    within_bound = np.abs(reconstructed - original) <= error_bound * (1 + 1e-12)
    predictable = in_range & within_bound

    codes = np.where(predictable, codes, UNPREDICTABLE_CODE)

    # Unpredictable values are themselves snapped to a global 2e grid so they
    # stay within the bound but remain integer-compressible.
    unpred_original = original[~predictable]
    unpred_recon = np.rint(unpred_original / step) * step
    # Guard against pathological rounding: fall back to exact storage.
    bad = np.abs(unpred_recon - unpred_original) > error_bound * (1 + 1e-12)
    unpred_recon = np.where(bad, unpred_original, unpred_recon)

    reconstructed = np.where(predictable, reconstructed, 0.0)
    reconstructed[~predictable] = unpred_recon
    return QuantizationResult(codes=codes, unpredictable=unpred_recon, reconstructed=reconstructed)


def dequantize_prediction_errors(
    codes: np.ndarray,
    predicted: np.ndarray,
    unpredictable: np.ndarray,
    error_bound: float,
    num_bins: int = DEFAULT_NUM_BINS,
) -> np.ndarray:
    """Invert :func:`quantize_prediction_errors` given the same predictions."""
    ensure_positive(error_bound, "error_bound")
    codes = np.asarray(codes)
    predicted = np.asarray(predicted, dtype=np.float64)
    if codes.shape != predicted.shape:
        raise ValueError(f"codes shape {codes.shape} != predicted shape {predicted.shape}")
    step = 2.0 * error_bound
    center = num_bins // 2
    reconstructed = predicted + step * (codes.astype(np.int64) - center)
    mask = codes == UNPREDICTABLE_CODE
    n_unpred = int(mask.sum())
    unpredictable = np.asarray(unpredictable, dtype=np.float64).ravel()
    if n_unpred != unpredictable.size:
        raise ValueError(
            f"expected {n_unpred} unpredictable values, got {unpredictable.size}"
        )
    if n_unpred:
        reconstructed[mask] = unpredictable
    return reconstructed


class LinearQuantizer:
    """Object-style wrapper around the functional quantization API."""

    def __init__(self, error_bound: float, num_bins: int = DEFAULT_NUM_BINS):
        self.error_bound = ensure_positive(error_bound, "error_bound")
        if num_bins < 2:
            raise ValueError("num_bins must be >= 2")
        self.num_bins = int(num_bins)

    def quantize(self, original: np.ndarray, predicted: np.ndarray) -> QuantizationResult:
        return quantize_prediction_errors(original, predicted, self.error_bound, self.num_bins)

    def dequantize(self, codes: np.ndarray, predicted: np.ndarray,
                   unpredictable: np.ndarray) -> np.ndarray:
        return dequantize_prediction_errors(
            codes, predicted, unpredictable, self.error_bound, self.num_bins
        )

"""Plain uniform (mid-tread) scalar quantization.

Used for two purposes in the reproduction:

* the customized latent-vector codec of AE-SZ (Takeaway 3): latents are
  quantized with an absolute bound of ``0.1 * e`` before Huffman + Zstd;
* the integer "pre-quantization" of values onto a ``2e`` grid used by the
  dual-quantization Lorenzo path (see :mod:`repro.predictors.lorenzo`).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.validation import ensure_positive


class UniformQuantizer:
    """Mid-tread uniform quantizer with step ``2 * error_bound``."""

    def __init__(self, error_bound: float):
        self.error_bound = ensure_positive(error_bound, "error_bound")
        self.step = 2.0 * self.error_bound

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Map values to integer grid indices; |dequantize(q) - value| <= error_bound."""
        values = np.asarray(values, dtype=np.float64)
        return np.rint(values / self.step).astype(np.int64)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        codes = np.asarray(codes, dtype=np.int64)
        return codes.astype(np.float64) * self.step

    def roundtrip(self, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Quantize and immediately dequantize (returns codes, reconstruction)."""
        codes = self.quantize(values)
        return codes, self.dequantize(codes)

"""Compressor registry: plugin-style discovery of every codec in the library.

The seven built-in compressors self-register at import time via the
:func:`register_compressor` decorator, so the CLI, the benchmark harness and
the top-level :mod:`repro.api` facade enumerate codecs from one place instead
of hardcoding class lists.  Third-party codecs plug in the same way::

    from repro.registry import register_compressor

    @register_compressor("mycodec", description="my experimental codec")
    class MyCompressor(Compressor):
        ...

and immediately become usable through ``repro.compress(data, codec="mycodec")``
and ``python -m repro compress --compressor mycodec``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.utils.concurrency import make_lock

_LOCK = make_lock("repro.registry._LOCK")
_REGISTRY: Dict[str, "CompressorSpec"] = {}  # guarded by: _LOCK
_ALIASES: Dict[str, str] = {}  # guarded by: _LOCK
_CLASS_TO_NAME: Dict[type, str] = {}  # guarded by: _LOCK
# Benign racy latch, deliberately unguarded: _ensure_builtins may run twice
# concurrently, but registration is idempotent per process (the import
# machinery serializes the module imports that do the registering).
_BUILTINS_LOADED = False


@dataclass(frozen=True)
class CompressorSpec:
    """Everything the registry knows about one codec."""

    name: str
    factory: Callable[..., Any]
    description: str = ""
    aliases: Tuple[str, ...] = ()
    error_bounded: bool = True
    requires_model: bool = False
    accepts_model: bool = False
    # True for codecs whose reconstruction is exact (bit-for-bit): they accept
    # any value, including NaN/Inf, so the facade's non-finite guard skips them.
    exact: bool = False
    # Rebuilds a decode-ready compressor from an archive's codec-private
    # metadata + binary sections; defaults to ``factory.from_archive_state``
    # when available, else ``factory(**opts)``.
    restorer: Optional[Callable[..., Any]] = None

    def restore(self, meta: dict, blobs: Dict[str, bytes], **opts) -> Any:
        if self.restorer is not None:
            return self.restorer(meta, blobs, **opts)
        if hasattr(self.factory, "from_archive_state"):
            return self.factory.from_archive_state(meta, blobs, **opts)
        return self.factory(**opts)


def register_compressor(name: str, factory: Optional[Callable[..., Any]] = None, *,
                        description: str = "", aliases: Tuple[str, ...] = (),
                        error_bounded: bool = True, requires_model: bool = False,
                        accepts_model: bool = False, exact: bool = False,
                        restorer: Optional[Callable[..., Any]] = None,
                        cls: Optional[type] = None):
    """Register a compressor factory under ``name``.

    Usable as a decorator on a compressor class (``@register_compressor("zfp")``)
    or called directly with an explicit ``factory`` callable for codecs whose
    construction needs more than ``factory()`` (e.g. AE-SZ, which needs a
    trained model).  ``cls`` links the registration to a compressor class when
    the factory is a plain function, so instances can be mapped back to their
    registry name.
    """

    def _do_register(target: Callable[..., Any]) -> Callable[..., Any]:
        key = _normalize(name)
        with _LOCK:
            if key in _REGISTRY:
                raise ValueError(f"compressor {key!r} is already registered")
            spec = CompressorSpec(
                name=key, factory=target, description=description,
                aliases=tuple(dict.fromkeys(_normalize(a) for a in aliases)),
                error_bounded=error_bounded, requires_model=requires_model,
                accepts_model=accepts_model or requires_model, exact=exact,
                restorer=restorer,
            )
            _REGISTRY[key] = spec
            for alias in spec.aliases:
                if alias == key:
                    continue  # alias that normalizes to the canonical name
                if alias in _ALIASES or alias in _REGISTRY:
                    raise ValueError(f"compressor alias {alias!r} is already taken")
                _ALIASES[alias] = key
            linked = cls if cls is not None else (target if isinstance(target, type) else None)
            if linked is not None:
                _CLASS_TO_NAME[linked] = key
        return target

    if factory is not None:
        return _do_register(factory)
    return _do_register


def _normalize(name: str) -> str:
    return str(name).strip().lower().replace("-", "_").replace(".", "")


def _ensure_builtins() -> None:
    """Import the modules whose import side effect registers the built-in codecs."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    # No lock around the imports: Python's import machinery serializes them,
    # and the flag is only latched once both succeed, so a failed import
    # surfaces again (with its real error) on the next registry call.
    import repro.compressors  # noqa: F401  (registers the seven baselines)
    import repro.core.aesz  # noqa: F401  (registers aesz)
    _BUILTINS_LOADED = True


def compressor_spec(name: str) -> CompressorSpec:
    """Resolve ``name`` (canonical id or alias, case-insensitive) to its spec."""
    _ensure_builtins()
    key = _normalize(name)
    with _LOCK:
        key = _ALIASES.get(key, key)
        spec = _REGISTRY.get(key)
    if spec is None:
        # Raised outside _LOCK: available_compressors() re-takes it.
        raise KeyError(
            f"unknown compressor {name!r}; choices: {list(available_compressors())}")
    return spec


def get_compressor(name: str, **opts) -> Any:
    """Instantiate a registered compressor by name, forwarding ``opts``."""
    return compressor_spec(name).factory(**opts)


def available_compressors() -> Tuple[str, ...]:
    """Canonical names of every registered compressor, sorted."""
    _ensure_builtins()
    with _LOCK:
        return tuple(sorted(_REGISTRY))


def name_for_compressor(compressor: Any) -> str:
    """Map a compressor instance back to its registry name."""
    _ensure_builtins()
    with _LOCK:
        for klass in type(compressor).__mro__:
            if klass in _CLASS_TO_NAME:
                return _CLASS_TO_NAME[klass]
    raise KeyError(
        f"{type(compressor).__name__} is not a registered compressor; "
        "register it with repro.registry.register_compressor"
    )

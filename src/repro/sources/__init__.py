"""Pluggable byte sources: local files/bytes, HTTP range-GET, disk spill.

The region read path only ever needs positional byte reads — ``size``,
``read_at(offset, length)``, ``read_all()``, ``close()`` — and this package
is that seam made explicit:

* :func:`open_source` — dispatch bytes / path / ``http(s)://`` URL /
  existing source to the right implementation (what
  :func:`repro.open_reader` and :meth:`repro.store.ArchiveStore.add` use).
* :class:`BytesByteSource` / :class:`FileByteSource` — the local
  implementations (immutable slices; positional ``pread`` with a short-read
  loop, thread-safe).
* :class:`HttpByteSource` — range-GET reads over stdlib ``http.client``
  with keep-alive reuse, strict 206/Content-Range validation and bounded
  retry/backoff on transient faults.
* :class:`CachingByteSource` — a read-through disk spill cache of fetched
  ranges (content-token keyed, byte-budget LRU, single-flight per range).
"""

from repro.sources.base import (
    BytesByteSource,
    FileByteSource,
    SourceLike,
    is_byte_source,
    is_url,
    open_source,
)
from repro.sources.spill import DEFAULT_SPILL_BYTES, CachingByteSource

__all__ = ["BytesByteSource", "CachingByteSource", "DEFAULT_SPILL_BYTES",
           "FileByteSource", "HttpByteSource", "HttpSourceError",
           "RetryPolicy", "SourceLike", "is_byte_source", "is_url",
           "open_source"]

_HTTP_NAMES = ("HttpByteSource", "HttpSourceError", "RetryPolicy")


def __getattr__(name):
    # The HTTP source drags in http.client; load it only when an HTTP symbol
    # is actually requested, so plain `import repro` (library use, CLI
    # compress, every test worker) stays lean.
    if name in _HTTP_NAMES:
        from repro.sources import http

        return getattr(http, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""The ``ByteSource`` seam: pluggable random-access readers over archives.

Every region decode in this codebase reduces to positional byte reads: parse
the O(header) front matter, then fetch each intersecting tile's
``(offset, length)`` range.  A *byte source* is the minimal contract that
read path needs — ``size``, ``read_at(offset, length)``, ``read_all()``,
``close()``, context manager — and this module defines it plus the two local
implementations every caller already relied on implicitly:

* :class:`BytesByteSource` — lock-free slices over an in-memory blob;
* :class:`FileByteSource` — positional ``os.pread`` over one descriptor,
  safe to share across threads, with an explicit short-read loop (one pread
  caps at ~2 GiB on Linux and either syscall may return short near resource
  limits).

Remote sources live in sibling modules (:mod:`repro.sources.http`,
:mod:`repro.sources.spill`) and are loaded lazily so plain ``import repro``
never drags in ``http.client``.

``read_at`` past EOF returns the available bytes (possibly ``b""``) rather
than raising — truncation is detected by the callers' length/CRC checks,
which keeps the contract implementable over HTTP where a server reports a
too-long range with a clamped ``Content-Range`` instead of an error.
"""

from __future__ import annotations

import hashlib
import os
import threading
from typing import Union

#: What :func:`open_source` accepts: archive bytes, a filesystem path, an
#: ``http(s)://`` URL, or an already-open byte source (passed through).
SourceLike = Union[bytes, bytearray, memoryview, str, os.PathLike]

#: The attributes an object must expose to be treated as a byte source.
_PROTOCOL_ATTRS = ("size", "read_at", "read_all", "close")


def is_byte_source(obj) -> bool:
    """Duck-typed check for the ``ByteSource`` contract (no registration)."""
    return all(hasattr(obj, name) for name in _PROTOCOL_ATTRS)


def is_url(source) -> bool:
    """True when ``source`` is an ``http(s)://`` URL string."""
    return isinstance(source, str) and source.startswith(
        ("http://", "https://"))


class BytesByteSource:
    """Random-access reads over an in-memory archive blob.

    Reads are slices of an immutable bytes object, so one instance is safe
    to share across threads (the store serves in-memory archives through it
    directly; only ``bytes_read`` accounting may undercount under races).
    """

    def __init__(self, data):
        self._data = bytes(data)
        self.bytes_read = 0

    @property
    def size(self) -> int:
        return len(self._data)

    def read_at(self, offset: int, length: int) -> bytes:
        out = self._data[offset:offset + length]
        self.bytes_read += len(out)
        return out

    def read_all(self) -> bytes:
        self.bytes_read += len(self._data)
        return self._data

    @property
    def content_token(self) -> str:
        """A stable identity for spill-cache keying: a hash of the bytes."""
        return "bytes-" + hashlib.sha256(self._data).hexdigest()

    def close(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class FileByteSource:
    """Positional reads over one open descriptor: the on-disk fast path.

    ``os.pread`` takes the offset explicitly, so any number of threads can
    read through the same descriptor without a lock or a shared seek
    pointer; on platforms without ``pread`` (Windows) a lock + seek/read
    fallback keeps the same interface.  Only the byte ranges actually
    requested are read, so pulling a small region out of a multi-gigabyte
    archive touches the front header plus the intersecting tiles —
    O(region) I/O, not O(archive).
    """

    def __init__(self, path):
        self._path = os.fspath(path)
        # O_BINARY matters exactly where the fallback does (Windows): without
        # it the CRT text mode mangles \r\n and stops at 0x1A mid-payload.
        self._fd = os.open(self._path,
                           os.O_RDONLY | getattr(os, "O_BINARY", 0))
        stat = os.fstat(self._fd)
        self._size = stat.st_size
        self._mtime_ns = stat.st_mtime_ns
        self._fallback_lock = None if hasattr(os, "pread") else threading.Lock()
        self.bytes_read = 0

    @property
    def size(self) -> int:
        return self._size

    def read_at(self, offset: int, length: int) -> bytes:
        # Loop on short reads: one pread caps at ~2 GiB on Linux, and either
        # syscall may return less than asked near resource limits.
        parts = []
        got = 0
        while got < length:
            if self._fallback_lock is None:
                chunk = os.pread(self._fd, length - got, offset + got)
            else:
                with self._fallback_lock:
                    os.lseek(self._fd, offset + got, os.SEEK_SET)
                    chunk = os.read(self._fd, length - got)
            if not chunk:
                break  # EOF: callers detect truncation via length/CRC checks
            parts.append(chunk)
            got += len(chunk)
        self.bytes_read += got
        return parts[0] if len(parts) == 1 else b"".join(parts)

    def read_all(self) -> bytes:
        return self.read_at(0, self._size)

    @property
    def content_token(self) -> str:
        """A stable identity for spill-cache keying without reading the file."""
        ident = f"{os.path.abspath(self._path)}|{self._size}|{self._mtime_ns}"
        return "file-" + hashlib.sha256(ident.encode()).hexdigest()

    def close(self) -> None:
        fd, self._fd = self._fd, -1
        if fd >= 0:
            os.close(fd)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


def open_source(source: SourceLike):
    """Open the right byte source for ``source``; pass existing ones through.

    Dispatch: in-memory bytes -> :class:`BytesByteSource`; an ``http(s)://``
    URL -> :class:`repro.sources.http.HttpByteSource` (imported lazily so the
    local paths never load ``http.client``); a path -> :class:`FileByteSource`;
    anything already exposing the protocol is returned as-is (the caller
    keeps ownership semantics: whoever closes it last wins).
    """
    if isinstance(source, (bytes, bytearray, memoryview)):
        return BytesByteSource(source)
    if is_url(source):
        from repro.sources.http import HttpByteSource

        return HttpByteSource(source)
    if isinstance(source, (str, os.PathLike)):
        return FileByteSource(source)
    if is_byte_source(source):
        return source
    raise TypeError(
        f"source must be archive bytes or a path to an archive file, an "
        f"http(s):// URL, or a ByteSource, got {type(source)!r}")

"""HTTP(S) byte source: range-GET reads with keep-alive, retry and backoff.

:class:`HttpByteSource` maps the ``ByteSource`` contract onto HTTP range
requests (stdlib ``http.client`` only): every ``read_at(offset, length)``
becomes ``GET`` with ``Range: bytes=offset-(offset+length-1)``, so decoding
a region of a remote archive fetches O(header + intersecting tiles) bytes —
never the whole file.

Failure handling is split in two:

* **Transient** faults — connection reset/refused, timeouts, 5xx statuses,
  a body shorter than the server's own ``Content-Range`` promised — are
  retried under a bounded :class:`RetryPolicy` (exponential backoff with
  jitter), on a fresh connection.
* **Permanent** protocol violations raise :class:`HttpSourceError`
  immediately.  The important one: a ``200`` answer to a range request
  means the server ignored ``Range`` and is streaming the entire archive —
  the source refuses rather than silently downloading gigabytes to serve a
  kilobyte tile.

Connections are kept alive and reused across reads (a small lock-guarded
idle pool), which is what makes tile-by-tile region decode latency
per-request, not per-connection-handshake.  The total size and the content
identity (ETag / Last-Modified) are learned from the first response's
``Content-Range``/validators — no separate HEAD round trip.
"""

from __future__ import annotations

import hashlib
import random
import re
import socket
import time
from http.client import HTTPConnection, HTTPException, HTTPSConnection
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from repro.utils.concurrency import install_guards, make_lock

#: Per-request socket timeout (seconds) unless the caller overrides it.
DEFAULT_TIMEOUT = 30.0

#: Idle keep-alive connections retained per source.
_MAX_IDLE = 8


class HttpSourceError(OSError):
    """The remote endpoint cannot serve valid range reads (not retried).

    Raised for protocol-level violations that retrying cannot fix: a 200
    full-body answer to a range request, a ``Content-Range`` that does not
    match what was asked, 4xx statuses, or transient-fault retries running
    out of attempts (the final error wraps the last transient cause).
    """


class RetryPolicy:
    """Bounded retry with exponential backoff and full jitter.

    ``delay(attempt)`` for attempt 0, 1, 2... is ``base_delay * multiplier**
    attempt`` capped at ``max_delay``, scaled by a uniform random factor in
    ``[1 - jitter, 1]`` so synchronized clients spread out.  ``sleep`` is
    injectable (tests pass a no-op to retry instantly).
    """

    #: Status codes worth retrying: server-side hiccups and throttling.
    TRANSIENT_STATUSES = frozenset({408, 429, 500, 502, 503, 504})

    def __init__(self, attempts: int = 4, *, base_delay: float = 0.05,
                 max_delay: float = 2.0, multiplier: float = 2.0,
                 jitter: float = 0.5, sleep=time.sleep):
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        self.attempts = int(attempts)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.multiplier = float(multiplier)
        self.jitter = float(jitter)
        self.sleep = sleep

    def delay(self, attempt: int) -> float:
        raw = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        return raw * (1.0 - self.jitter * random.random())

    def backoff(self, attempt: int) -> None:
        self.sleep(self.delay(attempt))

    def retryable_status(self, status: int) -> bool:
        return status in self.TRANSIENT_STATUSES


class _TransientHTTPError(Exception):
    """Internal marker: this attempt failed in a way worth retrying."""


_CONTENT_RANGE_RE = re.compile(r"^bytes\s+(\d+)-(\d+)/(\d+|\*)$")
_UNSATISFIED_RE = re.compile(r"^bytes\s+\*/(\d+)$")


def parse_content_range(value: str) -> Tuple[int, int, Optional[int]]:
    """Parse ``Content-Range: bytes a-b/total`` into ``(a, b, total)``.

    ``total`` is ``None`` for ``/*`` (server does not know the size).
    Anything else — including the ``bytes */N`` unsatisfied-range form,
    which never belongs on a 206 — raises :class:`HttpSourceError`.
    """
    match = _CONTENT_RANGE_RE.match(value.strip())
    if match is None:
        raise HttpSourceError(f"invalid Content-Range header {value!r}")
    start, end = int(match.group(1)), int(match.group(2))
    if end < start:
        raise HttpSourceError(f"invalid Content-Range header {value!r} "
                              f"(end before start)")
    total = None if match.group(3) == "*" else int(match.group(3))
    if total is not None and end >= total:
        raise HttpSourceError(f"invalid Content-Range header {value!r} "
                              f"(range exceeds the declared total)")
    return start, end, total


class HttpByteSource:
    """Range-GET reads over one remote archive URL.  Thread-safe.

    All state (idle connection pool, learned size/validators, counters) is
    lock-guarded; concurrent ``read_at`` calls each use their own pooled
    connection, so tile fetches of one region can overlap on the wire.
    ``stats()`` exposes the remote counters the store aggregates into
    ``/metrics``: ``range_requests``, ``retried``, ``bytes_fetched``.
    """

    def __init__(self, url: str, *, timeout: float = DEFAULT_TIMEOUT,
                 retry: Optional[RetryPolicy] = None,
                 headers: Optional[Dict[str, str]] = None):
        parts = urlsplit(url)
        if parts.scheme not in ("http", "https") or not parts.hostname:
            raise ValueError(
                f"unsupported archive URL {url!r} (need http://host/... or "
                f"https://host/...)")
        self.url = url
        self._https = parts.scheme == "https"
        self._host = parts.hostname
        self._port = parts.port or (443 if self._https else 80)
        self._target = parts.path or "/"
        if parts.query:
            self._target += "?" + parts.query
        self._timeout = float(timeout)
        self._retry = retry if retry is not None else RetryPolicy()
        self._extra_headers = dict(headers or {})
        self._lock = make_lock("HttpByteSource._lock")
        self._idle: List[HTTPConnection] = []  # guarded by: self._lock
        self._closed = False  # guarded by: self._lock
        self._size: Optional[int] = None  # guarded by: self._lock
        self._validator: Optional[str] = None  # guarded by: self._lock
        self._range_requests = 0  # guarded by: self._lock
        self._retried = 0  # guarded by: self._lock
        self._bytes_fetched = 0  # guarded by: self._lock

    # -------------------------------------------------------------- protocol
    @property
    def size(self) -> int:
        """Total archive size, learned from the first ranged response."""
        with self._lock:
            if self._size is not None:
                return self._size
        # A one-byte probe: the 206's Content-Range (or a 416's
        # ``bytes */N``) publishes the total, so no HEAD round trip.
        self.read_at(0, 1)
        with self._lock:
            if self._size is None:
                raise HttpSourceError(
                    f"{self.url}: server did not report a total size in "
                    f"Content-Range; cannot address this archive")
            return self._size

    def read_at(self, offset: int, length: int) -> bytes:
        if length <= 0:
            return b""
        with self._lock:
            known = self._size
        if known is not None and offset >= known:
            return b""  # past EOF, same contract as the local sources
        end = offset + length - 1
        last_fault: Optional[BaseException] = None
        for attempt in range(self._retry.attempts):
            if attempt:
                with self._lock:
                    self._retried += 1
                self._retry.backoff(attempt - 1)
            try:
                return self._fetch_range(offset, end)
            except HttpSourceError:
                raise  # permanent: retrying cannot help (must precede OSError)
            except (_TransientHTTPError, HTTPException, ConnectionError,
                    TimeoutError, socket.timeout, OSError) as exc:
                last_fault = exc
        raise HttpSourceError(
            f"{self.url}: range read bytes={offset}-{end} failed after "
            f"{self._retry.attempts} attempts: {last_fault}") from last_fault

    def read_all(self) -> bytes:
        return self.read_at(0, self.size)

    @property
    def content_token(self) -> str:
        """A stable identity for spill-cache keying: URL + size + validators."""
        size = self.size  # forces at least one response, capturing validators
        with self._lock:
            validator = self._validator
        ident = f"{self.url}|{size}|{validator}"
        return "http-" + hashlib.sha256(ident.encode()).hexdigest()

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
            self._closed = True
        for conn in idle:
            conn.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # -------------------------------------------------------------- counters
    def stats(self) -> dict:
        with self._lock:
            return {"range_requests": self._range_requests,
                    "retried": self._retried,
                    "bytes_fetched": self._bytes_fetched}

    # -------------------------------------------------------------- internals
    def _fetch_range(self, offset: int, end: int) -> bytes:
        """One request/response cycle; raises transient or permanent faults."""
        conn = self._checkout()
        keep = False
        try:
            headers = dict(self._extra_headers)
            headers["Range"] = f"bytes={offset}-{end}"
            headers["Accept-Encoding"] = "identity"
            conn.request("GET", self._target, headers=headers)
            resp = conn.getresponse()
            with self._lock:
                self._range_requests += 1
            if self._retry.retryable_status(resp.status):
                raise _TransientHTTPError(f"HTTP {resp.status} {resp.reason}")
            if resp.status == 416:
                # Requested past EOF: the ``bytes */N`` form still teaches us
                # the total, and the local-source contract says return b"".
                self._learn_from_416(resp)
                resp.read()
                keep = True
                return b""
            if resp.status == 200:
                raise HttpSourceError(
                    f"{self.url}: server ignored Range (HTTP 200 for "
                    f"bytes={offset}-{end}); refusing to download the whole "
                    f"archive — serve it from a range-capable endpoint")
            if resp.status != 206:
                raise HttpSourceError(
                    f"{self.url}: HTTP {resp.status} {resp.reason} for "
                    f"bytes={offset}-{end}")
            header = resp.getheader("Content-Range")
            if header is None:
                raise HttpSourceError(
                    f"{self.url}: 206 response without Content-Range")
            start, got_end, total = parse_content_range(header)
            if start != offset or got_end > end:
                raise HttpSourceError(
                    f"{self.url}: Content-Range {header!r} does not match "
                    f"the requested bytes={offset}-{end}")
            expected = got_end - start + 1
            body = resp.read()
            if len(body) != expected:
                # The connection died (or lied) mid-body; it is unusable.
                raise _TransientHTTPError(
                    f"short body: got {len(body)} of {expected} bytes")
            self._learn(total, resp)
            with self._lock:
                self._bytes_fetched += len(body)
            keep = True
            return body
        finally:
            if keep:
                self._checkin(conn)
            else:
                conn.close()

    def _learn(self, total: Optional[int], resp) -> None:
        validator = resp.getheader("ETag") or resp.getheader("Last-Modified")
        with self._lock:
            if self._size is None and total is not None:
                self._size = total
            if self._validator is None and validator is not None:
                self._validator = validator

    def _learn_from_416(self, resp) -> None:
        header = resp.getheader("Content-Range")
        if header is None:
            return
        match = _UNSATISFIED_RE.match(header.strip())
        if match is None:
            return
        with self._lock:
            if self._size is None:
                self._size = int(match.group(1))

    def _checkout(self) -> HTTPConnection:
        with self._lock:
            if self._closed:
                raise ValueError(f"byte source for {self.url} is closed")
            if self._idle:
                return self._idle.pop()
        cls = HTTPSConnection if self._https else HTTPConnection
        return cls(self._host, self._port, timeout=self._timeout)

    def _checkin(self, conn: HTTPConnection) -> None:
        with self._lock:
            if not self._closed and len(self._idle) < _MAX_IDLE:
                self._idle.append(conn)
                return
        conn.close()


install_guards(HttpByteSource, "_lock",
               ("_idle", "_closed", "_size", "_validator", "_range_requests",
                "_retried", "_bytes_fetched"))

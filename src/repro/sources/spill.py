"""Tiered spill cache: persist fetched byte ranges to local disk.

:class:`CachingByteSource` wraps any other byte source with a read-through
disk cache.  Every distinct ``(offset, length)`` range fetched from the
underlying source is spilled to its own small file; repeat reads — a
restarted process, a second store on the same node, the same tile requested
again after the decoded-tile LRU dropped it — come back from local disk
instead of the network.

Design points:

* **Keyed by content, not by URL string.**  File names embed the wrapped
  source's ``content_token`` (hash of URL + size + ETag/Last-Modified for
  HTTP, path + size + mtime for files), so a changed remote archive gets a
  fresh key space and stale ranges are never served; they age out by LRU.
* **Byte-budget LRU.**  ``max_bytes`` bounds the on-disk footprint; least
  recently used ranges are unlinked when the budget overflows.  Existing
  range files for the same token are re-adopted on startup (ordered by
  mtime), which is what makes the cache survive process restarts.
* **Single-flight per range.**  Concurrent readers of one cold range block
  on a single underlying fetch (same discipline as the decoded-tile
  :class:`repro.store.cache.TileCache`), so a popular cold tile costs one
  network round trip, not one per reader.

The exact-range keying matches how archive readers behave: tile ranges are
deterministic per archive (the header's ``(offset, length)`` table), so the
same region read always re-requests the same ranges.
"""

from __future__ import annotations

import hashlib
import os
import sys
import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.utils.concurrency import install_guards, make_lock

#: Default on-disk budget for spilled ranges (1 GiB).
DEFAULT_SPILL_BYTES = 1 << 30

_SUFFIX = ".range"


class _Flight:
    """Tracks one in-progress underlying fetch other readers can await."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Optional[bytes] = None
        self.error: Optional[BaseException] = None


class CachingByteSource:
    """A read-through disk spill cache over another byte source.

    ``source`` is the wrapped byte source (typically an
    :class:`repro.sources.http.HttpByteSource`); ``cache_dir`` is created if
    missing and may be shared by many sources (tokens namespace the files).
    ``token`` overrides the wrapped source's ``content_token`` (required if
    the source has none).  Closing the cache closes the wrapped source;
    spilled files persist for the next process.  Thread-safe.
    """

    def __init__(self, source, cache_dir, *,
                 max_bytes: int = DEFAULT_SPILL_BYTES,
                 token: Optional[str] = None):
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self._source = source
        self._dir = os.fspath(cache_dir)
        os.makedirs(self._dir, exist_ok=True)
        self.max_bytes = int(max_bytes)
        self._token = token
        self._lock = make_lock("CachingByteSource._lock")
        # offset/length -> on-disk size; LRU order.  ``None`` until the
        # token is resolved (which may need a network round trip, so it
        # happens lazily on first read, never in the constructor).
        self._index: Optional[OrderedDict] = None  # guarded by: self._lock
        self._file_token: Optional[str] = None  # guarded by: self._lock
        self._nbytes = 0  # guarded by: self._lock
        self._flights: Dict[Tuple[int, int], _Flight] = {}  # guarded by: self._lock
        self._hits = 0  # guarded by: self._lock
        self._misses = 0  # guarded by: self._lock
        self._evictions = 0  # guarded by: self._lock
        self._bytes_written = 0  # guarded by: self._lock

    # -------------------------------------------------------------- protocol
    @property
    def size(self) -> int:
        return self._source.size

    def read_at(self, offset: int, length: int) -> bytes:
        if length <= 0:
            return b""
        self._ensure_index()
        key = (int(offset), int(length))
        while True:
            flight: Optional[_Flight] = None
            owner = False
            path = None
            with self._lock:
                if key in self._index:
                    self._index.move_to_end(key)
                    self._hits += 1
                    path = self._range_path(key)
                else:
                    flight = self._flights.get(key)
                    if flight is None:
                        flight = _Flight()
                        self._flights[key] = flight
                        self._misses += 1
                        owner = True
            if path is not None:
                data = self._read_file(path)
                if data is not None:
                    return data
                # The file vanished or shrank under us (external cleanup):
                # forget it and go around as a cold read.
                with self._lock:
                    dropped = self._index.pop(key, None)
                    if dropped is not None:
                        self._nbytes -= dropped
                continue
            if not owner:
                flight.event.wait()
                if flight.error is not None:
                    raise flight.error
                if flight.value is not None:
                    with self._lock:
                        self._hits += 1  # coalesced onto the owner's fetch
                    return flight.value
                continue  # loader bailed without a value; retry cold
            break
        fetched = False
        try:
            data = self._source.read_at(offset, length)
            fetched = True
        finally:
            if not fetched:
                # Propagate the underlying fault to every coalesced waiter
                # and clear the flight so the next reader retries cold.
                flight.error = sys.exc_info()[1]
                with self._lock:
                    self._flights.pop(key, None)
                flight.event.set()
        flight.value = data
        self._spill(key, data)
        with self._lock:
            self._flights.pop(key, None)
        flight.event.set()
        return data

    def read_all(self) -> bytes:
        return self._source.read_all()

    @property
    def content_token(self) -> str:
        return self._resolve_token()

    def close(self) -> None:
        self._source.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # -------------------------------------------------------------- counters
    def stats(self) -> dict:
        """Spill counters merged over the wrapped source's own ``stats()``."""
        inner = getattr(self._source, "stats", None)
        out = dict(inner()) if callable(inner) else {}
        with self._lock:
            out.update({
                "spill_hits": self._hits,
                "spill_misses": self._misses,
                "spill_evictions": self._evictions,
                "spill_bytes_written": self._bytes_written,
                "spill_nbytes": self._nbytes,
                "spill_entries": 0 if self._index is None else len(self._index),
            })
        return out

    # -------------------------------------------------------------- internals
    def _resolve_token(self) -> str:
        if self._token is not None:
            return self._token
        token = getattr(self._source, "content_token", None)
        if callable(token):
            token = token()
        if not token:
            raise ValueError(
                f"wrapped source {type(self._source).__name__} has no "
                f"content_token; pass token= to CachingByteSource")
        return str(token)

    def _ensure_index(self) -> None:
        with self._lock:
            if self._index is not None:
                return
        # Resolving the token may hit the network (HTTP learns its identity
        # from the first response) — do it outside the lock.
        file_token = hashlib.sha256(
            self._resolve_token().encode()).hexdigest()[:32]
        adopted = []
        try:
            with os.scandir(self._dir) as entries:
                for entry in entries:
                    key = self._parse_name(entry.name, file_token)
                    if key is None:
                        continue
                    try:
                        stat = entry.stat()
                    except OSError:
                        continue
                    adopted.append((stat.st_mtime_ns, key, stat.st_size))
        except OSError:
            adopted = []
        adopted.sort()
        with self._lock:
            if self._index is not None:
                return  # another thread won the race; its scan stands
            self._file_token = file_token
            self._index = OrderedDict()
            for _, key, nbytes in adopted:
                self._index[key] = nbytes
                self._nbytes += nbytes
            self._evict_over_budget()

    @staticmethod
    def _parse_name(name: str, file_token: str
                    ) -> Optional[Tuple[int, int]]:
        if not name.endswith(_SUFFIX) or not name.startswith(file_token + "-"):
            return None
        fields = name[len(file_token) + 1:-len(_SUFFIX)].split("-")
        if len(fields) != 2 or not all(f.isdigit() for f in fields):
            return None
        return int(fields[0]), int(fields[1])

    def _range_path(self, key: Tuple[int, int]) -> str:
        """On-disk file for one cached range.  Must hold ``self._lock``."""
        return os.path.join(
            self._dir, f"{self._file_token}-{key[0]}-{key[1]}{_SUFFIX}")

    @staticmethod
    def _read_file(path: str) -> Optional[bytes]:
        try:
            with open(path, "rb") as f:
                return f.read()
        except OSError:
            return None

    def _spill(self, key: Tuple[int, int], data: bytes) -> None:
        if len(data) > self.max_bytes:
            return  # would evict everything and still not fit
        with self._lock:
            path = self._range_path(key)
        tmp = f"{path}.tmp-{os.getpid()}-{threading.get_ident()}"
        try:
            with open(tmp, "wb") as f:
                f.write(data)
            os.replace(tmp, path)  # atomic: readers never see partial files
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return  # cache write failure is not a read failure
        with self._lock:
            old = self._index.pop(key, None)
            if old is not None:
                self._nbytes -= old
            self._index[key] = len(data)
            self._nbytes += len(data)
            self._bytes_written += len(data)
            self._evict_over_budget()

    def _evict_over_budget(self) -> None:
        """Unlink LRU ranges past the byte budget.  Must hold ``self._lock``."""
        while self._index and self._nbytes > self.max_bytes:
            key, nbytes = self._index.popitem(last=False)
            self._nbytes -= nbytes
            self._evictions += 1
            try:
                os.unlink(self._range_path(key))
            except OSError:
                pass


install_guards(CachingByteSource, "_lock",
               ("_index", "_file_token", "_nbytes", "_flights", "_hits",
                "_misses", "_evictions", "_bytes_written"))

"""Concurrent archive read service: shared caches + a thread-safe store + HTTP.

The one-shot facade (:func:`repro.read_region`) re-opens the file, re-parses
the header and re-decodes every intersecting tile on each call — right for a
CLI, wrong for serving many region reads over the same hot archives.  This
package is the serving layer:

* :class:`TileCache` — a size-bounded, thread-safe LRU over decoded tiles
  with single-flight loading (concurrent readers of the same tile block on
  one decode instead of repeating it).
* :class:`ArchiveStore` — keeps archives open by key, parses each header
  exactly once, and serves ``read_region`` / ``read_regions`` through the
  shared cache using lock-free positional reads (``os.pread``).
* :func:`make_server` — a stdlib-only threaded HTTP endpoint over a store
  (``GET /v1/<key>/region?r=10:20,0:64,5:9`` → raw bytes plus a
  JSON-described header), wired to the CLI as ``python -m repro serve``.
"""

from repro.store.cache import DEFAULT_CACHE_BYTES, TileCache
from repro.store.store import ArchiveStore

__all__ = ["ArchiveStore", "DEFAULT_CACHE_BYTES", "StoreHTTPServer",
           "TileCache", "make_server"]

_SERVER_NAMES = ("StoreHTTPServer", "make_server")


def __getattr__(name):
    # The HTTP shell drags in http.server/socketserver; load it only when a
    # server symbol is actually requested, so plain `import repro` (library
    # use, CLI compress, every test worker) stays lean.
    if name in _SERVER_NAMES:
        from repro.store import server

        return getattr(server, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""Concurrent archive service: shared caches, a thread-safe store, HTTP, ingest.

The one-shot facade (:func:`repro.read_region`) re-opens the file, re-parses
the header and re-decodes every intersecting tile on each call — right for a
CLI, wrong for serving many region reads over the same hot archives.  This
package is the serving layer:

* :class:`TileCache` — a size-bounded, thread-safe LRU over decoded tiles
  with single-flight loading (concurrent readers of the same tile block on
  one decode instead of repeating it).
* :class:`ArchiveStore` — keeps archives open by key, parses each header
  exactly once, and serves ``read_region`` / ``read_regions`` through the
  shared cache using lock-free positional reads (``os.pread``); ``replace``
  swaps a key to a new archive atomically while pinned readers drain.
* :class:`StoreManifest` / :class:`IngestManager` — the durable write path:
  a crash-safe JSON manifest under a ``--root`` directory, streaming
  compress-on-upload, staged+verified archive files and atomic
  publish/replace (``repro serve --root DIR --writable``).
* :func:`make_server` — a stdlib-only HTTP endpoint over a store
  (``GET /v1/<key>/region?r=10:20,0:64,5:9`` → raw bytes plus a
  JSON-described header; batched ``POST /v1/<key>/regions``; with an ingest
  manager also ``POST`` / ``DELETE /v1/<key>`` and ``/metrics``), wired to
  the CLI as ``python -m repro serve``.  Two front ends share one route
  layer: the default ``selectors`` event loop
  (:class:`~repro.store.aserver.AsyncStoreHTTPServer`, keep-alive
  multiplexing + bounded decode pool) and the classic threaded fallback;
  :func:`push_field` is the write client (``python -m repro push``).
"""

from repro.store.cache import DEFAULT_CACHE_BYTES, TileCache
from repro.store.ingest import (
    DEFAULT_QUOTA_BYTES,
    IngestConflictError,
    IngestManager,
    IngestQuotaError,
    IngestVerifyError,
)
from repro.store.manifest import ManifestEntry, StoreManifest
from repro.store.store import ArchiveStore

__all__ = ["ArchiveStore", "AsyncStoreHTTPServer", "DEFAULT_CACHE_BYTES",
           "DEFAULT_QUOTA_BYTES", "IngestConflictError", "IngestManager",
           "IngestQuotaError", "IngestVerifyError", "ManifestEntry",
           "PushError", "StoreHTTPServer", "StoreManifest", "TileCache",
           "delete_key", "make_server", "push_field"]

_SERVER_NAMES = ("StoreHTTPServer", "make_server")
_ASERVER_NAMES = ("AsyncStoreHTTPServer",)
_CLIENT_NAMES = ("PushError", "delete_key", "push_field")


def __getattr__(name):
    # The HTTP shell drags in http.server/socketserver (and the client
    # http.client); load them only when a server/client symbol is actually
    # requested, so plain `import repro` (library use, CLI compress, every
    # test worker) stays lean.
    if name in _SERVER_NAMES:
        from repro.store import server

        return getattr(server, name)
    if name in _ASERVER_NAMES:
        from repro.store import aserver

        return getattr(aserver, name)
    if name in _CLIENT_NAMES:
        from repro.store import client

        return getattr(client, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

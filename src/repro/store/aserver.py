"""Non-blocking ``selectors`` front end for the store HTTP service.

One event-loop thread owns every socket: it accepts connections, parses
request heads from per-connection buffers, frames bodies, and drains
response bytes — all non-blocking.  Route work (store reads, ingest) runs on
a bounded :class:`~concurrent.futures.ThreadPoolExecutor`, calling the same
transport-agnostic :class:`repro.store.server.StoreApp` the threaded server
wraps, so routes, status codes and auth are identical across front ends by
construction.

Why this shape: the threaded fallback burns one OS thread per connection,
which collapses under hundreds of mostly-idle keep-alive clients.  Here idle
connections cost one selector registration each; only connections with an
in-flight request occupy a worker.  The loop enforces what threads cannot:

* **keep-alive by default** (HTTP/1.1 semantics, ``Connection: close``
  honored, HTTP/1.0 gets close-by-default);
* **read timeouts** — an idle or stalled connection is dropped by the loop's
  timeout scan, and a stalled *upload* body times out inside
  :class:`_BodyChannel` (surfacing as a 400 to the client), so slow clients
  can never pin a worker forever;
* **a max-connections guard** — accepts beyond the cap get an immediate
  best-effort ``503`` and never reach the selector loop's bookkeeping;
* **backpressure** — a body channel buffering past its high-water mark
  pauses reads on that connection until the worker catches up.

Threading discipline (this module has exactly three kinds of threads):

* the *loop thread* (whoever calls :meth:`serve_forever`) exclusively owns
  every ``_Conn``, the selector, and the ``_conns`` / ``_paused`` sets — no
  locks needed;
* *worker threads* touch only the :class:`_BodyChannel` (internally locked)
  and the completion queue (a ``SimpleQueue``), then wake the loop over a
  socketpair;
* any thread may call :meth:`shutdown`.

A handler never sees a socket, and the loop never blocks on a body: the
channel is the only bridge, and dropping a connection feeds the channel EOF
so a blocked worker always unblocks.
"""

from __future__ import annotations

import io
import queue
import selectors
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http import HTTPStatus
from typing import Any, Callable, Dict, List, Optional, Set, Tuple, cast

from repro.store.ingest import IngestManager
from repro.store.server import Request, Response, StoreApp
from repro.store.store import ArchiveStore
from repro.utils.concurrency import install_guards, make_lock

__all__ = ["AsyncStoreHTTPServer"]

#: Selector-key sentinels for the listening and wakeup sockets.
_ACCEPT = object()
_WAKE = object()

_RECV_BYTES = 1 << 16
#: A request head larger than this is answered 431 — ours are tiny.
_MAX_HEADER_BYTES = 1 << 16
#: Cap on buffered pipelined bytes while a request is in flight.
_MAX_BUFFERED_BYTES = 1 << 20
#: Pause reading a connection whose body channel buffers past this.  Must
#: stay above the largest single ``rfile.read`` the parsers issue (1 MiB
#: in ``read_sized_stream``) so a paused channel can always satisfy the
#: blocked read from what it already holds.
_BODY_HIGH_WATER = 4 << 20
#: How long a closing connection drains inbound bytes before the real
#: close, so the client can read the response before any RST.
_LINGER_SECONDS = 2.0


class _BodyChannel:
    """The blocking body ``rfile`` a worker reads, fed by the event loop.

    Mirrors socket-``makefile`` semantics the body parsers rely on:
    ``read(n)`` returns exactly ``n`` bytes unless EOF arrives first, and
    ``readline`` honors its byte limit.  ``timeout`` bounds each blocking
    wait; expiry raises ``ValueError("corrupt upload body: ...")``, which
    the app's upload routes answer with a connection-closing 400.

    The loop feeds *every* byte received while the request is in flight —
    including pipelined follow-up requests; :meth:`take_leftover` hands the
    unconsumed tail back when the response is queued.
    """

    def __init__(self, timeout: Optional[float],
                 on_drain: Callable[[], None]) -> None:
        self._cond = threading.Condition(
            cast(threading.Lock, make_lock("_BodyChannel._cond")))
        self._buf = bytearray()  # guarded by: self._cond
        self._eof = False  # guarded by: self._cond
        self._timeout = timeout
        self._on_drain = on_drain

    # ------------------------------------------------------------- loop side
    def feed(self, data: bytes) -> None:
        with self._cond:
            self._buf += data
            self._cond.notify_all()

    def feed_eof(self) -> None:
        with self._cond:
            self._eof = True
            self._cond.notify_all()

    def buffered(self) -> int:
        with self._cond:
            return len(self._buf)

    def take_leftover(self) -> bytes:
        """Unconsumed bytes (pipelined requests); also marks EOF so a
        still-blocked reader can never hang after its response is queued."""
        with self._cond:
            self._eof = True
            data = bytes(self._buf)
            del self._buf[:]
            self._cond.notify_all()
            return data

    # ----------------------------------------------------------- worker side
    def read(self, n: Optional[int] = -1) -> bytes:
        if n is None or n < 0:
            return self._read_all()
        if n == 0:
            return b""
        deadline = self._deadline()
        with self._cond:
            while len(self._buf) < n and not self._eof:
                self._block(deadline)
            take = min(n, len(self._buf))
            data = bytes(self._buf[:take])
            del self._buf[:take]
        if data:
            self._on_drain()
        return data

    def readline(self, limit: int = -1) -> bytes:
        deadline = self._deadline()
        with self._cond:
            while True:
                idx = self._buf.find(b"\n")
                if idx >= 0:
                    end = idx + 1
                    if 0 <= limit < end:
                        end = limit
                    break
                if 0 <= limit <= len(self._buf):
                    end = limit
                    break
                if self._eof:
                    end = len(self._buf)
                    break
                self._block(deadline)
            data = bytes(self._buf[:end])
            del self._buf[:end]
        if data:
            self._on_drain()
        return data

    def _read_all(self) -> bytes:
        deadline = self._deadline()
        with self._cond:
            while not self._eof:
                self._block(deadline)
            data = bytes(self._buf)
            del self._buf[:]
        if data:
            self._on_drain()
        return data

    def _deadline(self) -> Optional[float]:
        return None if self._timeout is None else time.monotonic() + self._timeout

    def _block(self, deadline: Optional[float]) -> None:
        """One bounded wait for more bytes.  Must hold ``self._cond``."""
        if deadline is None:
            self._cond.wait()
            return
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise ValueError(
                "corrupt upload body: timed out waiting for request bytes")
        self._cond.wait(remaining)


class _Conn:
    """Loop-thread-only state of one client connection.

    ``state`` walks ``headers`` (accumulating a request head) ->
    ``dispatched`` (a worker owns the request; body bytes go to the
    channel) -> ``writing`` (draining the response) -> back to ``headers``
    (keep-alive) or ``draining`` (lingering close: write side shut, inbound
    discarded until EOF or deadline).
    """

    __slots__ = ("sock", "inbuf", "outbuf", "state", "channel", "close_after",
                 "last_active", "linger_deadline", "registered", "events")

    def __init__(self, sock: socket.socket) -> None:
        self.sock: Optional[socket.socket] = sock
        self.inbuf = bytearray()
        self.outbuf = bytearray()
        self.state = "headers"
        self.channel: Optional[_BodyChannel] = None
        self.close_after = False
        self.last_active = time.monotonic()
        self.linger_deadline = 0.0
        self.registered = False
        self.events = 0


def _default_workers() -> int:
    import os
    return max(4, min(32, os.cpu_count() or 4))


class AsyncStoreHTTPServer:
    """Drop-in alternative to :class:`repro.store.server.StoreHTTPServer`.

    Same constructor shape, same ``url`` / ``store`` / ``ingest`` /
    ``metrics`` attributes, same ``serve_forever()`` / ``shutdown()`` /
    ``server_close()`` protocol — ``make_server(..., server="selectors")``
    is the only intended way to build one.
    """

    def __init__(self, address: Tuple[str, int], store: ArchiveStore, *,
                 quiet: bool = True, ingest: Optional[IngestManager] = None,
                 read_timeout: Optional[float] = None,
                 max_connections: int = 512,
                 workers: Optional[int] = None,
                 peers: Optional[List[str]] = None) -> None:
        self.app = StoreApp(store, ingest=ingest, peers=peers)
        self.store = store
        self.ingest = ingest
        self.quiet = quiet
        self.metrics = self.app.metrics
        self.read_timeout = read_timeout
        self.max_connections = max_connections
        self._listen = socket.create_server(address, backlog=512)
        self._listen.setblocking(False)
        self.server_address: Tuple[str, int] = \
            self._listen.getsockname()[:2]
        self._pool = ThreadPoolExecutor(
            max_workers=workers if workers else _default_workers(),
            thread_name_prefix="repro-aserve")
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listen, selectors.EVENT_READ, _ACCEPT)
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._wake_send.setblocking(False)
        self._selector.register(self._wake_recv, selectors.EVENT_READ, _WAKE)
        self._completions: "queue.SimpleQueue[Tuple[_Conn, Response]]" = \
            queue.SimpleQueue()
        self._conns: Set[_Conn] = set()
        self._paused: Set[_Conn] = set()
        self._shutdown_requested = False
        self._stopped = threading.Event()
        self._stopped.set()  # not running until serve_forever starts
        self._last_scan = 0.0

    @property
    def url(self) -> str:
        host, port = self.server_address
        return f"http://{host}:{port}"

    # ------------------------------------------------------------- lifecycle
    def serve_forever(self, poll_interval: float = 0.5) -> None:
        """Run the event loop on the calling thread until :meth:`shutdown`."""
        self._stopped.clear()
        try:
            while not self._shutdown_requested:
                try:
                    events = self._selector.select(poll_interval)
                except OSError:  # pragma: no cover - closed under our feet
                    break
                for key, mask in events:
                    data = key.data
                    if data is _ACCEPT:
                        self._accept()
                    elif data is _WAKE:
                        self._drain_wake()
                    else:
                        conn = cast(_Conn, data)
                        if mask & selectors.EVENT_READ:
                            self._on_readable(conn)
                        if mask & selectors.EVENT_WRITE \
                                and conn.sock is not None:
                            self._flush(conn)
                self._process_completions()
                self._resume_paused()
                self._check_timeouts(time.monotonic())
        finally:
            self._stopped.set()

    def shutdown(self) -> None:
        """Ask the loop to exit and wait for it (safe from any thread)."""
        self._shutdown_requested = True
        self._wake()
        self._stopped.wait(timeout=10.0)

    def server_close(self) -> None:
        """Release every resource.  Call after :meth:`shutdown`."""
        self._shutdown_requested = True
        self._wake()
        self._stopped.wait(timeout=5.0)
        for conn in list(self._conns):
            self._drop(conn)
        self._pool.shutdown(wait=False)
        for sock in (self._listen, self._wake_send, self._wake_recv):
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
        try:
            self._selector.close()
        except OSError:  # pragma: no cover
            pass

    # ----------------------------------------------------------- loop: wakeup
    def _wake(self) -> None:
        try:
            self._wake_send.send(b"\x00")
        except (BlockingIOError, InterruptedError):
            pass  # a wake byte is already pending; the loop will run
        except OSError:
            pass  # socketpair closed: the server is shutting down

    def _drain_wake(self) -> None:
        try:
            while self._wake_recv.recv(4096):
                pass
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:  # pragma: no cover
            pass

    # ----------------------------------------------------------- loop: accept
    def _accept(self) -> None:
        while True:
            try:
                sock, _addr = self._listen.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:  # pragma: no cover - listener closed
                return
            if len(self._conns) >= self.max_connections:
                self._refuse(sock)
                continue
            self._adopt(sock)

    def _adopt(self, sock: socket.socket) -> _Conn:
        sock.setblocking(False)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - e.g. AF_UNIX
            pass
        conn = _Conn(sock)
        self._conns.add(conn)
        self._selector.register(sock, selectors.EVENT_READ, conn)
        conn.registered = True
        conn.events = selectors.EVENT_READ
        return conn

    def _refuse(self, sock: socket.socket) -> None:
        """Best-effort 503 to a connection over the cap, then close."""
        if len(self._conns) >= self.max_connections * 2:
            # Under a connect flood even refusals are rationed: plain close.
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
            return
        conn = self._adopt(sock)
        conn.close_after = True
        self._queue_response(conn, StoreApp._json(
            503, {"error": f"server is at its {self.max_connections}-"
                           f"connection limit; retry shortly"}, close=True))

    # ------------------------------------------------------------- loop: read
    def _on_readable(self, conn: _Conn) -> None:
        sock = conn.sock
        if sock is None:
            return  # stale selector event for a connection dropped this tick
        try:
            data = sock.recv(_RECV_BYTES)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._drop(conn)
            return
        if not data:
            # Client FIN (or full close).  If a worker is mid-request its
            # channel gets EOF so it unblocks; its completion is discarded.
            self._drop(conn)
            return
        if conn.state == "draining":
            return  # lingering close: discard until EOF or deadline
        conn.last_active = time.monotonic()
        if conn.channel is not None:
            conn.channel.feed(data)
            self._update_events(conn)  # may pause past the high-water mark
            return
        conn.inbuf += data
        if conn.state == "headers":
            self._try_parse(conn)
        self._update_events(conn)

    def _try_parse(self, conn: _Conn) -> None:
        """Parse one request head from ``inbuf`` and dispatch it."""
        if conn.state != "headers":
            return
        buf = conn.inbuf
        end = buf.find(b"\r\n\r\n")
        if end < 0:
            if len(buf) > _MAX_HEADER_BYTES:
                self._queue_response(conn, StoreApp._json(
                    431, {"error": "request header section too large"},
                    close=True))
            return
        head = bytes(buf[:end])
        del buf[:end + 4]
        lines = head.decode("latin-1").split("\r\n")
        first = lines[0].split(" ")
        if len(first) != 3:
            self._queue_response(conn, StoreApp._json(
                400, {"error": f"malformed request line {lines[0]!r}"},
                close=True))
            return
        method, target, version = first
        if not version.startswith("HTTP/1."):
            self._queue_response(conn, StoreApp._json(
                505, {"error": f"unsupported protocol {version!r}"},
                close=True))
            return
        headers: Dict[str, str] = {}
        for raw in lines[1:]:
            if not raw:
                continue
            name, sep, value = raw.partition(":")
            if not sep:
                self._queue_response(conn, StoreApp._json(
                    400, {"error": f"malformed header line {raw!r}"},
                    close=True))
                return
            headers[name.strip().lower()] = value.strip()
        connection = headers.get("connection", "").lower()
        conn.close_after = ("close" in connection
                            or (version == "HTTP/1.0"
                                and "keep-alive" not in connection))
        if method not in ("GET", "POST", "DELETE"):
            self._queue_response(conn, StoreApp._json(
                501, {"error": f"unsupported method {method!r}"}, close=True))
            return
        chunked = "chunked" in headers.get("transfer-encoding", "").lower()
        try:
            declared = int(headers.get("content-length", "0"))
        except ValueError:
            declared = 0  # the app answers the bad Content-Length with a 400
        rfile: Any
        if chunked or declared > 0:
            channel: Optional[_BodyChannel] = _BodyChannel(
                self.read_timeout, self._wake)
            rfile = channel
        else:
            channel = None
            rfile = io.BytesIO(b"")
        if headers.get("expect", "").lower() == "100-continue":
            conn.outbuf += b"HTTP/1.1 100 Continue\r\n\r\n"
        conn.state = "dispatched"
        conn.channel = channel
        conn.last_active = time.monotonic()
        if channel is not None and buf:
            # Body bytes that arrived glued to the head.
            channel.feed(bytes(buf))
            del buf[:]
        request = Request(method, target, headers, rfile)
        try:
            self._pool.submit(self._run_handler, conn, request)
        except RuntimeError:  # pool shut down: the server is closing
            self._drop(conn)
            return
        if conn.outbuf:
            self._flush(conn)
        else:
            self._update_events(conn)

    # ---------------------------------------------------------- worker thread
    def _run_handler(self, conn: _Conn, request: Request) -> None:
        """Worker-pool entry: run the app, queue the completion, wake."""
        try:
            response = self.app.handle(request)
        except Exception as exc:  # noqa: BLE001 - answered as a 500
            response = StoreApp._json(
                500, {"error": f"internal error: {exc!r}"}, close=True)
        self._completions.put((conn, response))
        # Unconditional wake.  A "skip if a wake byte is already pending"
        # flag races: the loop can drain a fresh byte together with a stale
        # one and leave the flag claiming a byte is pending when none is,
        # stranding completions until the poll timeout.  A non-blocking
        # send on the socketpair is cheap, and EAGAIN (buffer full) means a
        # wake is guaranteed pending anyway.
        self._wake()

    # ----------------------------------------------------- loop: completions
    def _process_completions(self) -> None:
        while True:
            try:
                conn, response = self._completions.get_nowait()
            except queue.Empty:
                return
            channel = conn.channel
            conn.channel = None
            if conn.sock is None:
                continue  # the connection died while the handler ran
            if channel is not None:
                leftover = channel.take_leftover()
                if leftover:
                    conn.inbuf[:0] = leftover
            self._queue_response(conn, response)

    def _queue_response(self, conn: _Conn, response: Response) -> None:
        if conn.sock is None:
            return
        close = response.close or conn.close_after
        conn.close_after = close
        if close:
            del conn.inbuf[:]  # no further requests will be parsed
        conn.state = "writing"
        conn.outbuf += self._render(response, close)
        conn.last_active = time.monotonic()
        self._flush(conn)

    @staticmethod
    def _render(response: Response, close: bool) -> bytes:
        try:
            phrase = HTTPStatus(response.status).phrase
        except ValueError:
            phrase = "Unknown"
        lines = [f"HTTP/1.1 {response.status} {phrase}",
                 "Server: repro-aserve/1"]
        for name, value in response.headers.items():
            lines.append(f"{name}: {value}")
        lines.append(f"Content-Length: {len(response.body)}")
        if close:
            lines.append("Connection: close")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        if response.status == 304:
            return head
        return head + response.body

    # ------------------------------------------------------------ loop: write
    def _flush(self, conn: _Conn) -> None:
        sock = conn.sock
        if sock is None:
            return
        while conn.outbuf:
            try:
                sent = sock.send(conn.outbuf)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._drop(conn)
                return
            if sent <= 0:  # pragma: no cover - send never returns 0 here
                break
            del conn.outbuf[:sent]
            conn.last_active = time.monotonic()
        if conn.outbuf or conn.state != "writing":
            self._update_events(conn)
            return
        # Response fully written.
        if conn.close_after:
            self._start_linger(conn)
            return
        conn.state = "headers"
        self._update_events(conn)
        self._try_parse(conn)

    def _start_linger(self, conn: _Conn) -> None:
        """Shut the write side, then discard inbound until EOF/deadline.

        Closing outright with unread inbound bytes (an aborted upload body,
        say) sends RST, which can destroy the response sitting in the
        client's receive buffer.  The drain gives well-behaved clients time
        to read the response and close first.
        """
        sock = conn.sock
        if sock is None:
            return
        try:
            sock.shutdown(socket.SHUT_WR)
        except OSError:
            self._drop(conn)
            return
        conn.state = "draining"
        del conn.inbuf[:]
        conn.linger_deadline = time.monotonic() + _LINGER_SECONDS
        self._update_events(conn)

    # ----------------------------------------------------- loop: housekeeping
    def _read_paused(self, conn: _Conn) -> bool:
        if conn.state == "draining":
            return False
        channel = conn.channel
        if channel is not None:
            return channel.buffered() >= _BODY_HIGH_WATER
        return len(conn.inbuf) >= _MAX_BUFFERED_BYTES

    def _update_events(self, conn: _Conn) -> None:
        sock = conn.sock
        if sock is None:
            return
        mask = 0
        if not self._read_paused(conn):
            mask |= selectors.EVENT_READ
        if conn.outbuf:
            mask |= selectors.EVENT_WRITE
        if mask & selectors.EVENT_READ:
            self._paused.discard(conn)
        else:
            self._paused.add(conn)
        if mask == 0:
            if conn.registered:
                try:
                    self._selector.unregister(sock)
                except (KeyError, ValueError):  # pragma: no cover
                    pass
                conn.registered = False
            return
        if not conn.registered:
            self._selector.register(sock, mask, conn)
            conn.registered = True
            conn.events = mask
        elif mask != conn.events:
            self._selector.modify(sock, mask, conn)
            conn.events = mask

    def _resume_paused(self) -> None:
        if not self._paused:
            return
        for conn in list(self._paused):
            self._update_events(conn)

    def _check_timeouts(self, now: float) -> None:
        if now - self._last_scan < 0.25:
            return
        self._last_scan = now
        for conn in list(self._conns):
            if conn.state == "draining":
                if now >= conn.linger_deadline:
                    self._drop(conn)
            elif (self.read_timeout is not None
                    and conn.state != "dispatched"
                    and now - conn.last_active > self.read_timeout):
                # "dispatched" is excluded: a stalled upload is timed out by
                # its _BodyChannel (bounded per-read waits), and a long
                # decode must not be killed under the worker.
                self._drop(conn)

    def _drop(self, conn: _Conn) -> None:
        sock = conn.sock
        if sock is None:
            return
        conn.sock = None
        if conn.registered:
            try:
                self._selector.unregister(sock)
            except (KeyError, ValueError, OSError):  # pragma: no cover
                pass
            conn.registered = False
        self._conns.discard(conn)
        self._paused.discard(conn)
        channel = conn.channel
        conn.channel = None
        if channel is not None:
            channel.feed_eof()  # a blocked worker must never hang
        try:
            sock.close()
        except OSError:  # pragma: no cover
            pass


install_guards(_BodyChannel, "_cond", ("_buf", "_eof"))

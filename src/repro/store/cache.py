"""Size-bounded decoded-tile LRU cache with single-flight loading.

Decoded tiles are the expensive unit of the read path (seek + CRC + entropy
decode + inverse transforms), and concurrent region reads over hot archives
hit the same tiles again and again.  :class:`TileCache` makes that cost
amortized and bounded:

* **LRU, bounded by payload bytes** — ``max_bytes`` counts the decoded
  arrays' ``nbytes``, not entry counts, so the bound is meaningful across
  mixed tile sizes.  Inserting past the bound evicts least-recently-used
  entries; an array larger than the whole cache is returned to the caller
  but never stored.
* **Single-flight loading** (per-tile locking) — :meth:`get_or_load` runs
  the loader for a missing key on exactly one thread; concurrent callers of
  the same key block on that one result instead of decoding the same tile
  twice.  Different keys never wait on each other.
* **Failures are not cached** — a loader exception propagates to the owner
  *and* every waiter of that flight, then the key is clean again: the next
  request retries from scratch (one corrupt tile must not poison a server).
* **Entries are immutable** — cached arrays are frozen (``writeable=False``)
  so the many threads holding views of a shared tile cannot race on writes.

The cache is codec-agnostic: keys are opaque hashables (the store uses
``(archive identity, index.tile_key(i))``) and values are ndarrays.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Hashable, Optional

import numpy as np

from repro.utils.concurrency import install_guards, make_lock

#: Default decoded-tile budget (256 MB) — ~1000 float64 tiles of 32^3, small
#: against server RAM, large against any single region's working set.
DEFAULT_CACHE_BYTES = 256 * 1024 * 1024


class _Flight:
    """One in-progress load: waiters block on ``event``, then read the outcome."""

    __slots__ = ("event", "value", "error")

    def __init__(self):
        self.event = threading.Event()
        self.value: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None


class TileCache:
    """Thread-safe LRU over decoded tiles, bounded by decoded bytes."""

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES):
        max_bytes = int(max_bytes)
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = max_bytes
        self._lock = make_lock("TileCache._lock")
        self._entries: "OrderedDict[Hashable, np.ndarray]" = OrderedDict()  # guarded by: self._lock
        self._inflight: Dict[Hashable, _Flight] = {}  # guarded by: self._lock
        self._nbytes = 0  # guarded by: self._lock
        # Monotonic counters: written under self._lock, read lock-free by
        # stats consumers (a torn read of an int is impossible in CPython).
        self.hits = 0
        self.misses = 0
        self.loads = 0
        self.evictions = 0

    # ------------------------------------------------------------- inspection
    @property
    def nbytes(self) -> int:
        """Decoded bytes currently resident."""
        with self._lock:
            return self._nbytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> dict:
        """A point-in-time snapshot of counters and residency."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "nbytes": self._nbytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "loads": self.loads,
                "evictions": self.evictions,
            }

    # -------------------------------------------------------------- mutation
    def get(self, key: Hashable) -> Optional[np.ndarray]:
        """Fetch a cached tile (marking it most recently used), else ``None``."""
        with self._lock:
            arr = self._entries.get(key)
            if arr is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return arr

    def put(self, key: Hashable, arr: np.ndarray) -> np.ndarray:
        """Insert a decoded tile, evicting LRU entries past ``max_bytes``.

        Returns the frozen array actually usable by callers (the input is
        frozen in place — cached tiles are shared across threads and must
        never be written through).
        """
        arr = self._freeze(arr)
        with self._lock:
            self._insert(key, arr)
        return arr

    def get_or_load(self, key: Hashable,
                    loader: Callable[[], np.ndarray]) -> np.ndarray:
        """Return the cached tile for ``key``, loading it at most once.

        On a miss, exactly one caller (the *owner*) runs ``loader``; every
        concurrent caller of the same key blocks until the owner finishes and
        then shares its array (or re-raises its exception).  Nothing is held
        under the cache lock while the loader runs, so loads of different
        tiles proceed in parallel.
        """
        while True:
            with self._lock:
                arr = self._entries.get(key)
                if arr is not None:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return arr
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _Flight()
                    self._inflight[key] = flight
                    self.misses += 1
                    break  # this thread owns the load
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            if flight.value is not None:
                with self._lock:
                    self.hits += 1
                return flight.value
            # Neither value nor error: cannot happen with the publish order
            # below, but looping (re-checking the cache) is safe regardless.

        try:
            arr = self._freeze(loader())
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                del self._inflight[key]
            flight.event.set()
            raise
        flight.value = arr
        with self._lock:
            del self._inflight[key]
            self._insert(key, arr)
            self.loads += 1
        flight.event.set()
        return arr

    def clear(self) -> None:
        """Drop every resident entry (in-flight loads are unaffected)."""
        with self._lock:
            self._entries.clear()
            self._nbytes = 0

    def purge(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every resident entry whose key satisfies ``predicate``.

        The store purges a removed archive's tiles this way (its keys would
        otherwise sit unreachable in the LRU, counting against the budget
        until unrelated traffic evicts them).  Returns the number dropped.
        """
        with self._lock:
            doomed = [k for k in self._entries if predicate(k)]
            for k in doomed:
                self._nbytes -= int(self._entries.pop(k).nbytes)
        return len(doomed)

    # -------------------------------------------------------------- internals
    @staticmethod
    def _freeze(arr: np.ndarray) -> np.ndarray:
        arr = np.asarray(arr)
        arr.flags.writeable = False  # clearing the flag is always permitted
        return arr

    def _insert(self, key: Hashable, arr: np.ndarray) -> None:
        """Must hold ``self._lock``."""
        size = int(arr.nbytes)
        if size > self.max_bytes:
            return  # larger than the whole budget: serve it, never cache it
        old = self._entries.pop(key, None)
        if old is not None:
            self._nbytes -= int(old.nbytes)
        self._entries[key] = arr
        self._nbytes += size
        while self._nbytes > self.max_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._nbytes -= int(evicted.nbytes)
            self.evictions += 1


install_guards(TileCache, "_lock", ("_entries", "_inflight", "_nbytes"))

"""Thin write client for a writable store node: ``repro push`` lives here.

:func:`push_field` streams a field to ``POST /v1/<key>`` without ever
materializing it: the source stays a memory-mapped array and goes out as
chunked-transfer row slabs, so fields larger than RAM push in bounded
memory.  A ``rel`` bound needs the global value range, which the client
computes with a streaming min/max pass over the same slabs (the server
cannot replay the stream).

Stdlib-only (``http.client``), mirroring the server side.
"""

from __future__ import annotations

import json
import math
from http.client import HTTPConnection, HTTPException, HTTPSConnection
from pathlib import Path
from typing import Iterator, Optional, Tuple, Union
from urllib.parse import quote, urlsplit

import numpy as np

from repro.bounds import MODE_REL, as_bound
from repro.sources.http import RetryPolicy

#: Upload granularity: whole rows totalling about this many bytes per chunk.
DEFAULT_CHUNK_BYTES = 1 << 20


class PushError(RuntimeError):
    """A push/delete was refused; ``status`` carries the HTTP code."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


def open_field(source, dims=None) -> np.ndarray:
    """Resolve a push source to an array without loading it into RAM.

    ``.npy`` paths open memory-mapped; raw float32 files need ``dims`` and
    open as a read-only memmap; arrays pass through.
    """
    if isinstance(source, np.ndarray):
        return source
    path = Path(source)
    if path.suffix == ".npy":
        return np.load(path, mmap_mode="r")
    if dims is None:
        raise ValueError(
            f"raw field file {str(path)!r} needs dims= (only .npy files are "
            f"self-describing)")
    return np.memmap(path, dtype=np.float32, mode="r",
                     shape=tuple(int(d) for d in dims))


def _row_slabs(arr: np.ndarray, chunk_bytes: int) -> Iterator[np.ndarray]:
    """Whole-row slabs of roughly ``chunk_bytes`` each (at least one row)."""
    if arr.ndim == 0:
        yield arr.reshape(1)
        return
    row_bytes = int(np.prod(arr.shape[1:], dtype=np.int64)) * arr.dtype.itemsize
    rows = max(1, chunk_bytes // max(1, row_bytes))
    for start in range(0, arr.shape[0], rows):
        yield arr[start:start + rows]


def _streamed_range(arr: np.ndarray, chunk_bytes: int) -> Tuple[float, float]:
    lo, hi = math.inf, -math.inf
    for slab in _row_slabs(arr, chunk_bytes):
        slab_lo, slab_hi = float(np.min(slab)), float(np.max(slab))
        if not (math.isfinite(slab_lo) and math.isfinite(slab_hi)):
            # Checked per slab: ``min(inf, nan)`` keeps the first argument,
            # so a NaN could otherwise vanish into the running bounds and
            # the whole body would stream before the server rejects it.
            raise ValueError(
                "cannot derive a rel-bound data range: the source contains "
                "non-finite values (NaN/Inf); clean the field or pass an "
                "explicit data_range=")
        lo = min(lo, slab_lo)
        hi = max(hi, slab_hi)
    if not (math.isfinite(lo) and math.isfinite(hi)):  # zero-size source
        raise ValueError(
            "cannot derive a rel-bound data range from an empty source; "
            "pass an explicit data_range=")
    return lo, hi


def _connect(url: str, timeout: float) -> Tuple[HTTPConnection, str]:
    """Open a connection to ``url`` and return it with the URL's base path.

    The path component is part of the server address (a reverse proxy may
    mount the store under a prefix): ``http://host/prefix`` must produce
    requests against ``/prefix/v1/<key>``, not ``/v1/<key>`` at the root.
    """
    parts = urlsplit(url)
    if parts.scheme == "https":
        conn: HTTPConnection = HTTPSConnection(parts.hostname,
                                               parts.port or 443,
                                               timeout=timeout)
    elif parts.scheme == "http":
        conn = HTTPConnection(parts.hostname, parts.port or 80,
                              timeout=timeout)
    else:
        raise ValueError(f"unsupported server URL {url!r} (need http/https)")
    return conn, parts.path.rstrip("/")


def _retrying_connect(url: str, timeout: float, retry: RetryPolicy
                      ) -> Tuple[HTTPConnection, str]:
    """``_connect`` + an explicit TCP/TLS connect, retried under ``retry``.

    Forcing the connect here (instead of lazily inside the first
    ``request()``) pins every transient connection fault to a point where
    not a single body byte is on the wire — the only place a non-idempotent
    push may retry safely.
    """
    last_fault: Optional[BaseException] = None
    for attempt in range(retry.attempts):
        if attempt:
            retry.backoff(attempt - 1)
        conn, base = _connect(url, timeout)
        try:
            conn.connect()
            return conn, base
        except (ConnectionError, TimeoutError, OSError) as exc:
            conn.close()
            last_fault = exc
    raise OSError(f"cannot connect to {url} after {retry.attempts} "
                  f"attempts: {last_fault}") from last_fault


def _finish(conn) -> dict:
    resp = conn.getresponse()
    raw = resp.read()
    try:
        payload = json.loads(raw) if raw else {}
    except json.JSONDecodeError:
        payload = {"error": raw.decode("utf-8", "replace")[:200]}
    if resp.status >= 400:
        raise PushError(resp.status, payload.get("error", resp.reason))
    payload["status"] = resp.status
    return payload


def push_field(url: str, key: str,
               source: Union[np.ndarray, str, Path], *,
               bound=1e-3, dims=None, codec: str = "sz21",
               token: Optional[str] = None,
               data_range: Optional[Tuple[float, float]] = None,
               chunk_bytes: int = DEFAULT_CHUNK_BYTES,
               timeout: float = 600.0,
               retry: Optional[RetryPolicy] = None) -> dict:
    """Stream ``source`` to ``POST {url}/v1/{key}`` and return the response.

    ``bound`` is an :class:`~repro.bounds.ErrorBound` or a bare number
    (= ``Rel``); for ``rel`` the value range is computed in a streaming pass
    unless ``data_range`` is given.  ``token`` authenticates against the
    server's manifest (``Authorization: Bearer``).  Raises
    :class:`PushError` on any non-2xx response.
    """
    arr = open_field(source, dims)
    if arr.ndim == 0:
        raise ValueError(
            "cannot push a 0-d source: the server addresses fields by "
            "per-axis extents; reshape to at least 1-d (e.g. arr.reshape(1))")
    bound = as_bound(bound)
    if bound.mode == MODE_REL and data_range is None:
        data_range = _streamed_range(arr, chunk_bytes)
    headers = {
        "X-Repro-Shape": ",".join(str(int(s)) for s in arr.shape),
        "X-Repro-Dtype": str(arr.dtype),
        "X-Repro-Bound": repr(float(bound.value)),
        "X-Repro-Bound-Mode": bound.mode,
        "X-Repro-Codec": codec,
    }
    if data_range is not None:
        headers["X-Repro-Data-Range"] = f"{data_range[0]!r},{data_range[1]!r}"
    if token is not None:
        headers["Authorization"] = f"Bearer {token}"
    body = (np.ascontiguousarray(slab).tobytes()
            for slab in _row_slabs(arr, chunk_bytes))
    # Retry covers *connection establishment only*: a push is not idempotent
    # once body bytes are on the wire (the server may already be ingesting),
    # so transient faults after the explicit connect() surface to the caller.
    retry = retry if retry is not None else RetryPolicy()
    conn, base = _retrying_connect(url, timeout, retry)
    try:
        try:
            conn.request("POST", f"{base}/v1/{quote(key, safe='')}",
                         body=body, headers=headers, encode_chunked=True)
        except (BrokenPipeError, ConnectionResetError):
            # The server refused early (401/405/413/...) and closed its end
            # while the body was still streaming; the response is already on
            # the wire — read it so the caller sees the status, not EPIPE.
            pass
        return _finish(conn)
    finally:
        conn.close()


def delete_key(url: str, key: str, *, token: Optional[str] = None,
               timeout: float = 60.0,
               retry: Optional[RetryPolicy] = None) -> dict:
    """``DELETE /v1/{key}`` on a writable store node.

    DELETE is idempotent, so the whole exchange retries under ``retry``
    (default :class:`repro.sources.http.RetryPolicy`) on transient faults:
    connection errors, timeouts, and 5xx/429/408 responses.  Non-transient
    refusals (401, 404, ...) raise :class:`PushError` immediately.
    """
    headers = {}
    if token is not None:
        headers["Authorization"] = f"Bearer {token}"
    retry = retry if retry is not None else RetryPolicy()
    last_fault: Optional[BaseException] = None
    for attempt in range(retry.attempts):
        if attempt:
            retry.backoff(attempt - 1)
        conn, base = _connect(url, timeout)
        try:
            conn.request("DELETE", f"{base}/v1/{quote(key, safe='')}",
                         headers=headers)
            return _finish(conn)
        except PushError as exc:
            if not retry.retryable_status(exc.status):
                raise
            last_fault = exc
        except (HTTPException, ConnectionError, TimeoutError, OSError) as exc:
            last_fault = exc
        finally:
            conn.close()
    raise OSError(f"DELETE {url}/v1/{key} failed after {retry.attempts} "
                  f"attempts: {last_fault}") from last_fault

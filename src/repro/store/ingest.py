"""Streaming ingest: uploads -> verified archives -> atomic publish.

This is the write half of the store service (the read half being
:class:`repro.store.ArchiveStore`).  :class:`IngestManager` turns an uploaded
field into a served key in four steps, none of which ever materializes the
field in memory:

1. **Stream-compress** — the upload arrives as an iterator of row blocks and
   rides :func:`repro.api.compress_chunked`'s iterator source, so memory is
   bounded by one chunk regardless of field size.
2. **Stage + verify** — the archive bytes are written to a ``*.tmp`` file
   under the root's ``archives/`` directory (SHA-256 content token computed
   on the way through, file fsync'd), then re-opened and verified: the front
   header must parse and a spot-check of tiles (first/middle/last) must pass
   their CRC-32s.  A verification failure is a server-side fault
   (:class:`IngestVerifyError`), never published.
3. **Atomic publish** — ``os.replace`` moves the temp file to its
   generation-numbered final name, the :class:`~repro.store.manifest.StoreManifest`
   records the key durably, and the :class:`ArchiveStore` swaps the key to
   the new archive in one registry operation.
4. **Deferred unlink** — on replacement the old archive's pin counts let
   in-flight readers finish against the old file; its ``pread`` handle closes
   when the last reader drains, and only then is the old file unlinked
   (``ArchiveStore``'s ``on_release`` callback).

A crash between any two steps leaves either the old or the new state plus at
most one stray file, which :meth:`IngestManager.sweep` removes on the next
startup (stale ``*.tmp`` anywhere under the root, and ``archives/`` files no
longer referenced by the manifest).

The module also owns the upload *body* parsers used by the HTTP layer
(:func:`read_chunked_stream`, :func:`read_sized_stream`,
:func:`read_row_blocks`); malformed bodies raise
``ValueError("corrupt ...")``, the project-wide parser convention.
"""

from __future__ import annotations

import hashlib
import os
import re
import time
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.api import DEFAULT_CHUNK_ELEMS, compress_chunked, load_index, open_reader
from repro.bounds import ErrorBound, as_bound
from repro.registry import compressor_spec
from repro.store.manifest import (
    ManifestEntry,
    StoreManifest,
    fsync_directory,
)
from repro.store.store import ArchiveStore
from repro.utils.concurrency import install_guards, make_lock

#: Default per-key quota on *uploaded field bytes* (1 GiB).  The archive on
#: disk is smaller by the compression ratio; the quota guards the streaming
#: work (and the disk) against unbounded bodies, not the archive size.
DEFAULT_QUOTA_BYTES = 1 << 30

#: Read granularity for upload bodies: bounds per-chunk memory while keeping
#: syscall counts low.
_IO_CHUNK = 1 << 20


class IngestConflictError(RuntimeError):
    """Another ingest of the same key is in flight (HTTP 409)."""


class IngestQuotaError(RuntimeError):
    """The upload body exceeds the per-key quota (HTTP 413)."""


class IngestVerifyError(RuntimeError):
    """The staged archive failed post-write verification (HTTP 500)."""


# ---------------------------------------------------------------------------
# Upload-body parsers (shared by the HTTP layer and the tests)
# ---------------------------------------------------------------------------

def read_sized_stream(rfile, length: int, *,
                      io_chunk: int = _IO_CHUNK) -> Iterator[bytes]:
    """Yield exactly ``length`` bytes from ``rfile`` in bounded pieces."""
    remaining = int(length)
    while remaining > 0:
        piece = rfile.read(min(remaining, io_chunk))
        if not piece:
            raise ValueError(
                f"corrupt upload body: truncated {remaining} bytes before "
                f"the declared Content-Length")
        remaining -= len(piece)
        yield piece


def read_chunked_stream(rfile, *, io_chunk: int = _IO_CHUNK) -> Iterator[bytes]:
    """Decode an HTTP/1.1 ``Transfer-Encoding: chunked`` body from ``rfile``.

    ``http.server`` hands the raw socket stream to the handler, so the chunk
    framing (hex size line, payload, CRLF, 0-chunk, optional trailers) is
    parsed here.  Yields payload pieces of at most ``io_chunk`` bytes;
    malformed framing raises ``ValueError("corrupt chunked body ...")``.
    """
    while True:
        line = rfile.readline(1026)
        if not line.endswith(b"\n"):
            raise ValueError(
                "corrupt chunked body: chunk-size line missing its terminator")
        size_token = line.strip().split(b";", 1)[0]
        try:
            size = int(size_token, 16)
        except ValueError:
            raise ValueError(
                f"corrupt chunked body: invalid chunk size "
                f"{size_token[:16]!r}") from None
        if size < 0:
            raise ValueError(
                f"corrupt chunked body: negative chunk size {size}")
        if size == 0:
            break
        remaining = size
        while remaining > 0:
            piece = rfile.read(min(remaining, io_chunk))
            if not piece:
                raise ValueError(
                    f"corrupt chunked body: truncated {remaining} bytes into "
                    f"a {size}-byte chunk")
            remaining -= len(piece)
            yield piece
        if rfile.read(2) != b"\r\n":
            raise ValueError(
                "corrupt chunked body: chunk payload missing its CRLF "
                "terminator")
    # Trailer section: header lines until the terminating blank line.
    while True:
        line = rfile.readline(1026)
        if not line:
            raise ValueError(
                "corrupt chunked body: stream ended inside the trailer "
                "section")
        if line in (b"\r\n", b"\n"):
            return


def read_row_blocks(byte_chunks: Iterable[bytes], shape: Tuple[int, ...],
                    dtype: np.dtype) -> Iterator[np.ndarray]:
    """Regroup a byte stream into whole-row ndarray blocks of ``shape``'s field.

    The stream must carry exactly ``prod(shape) * itemsize`` bytes of C-order
    ``dtype`` data; blocks come out as ``(rows,) + shape[1:]`` arrays as soon
    as whole rows are available, so buffering is bounded by one incoming
    piece plus one partial row.  Too many/few bytes raise
    ``ValueError("corrupt upload body ...")``.
    """
    shape = tuple(int(s) for s in shape)
    if not shape:
        raise ValueError("corrupt upload body: a 0-d shape cannot be streamed "
                         "(declare shape (1,) for a scalar field)")
    dtype = np.dtype(dtype)
    trailing = shape[1:]
    row_bytes = int(np.prod(trailing, dtype=np.int64)) * dtype.itemsize
    if row_bytes <= 0 or shape[0] <= 0:
        raise ValueError(
            f"corrupt upload body: shape {shape} describes an empty field")
    total_rows = shape[0]
    rows_seen = 0
    buf = bytearray()
    for piece in byte_chunks:
        buf += piece
        nrows = len(buf) // row_bytes
        if nrows == 0:
            continue
        if rows_seen + nrows > total_rows:
            raise ValueError(
                f"corrupt upload body: more than the declared "
                f"{total_rows} rows of {row_bytes} bytes")
        take = nrows * row_bytes
        block = np.frombuffer(bytes(buf[:take]), dtype=dtype)
        del buf[:take]
        rows_seen += nrows
        yield block.reshape((nrows,) + trailing)
    if buf:
        raise ValueError(
            f"corrupt upload body: {len(buf)} trailing bytes do not form a "
            f"whole {row_bytes}-byte row")
    if rows_seen != total_rows:
        raise ValueError(
            f"corrupt upload body: ended after {rows_seen} of the declared "
            f"{total_rows} rows")


def limit_stream(byte_chunks: Iterable[bytes], quota_bytes: Optional[int],
                 key: str) -> Iterator[bytes]:
    """Pass ``byte_chunks`` through, raising :class:`IngestQuotaError` past the quota."""
    if quota_bytes is None:
        yield from byte_chunks
        return
    seen = 0
    for piece in byte_chunks:
        seen += len(piece)
        if seen > quota_bytes:
            raise IngestQuotaError(
                f"upload for key {key!r} exceeds the per-key quota of "
                f"{quota_bytes} bytes")
        yield piece


# ---------------------------------------------------------------------------
# The manager
# ---------------------------------------------------------------------------

def _archive_filename(key: str, generation: int) -> str:
    """A filesystem-safe, collision-free, generation-unique archive name."""
    slug = re.sub(r"[^A-Za-z0-9._-]+", "_", key)[:48] or "key"
    digest = hashlib.sha1(key.encode()).hexdigest()[:8]
    return f"{slug}-{digest}.g{generation:06d}.rpra"


class IngestManager:
    """Couples a :class:`StoreManifest` and an :class:`ArchiveStore` into the
    durable write path of one store root.

    ``quota_bytes`` bounds each upload's raw field bytes (``None`` = no
    bound); ``model`` is the decode context handed to the store for replayed
    and newly ingested archives (matching ``repro serve --model``).  All
    methods are thread-safe; concurrent ingests of *different* keys run in
    parallel, concurrent ingests of the *same* key conflict
    (:class:`IngestConflictError`).
    """

    def __init__(self, root, store: ArchiveStore, *,
                 quota_bytes: Optional[int] = DEFAULT_QUOTA_BYTES,
                 model: Any = None):
        self.manifest = StoreManifest(root)
        self.store = store
        self.quota_bytes = quota_bytes
        self.model = model
        self._lock = make_lock("IngestManager._lock")
        self._active: set = set()  # guarded by: self._lock

    @property
    def root(self) -> Path:
        return self.manifest.root

    # ------------------------------------------------------------- lifecycle
    def sweep(self) -> List[Path]:
        """Remove crash debris; call once at startup, before serving.

        Drops every stale ``*.tmp`` under the root (staged archives and
        manifest rewrites that never reached their ``os.replace``) and every
        file in ``archives/`` the manifest does not reference (an archive
        published in step 3 whose manifest write in step 4 never happened,
        or an old generation whose deferred unlink was lost to a crash).
        Returns the removed paths.
        """
        referenced = {p.resolve() for p in self.manifest.referenced_paths()}
        removed: List[Path] = []
        for tmp in sorted(self.root.rglob("*.tmp")):
            if tmp.is_file():
                tmp.unlink()
                removed.append(tmp)
        for candidate in sorted(self.manifest.archive_dir.iterdir()):
            if candidate.is_file() and candidate.resolve() not in referenced:
                candidate.unlink()
                removed.append(candidate)
        if removed:
            fsync_directory(self.manifest.archive_dir)
        return removed

    def replay(self) -> List[Tuple[str, str]]:
        """Re-register every manifest key with the store.

        Returns ``(key, reason)`` pairs for entries that could not be served
        (archive file missing or corrupt); good keys serve regardless, so one
        damaged archive does not brick a restarted node.
        """
        skipped: List[Tuple[str, str]] = []
        for key, entry in sorted(self.manifest.entries().items()):
            path = self.manifest.archive_path(entry)
            try:
                self.store.add(key, os.fspath(path), model=self.model,
                               generation=entry.generation)
            except (OSError, ValueError) as exc:
                skipped.append((key, str(exc)))
        return skipped

    # ---------------------------------------------------------------- ingest
    def ingest(self, key: str, blocks: Iterable[np.ndarray], *,
               codec: str = "sz21", bound: Any = 1e-3,
               chunk_size: int = DEFAULT_CHUNK_ELEMS,
               data_range: Optional[Tuple[float, float]] = None,
               cast_dtype=np.float64) -> ManifestEntry:
        """Stream-compress ``blocks`` and atomically publish them as ``key``.

        ``blocks`` is an iterator of row-block arrays sharing trailing
        dimensions (what :func:`read_row_blocks` yields); the field passes
        through :func:`repro.api.compress_chunked` without ever being
        materialized.  ``cast_dtype`` mirrors the CLI compress convention
        (codecs see float64 regardless of the wire dtype).  Returns the new
        (durably written) manifest entry; raises
        :class:`IngestConflictError` if ``key`` is already mid-ingest,
        ``ValueError`` for caller mistakes (unknown codec, model-requiring
        codec, bad bound, malformed body via the block iterator), and
        :class:`IngestVerifyError` if the staged archive fails verification.
        """
        self._check_key(key)
        bound = as_bound(bound)
        try:
            spec = compressor_spec(codec)
        except KeyError as exc:
            # Registry misses are caller mistakes (HTTP 400), not KeyErrors.
            raise ValueError(str(exc)) from None
        if spec.requires_model:
            raise ValueError(
                f"codec {codec!r} needs a trained model and cannot be used "
                f"for ingest (use a model-free codec)")
        with self._lock:
            if key in self._active:
                raise IngestConflictError(
                    f"an ingest of key {key!r} is already in progress")
            self._active.add(key)
        try:
            return self._ingest_locked_key(key, blocks, spec.name, bound,
                                           chunk_size, data_range, cast_dtype)
        finally:
            with self._lock:
                self._active.discard(key)

    def _ingest_locked_key(self, key: str, blocks, codec: str,
                           bound: ErrorBound, chunk_size: int, data_range,
                           cast_dtype) -> ManifestEntry:
        blob = compress_chunked(blocks, codec=codec, bound=bound,
                                chunk_size=chunk_size, data_range=data_range,
                                dtype=cast_dtype)
        old = self.manifest.get(key)
        generation = 1 if old is None else old.generation + 1
        final = self.manifest.archive_dir / _archive_filename(key, generation)
        tmp = final.with_name(final.name + ".tmp")

        # Stage: bytes + content token to a temp file, flushed to disk.
        token = hashlib.sha256(blob).hexdigest()
        with open(tmp, "wb") as f:
            f.write(blob)
            f.flush()
            os.fsync(f.fileno())

        # Verify the staged file (what we will serve, not what we meant to
        # write): header parse + per-tile CRC spot-check.
        try:
            index = self._verify_archive(tmp)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise

        # Publish: temp -> final name (atomic), then the durable manifest.
        os.replace(tmp, final)
        fsync_directory(final.parent)
        rel = os.fspath(final.relative_to(self.root))
        bound_doc = {"mode": bound.mode, "value": bound.value}
        if old is None:
            entry = ManifestEntry(key, path=rel, codec=codec,
                                  shape=list(index.shape), dtype=index.dtype,
                                  bound=bound_doc, token=token,
                                  nbytes=len(blob), created=time.time(),
                                  replaced=None, generation=generation)
        else:
            entry = old.replacement(path=rel, token=token, nbytes=len(blob),
                                    codec=codec, shape=list(index.shape),
                                    dtype=index.dtype, bound=bound_doc)
        self.manifest.put(entry)

        # Swap the live registry.  Readers pinned to the old archive finish
        # against its still-open pread handle; the old file is unlinked only
        # when that handle actually closes.
        old_path = None if old is None else self.manifest.archive_path(old)
        self.store.replace(key, os.fspath(final), model=self.model,
                           on_release=_unlinker(old_path),
                           generation=entry.generation)
        return entry

    def delete(self, key: str) -> ManifestEntry:
        """Remove ``key`` durably; the archive file unlinks once readers drain."""
        entry = self.manifest.delete(key)
        path = self.manifest.archive_path(entry)
        try:
            self.store.remove(key, on_release=_unlinker(path))
        except KeyError:
            # Manifest had it but the store did not (e.g. the archive failed
            # to replay at startup): the durable record is gone either way.
            _unlink_quietly(path)
        return entry

    # ------------------------------------------------------------- internals
    @staticmethod
    def _check_key(key: str) -> None:
        if not isinstance(key, str) or not key:
            raise ValueError(
                f"archive key must be a non-empty string, got {key!r}")
        if "/" in key:
            raise ValueError(
                f"archive key {key!r} must not contain '/' (keys are one URL "
                f"path segment)")

    @staticmethod
    def _verify_archive(path: Path):
        """Parse the staged file's header and CRC-spot-check its tiles.

        Checks the first, middle and last tiles — enough to catch staging
        faults (truncation, torn writes, bad offsets) without re-reading an
        arbitrarily large archive.  Single-shot (v1) archives are fully
        parsed, which CRC-checks everything.
        """
        try:
            with open_reader(os.fspath(path)) as reader:
                index = load_index(reader)
                offsets = getattr(index, "offsets", None)
                if offsets is not None:
                    n = len(offsets)
                    for i in sorted({0, n // 2, n - 1}):
                        raw = reader.read_at(index.data_start + index.offsets[i],
                                             index.lengths[i])
                        index.check_tile(i, raw)
        except (OSError, ValueError) as exc:
            raise IngestVerifyError(
                f"staged archive failed verification: {exc}") from exc
        return index


def _unlinker(path: Optional[Path]):
    """An ``on_release`` callback unlinking ``path`` (``None`` -> no-op)."""
    if path is None:
        return None

    def _release() -> None:
        _unlink_quietly(path)

    return _release


def _unlink_quietly(path: Path) -> None:
    # Runs on whichever reader thread drops the last pin; a missing file
    # (already swept, double release) must not crash that reader.
    try:
        os.unlink(path)
    except OSError:
        pass


install_guards(IngestManager, "_lock", ("_active",))

"""Durable store manifest: the on-disk registry behind ``repro serve --root``.

A writable store node owns a *root* directory::

    root/
      manifest.json        <- this module: key -> archive metadata + auth
      manifest.json.tmp    <- transient (atomic-rewrite staging; swept on boot)
      archives/            <- the archive files the manifest points at
        field-1a2b3c4d.g000001.rpra
        field-1a2b3c4d.g000002.rpra   (a replacement generation)

``manifest.json`` is one JSON document mapping each served key to its archive
path (relative to the root), codec, shape/dtype, bound, a content token
(SHA-256 of the archive bytes), created/replaced timestamps and a
monotonically increasing generation counter, plus a ``"auth"`` map of bearer
tokens for the mutating HTTP routes.  Every mutation rewrites the whole
document **atomically**: serialize to ``manifest.json.tmp``, ``fsync`` the
temp file, ``os.replace`` it over the live one, ``fsync`` the directory — a
crash at any point leaves either the old or the new manifest, never a torn
one.  On startup :class:`StoreManifest` replays the document so a restarted
``repro serve --root`` comes back with its registry intact.

Malformed manifest bytes raise ``ValueError("corrupt manifest ...")`` — the
same convention as the archive parsers (checked by ``repro.lint`` RPR002).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.utils.concurrency import install_guards, make_lock

MANIFEST_NAME = "manifest.json"
ARCHIVE_DIR = "archives"
MANIFEST_FORMAT = "repro-store-manifest"
MANIFEST_VERSION = 1

#: Per-entry fields every manifest record must carry (the writer always
#: emits all of them; the loader refuses records missing any).
ENTRY_FIELDS = ("path", "codec", "shape", "dtype", "bound", "token",
                "nbytes", "created", "replaced", "generation")


class ManifestEntry:
    """One key's durable record: where its archive lives and what is in it."""

    __slots__ = ENTRY_FIELDS + ("key",)

    def __init__(self, key: str, *, path: str, codec: str, shape, dtype: str,
                 bound: dict, token: str, nbytes: int, created: float,
                 replaced: Optional[float], generation: int):
        self.key = key
        self.path = path
        self.codec = codec
        self.shape = [int(s) for s in shape]
        self.dtype = dtype
        self.bound = dict(bound)
        self.token = token
        self.nbytes = int(nbytes)
        self.created = float(created)
        self.replaced = None if replaced is None else float(replaced)
        self.generation = int(generation)

    def to_dict(self) -> dict:
        return {f: getattr(self, f) for f in ENTRY_FIELDS}

    def replacement(self, *, path: str, token: str, nbytes: int, codec: str,
                    shape, dtype: str, bound: dict) -> "ManifestEntry":
        """The next generation of this key (created stamp preserved)."""
        return ManifestEntry(self.key, path=path, codec=codec, shape=shape,
                             dtype=dtype, bound=bound, token=token,
                             nbytes=nbytes, created=self.created,
                             replaced=time.time(),
                             generation=self.generation + 1)


def _load_entry(key: str, record: dict) -> ManifestEntry:
    """Parse one manifest record, refusing structurally malformed ones."""
    if not isinstance(record, dict):
        raise ValueError(
            f"corrupt manifest: entry for key {key!r} is not an object")
    missing = [f for f in ENTRY_FIELDS if f not in record]
    if missing:
        raise ValueError(
            f"corrupt manifest: entry for key {key!r} is missing "
            f"{', '.join(missing)}")
    try:
        entry = ManifestEntry(key, **{f: record[f] for f in ENTRY_FIELDS})
    except (TypeError, KeyError, OverflowError) as exc:
        raise ValueError(
            f"corrupt manifest: entry for key {key!r}: {exc}") from None
    rel = Path(entry.path)
    if rel.is_absolute() or ".." in rel.parts:
        raise ValueError(
            f"corrupt manifest: entry for key {key!r} has path {entry.path!r} "
            f"escaping the store root")
    return entry


def _load_document(text) -> dict:
    """Parse manifest bytes/JSON into ``{"entries": {...}, "auth": {...}}``.

    Structural problems — broken encoding, invalid JSON, wrong format
    marker, malformed entries or auth records — all raise
    ``ValueError("corrupt manifest ...")`` so a damaged root fails loudly at
    startup instead of half-serving.
    """
    try:
        doc = json.loads(text)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ValueError(f"corrupt manifest: invalid JSON ({exc})") from None
    if not isinstance(doc, dict) or doc.get("format") != MANIFEST_FORMAT:
        raise ValueError(
            f"corrupt manifest: missing format marker {MANIFEST_FORMAT!r}")
    version = doc.get("version")
    if version != MANIFEST_VERSION:
        raise ValueError(
            f"corrupt manifest: unsupported version {version!r} (this build "
            f"reads version {MANIFEST_VERSION})")
    raw_entries = doc.get("entries", {})
    if not isinstance(raw_entries, dict):
        raise ValueError("corrupt manifest: 'entries' is not an object")
    entries = {str(key): _load_entry(str(key), record)
               for key, record in raw_entries.items()}
    auth = doc.get("auth", {})
    if not isinstance(auth, dict) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in auth.items()):
        raise ValueError(
            "corrupt manifest: 'auth' must map key patterns to token strings")
    return {"entries": entries, "auth": dict(auth)}


def fsync_directory(path: Path) -> None:
    """Flush a directory's metadata (new/renamed names) to stable storage.

    Some platforms/filesystems refuse to open or fsync directories; those
    give weaker (rename-ordering) durability, which is the best available.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_file_durably(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically: temp + fsync + ``os.replace``."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as f:
        f.write(data)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
    fsync_directory(path.parent)


class StoreManifest:
    """The durable key registry of one store root, with atomic rewrites.

    All mutation methods (``put`` / ``delete`` / ``set_auth``) persist the
    whole document before returning; readers (``get`` / ``entries`` /
    ``auth_token``) see the in-memory copy, which always matches the last
    durable write.  Every method is thread-safe.
    """

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.archive_dir.mkdir(exist_ok=True)
        self._lock = make_lock("StoreManifest._lock")
        self._entries: Dict[str, ManifestEntry] = {}  # guarded by: self._lock
        self._auth: Dict[str, str] = {}  # guarded by: self._lock
        path = self.path
        if path.exists():
            # Bytes, not text: _load_document owns the decode so that a
            # byte-flipped file fails as "corrupt manifest", not UnicodeError.
            loaded = _load_document(path.read_bytes())
            with self._lock:
                self._entries = loaded["entries"]
                self._auth = loaded["auth"]

    # ------------------------------------------------------------- locations
    @property
    def path(self) -> Path:
        return self.root / MANIFEST_NAME

    @property
    def archive_dir(self) -> Path:
        return self.root / ARCHIVE_DIR

    def archive_path(self, entry: ManifestEntry) -> Path:
        """The absolute path of an entry's archive file."""
        return self.root / entry.path

    # --------------------------------------------------------------- readers
    def get(self, key: str) -> Optional[ManifestEntry]:
        with self._lock:
            return self._entries.get(key)

    def entries(self) -> Dict[str, ManifestEntry]:
        """A point-in-time snapshot of every record, keyed by archive key."""
        with self._lock:
            return dict(self._entries)

    def keys(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def referenced_paths(self) -> List[Path]:
        """Absolute paths of every archive the manifest points at."""
        with self._lock:
            entries = list(self._entries.values())
        return [self.root / e.path for e in entries]

    def auth_token(self, key: str) -> Optional[str]:
        """The bearer token guarding mutations of ``key`` (``None`` = open).

        A per-key token takes precedence; ``"*"`` is the store-wide default.
        """
        with self._lock:
            return self._auth.get(key, self._auth.get("*"))

    def has_auth(self) -> bool:
        with self._lock:
            return bool(self._auth)

    # -------------------------------------------------------------- mutators
    def put(self, entry: ManifestEntry) -> None:
        """Insert or replace ``entry.key``'s record and persist atomically."""
        with self._lock:
            self._entries[entry.key] = entry
            self._write_locked()

    def delete(self, key: str) -> ManifestEntry:
        """Drop ``key``'s record (persisting) and return it; KeyError if absent."""
        with self._lock:
            if key not in self._entries:
                raise KeyError(f"no manifest entry for key {key!r}")
            entry = self._entries.pop(key)
            self._write_locked()
        return entry

    def set_auth(self, key: str, token: Optional[str]) -> None:
        """Set (or with ``None`` clear) the bearer token for ``key``/``"*"``."""
        with self._lock:
            if token is None:
                self._auth.pop(key, None)
            else:
                self._auth[key] = token
            self._write_locked()

    # ------------------------------------------------------------- internals
    def _write_locked(self) -> None:
        """Serialize + atomically publish.  Must hold ``self._lock``."""
        doc = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "auth": dict(self._auth),
            "entries": {k: e.to_dict() for k, e in sorted(self._entries.items())},
        }
        write_file_durably(self.path,
                           json.dumps(doc, indent=2, sort_keys=True).encode())


install_guards(StoreManifest, "_lock", ("_entries", "_auth"))

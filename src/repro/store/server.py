"""Stdlib-only HTTP service over an :class:`ArchiveStore` — reads and ingest.

One thread per request (``ThreadingHTTPServer``) on top of the store's
thread-safe cached read path — the serving shape the paper's amortized
workflow wants: one long-lived process holding the parsed headers and the
decoded-tile cache, many concurrent clients pulling regions, and (on a
writable node) pushing new fields in.

Read routes (GET):

``/healthz``
    Liveness + the store's cache/read counters, as JSON.
``/metrics``
    Operational counters as JSON: the :class:`TileCache` hit/miss/load/
    eviction counters, ``tile_decodes``/``region_reads``, and per-route
    request counts, error counts and latency sums.
``/v1/<key>/info``
    The archive's header as JSON: codec, shape, dtype, bound, envelope
    version and (for chunked/grid archives) the tile geometry.
``/v1/<key>/region?r=10:20,0:64,5:9``
    The decoded region as raw bytes (C order), described by response
    headers: ``X-Repro-Shape`` / ``X-Repro-Dtype`` plus ``X-Repro-Header``,
    a JSON object carrying both and the normalized region.  Reconstruct with
    ``numpy.frombuffer(body, dtype).reshape(shape)``.

Write routes (enabled by passing an :class:`IngestManager` — the CLI's
``repro serve --root DIR --writable``):

``POST /v1/<key>``
    Stream-ingest a field: the body is the raw C-order field bytes (sized by
    ``Content-Length`` or ``Transfer-Encoding: chunked``), described by the
    ``X-Repro-Shape`` / ``X-Repro-Dtype`` headers, compressed under
    ``X-Repro-Bound`` / ``X-Repro-Bound-Mode`` (+ ``X-Repro-Data-Range`` for
    ``rel`` over a stream) with codec ``X-Repro-Codec``.  Publishes (201) or
    atomically replaces (200) the key; concurrent ingest of the same key is
    409, a body over the per-key quota is 413.
``DELETE /v1/<key>``
    Remove the key from the manifest and the store; the archive file is
    unlinked once in-flight readers drain.

When the manifest carries bearer tokens, mutating routes require
``Authorization: Bearer <token>`` (per-key token, falling back to the
``"*"`` default) and fail closed with 401; read routes stay open.

Errors are JSON bodies ``{"error": ...}``: 400 for malformed requests or
upload bodies, 404 for unknown keys/routes, 405 for writes to a read-only
server, 500 for decode/verify failures (e.g. a corrupt tile).  A 500 is
scoped to the affected request — failed decodes are never cached, so other
regions (and retries) keep serving.
"""

from __future__ import annotations

import hmac
import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlparse

import numpy as np

from repro.api import DEFAULT_CHUNK_ELEMS, normalize_region, parse_region
from repro.bounds import ErrorBound, MODES
from repro.store.ingest import (
    IngestConflictError,
    IngestManager,
    IngestQuotaError,
    IngestVerifyError,
    limit_stream,
    read_chunked_stream,
    read_row_blocks,
    read_sized_stream,
)
from repro.store.store import ArchiveStore
from repro.utils.concurrency import install_guards, make_lock


class RouteMetrics:
    """Thread-safe per-route request counters + latency sums for ``/metrics``."""

    def __init__(self):
        self._lock = make_lock("RouteMetrics._lock")
        self._routes: Dict[str, dict] = {}  # guarded by: self._lock

    def record(self, route: str, status: int, seconds: float) -> None:
        with self._lock:
            row = self._routes.setdefault(
                route, {"requests": 0, "errors": 0, "seconds": 0.0})
            row["requests"] += 1
            if status >= 400 or status == 0:
                row["errors"] += 1
            row["seconds"] += seconds

    def snapshot(self) -> Dict[str, dict]:
        with self._lock:
            return {route: dict(row) for route, row in self._routes.items()}


class StoreRequestHandler(BaseHTTPRequestHandler):
    """Routes one request into the server's :class:`ArchiveStore`."""

    server: "StoreHTTPServer"  # narrowed from BaseServer: set by the server

    server_version = "repro-serve/2"
    protocol_version = "HTTP/1.1"  # keep-alive; every response sets Content-Length

    _last_status = 0  # the code of the last send_response on this connection

    def send_response(self, code, message=None) -> None:
        self._last_status = code
        super().send_response(code, message)

    # ----------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def _dispatch(self, method: str) -> None:
        start = time.perf_counter()
        route = "other"
        self._last_status = 0
        try:
            parsed = urlparse(self.path)
            parts = [unquote(p) for p in parsed.path.split("/") if p]
            route, handler = self._resolve(method, parts, parsed)
            handler()
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-response; nothing to salvage
        finally:
            self.server.metrics.record(route, self._last_status,
                                       time.perf_counter() - start)

    def _resolve(self, method: str, parts, parsed) -> Tuple[str, object]:
        """Map (method, path) to a (metrics route name, handler thunk)."""
        if method == "GET":
            if parts == ["healthz"]:
                return "healthz", self._healthz
            if parts == ["metrics"]:
                return "metrics", self._metrics
            if len(parts) == 3 and parts[0] == "v1" and parts[2] == "info":
                return "info", lambda: self._info(parts[1])
            if len(parts) == 3 and parts[0] == "v1" and parts[2] == "region":
                return "region", lambda: self._region(parts[1],
                                                      parse_qs(parsed.query))
        elif len(parts) == 2 and parts[0] == "v1":
            if method == "POST":
                return "ingest", lambda: self._ingest(parts[1])
            if method == "DELETE":
                return "delete", lambda: self._delete(parts[1])
        return "other", lambda: self._send_json(
            404, {"error": f"no {method} route for {parsed.path!r}"})

    # ------------------------------------------------------------- GET routes
    def _healthz(self) -> None:
        self._send_json(200, {"status": "ok",
                              "archives": list(self.server.store.keys()),
                              "stats": self.server.store.stats()})

    def _metrics(self) -> None:
        stats = self.server.store.stats()
        self._send_json(200, {
            "cache": {k: stats[k] for k in ("entries", "nbytes", "max_bytes",
                                            "hits", "misses", "loads",
                                            "evictions")},
            "tile_decodes": stats["tile_decodes"],
            "region_reads": stats["region_reads"],
            "archives": stats["archives"],
            "routes": self.server.metrics.snapshot(),
            "writable": self.server.ingest is not None,
        })

    def _info(self, key: str) -> None:
        index = self._index_or_404(key)
        if index is None:
            return
        info = {
            "key": key,
            "codec": index.codec,
            "shape": list(index.shape),
            "dtype": index.dtype,
            "bound": {"mode": index.bound_mode, "value": index.bound_value},
            "version": index.version,
        }
        if hasattr(index, "grid_shape"):  # v3 N-d grid
            info["chunk_shape"] = list(index.chunk_shape)
            info["grid_shape"] = list(index.grid_shape)
            info["n_tiles"] = index.n_tiles
        elif hasattr(index, "n_chunks"):  # v2 axis-0 slabs
            info["axis"] = index.axis
            info["n_tiles"] = index.n_chunks
        else:
            info["n_tiles"] = 1
        self._send_json(200, info)

    def _region(self, key: str, query: dict) -> None:
        spec = (query.get("r") or query.get("region") or [None])[0]
        if spec is None:
            self._send_json(400, {"error": "missing r= query parameter "
                                           "(e.g. ?r=10:20,0:64,5:9)"})
            return
        index = self._index_or_404(key)
        if index is None:
            return
        try:
            region = parse_region(spec)
            bounds = normalize_region(region, index.shape)
        except ValueError as exc:  # the client's region is at fault: 4xx
            self._send_json(400, {"error": str(exc)})
            return
        try:
            arr = self.server.store.read_region(key, region)
        except KeyError as exc:
            # The key vanished between the info lookup and the read (a
            # concurrent remove): same outcome as never having existed.
            self._send_json(404, {"error": str(exc)})
            return
        except (ValueError, OSError) as exc:
            # The archive (not the request) is at fault — corrupt tile bytes,
            # shape mismatch after decode, I/O failure.  Nothing was cached,
            # so other regions of this archive keep serving and retries
            # re-attempt.
            self._send_json(500, {"error": str(exc)})
            return
        body = np.ascontiguousarray(arr).tobytes()
        meta = {
            "key": key,
            "region": [[b0, b1] for b0, b1 in bounds],
            "shape": list(arr.shape),
            "dtype": str(arr.dtype),
            "order": "C",
        }
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Repro-Shape", ",".join(str(s) for s in arr.shape))
        self.send_header("X-Repro-Dtype", str(arr.dtype))
        self.send_header("X-Repro-Header", json.dumps(meta, sort_keys=True))
        self.end_headers()
        self.wfile.write(body)

    # ----------------------------------------------------------- write routes
    def _ingest(self, key: str) -> None:
        manager = self._manager_or_405()
        if manager is None or not self._authorized(key):
            return
        try:
            params = self._ingest_params()
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)}, close=True)
            return
        quota = manager.quota_bytes
        length = self.headers.get("Content-Length")
        te = self.headers.get("Transfer-Encoding", "")
        if "chunked" in te.lower():
            chunks = read_chunked_stream(self.rfile)
        elif length is not None:
            try:
                body_bytes = int(length)
            except ValueError:
                self._send_json(400, {"error": f"corrupt upload body: invalid "
                                               f"Content-Length {length!r}"},
                                close=True)
                return
            if quota is not None and body_bytes > quota:
                self._send_json(413, {"error": f"upload of {body_bytes} bytes "
                                               f"exceeds the per-key quota of "
                                               f"{quota} bytes"}, close=True)
                return
            chunks = read_sized_stream(self.rfile, body_bytes)
        else:
            self._send_json(411, {"error": "upload needs Content-Length or "
                                           "Transfer-Encoding: chunked"},
                            close=True)
            return
        created = manager.manifest.get(key) is None
        blocks = read_row_blocks(limit_stream(chunks, quota, key),
                                 params["shape"], params["dtype"])
        try:
            entry = manager.ingest(key, blocks, codec=params["codec"],
                                   bound=params["bound"],
                                   chunk_size=params["chunk_size"],
                                   data_range=params["data_range"])
        except IngestConflictError as exc:
            self._send_json(409, {"error": str(exc)}, close=True)
            return
        except IngestQuotaError as exc:
            self._send_json(413, {"error": str(exc)}, close=True)
            return
        except ValueError as exc:
            # Caller-side faults: malformed body framing/row count, unknown
            # codec, bad bound, rel bound without a data range.
            self._send_json(400, {"error": str(exc)}, close=True)
            return
        except (IngestVerifyError, OSError) as exc:
            self._send_json(500, {"error": str(exc)}, close=True)
            return
        self._send_json(201 if created else 200, {
            "key": key,
            "created": created,
            "generation": entry.generation,
            "archive_bytes": entry.nbytes,
            "token": entry.token,
            "codec": entry.codec,
            "shape": entry.shape,
            "dtype": entry.dtype,
            "bound": entry.bound,
            "path": entry.path,
        })

    def _delete(self, key: str) -> None:
        manager = self._manager_or_405()
        if manager is None or not self._authorized(key):
            return
        try:
            entry = manager.delete(key)
        except KeyError as exc:
            self._send_json(404, {"error": str(exc)})
            return
        self._send_json(200, {"deleted": key, "generation": entry.generation})

    def _ingest_params(self) -> dict:
        """Parse and validate the ``X-Repro-*`` upload headers (ValueError = 400)."""
        shape_header = self.headers.get("X-Repro-Shape")
        dtype_header = self.headers.get("X-Repro-Dtype")
        bound_header = self.headers.get("X-Repro-Bound")
        if not shape_header or not dtype_header or not bound_header:
            raise ValueError(
                "upload needs X-Repro-Shape, X-Repro-Dtype and X-Repro-Bound "
                "headers")
        try:
            shape = tuple(int(s) for s in shape_header.split(","))
        except ValueError:
            raise ValueError(
                f"corrupt upload body: invalid X-Repro-Shape "
                f"{shape_header!r}") from None
        if not shape or any(s <= 0 for s in shape):
            raise ValueError(
                f"X-Repro-Shape {shape_header!r} must be positive per-axis "
                f"extents")
        try:
            dtype = np.dtype(dtype_header)
        except TypeError:
            raise ValueError(
                f"corrupt upload body: unknown X-Repro-Dtype "
                f"{dtype_header!r}") from None
        mode = self.headers.get("X-Repro-Bound-Mode", "rel")
        if mode not in MODES:
            raise ValueError(
                f"X-Repro-Bound-Mode {mode!r} must be one of {', '.join(MODES)}")
        try:
            bound = ErrorBound(mode, float(bound_header))
        except ValueError as exc:
            raise ValueError(f"invalid X-Repro-Bound: {exc}") from None
        data_range = None
        range_header = self.headers.get("X-Repro-Data-Range")
        if range_header is not None:
            try:
                lo, hi = (float(v) for v in range_header.split(","))
            except ValueError:
                raise ValueError(
                    f"invalid X-Repro-Data-Range {range_header!r} (expected "
                    f"'min,max')") from None
            data_range = (lo, hi)
        chunk_header = self.headers.get("X-Repro-Chunk-Size")
        try:
            chunk_size = int(chunk_header) if chunk_header else 0
        except ValueError:
            raise ValueError(
                f"invalid X-Repro-Chunk-Size {chunk_header!r}") from None
        return {
            "shape": shape,
            "dtype": dtype,
            "bound": bound,
            "codec": self.headers.get("X-Repro-Codec", "sz21"),
            "data_range": data_range,
            "chunk_size": chunk_size if chunk_size > 0 else DEFAULT_CHUNK_ELEMS,
        }

    # ---------------------------------------------------------------- helpers
    def _manager_or_405(self) -> Optional[IngestManager]:
        manager = self.server.ingest
        if manager is None:
            self._send_json(405, {"error": "this server is read-only; start "
                                           "repro serve with --root DIR "
                                           "--writable to enable ingest"},
                            close=True)
            return None
        return manager

    def _authorized(self, key: str) -> bool:
        """Enforce the manifest's bearer tokens on mutating routes."""
        required = self.server.ingest.manifest.auth_token(key)
        if required is None:
            return True
        supplied = self.headers.get("Authorization", "").strip()
        if hmac.compare_digest(supplied, f"Bearer {required}"):
            return True
        self._send_json(401, {"error": f"mutating key {key!r} requires a "
                                       f"bearer token"},
                        close=True,
                        extra={"WWW-Authenticate": "Bearer"})
        return False

    def _index_or_404(self, key: str):
        try:
            return self.server.store.info(key)
        except KeyError as exc:
            self._send_json(404, {"error": str(exc)})
            return None
        except ValueError as exc:
            # "store is closed": a request raced the shutdown path.  Answer
            # it cleanly instead of dying with a traceback mid-connection.
            self._send_json(503, {"error": str(exc)})
            return None

    def _send_json(self, code: int, obj: dict, *, close: bool = False,
                   extra: Optional[dict] = None) -> None:
        # ``close`` drops the connection after the response: error paths of
        # the upload routes may leave unread body bytes on the socket, which
        # would desynchronize keep-alive framing for the next request.
        body = json.dumps(obj, sort_keys=True).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra or {}).items():
            self.send_header(name, value)
        if close:
            self.close_connection = True
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args) -> None:
        if not getattr(self.server, "quiet", True):  # pragma: no cover
            super().log_message(fmt, *args)


class StoreHTTPServer(ThreadingHTTPServer):
    """A threaded HTTP server bound to one :class:`ArchiveStore`.

    ``ingest`` (an :class:`IngestManager`) enables the mutating routes; with
    ``None`` the server is read-only and POST/DELETE answer 405.
    """

    daemon_threads = True  # in-flight requests never block process exit

    def __init__(self, address: Tuple[str, int], store: ArchiveStore, *,
                 quiet: bool = True, ingest: Optional[IngestManager] = None):
        super().__init__(address, StoreRequestHandler)
        self.store = store
        self.quiet = quiet
        self.ingest = ingest
        self.metrics = RouteMetrics()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def make_server(store: ArchiveStore, host: str = "127.0.0.1", port: int = 0,
                *, quiet: bool = True,
                ingest: Optional[IngestManager] = None) -> StoreHTTPServer:
    """Bind a :class:`StoreHTTPServer` (``port=0`` picks a free port).

    The caller drives it: ``serve_forever()`` inline (what ``repro serve``
    does after printing the bound URL), or on a thread for embedding
    (``threading.Thread(target=server.serve_forever).start()``), and
    ``shutdown()`` + ``server_close()`` to stop.  Pass ``ingest=`` to enable
    the write routes (``POST`` / ``DELETE /v1/<key>``).
    """
    return StoreHTTPServer((host, port), store, quiet=quiet, ingest=ingest)


install_guards(RouteMetrics, "_lock", ("_routes",))

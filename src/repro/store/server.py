"""Stdlib-only HTTP service over an :class:`ArchiveStore` — reads and ingest.

The routing/validation/response logic lives in one transport-agnostic
:class:`StoreApp` (plain :class:`Request` in, :class:`Response` out), shared
by two front ends:

* the threaded server in this module (``ThreadingHTTPServer``, one thread
  per connection) — the simple, battle-tested fallback;
* the ``selectors``-based non-blocking front end in
  :mod:`repro.store.aserver` — persistent keep-alive connections multiplexed
  on one event loop, decode work on a bounded worker pool; the shape
  ``repro serve`` uses by default for many-clients-one-process traffic.

Because both speak through the same :class:`StoreApp`, every route, status
code and auth behavior is identical across them by construction.

Read routes (GET):

``/healthz``
    Liveness + the store's cache/read counters, as JSON.
``/metrics``
    Operational counters as JSON: the :class:`TileCache` hit/miss/load/
    eviction counters, ``tile_decodes``/``region_reads``, and per-route
    request counts, error counts, latency sums and latency histograms with
    estimated ``p50_ms``/``p99_ms``.
``/v1/<key>/info``
    The archive's header as JSON: codec, shape, dtype, bound, envelope
    version, generation and (for chunked/grid archives) the tile geometry.
``/v1/<key>/region?r=10:20,0:64,5:9``
    The decoded region as raw bytes (C order), described by response
    headers: ``X-Repro-Shape`` / ``X-Repro-Dtype`` plus ``X-Repro-Header``,
    a JSON object carrying both, the normalized region and the serving
    entry's generation.  Reconstruct with
    ``numpy.frombuffer(body, dtype).reshape(shape)``.

Batched reads (POST, no auth — it is a read):

``POST /v1/<key>/regions``
    Body: a small JSON document ``{"regions": ["10:20,:", "0:4,0:4", ...]}``
    (or a bare JSON list), sized by ``Content-Length``.  One response body
    carries every region's raw bytes back to back; ``X-Repro-Header`` is a
    JSON object with per-region ``{region, shape, dtype, offset, nbytes}``
    entries (in request order) against one generation/ETag — the batch rides
    :meth:`ArchiveStore.read_regions`' deduped tile fetches.

Conditional GET: ``/v1/<key>/info`` and ``/v1/<key>/region`` responses carry
a strong ``ETag`` derived from the archive's content tokens (per-tile
CRC-32s); requests with a matching ``If-None-Match`` get ``304 Not
Modified`` with no body.  A replace flips the tag, so a cached region can
never survive a content change.

Write routes (enabled by passing an :class:`IngestManager` — the CLI's
``repro serve --root DIR --writable``):

``POST /v1/<key>``
    Stream-ingest a field: the body is the raw C-order field bytes (sized by
    ``Content-Length`` or ``Transfer-Encoding: chunked``), described by the
    ``X-Repro-Shape`` / ``X-Repro-Dtype`` headers, compressed under
    ``X-Repro-Bound`` / ``X-Repro-Bound-Mode`` (+ ``X-Repro-Data-Range`` for
    ``rel`` over a stream) with codec ``X-Repro-Codec``.  Publishes (201) or
    atomically replaces (200) the key; concurrent ingest of the same key is
    409, a body over the per-key quota is 413.
``DELETE /v1/<key>``
    Remove the key from the manifest and the store; the archive file is
    unlinked once in-flight readers drain.

When the manifest carries bearer tokens, mutating routes require
``Authorization: Bearer <token>`` (per-key token, falling back to the
``"*"`` default) and fail closed with 401; read routes stay open.

Errors are JSON bodies ``{"error": ...}``: 400 for malformed requests or
upload bodies, 404 for unknown keys/routes, 405 for writes to a read-only
server, 500 for decode/verify failures (e.g. a corrupt tile).  A 500 is
scoped to the affected request — failed decodes are never cached, so other
regions (and retries) keep serving.  Response metadata for a region is
derived from the entry the bytes were *actually* decoded from (one atomic
store lookup), so headers can never contradict the body across a concurrent
replace.
"""

from __future__ import annotations

import hmac
import json
import math
import re
import time
from http.client import HTTPConnection, HTTPException, HTTPSConnection
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import (TYPE_CHECKING, Callable, Dict, List, Optional, Tuple,
                    Union)
from urllib.parse import parse_qs, unquote, urlparse, urlsplit

import numpy as np

from repro.api import DEFAULT_CHUNK_ELEMS
from repro.bounds import ErrorBound, MODES
from repro.store.ingest import (
    IngestConflictError,
    IngestManager,
    IngestQuotaError,
    IngestVerifyError,
    limit_stream,
    read_chunked_stream,
    read_row_blocks,
    read_sized_stream,
)
from repro.store.store import ArchiveStore, ReadInfo, RegionSpecError
from repro.utils.concurrency import install_guards, make_lock

if TYPE_CHECKING:  # the async front end; imported lazily at runtime
    from repro.store.aserver import AsyncStoreHTTPServer

#: Upper bounds (milliseconds) of the per-route latency histogram buckets.
#: Log-spaced from sub-millisecond cache hits to multi-second cold decodes;
#: the last bucket catches everything beyond.
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
    1024.0, 2048.0, 4096.0, math.inf)


def _quantile_ms(buckets: List[int], total: int, q: float) -> float:
    """The upper bound of the bucket containing the ``q``-quantile sample."""
    if total <= 0:
        return 0.0
    target = max(1, math.ceil(q * total))
    cum = 0
    for bound, count in zip(LATENCY_BUCKETS_MS, buckets):
        cum += count
        if cum >= target:
            # The overflow bucket has no finite bound; report one past the
            # largest finite edge so the estimate stays a number.
            return bound if math.isfinite(bound) else LATENCY_BUCKETS_MS[-2] * 2
    return LATENCY_BUCKETS_MS[-2] * 2


class RouteMetrics:
    """Thread-safe per-route request counters + latency histograms."""

    def __init__(self) -> None:
        self._lock = make_lock("RouteMetrics._lock")
        self._routes: Dict[str, dict] = {}  # guarded by: self._lock

    def record(self, route: str, status: int, seconds: float) -> None:
        ms = seconds * 1000.0
        with self._lock:
            row = self._routes.setdefault(
                route, {"requests": 0, "errors": 0, "seconds": 0.0,
                        "buckets": [0] * len(LATENCY_BUCKETS_MS)})
            row["requests"] += 1
            if status >= 400 or status == 0:
                row["errors"] += 1
            row["seconds"] += seconds
            for i, bound in enumerate(LATENCY_BUCKETS_MS):
                if ms <= bound:
                    row["buckets"][i] += 1
                    break

    def snapshot(self) -> Dict[str, dict]:
        """Per-route counters plus estimated p50/p99 (bucket upper bounds)."""
        with self._lock:
            rows = {route: {"requests": row["requests"],
                            "errors": row["errors"],
                            "seconds": row["seconds"],
                            "buckets": list(row["buckets"])}
                    for route, row in self._routes.items()}
        for row in rows.values():
            total = sum(row["buckets"])
            row["p50_ms"] = _quantile_ms(row["buckets"], total, 0.50)
            row["p99_ms"] = _quantile_ms(row["buckets"], total, 0.99)
        return rows


# ---------------------------------------------------------------------------
# Transport-agnostic request/response + the app
# ---------------------------------------------------------------------------

class Request:
    """One parsed HTTP request, independent of the transport that read it.

    ``headers`` maps lower-cased names to values; ``rfile`` is a blocking
    file-like positioned at the first body byte (the threaded server hands
    the socket's rfile, the async server a body channel fed by its event
    loop).  Handlers that consume a body read exactly the framed bytes on
    success; error paths answer with ``close=True`` so unread bytes can
    never desynchronize keep-alive framing.
    """

    __slots__ = ("method", "target", "headers", "rfile")

    def __init__(self, method: str, target: str, headers: Dict[str, str],
                 rfile) -> None:
        self.method = method
        self.target = target
        self.headers = headers
        self.rfile = rfile

    def header(self, name: str, default: Optional[str] = None
               ) -> Optional[str]:
        return self.headers.get(name.lower(), default)


class Response:
    """What a route handler produced: status, headers, one in-memory body."""

    __slots__ = ("status", "body", "headers", "close")

    def __init__(self, status: int, body: bytes = b"", *,
                 headers: Optional[Dict[str, str]] = None,
                 close: bool = False) -> None:
        self.status = status
        self.body = body
        self.headers = headers if headers is not None else {}
        self.close = close


#: The single-span byte-range forms ``a-b`` / ``a-`` / ``-n``.
_RANGE_RE = re.compile(r"^bytes=(\d*)-(\d*)$")


def _parse_byte_range(value: Optional[str]
                      ) -> Optional[Tuple[Optional[int], Optional[int],
                                          Optional[int]]]:
    """``(start, end, suffix)`` of a single-span ``Range`` header.

    ``bytes=a-b`` -> ``(a, b, None)``; ``bytes=a-`` -> ``(a, None, None)``;
    ``bytes=-n`` -> ``(None, None, n)``.  Anything else — multiple spans,
    other units, a reversed span, malformed syntax — returns ``None``:
    RFC 7233 lets a server ignore the header and answer 200 with the full
    body, which is always safe (just never the silent-downgrade 206).
    """
    if value is None:
        return None
    match = _RANGE_RE.match(value.strip())
    if match is None:
        return None
    start_text, end_text = match.group(1), match.group(2)
    if start_text:
        start = int(start_text)
        end = int(end_text) if end_text else None
        if end is not None and end < start:
            return None
        return start, end, None
    if end_text:
        return None, None, int(end_text)
    return None


def _etag_matches(header_value: str, etag: str) -> bool:
    """RFC 7232 ``If-None-Match`` evaluation against one strong tag."""
    if header_value.strip() == "*":
        return True
    for candidate in header_value.split(","):
        candidate = candidate.strip()
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate == etag:
            return True
    return False


class StoreApp:
    """Routes requests into an :class:`ArchiveStore` (+ optional ingest).

    Pure request -> response logic: no sockets, no threads, no framing.
    Every front end (threaded, selectors) wraps this one object, which is
    what makes their route/status/auth behavior identical.  ``handle`` is
    thread-safe (the store, manager and metrics all are) and may be called
    from any number of worker threads at once.
    """

    #: Cap on a ``POST /v1/<key>/regions`` JSON body — region lists are tiny;
    #: anything larger is a malformed request, not a batch.
    REGIONS_BODY_LIMIT = 1 << 20
    #: Cap on the number of regions per batch.
    REGIONS_MAX_COUNT = 1024

    #: Response headers a federation proxy passes through from the peer.
    PROXY_HEADERS = ("Content-Type", "ETag", "Accept-Ranges", "Content-Range",
                     "X-Repro-Shape", "X-Repro-Dtype", "X-Repro-Header",
                     "X-Repro-Generation", "X-Repro-Count")
    #: Connection attempts per peer before moving to the next one.
    PROXY_ATTEMPTS = 2

    def __init__(self, store: ArchiveStore, *,
                 ingest: Optional[IngestManager] = None,
                 peers: Optional[List[str]] = None,
                 proxy_timeout: float = 30.0) -> None:
        self.store = store
        self.ingest = ingest
        self.metrics = RouteMetrics()
        # Federation: GET lookups for keys this store does not own are
        # retried against these peer nodes, in order.
        self._peers = [self._parse_peer(url) for url in (peers or [])]
        self._proxy_timeout = float(proxy_timeout)
        self._proxy_lock = make_lock("StoreApp._proxy_lock")
        self._proxied = 0  # guarded by: self._proxy_lock
        self._proxy_errors = 0  # guarded by: self._proxy_lock

    @staticmethod
    def _parse_peer(url: str) -> Tuple[str, str, int, str, str]:
        parts = urlsplit(url)
        if parts.scheme not in ("http", "https") or not parts.hostname:
            raise ValueError(
                f"invalid peer URL {url!r} (need "
                f"http(s)://host[:port][/prefix])")
        port = parts.port or (443 if parts.scheme == "https" else 80)
        return parts.scheme, parts.hostname, port, parts.path.rstrip("/"), url

    # ------------------------------------------------------------ entry point
    def handle(self, request: Request) -> Response:
        start = time.perf_counter()
        route = "other"
        status = 0
        try:
            parsed = urlparse(request.target)
            parts = [unquote(p) for p in parsed.path.split("/") if p]
            route, thunk = self._resolve(request, parts, parsed)
            response = thunk()
            status = response.status
            return response
        finally:
            self.metrics.record(route, status, time.perf_counter() - start)

    def _resolve(self, request: Request, parts: List[str], parsed
                 ) -> Tuple[str, Callable[[], Response]]:
        """Map (method, path) to a (metrics route name, handler thunk)."""
        method = request.method
        if method == "GET":
            if parts == ["healthz"]:
                return "healthz", self._healthz
            if parts == ["metrics"]:
                return "metrics", self._metrics
            if len(parts) == 3 and parts[0] == "v1" and parts[2] == "info":
                return "info", lambda: self._info(request, parts[1])
            if len(parts) == 3 and parts[0] == "v1" and parts[2] == "region":
                return "region", lambda: self._region(
                    request, parts[1], parse_qs(parsed.query))
            if len(parts) == 3 and parts[0] == "v1" and parts[2] == "archive":
                return "archive", lambda: self._archive(request, parts[1])
        elif method == "POST" and len(parts) == 3 and parts[0] == "v1" \
                and parts[2] == "regions":
            return "regions", lambda: self._regions(request, parts[1])
        elif len(parts) == 2 and parts[0] == "v1":
            if method == "POST":
                return "ingest", lambda: self._ingest(request, parts[1])
            if method == "DELETE":
                return "delete", lambda: self._delete(request, parts[1])
        return "other", lambda: self._json(
            404, {"error": f"no {method} route for {parsed.path!r}"})

    # ------------------------------------------------------------- GET routes
    def _healthz(self) -> Response:
        return self._json(200, {"status": "ok",
                                "archives": list(self.store.keys()),
                                "stats": self.store.stats()})

    def _metrics(self) -> Response:
        stats = self.store.stats()
        return self._json(200, {
            "cache": {k: stats[k] for k in ("entries", "nbytes", "max_bytes",
                                            "hits", "misses", "loads",
                                            "evictions")},
            "tile_decodes": stats["tile_decodes"],
            "region_reads": stats["region_reads"],
            "archives": stats["archives"],
            "routes": self.metrics.snapshot(),
            "writable": self.ingest is not None,
            "remote": self.store.remote_stats(),
            "federation": self._federation_stats(),
        })

    def _federation_stats(self) -> dict:
        with self._proxy_lock:
            proxied, errors = self._proxied, self._proxy_errors
        return {"peers": [peer[4] for peer in self._peers],
                "proxied": proxied, "proxy_errors": errors}

    def _info(self, request: Request, key: str) -> Response:
        try:
            info = self.store.entry_info(key)
        except KeyError as exc:
            return self._proxy_or_404(request, exc)
        except ValueError as exc:
            # "store is closed": a request raced the shutdown path.  Answer
            # it cleanly instead of dying with a traceback mid-connection.
            return self._json(503, {"error": str(exc)})
        not_modified = self._not_modified(request, info)
        if not_modified is not None:
            return not_modified
        index = info.index
        doc = {
            "key": key,
            "codec": index.codec,
            "shape": list(index.shape),
            "dtype": index.dtype,
            "bound": {"mode": index.bound_mode, "value": index.bound_value},
            "version": index.version,
            "generation": info.generation,
        }
        if hasattr(index, "grid_shape"):  # v3 N-d grid
            doc["chunk_shape"] = list(index.chunk_shape)
            doc["grid_shape"] = list(index.grid_shape)
            doc["n_tiles"] = index.n_tiles
        elif hasattr(index, "n_chunks"):  # v2 axis-0 slabs
            doc["axis"] = index.axis
            doc["n_tiles"] = index.n_chunks
        else:
            doc["n_tiles"] = 1
        return self._json(200, doc, extra=self._entity_headers(info))

    def _region(self, request: Request, key: str, query: dict) -> Response:
        spec = (query.get("r") or query.get("region") or [None])[0]
        if spec is None:
            return self._json(400, {"error": "missing r= query parameter "
                                             "(e.g. ?r=10:20,0:64,5:9)"})
        not_modified = self._check_conditional(request, key)
        if not_modified is not None:
            return not_modified
        try:
            arr, info = self.store.read_region_with_info(key, spec)
        except RegionSpecError as exc:
            # The client's region is at fault (syntax, rank, negative or
            # reversed bounds against this entry's shape): 4xx.
            return self._json(400, {"error": str(exc)})
        except KeyError as exc:
            return self._proxy_or_404(request, exc)
        except ValueError as exc:
            # "store is closed" races the shutdown path (503); everything
            # else is the archive's fault — corrupt tile bytes, shape
            # mismatch after decode (500).  Nothing was cached, so other
            # regions of this archive keep serving and retries re-attempt.
            code = 503 if "store is closed" in str(exc) else 500
            return self._json(code, {"error": str(exc)})
        except OSError as exc:
            return self._json(500, {"error": str(exc)})
        body = np.ascontiguousarray(arr).tobytes()
        meta = {
            "key": key,
            "region": [[b0, b1] for b0, b1 in info.bounds],
            "shape": list(arr.shape),
            "dtype": str(arr.dtype),
            "order": "C",
            "generation": info.generation,
        }
        headers = {
            "Content-Type": "application/octet-stream",
            "X-Repro-Shape": ",".join(str(s) for s in arr.shape),
            "X-Repro-Dtype": str(arr.dtype),
            "X-Repro-Header": json.dumps(meta, sort_keys=True),
        }
        headers.update(self._entity_headers(info))
        return Response(200, body, headers=headers)

    def _archive(self, request: Request, key: str) -> Response:
        """Raw archive bytes of ``key``, with single-span ``Range`` support.

        This is the endpoint that makes one node's archives readable as a
        remote byte source by another (``store.add(key, f"{url}/v1/{key}/"
        "archive")``): a valid ``Range: bytes=a-b`` answers 206 with a
        strict ``Content-Range``, a range past EOF answers 416, and
        anything unsupported falls back to an honest 200 full body — never
        a mislabeled partial.
        """
        not_modified = self._check_conditional(request, key)
        if not_modified is not None:
            not_modified.headers.setdefault("Accept-Ranges", "bytes")
            return not_modified
        span = _parse_byte_range(request.header("range"))
        try:
            if span is None:
                start = 0
                data, size, info = self.store.read_raw_with_info(key)
                status = 200
            else:
                start, end, suffix = span
                if suffix is not None:
                    # Suffix ranges need the total first; the extra lookup
                    # may race a concurrent replace, in which case the
                    # tile-level CRC checks downstream still catch any mix.
                    _, total, _ = self.store.read_raw_with_info(key, 0, 0)
                    start, end = max(0, total - suffix), None
                length = None if end is None else end - start + 1
                data, size, info = self.store.read_raw_with_info(
                    key, start, length)
                if start >= size:
                    return self._json(
                        416, {"error": f"range {request.header('range')!r} "
                                       f"is not satisfiable for a "
                                       f"{size}-byte archive"},
                        extra={"Content-Range": f"bytes */{size}",
                               "Accept-Ranges": "bytes"})
                status = 206
        except KeyError as exc:
            return self._proxy_or_404(request, exc)
        except ValueError as exc:
            code = 503 if "store is closed" in str(exc) else 500
            return self._json(code, {"error": str(exc)})
        except OSError as exc:
            return self._json(500, {"error": str(exc)})
        headers = {"Content-Type": "application/octet-stream",
                   "Accept-Ranges": "bytes"}
        headers.update(self._entity_headers(info))
        if status == 206:
            headers["Content-Range"] = \
                f"bytes {start}-{start + len(data) - 1}/{size}"
        return Response(status, data, headers=headers)

    # ------------------------------------------------------------- federation
    def _proxy_or_404(self, request: Request, exc: KeyError) -> Response:
        """Try the configured peers for an unknown key; 404 when none serve it."""
        proxied = self._proxy(request)
        if proxied is not None:
            return proxied
        return self._json(404, {"error": str(exc)})

    def _proxy(self, request: Request) -> Optional[Response]:
        if not self._peers or request.header("x-repro-federated") is not None:
            # No peers, or the request already came from a peer: answering
            # locally (404) breaks the forwarding loop two misconfigured
            # nodes pointing at each other would otherwise enter.
            return None
        headers = {"X-Repro-Federated": "1"}
        for name in ("range", "if-none-match"):
            value = request.header(name)
            if value is not None:
                headers[name] = value
        for peer in self._peers:
            response = self._proxy_one(peer, request.target, headers)
            if response is None or response.status == 404:
                continue  # this peer does not own the key either
            with self._proxy_lock:
                self._proxied += 1
            return response
        return None

    def _proxy_one(self, peer: Tuple[str, str, int, str, str], target: str,
                   headers: Dict[str, str]) -> Optional[Response]:
        scheme, host, port, base, _url = peer
        conn_cls = HTTPSConnection if scheme == "https" else HTTPConnection
        for _attempt in range(self.PROXY_ATTEMPTS):
            conn = conn_cls(host, port, timeout=self._proxy_timeout)
            try:
                conn.request("GET", base + target, headers=headers)
                resp = conn.getresponse()
                body = resp.read()
                out_headers = {}
                for name in self.PROXY_HEADERS:
                    value = resp.getheader(name)
                    if value is not None:
                        out_headers[name] = value
                return Response(resp.status, body, headers=out_headers)
            except (HTTPException, ConnectionError, TimeoutError, OSError):
                with self._proxy_lock:
                    self._proxy_errors += 1
            finally:
                conn.close()
        return None

    def _regions(self, request: Request, key: str) -> Response:
        """Batched region reads: JSON spec list in, concatenated bytes out."""
        length_header = request.header("content-length")
        if length_header is None:
            return self._json(411, {"error": "batched regions need "
                                             "Content-Length (a JSON body of "
                                             "region specs)"}, close=True)
        try:
            length = int(length_header)
        except ValueError:
            return self._json(400, {"error": f"corrupt batch body: invalid "
                                             f"Content-Length "
                                             f"{length_header!r}"}, close=True)
        if length < 0 or length > self.REGIONS_BODY_LIMIT:
            return self._json(413, {"error": f"batch body of {length} bytes "
                                             f"exceeds the "
                                             f"{self.REGIONS_BODY_LIMIT}-byte "
                                             f"limit"}, close=True)
        try:
            raw = b"".join(read_sized_stream(request.rfile, length))
        except ValueError as exc:
            return self._json(400, {"error": str(exc)}, close=True)
        # From here the framed body is fully consumed: keep-alive is safe.
        try:
            doc = json.loads(raw) if raw else None
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            return self._json(400, {"error": f"corrupt batch body: invalid "
                                             f"JSON ({exc})"})
        specs = doc.get("regions") if isinstance(doc, dict) else doc
        if (not isinstance(specs, list) or not specs
                or not all(isinstance(s, str) for s in specs)):
            return self._json(400, {"error": 'batch body must be '
                                             '{"regions": ["10:20,:", ...]} '
                                             'or a JSON list of region spec '
                                             'strings'})
        if len(specs) > self.REGIONS_MAX_COUNT:
            return self._json(400, {"error": f"batch of {len(specs)} regions "
                                             f"exceeds the "
                                             f"{self.REGIONS_MAX_COUNT}-"
                                             f"region limit"})
        try:
            arrays, infos = self.store.read_regions_with_info(key, specs)
        except RegionSpecError as exc:
            return self._json(400, {"error": str(exc)})
        except KeyError as exc:
            return self._json(404, {"error": str(exc)})
        except ValueError as exc:
            code = 503 if "store is closed" in str(exc) else 500
            return self._json(code, {"error": str(exc)})
        except OSError as exc:
            return self._json(500, {"error": str(exc)})
        parts = [np.ascontiguousarray(a).tobytes() for a in arrays]
        regions_meta = []
        offset = 0
        for arr, part, info in zip(arrays, parts, infos):
            regions_meta.append({
                "region": [[b0, b1] for b0, b1 in info.bounds],
                "shape": list(arr.shape),
                "dtype": str(arr.dtype),
                "offset": offset,
                "nbytes": len(part),
            })
            offset += len(part)
        generation = infos[0].generation
        meta = {
            "key": key,
            "count": len(parts),
            "order": "C",
            "generation": generation,
            "regions": regions_meta,
        }
        headers = {
            "Content-Type": "application/octet-stream",
            "X-Repro-Count": str(len(parts)),
            "X-Repro-Header": json.dumps(meta, sort_keys=True),
        }
        headers.update(self._entity_headers(infos[0]))
        return Response(200, b"".join(parts), headers=headers)

    # ----------------------------------------------------------- write routes
    def _ingest(self, request: Request, key: str) -> Response:
        manager = self.ingest
        if manager is None:
            return self._read_only_response()
        denied = self._auth_failure(manager, request, key)
        if denied is not None:
            return denied
        try:
            params = self._ingest_params(request)
        except ValueError as exc:
            return self._json(400, {"error": str(exc)}, close=True)
        quota = manager.quota_bytes
        length = request.header("content-length")
        te = request.header("transfer-encoding", "") or ""
        if "chunked" in te.lower():
            chunks = read_chunked_stream(request.rfile)
        elif length is not None:
            try:
                body_bytes = int(length)
            except ValueError:
                return self._json(400, {"error": f"corrupt upload body: "
                                                 f"invalid Content-Length "
                                                 f"{length!r}"}, close=True)
            if quota is not None and body_bytes > quota:
                return self._json(413, {"error": f"upload of {body_bytes} "
                                                 f"bytes exceeds the per-key "
                                                 f"quota of {quota} bytes"},
                                  close=True)
            chunks = read_sized_stream(request.rfile, body_bytes)
        else:
            return self._json(411, {"error": "upload needs Content-Length or "
                                             "Transfer-Encoding: chunked"},
                              close=True)
        created = manager.manifest.get(key) is None
        blocks = read_row_blocks(limit_stream(chunks, quota, key),
                                 params["shape"], params["dtype"])
        try:
            entry = manager.ingest(key, blocks, codec=params["codec"],
                                   bound=params["bound"],
                                   chunk_size=params["chunk_size"],
                                   data_range=params["data_range"])
        except IngestConflictError as exc:
            return self._json(409, {"error": str(exc)}, close=True)
        except IngestQuotaError as exc:
            return self._json(413, {"error": str(exc)}, close=True)
        except ValueError as exc:
            # Caller-side faults: malformed body framing/row count, unknown
            # codec, bad bound, rel bound without a data range.
            return self._json(400, {"error": str(exc)}, close=True)
        except (IngestVerifyError, OSError) as exc:
            return self._json(500, {"error": str(exc)}, close=True)
        return self._json(201 if created else 200, {
            "key": key,
            "created": created,
            "generation": entry.generation,
            "archive_bytes": entry.nbytes,
            "token": entry.token,
            "codec": entry.codec,
            "shape": entry.shape,
            "dtype": entry.dtype,
            "bound": entry.bound,
            "path": entry.path,
        })

    def _delete(self, request: Request, key: str) -> Response:
        manager = self.ingest
        if manager is None:
            return self._read_only_response()
        denied = self._auth_failure(manager, request, key)
        if denied is not None:
            return denied
        try:
            entry = manager.delete(key)
        except KeyError as exc:
            return self._json(404, {"error": str(exc)})
        return self._json(200, {"deleted": key,
                                "generation": entry.generation})

    @staticmethod
    def _ingest_params(request: Request) -> dict:
        """Parse and validate the ``X-Repro-*`` upload headers (ValueError = 400)."""
        shape_header = request.header("x-repro-shape")
        dtype_header = request.header("x-repro-dtype")
        bound_header = request.header("x-repro-bound")
        if not shape_header or not dtype_header or not bound_header:
            raise ValueError(
                "upload needs X-Repro-Shape, X-Repro-Dtype and X-Repro-Bound "
                "headers")
        try:
            shape = tuple(int(s) for s in shape_header.split(","))
        except ValueError:
            raise ValueError(
                f"corrupt upload body: invalid X-Repro-Shape "
                f"{shape_header!r}") from None
        if not shape or any(s <= 0 for s in shape):
            raise ValueError(
                f"X-Repro-Shape {shape_header!r} must be positive per-axis "
                f"extents")
        try:
            dtype = np.dtype(dtype_header)
        except TypeError:
            raise ValueError(
                f"corrupt upload body: unknown X-Repro-Dtype "
                f"{dtype_header!r}") from None
        mode = request.header("x-repro-bound-mode", "rel")
        if mode not in MODES:
            raise ValueError(
                f"X-Repro-Bound-Mode {mode!r} must be one of {', '.join(MODES)}")
        try:
            bound = ErrorBound(mode, float(bound_header))
        except ValueError as exc:
            raise ValueError(f"invalid X-Repro-Bound: {exc}") from None
        data_range = None
        range_header = request.header("x-repro-data-range")
        if range_header is not None:
            try:
                lo, hi = (float(v) for v in range_header.split(","))
            except ValueError:
                raise ValueError(
                    f"invalid X-Repro-Data-Range {range_header!r} (expected "
                    f"'min,max')") from None
            data_range = (lo, hi)
        chunk_header = request.header("x-repro-chunk-size")
        try:
            chunk_size = int(chunk_header) if chunk_header else 0
        except ValueError:
            raise ValueError(
                f"invalid X-Repro-Chunk-Size {chunk_header!r}") from None
        return {
            "shape": shape,
            "dtype": dtype,
            "bound": bound,
            "codec": request.header("x-repro-codec", "sz21"),
            "data_range": data_range,
            "chunk_size": chunk_size if chunk_size > 0 else DEFAULT_CHUNK_ELEMS,
        }

    # ---------------------------------------------------------------- helpers
    def _check_conditional(self, request: Request, key: str
                           ) -> Optional[Response]:
        """A 304 (or error) for a conditional GET, ``None`` to proceed.

        Runs *before* the decode so a fresh client cache skips the region
        work entirely; the fresh/stale decision is made against one atomic
        entry snapshot.
        """
        inm = request.header("if-none-match")
        if inm is None:
            return None
        try:
            info = self.store.entry_info(key)
        except KeyError:
            # Unknown key: let the main read path raise (same 404 message)
            # so federation can try the peers with the header intact.
            return None
        except ValueError as exc:
            return self._json(503, {"error": str(exc)})
        return self._not_modified(request, info)

    def _not_modified(self, request: Request, info: ReadInfo
                      ) -> Optional[Response]:
        inm = request.header("if-none-match")
        if inm is not None and _etag_matches(inm, info.etag):
            return Response(304, b"", headers=self._entity_headers(info))
        return None

    @staticmethod
    def _entity_headers(info: ReadInfo) -> Dict[str, str]:
        return {"ETag": info.etag,
                "X-Repro-Generation": str(info.generation)}

    def _read_only_response(self) -> Response:
        return self._json(405, {"error": "this server is read-only; start "
                                         "repro serve with --root DIR "
                                         "--writable to enable ingest"},
                          close=True)

    def _auth_failure(self, manager: IngestManager, request: Request,
                      key: str) -> Optional[Response]:
        """Enforce the manifest's bearer tokens; a Response means denied."""
        required = manager.manifest.auth_token(key)
        if required is None:
            return None
        supplied = (request.header("authorization", "") or "").strip()
        if hmac.compare_digest(supplied, f"Bearer {required}"):
            return None
        return self._json(401, {"error": f"mutating key {key!r} requires a "
                                         f"bearer token"},
                          close=True,
                          extra={"WWW-Authenticate": "Bearer"})

    @staticmethod
    def _json(code: int, obj: dict, *, close: bool = False,
              extra: Optional[Dict[str, str]] = None) -> Response:
        # ``close`` drops the connection after the response: error paths of
        # the upload routes may leave unread body bytes on the socket, which
        # would desynchronize keep-alive framing for the next request.
        headers = {"Content-Type": "application/json"}
        if extra:
            headers.update(extra)
        return Response(code, json.dumps(obj, sort_keys=True).encode(),
                        headers=headers, close=close)


# ---------------------------------------------------------------------------
# The threaded front end (fallback: `repro serve --server threaded`)
# ---------------------------------------------------------------------------

class StoreRequestHandler(BaseHTTPRequestHandler):
    """Adapts one ``http.server`` request to the shared :class:`StoreApp`."""

    server: "StoreHTTPServer"  # narrowed from BaseServer: set by the server

    server_version = "repro-serve/3"
    protocol_version = "HTTP/1.1"  # keep-alive; every response sets Content-Length

    def setup(self) -> None:
        read_timeout = getattr(self.server, "read_timeout", None)
        if read_timeout is not None:
            self.timeout = read_timeout  # per-connection socket timeout
        super().setup()

    # ----------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def _dispatch(self, method: str) -> None:
        headers = {name.lower(): value for name, value in self.headers.items()}
        request = Request(method, self.path, headers, self.rfile)
        try:
            response = self.server.app.handle(request)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            # The client went away while its upload body was being read;
            # nothing to salvage and nobody to answer.
            self.close_connection = True
            return
        try:
            self._send(response)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            self.close_connection = True

    def _send(self, response: Response) -> None:
        self.send_response(response.status)
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(response.body)))
        if response.close:
            self.close_connection = True
            self.send_header("Connection", "close")
        self.end_headers()
        if response.body and response.status != 304:
            self.wfile.write(response.body)

    def log_message(self, fmt, *args) -> None:
        if not getattr(self.server, "quiet", True):  # pragma: no cover
            super().log_message(fmt, *args)


class StoreHTTPServer(ThreadingHTTPServer):
    """A threaded HTTP server bound to one :class:`ArchiveStore`.

    ``ingest`` (an :class:`IngestManager`) enables the mutating routes; with
    ``None`` the server is read-only and POST/DELETE answer 405.
    ``read_timeout`` (seconds, ``None`` = no limit) becomes each
    connection's socket timeout, so an idle or stalled client eventually
    frees its thread.
    """

    daemon_threads = True  # in-flight requests never block process exit

    def __init__(self, address: Tuple[str, int], store: ArchiveStore, *,
                 quiet: bool = True, ingest: Optional[IngestManager] = None,
                 read_timeout: Optional[float] = None,
                 peers: Optional[List[str]] = None):
        super().__init__(address, StoreRequestHandler)
        self.app = StoreApp(store, ingest=ingest, peers=peers)
        self.store = store
        self.quiet = quiet
        self.ingest = ingest
        self.metrics = self.app.metrics
        self.read_timeout = read_timeout

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def make_server(store: ArchiveStore, host: str = "127.0.0.1", port: int = 0,
                *, quiet: bool = True,
                ingest: Optional[IngestManager] = None,
                server: str = "threaded",
                read_timeout: Optional[float] = None,
                max_connections: int = 512,
                workers: Optional[int] = None,
                peers: Optional[List[str]] = None,
                ) -> "Union[StoreHTTPServer, AsyncStoreHTTPServer]":
    """Bind a store HTTP server (``port=0`` picks a free port).

    ``server`` selects the front end: ``"threaded"`` (default here, for
    drop-in compatibility) is the one-thread-per-connection fallback;
    ``"selectors"`` is the non-blocking event-loop front end of
    :mod:`repro.store.aserver` (what the CLI defaults to) — same routes,
    status codes and auth either way, since both wrap one
    :class:`StoreApp`.  ``read_timeout`` bounds how long a connection may
    sit idle (or stall mid-body); ``max_connections`` and ``workers`` apply
    to the selectors front end (connection guard / decode pool size).

    The caller drives it: ``serve_forever()`` inline (what ``repro serve``
    does after printing the bound URL), or on a thread for embedding
    (``threading.Thread(target=server.serve_forever).start()``), and
    ``shutdown()`` + ``server_close()`` to stop.  Pass ``ingest=`` to enable
    the write routes (``POST`` / ``DELETE /v1/<key>``).
    """
    if server in ("selectors", "async"):
        from repro.store.aserver import AsyncStoreHTTPServer

        return AsyncStoreHTTPServer(
            (host, port), store, quiet=quiet, ingest=ingest,
            read_timeout=read_timeout, max_connections=max_connections,
            workers=workers, peers=peers)
    if server != "threaded":
        raise ValueError(f"unknown server kind {server!r} "
                         f"(use 'selectors' or 'threaded')")
    return StoreHTTPServer((host, port), store, quiet=quiet, ingest=ingest,
                           read_timeout=read_timeout, peers=peers)


install_guards(RouteMetrics, "_lock", ("_routes",))
install_guards(StoreApp, "_proxy_lock", ("_proxied", "_proxy_errors"))

"""Stdlib-only HTTP read service over an :class:`ArchiveStore`.

One thread per request (``ThreadingHTTPServer``) on top of the store's
thread-safe cached read path — the serving shape the paper's amortized
workflow wants: one long-lived process holding the parsed headers and the
decoded-tile cache, many concurrent clients pulling regions.

Routes (GET only):

``/healthz``
    Liveness + the store's cache/read counters, as JSON.
``/v1/<key>/info``
    The archive's header as JSON: codec, shape, dtype, bound, envelope
    version and (for chunked/grid archives) the tile geometry.
``/v1/<key>/region?r=10:20,0:64,5:9``
    The decoded region as raw bytes (C order), described by response
    headers: ``X-Repro-Shape`` / ``X-Repro-Dtype`` plus ``X-Repro-Header``,
    a JSON object carrying both and the normalized region.  Reconstruct with
    ``numpy.frombuffer(body, dtype).reshape(shape)``.

Errors are JSON bodies ``{"error": ...}``: 400 for a malformed or mismatched
region, 404 for unknown keys/paths, 500 for decode failures (e.g. a corrupt
tile).  A 500 is scoped to the affected request — failed decodes are never
cached, so other regions (and retries) keep serving.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Tuple
from urllib.parse import parse_qs, unquote, urlparse

import numpy as np

from repro.api import normalize_region, parse_region
from repro.store.store import ArchiveStore


class StoreRequestHandler(BaseHTTPRequestHandler):
    """Routes one request into the server's :class:`ArchiveStore`."""

    server: "StoreHTTPServer"  # narrowed from BaseServer: set by the server

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"  # keep-alive; every response sets Content-Length

    # ----------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        try:
            parsed = urlparse(self.path)
            parts = [unquote(p) for p in parsed.path.split("/") if p]
            if parts == ["healthz"]:
                self._healthz()
            elif len(parts) == 3 and parts[0] == "v1" and parts[2] == "info":
                self._info(parts[1])
            elif len(parts) == 3 and parts[0] == "v1" and parts[2] == "region":
                self._region(parts[1], parse_qs(parsed.query))
            else:
                self._send_json(404, {"error": f"no route for {parsed.path!r}"})
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-response; nothing to salvage

    def _healthz(self) -> None:
        self._send_json(200, {"status": "ok",
                              "archives": list(self.server.store.keys()),
                              "stats": self.server.store.stats()})

    def _info(self, key: str) -> None:
        index = self._index_or_404(key)
        if index is None:
            return
        info = {
            "key": key,
            "codec": index.codec,
            "shape": list(index.shape),
            "dtype": index.dtype,
            "bound": {"mode": index.bound_mode, "value": index.bound_value},
            "version": index.version,
        }
        if hasattr(index, "grid_shape"):  # v3 N-d grid
            info["chunk_shape"] = list(index.chunk_shape)
            info["grid_shape"] = list(index.grid_shape)
            info["n_tiles"] = index.n_tiles
        elif hasattr(index, "n_chunks"):  # v2 axis-0 slabs
            info["axis"] = index.axis
            info["n_tiles"] = index.n_chunks
        else:
            info["n_tiles"] = 1
        self._send_json(200, info)

    def _region(self, key: str, query: dict) -> None:
        spec = (query.get("r") or query.get("region") or [None])[0]
        if spec is None:
            self._send_json(400, {"error": "missing r= query parameter "
                                           "(e.g. ?r=10:20,0:64,5:9)"})
            return
        index = self._index_or_404(key)
        if index is None:
            return
        try:
            region = parse_region(spec)
            bounds = normalize_region(region, index.shape)
        except ValueError as exc:  # the client's region is at fault: 4xx
            self._send_json(400, {"error": str(exc)})
            return
        try:
            arr = self.server.store.read_region(key, region)
        except KeyError as exc:
            # The key vanished between the info lookup and the read (a
            # concurrent remove): same outcome as never having existed.
            self._send_json(404, {"error": str(exc)})
            return
        except (ValueError, OSError) as exc:
            # The archive (not the request) is at fault — corrupt tile bytes,
            # shape mismatch after decode, I/O failure.  Nothing was cached,
            # so other regions of this archive keep serving and retries
            # re-attempt.
            self._send_json(500, {"error": str(exc)})
            return
        body = np.ascontiguousarray(arr).tobytes()
        meta = {
            "key": key,
            "region": [[b0, b1] for b0, b1 in bounds],
            "shape": list(arr.shape),
            "dtype": str(arr.dtype),
            "order": "C",
        }
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Repro-Shape", ",".join(str(s) for s in arr.shape))
        self.send_header("X-Repro-Dtype", str(arr.dtype))
        self.send_header("X-Repro-Header", json.dumps(meta, sort_keys=True))
        self.end_headers()
        self.wfile.write(body)

    # ---------------------------------------------------------------- helpers
    def _index_or_404(self, key: str):
        try:
            return self.server.store.info(key)
        except KeyError as exc:
            self._send_json(404, {"error": str(exc)})
            return None
        except ValueError as exc:
            # "store is closed": a request raced the shutdown path.  Answer
            # it cleanly instead of dying with a traceback mid-connection.
            self._send_json(503, {"error": str(exc)})
            return None

    def _send_json(self, code: int, obj: dict) -> None:
        body = json.dumps(obj, sort_keys=True).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args) -> None:
        if not getattr(self.server, "quiet", True):  # pragma: no cover
            super().log_message(fmt, *args)


class StoreHTTPServer(ThreadingHTTPServer):
    """A threaded HTTP server bound to one :class:`ArchiveStore`."""

    daemon_threads = True  # in-flight requests never block process exit

    def __init__(self, address: Tuple[str, int], store: ArchiveStore, *,
                 quiet: bool = True):
        super().__init__(address, StoreRequestHandler)
        self.store = store
        self.quiet = quiet

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def make_server(store: ArchiveStore, host: str = "127.0.0.1", port: int = 0,
                *, quiet: bool = True) -> StoreHTTPServer:
    """Bind a :class:`StoreHTTPServer` (``port=0`` picks a free port).

    The caller drives it: ``serve_forever()`` inline (what ``repro serve``
    does after printing the bound URL), or on a thread for embedding
    (``threading.Thread(target=server.serve_forever).start()``), and
    ``shutdown()`` + ``server_close()`` to stop.
    """
    return StoreHTTPServer((host, port), store, quiet=quiet)

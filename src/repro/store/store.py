"""A thread-safe, caching archive store: the hot read path of the serving layer.

:func:`repro.read_region` is stateless: every call re-opens the file,
re-parses the front header and re-decodes each intersecting tile.
:class:`ArchiveStore` amortizes all three across requests:

* **Archives stay open** — registered once under a string key, each archive
  gets a long-lived positional-read handle (``os.pread`` where available, so
  concurrent reads never contend on a shared seek pointer) and its header is
  parsed exactly once, at :meth:`add` time.
* **Decoded tiles are shared** — all requests go through one size-bounded
  :class:`repro.store.cache.TileCache`; its single-flight loading guarantees
  a tile decodes at most once per cache residency even under heavy
  concurrency.
* **Results are bit-identical to the cold path** — a store read assembles the
  same CRC-checked, shape-checked tile decodes as ``repro.read_region``;
  only the bookkeeping is amortized.

Every public method is safe to call from many threads at once.
"""

from __future__ import annotations

import hashlib
import os
import zlib
from concurrent.futures import ThreadPoolExecutor
from typing import (Any, Dict, List, NamedTuple, Optional, Sequence, Tuple,
                    Union)

import numpy as np

from repro.api import (
    _decompress_parsed,
    _store_chunk,
    decode_tile,
    load_index,
    normalize_region,
    parse_region,
    tile_crop,
)
from repro.encoding.container import Archive, ChunkedIndex, GridIndex
from repro.registry import compressor_spec
from repro.sources.base import (
    BytesByteSource,
    FileByteSource,
    is_byte_source,
    is_url,
)
from repro.sources.spill import DEFAULT_SPILL_BYTES, CachingByteSource
from repro.store.cache import DEFAULT_CACHE_BYTES, TileCache
from repro.utils.concurrency import install_guards, make_lock

IndexType = Union[Archive, ChunkedIndex, GridIndex]

#: What ``add`` accepts: archive bytes, a path to an archive file, an
#: ``http(s)://`` URL, or an already-open ``ByteSource``.
SourceType = Union[bytes, bytearray, memoryview, str, os.PathLike]


class RegionSpecError(ValueError):
    """The *request's* region does not fit the archive (caller fault, HTTP 400).

    Subclasses ``ValueError`` so existing ``except ValueError`` callers keep
    working; the HTTP layer catches this subclass to separate "your region is
    malformed for this shape" (400) from archive-side decode faults (500).
    """


class ReadInfo(NamedTuple):
    """Metadata of the entry a read actually resolved — one atomic snapshot.

    ``index``/``generation``/``etag`` all belong to the *same* registered
    entry the accompanying array was decoded from, so response metadata can
    never contradict the body across a concurrent ``replace``.  ``bounds``
    is the normalized region (empty for non-region lookups).
    """

    index: IndexType
    generation: int
    etag: str
    bounds: Tuple[Tuple[int, int], ...]


# ---------------------------------------------------------------------------
# Concurrency-safe random-access handles
# ---------------------------------------------------------------------------

# The positional-read file handle moved to :mod:`repro.sources.base` (one
# shared short-read loop for both the store and the facade); the old private
# name survives for anything that grew up on it.
_PReadHandle = FileByteSource


def _content_etag(index: IndexType) -> str:
    """A strong entity tag derived from the archive's content tokens.

    Chunked/grid archives hash their per-tile identity (offsets, lengths,
    CRC-32s) plus the envelope fields; single-shot v1 archives hash the
    payload CRC directly.  Two archives with identical bytes get identical
    tags, and any tile-level change flips some CRC and therefore the tag —
    exactly the conditional-GET contract, with no extra I/O at add time.
    """
    h = hashlib.sha1()
    h.update(repr((type(index).__name__, index.version, index.codec,
                   tuple(index.shape), str(index.dtype), index.bound_mode,
                   float(index.bound_value))).encode())
    if isinstance(index, Archive):  # v1: one payload is the whole content
        payload = index.payload
        h.update(repr((len(payload), zlib.crc32(payload))).encode())
    else:
        h.update(repr((tuple(index.offsets), tuple(index.lengths),
                       tuple(index.crcs))).encode())
    return f'"{h.hexdigest()}"'


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------

class _Entry:
    """One registered archive: parsed index + read handle + decode options.

    The handle's lifetime is pin-counted: every in-flight read holds a pin,
    and :meth:`retire` (from ``remove``/``close``) defers the actual
    ``handle.close()`` until the last pin drops — so a concurrent reader can
    never hit a closed (or kernel-reused) file descriptor.
    """

    __slots__ = ("key", "handle", "index", "token", "decode_opts",
                 "generation", "etag",
                 "_pin_lock", "_pins", "_retired", "_on_close")

    def __init__(self, key: str, handle, index: IndexType, decode_opts: dict):
        self.key = key
        self.handle = handle
        self.index = index
        # Cache keys are scoped by this token object.  Identity-unique, and
        # alive exactly as long as any cache key referencing it, so a removed
        # and re-added archive can never alias another entry's cached tiles
        # (even across stores sharing one TileCache).
        self.token = object()
        self.decode_opts = decode_opts
        # Both are immutable once the entry is published into a store's
        # registry: generation is (re)assigned under the store lock before
        # insertion, the etag is a pure function of the parsed index.
        self.generation = 1
        self.etag = _content_etag(index)
        self._pin_lock = make_lock("_Entry._pin_lock")
        self._pins = 0  # guarded by: self._pin_lock
        self._retired = False  # guarded by: self._pin_lock
        self._on_close = None  # guarded by: self._pin_lock

    def pin(self) -> None:
        with self._pin_lock:
            if self._retired:
                raise KeyError(f"no archive registered under key {self.key!r}")
            self._pins += 1

    def unpin(self) -> None:
        with self._pin_lock:
            self._pins -= 1
            close_now = self._retired and self._pins == 0
            callback = self._on_close if close_now else None
        if close_now:
            self.handle.close()
            if callback is not None:
                callback()

    def retire(self, on_close=None) -> None:
        """Mark dead; the handle closes when the last in-flight read unpins.

        ``on_close`` runs (at most once) right after the handle actually
        closes — the ingest layer uses it to unlink a replaced archive file
        only when no reader can still be positioned inside it.  It runs on
        whichever thread drops the last pin, so it must be quick and must
        not raise.
        """
        with self._pin_lock:
            if self._retired:
                return
            self._retired = True
            self._on_close = on_close
            close_now = self._pins == 0
        if close_now:
            self.handle.close()
            if on_close is not None:
                on_close()

    @property
    def is_v1(self) -> bool:
        return isinstance(self.index, Archive)

    def region_tiles(self, bounds) -> List[int]:
        if self.is_v1:
            # A single-shot archive is one logical tile covering the field.
            return [] if any(b0 >= b1 for b0, b1 in bounds) else [0]
        return self.index.region_tiles(bounds)

    def tile_slices(self, i: int) -> Tuple[slice, ...]:
        if self.is_v1:
            return tuple(slice(0, d) for d in self.index.shape)
        return self.index.tile_slices(i)

    def cache_key(self, i: int):
        if self.is_v1:
            return (self.token, 0)
        return (self.token,) + self.index.tile_key(i)


class ArchiveStore:
    """Keeps archives open and serves cached, thread-safe region reads.

    Archives are registered with :meth:`add` under a caller-chosen key; their
    headers are parsed once and every subsequent :meth:`read_region` /
    :meth:`read_regions` touches only the front-header-free fast path: cached
    decoded tiles, or positional reads + CRC check + decode for cold ones.

    ``cache_bytes`` bounds the decoded-tile LRU (see
    :class:`repro.store.cache.TileCache`); pass ``cache=`` to share one cache
    across several stores.  All methods are thread-safe; reads of different
    tiles run fully in parallel, reads of the same cold tile coalesce into a
    single decode.
    """

    def __init__(self, *, cache_bytes: int = DEFAULT_CACHE_BYTES,
                 cache: Optional[TileCache] = None,
                 spill_dir: Optional[Union[str, os.PathLike]] = None,
                 spill_bytes: int = DEFAULT_SPILL_BYTES):
        self._cache = cache if cache is not None else TileCache(cache_bytes)
        # Remote (URL) sources spill fetched byte ranges under this
        # directory when set; local sources never pay for it.
        self._spill_dir = os.fspath(spill_dir) if spill_dir is not None else None
        self._spill_bytes = int(spill_bytes)
        self._lock = make_lock("ArchiveStore._lock")
        self._entries: Dict[str, _Entry] = {}  # guarded by: self._lock
        self._closed = False  # guarded by: self._lock
        self._stats_lock = make_lock("ArchiveStore._stats_lock")
        self._tile_decodes = 0  # guarded by: self._stats_lock
        self._region_reads = 0  # guarded by: self._stats_lock

    # ------------------------------------------------------------- lifecycle
    def add(self, key: str, source: SourceType, *, model: Any = None,
            autoencoder: Any = None,
            codec_options: Optional[dict] = None,
            generation: int = 1) -> str:
        """Open ``source`` (path or bytes) and register it under ``key``.

        The header is read and validated here — exactly once per archive —
        and the codec must be known to the registry.  ``model`` /
        ``autoencoder`` / ``codec_options`` become the decode context for
        every tile of this archive; ``generation`` is the entry's served
        generation counter (a durable node passes its manifest generation so
        HTTP responses and the manifest agree).  Returns ``key``.
        """
        entry = self._build_entry(key, source, model, autoencoder,
                                  codec_options)
        entry.generation = int(generation)
        with self._lock:
            if self._closed:
                entry.handle.close()
                raise ValueError("store is closed")
            if key in self._entries:
                entry.handle.close()
                raise ValueError(f"archive key {key!r} is already registered")
            self._entries[key] = entry
        return key

    def replace(self, key: str, source: SourceType, *, model: Any = None,
                autoencoder: Any = None, codec_options: Optional[dict] = None,
                on_release=None, generation: Optional[int] = None) -> str:
        """Atomically swap ``key`` to a new archive (registering it if absent).

        The swap is one registry operation: every read that resolves ``key``
        before it sees the old archive in full, every read after sees the new
        one — a reader can never observe a mix, and the key never 404s
        mid-replace.  In-flight readers of the old archive finish against its
        still-open handle (pin counts); ``on_release`` fires once that handle
        actually closes — the ingest layer unlinks the replaced file there.
        ``generation`` pins the new entry's counter (``None`` = one past the
        replaced entry's, or 1 when registering fresh).  Returns ``key``.
        """
        entry = self._build_entry(key, source, model, autoencoder,
                                  codec_options)
        with self._lock:
            if self._closed:
                entry.handle.close()
                raise ValueError("store is closed")
            old = self._entries.get(key)
            if generation is not None:
                entry.generation = int(generation)
            elif old is not None:
                entry.generation = old.generation + 1
            self._entries[key] = entry
        if old is not None:
            old.retire(on_close=on_release)
            self._purge_cached(old)
        elif on_release is not None:
            on_release()  # nothing replaced: the release is immediate
        return key

    def remove(self, key: str, *, on_release=None) -> None:
        """Deregister ``key``; its handle closes once in-flight reads drain.

        Cached tiles of the removed archive become unreachable (their keys
        are scoped to the dead entry) and age out of the LRU naturally.
        ``on_release`` runs right after the handle closes (see
        :meth:`replace`).
        """
        with self._lock:
            entry = self._entries.pop(key, None)
        if entry is None:
            raise KeyError(f"no archive registered under key {key!r}")
        entry.retire(on_close=on_release)
        self._purge_cached(entry)

    def _open_handle(self, source: SourceType):
        """A thread-safe random-access handle for any accepted source kind.

        In-memory sources get lock-free slices, files positional ``pread``,
        ``http(s)://`` URLs a range-GET :class:`HttpByteSource` — wrapped in
        the disk spill cache when the store was built with ``spill_dir``.
        An already-open byte source is adopted as-is (the store owns it from
        here: it closes when the entry retires).
        """
        if isinstance(source, (bytes, bytearray, memoryview)):
            return BytesByteSource(source)
        if is_url(source):
            from repro.sources.http import HttpByteSource

            handle = HttpByteSource(source)
            if self._spill_dir is not None:
                return CachingByteSource(handle, self._spill_dir,
                                         max_bytes=self._spill_bytes)
            return handle
        if isinstance(source, (str, os.PathLike)):
            return FileByteSource(source)
        if is_byte_source(source):
            # Adopted as-is (the store owns it from here) — except that a
            # caller-built remote source still earns the spill cache, so
            # tuning retry/timeout never silently opts out of it.
            if self._spill_dir is not None:
                from repro.sources.http import HttpByteSource

                if isinstance(source, HttpByteSource):
                    return CachingByteSource(source, self._spill_dir,
                                             max_bytes=self._spill_bytes)
            return source
        raise TypeError(
            f"source must be archive bytes or a path to an archive file, an "
            f"http(s):// URL, or a ByteSource, got {type(source)!r}")

    def _build_entry(self, key: str, source: SourceType, model, autoencoder,
                     codec_options) -> _Entry:
        """Validate the key, open the source and parse its header once."""
        if not isinstance(key, str) or not key:
            raise ValueError(f"archive key must be a non-empty string, got {key!r}")
        if "/" in key:
            raise ValueError(
                f"archive key {key!r} must not contain '/' (keys are one URL "
                f"path segment of the serve endpoint)")
        handle = self._open_handle(source)
        try:
            index = load_index(handle)
            compressor_spec(index.codec)  # unknown codec fails at add time
        except BaseException:
            handle.close()
            raise
        decode_opts = {"model": model, "autoencoder": autoencoder,
                       "codec_options": codec_options}
        return _Entry(key, handle, index, decode_opts)

    def close(self) -> None:
        """Retire every archive; subsequent reads and adds raise.

        Handles close as their last in-flight read finishes — already-started
        reads complete normally rather than hitting a dead descriptor.
        """
        with self._lock:
            entries, self._entries = list(self._entries.values()), {}
            self._closed = True
        for entry in entries:
            entry.retire()
            self._purge_cached(entry)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def _purge_cached(self, entry: _Entry) -> None:
        """Free the retired entry's decoded tiles from the shared cache now.

        Their keys are unreachable once the entry is gone; left in place they
        would count against the budget until ordinary traffic evicted them.
        (A tile load still in flight during the purge may re-insert one stale
        entry; it ages out by LRU like any other unreferenced key.)
        """
        token = entry.token
        self._cache.purge(
            lambda k: isinstance(k, tuple) and bool(k) and k[0] is token)

    # ------------------------------------------------------------ inspection
    def keys(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._entries))

    def info(self, key: str) -> IndexType:
        """The archive's parsed header (codec/shape/dtype/bound + tile index)."""
        entry = self._entry(key)
        entry.unpin()  # the index is plain parsed data; no handle use follows
        return entry.index

    def entry_info(self, key: str) -> ReadInfo:
        """One atomic snapshot of ``key``'s header, generation and ETag.

        Unlike three separate :meth:`info`-style lookups, everything in the
        returned :class:`ReadInfo` describes the *same* registered entry,
        even while a concurrent ``replace`` is swapping the key.
        """
        entry = self._entry(key)
        entry.unpin()  # plain parsed metadata; no handle use follows
        return ReadInfo(entry.index, entry.generation, entry.etag, ())

    def stats(self) -> dict:
        """Cache counters plus store-level read/decode totals."""
        out = self._cache.stats()
        with self._stats_lock:
            out["tile_decodes"] = self._tile_decodes
            out["region_reads"] = self._region_reads
        with self._lock:
            out["archives"] = len(self._entries)
        return out

    def remote_stats(self) -> dict:
        """Aggregated remote-source counters over every live entry.

        Sums each handle's ``stats()`` (only remote/spill sources have one):
        HTTP ``range_requests`` / ``retried`` / ``bytes_fetched`` and spill
        ``spill_hits`` / ``spill_misses`` / ``spill_evictions`` /
        ``spill_bytes_written``; ``sources`` counts the contributing
        entries.  All zeros on a purely local store.
        """
        totals = {"sources": 0, "range_requests": 0, "retried": 0,
                  "bytes_fetched": 0, "spill_hits": 0, "spill_misses": 0,
                  "spill_evictions": 0, "spill_bytes_written": 0}
        with self._lock:
            handles = [entry.handle for entry in self._entries.values()]
        for handle in handles:
            stats = getattr(handle, "stats", None)
            if not callable(stats):
                continue
            row = stats()
            totals["sources"] += 1
            for name in totals:
                if name != "sources" and name in row:
                    totals[name] += int(row[name])
        return totals

    @property
    def cache(self) -> TileCache:
        return self._cache

    # ----------------------------------------------------------------- reads
    def read_raw_with_info(self, key: str, offset: int = 0,
                           length: Optional[int] = None
                           ) -> Tuple[bytes, int, ReadInfo]:
        """Raw archive bytes of ``key``: ``(bytes, total_size, info)``.

        Positional read straight off the entry's handle — no tile decode,
        no cache traffic.  ``length=None`` reads to the end; reads past EOF
        clamp like the underlying sources.  This is what lets one node
        serve another's archives over ``GET /v1/<key>/archive`` (the
        federation transport): the bytes are the archive file itself, so
        the receiving side's CRC checks still guard every tile.
        """
        if offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        if length is not None and length < 0:
            raise ValueError(f"length must be >= 0, got {length}")
        entry = self._entry(key)
        try:
            size = entry.handle.size
            want = max(0, size - offset) if length is None else length
            data = entry.handle.read_at(offset, want) if want > 0 else b""
            return data, size, ReadInfo(entry.index, entry.generation,
                                        entry.etag, ())
        finally:
            entry.unpin()
    def read_region(self, key: str, region, *,
                    out: Optional[np.ndarray] = None,
                    decode_workers: int = 1) -> np.ndarray:
        """Decode ``region`` of archive ``key`` — the cached ``read_region``.

        Same semantics (and bit-identical results) as
        :func:`repro.read_region` on the same archive: ``region`` is a tuple
        of slices or a ``"10:20,0:64,5:9"`` string, clamped like numpy;
        ``out`` gathers into a preallocated region-shaped array.  Tiles come
        from the shared cache when warm; cold tiles are read positionally,
        CRC-checked and decoded at most once across all concurrent callers.

        ``decode_workers > 1`` decodes this region's independent tiles on a
        bounded thread pool (zlib/NumPy release the GIL); results, cache
        traffic, counters and failure behaviour are identical to the serial
        default — only the cold-path wall clock changes.
        """
        return self.read_region_with_info(key, region, out=out,
                                          decode_workers=decode_workers)[0]

    def read_region_with_info(self, key: str, region, *,
                              out: Optional[np.ndarray] = None,
                              decode_workers: int = 1
                              ) -> Tuple[np.ndarray, ReadInfo]:
        """:meth:`read_region` plus the metadata of the entry actually read.

        The entry lookup, bounds normalization and decode all happen against
        one pinned entry, so the returned :class:`ReadInfo` (shape, bounds,
        generation, ETag) can never describe a different archive than the
        bytes — the guarantee the HTTP layer needs to build response headers
        that match the body under concurrent ``replace``.
        """
        entry = self._entry(key)
        try:
            bounds = self._bounds(entry, region)
            with self._stats_lock:
                self._region_reads += 1
            arr = self._gather(entry, bounds, out, decode_workers)
            return arr, ReadInfo(entry.index, entry.generation, entry.etag,
                                 bounds)
        finally:
            entry.unpin()

    def read_regions(self, key: str, regions: Sequence, *,
                     decode_workers: int = 1) -> List[np.ndarray]:
        """Decode a batch of regions of one archive with deduped tile fetches.

        Tiles shared by several regions are decoded (or cache-fetched) once
        and cropped into every requesting region — the per-tile work is
        O(distinct tiles of the union), not O(sum over regions).  Returns one
        region-shaped array per input region, in order.  ``decode_workers``
        fans the union's distinct tiles out over a thread pool exactly as in
        :meth:`read_region`.
        """
        return self.read_regions_with_info(key, regions,
                                           decode_workers=decode_workers)[0]

    def read_regions_with_info(self, key: str, regions: Sequence, *,
                               decode_workers: int = 1
                               ) -> Tuple[List[np.ndarray], List[ReadInfo]]:
        """:meth:`read_regions` plus one :class:`ReadInfo` per region.

        All infos share the index/generation/ETag of the single pinned entry
        the whole batch was decoded from (one atomic lookup for the batch);
        each carries its own normalized bounds.
        """
        entry = self._entry(key)
        try:
            bounds_list = [self._bounds(entry, region) for region in regions]
            with self._stats_lock:
                self._region_reads += len(bounds_list)
            results: List[Optional[np.ndarray]] = [None] * len(bounds_list)
            # tile id -> region indices that intersect it (insertion-ordered,
            # so tiles are visited in row-major order: sequential cold I/O).
            wanted: Dict[int, List[int]] = {}
            for j, bounds in enumerate(bounds_list):
                for i in entry.region_tiles(bounds):
                    wanted.setdefault(i, []).append(j)
            prefetched = self._prefetch_tiles(entry, list(wanted),
                                              decode_workers)
            for i, readers in wanted.items():
                tile = (prefetched[i] if prefetched is not None
                        else self._tile(entry, i))
                for j in readers:
                    results[j] = self._place(results[j], bounds_list[j],
                                             entry, i, tile)
            arrays = [r if r is not None
                      else np.empty(tuple(b1 - b0 for b0, b1 in bounds),
                                    dtype=np.dtype(entry.index.dtype))
                      for r, bounds in zip(results, bounds_list)]
            infos = [ReadInfo(entry.index, entry.generation, entry.etag,
                              bounds) for bounds in bounds_list]
            return arrays, infos
        finally:
            entry.unpin()

    # -------------------------------------------------------------- internals
    def _entry(self, key: str) -> _Entry:
        """Look up and **pin** an entry; the caller must ``unpin`` when done.

        Pinning happens under the store lock, and ``remove``/``close`` retire
        entries only after popping them under the same lock — so a returned
        entry's handle is guaranteed open until the caller unpins.
        """
        with self._lock:
            if self._closed:
                raise ValueError("store is closed")
            entry = self._entries.get(key)
            if entry is None:
                raise KeyError(f"no archive registered under key {key!r}")
            entry.pin()
        return entry

    @staticmethod
    def _bounds(entry: _Entry, region) -> Tuple[Tuple[int, int], ...]:
        # Spec problems re-raise as RegionSpecError so the HTTP layer can
        # answer 400 (caller fault) without a separate pre-read validation
        # pass against a possibly different entry.
        try:
            if isinstance(region, str):
                region = parse_region(region)
            return normalize_region(region, entry.index.shape)
        except RegionSpecError:
            raise
        except ValueError as exc:
            raise RegionSpecError(str(exc)) from None

    def _tile(self, entry: _Entry, i: int) -> np.ndarray:
        """The decoded (full, uncropped) tile ``i``, via the shared cache."""

        def load() -> np.ndarray:
            with self._stats_lock:
                self._tile_decodes += 1
            if entry.is_v1:
                recon = _decompress_parsed(entry.index, **entry.decode_opts)
                return np.asarray(recon)
            index = entry.index
            raw = entry.handle.read_at(index.data_start + index.offsets[i],
                                       index.lengths[i])
            raw = index.check_tile(i, raw)
            return decode_tile(index, i, raw, **entry.decode_opts)

        return self._cache.get_or_load(entry.cache_key(i), load)

    @staticmethod
    def _place(result: Optional[np.ndarray], bounds, entry: _Entry, i: int,
               tile: np.ndarray) -> np.ndarray:
        """Crop ``tile`` to ``bounds`` and write it into ``result`` (grown lazily)."""
        local, inner = tile_crop(bounds, entry.tile_slices(i))
        piece = tile[inner]
        if result is None:
            region_shape = tuple(b1 - b0 for b0, b1 in bounds)
            result = np.empty(region_shape, dtype=piece.dtype)
        elif piece.dtype.itemsize > result.dtype.itemsize:
            # A later tile could not be restored narrow; widen what is
            # already written (exact float upcast) and continue.
            result = result.astype(piece.dtype)
        result[local] = piece
        return result

    def _prefetch_tiles(self, entry: _Entry, tile_ids: Sequence[int],
                        decode_workers: int) -> Optional[Dict[int, np.ndarray]]:
        """Decode ``tile_ids`` concurrently through the shared cache.

        Returns ``None`` on the serial path (``decode_workers == 1`` or fewer
        than two tiles), leaving the caller's inline ``_tile`` loop — the
        pre-``decode_workers`` code path — untouched.  Otherwise every tile
        goes through exactly one :meth:`_tile` call on a bounded pool: the
        same cache traffic, single-flight coalescing and ``tile_decodes``
        accounting as the serial loop, overlapped because zlib and NumPy
        release the GIL during decode.  Placement stays serial in the caller
        (it is order-dependent: a wide tile may widen the result dtype).  If
        any tile fails, the earliest failing tile in ``tile_ids`` order
        raises — the exception the serial loop would have surfaced.
        """
        decode_workers = int(decode_workers)
        if decode_workers < 1:
            raise ValueError("decode_workers must be >= 1")
        if decode_workers == 1 or len(tile_ids) <= 1:
            return None
        results: Dict[int, np.ndarray] = {}
        failures: Dict[int, BaseException] = {}
        with ThreadPoolExecutor(
                max_workers=min(decode_workers, len(tile_ids)),
                thread_name_prefix="repro-tile-decode") as pool:
            futures = [(i, pool.submit(self._tile, entry, i))
                       for i in tile_ids]
            for i, fut in futures:
                try:
                    results[i] = fut.result()
                except BaseException as exc:  # re-raised below, in tile order
                    failures[i] = exc
        for i in tile_ids:
            if i in failures:
                raise failures[i]
        return results

    def _gather(self, entry: _Entry, bounds,
                out: Optional[np.ndarray],
                decode_workers: int = 1) -> np.ndarray:
        region_shape = tuple(b1 - b0 for b0, b1 in bounds)
        if out is not None and tuple(out.shape) != region_shape:
            raise ValueError(
                f"out has shape {tuple(out.shape)}, region shape is "
                f"{region_shape}")
        result = out
        tiles = entry.region_tiles(bounds)
        prefetched = self._prefetch_tiles(entry, tiles, decode_workers)
        for i in tiles:
            tile = prefetched[i] if prefetched is not None else self._tile(entry, i)
            if out is not None:
                local, inner = tile_crop(bounds, entry.tile_slices(i))
                _store_chunk(out, local, tile[inner])
                continue
            result = self._place(result, bounds, entry, i, tile)
        if result is None:
            # Empty region (nothing decoded): exact shape, header dtype.
            result = np.empty(region_shape, dtype=np.dtype(entry.index.dtype))
        return result


install_guards(_Entry, "_pin_lock", ("_pins", "_retired", "_on_close"))
install_guards(ArchiveStore, "_lock", ("_entries", "_closed"))
install_guards(ArchiveStore, "_stats_lock", ("_tile_decodes", "_region_reads"))

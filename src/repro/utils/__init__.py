"""Small shared utilities: RNG, timing, validation, parallel map, sanitizer."""

from repro.utils.concurrency import (
    CheckedLock,
    GuardedAccessError,
    LockOrderError,
    LockUsageError,
    SanitizerError,
    install_guards,
    make_lock,
    sanitize_enabled,
)
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.timing import Timer, throughput_mb_s
from repro.utils.validation import (
    ensure_array,
    ensure_float_array,
    ensure_positive,
    value_range,
)
from repro.utils.parallel import parallel_imap, parallel_map

__all__ = [
    "CheckedLock",
    "GuardedAccessError",
    "LockOrderError",
    "LockUsageError",
    "SanitizerError",
    "install_guards",
    "make_lock",
    "sanitize_enabled",
    "as_rng",
    "spawn_rngs",
    "Timer",
    "throughput_mb_s",
    "ensure_array",
    "ensure_float_array",
    "ensure_positive",
    "value_range",
    "parallel_imap",
    "parallel_map",
]

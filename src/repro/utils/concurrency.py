"""Opt-in concurrency sanitizer: checked locks + guarded-attribute guards.

The store/cache layer documents its locking discipline statically (the
``# guarded by: self._lock`` annotations checked by :mod:`repro.lint`'s
RPR001).  This module is the *dynamic* half: set ``REPRO_SANITIZE=1`` in the
environment and

* every lock built through :func:`make_lock` becomes a :class:`CheckedLock`
  that tracks per-thread held-lock sets and raises :class:`LockOrderError`
  on self-deadlock (re-acquiring a held non-reentrant lock) and on
  lock-order inversions (acquiring A while holding B after some thread
  acquired B while holding A — the classic ABBA deadlock, reported on the
  *second* order even when it does not deadlock this time);
* :func:`install_guards` wraps the named attributes of a class in data
  descriptors that raise :class:`GuardedAccessError` when the attribute is
  read or written without the guarding :class:`CheckedLock` held (accesses
  from the instance's own ``__init__`` are exempt, matching RPR001).

With ``REPRO_SANITIZE`` unset (the default) :func:`make_lock` returns a
plain ``threading.Lock`` and :func:`install_guards` only records the
guarded-attribute spec — zero overhead on the production read path.

The order graph holds strong references to every :class:`CheckedLock` that
ever participated in a nesting, so per-object locks accumulate for the
process lifetime under the sanitizer; that is the price of stable edge
identity and is acceptable for test runs, which is the only place the
sanitizer is meant to be on.
"""

from __future__ import annotations

import os
import sys
import threading
import traceback
from typing import Dict, Iterable, Optional, Tuple, Union

__all__ = [
    "CheckedLock",
    "GuardedAccessError",
    "LockOrderError",
    "LockUsageError",
    "SanitizerError",
    "guard_specs",
    "install_guards",
    "make_lock",
    "sanitize_enabled",
]

_FALSEY = {"", "0", "false", "no", "off"}


def sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` asks for the checked-lock sanitizer."""
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() not in _FALSEY


class SanitizerError(RuntimeError):
    """Base class for everything the concurrency sanitizer reports."""


class LockOrderError(SanitizerError):
    """A lock-order inversion (ABBA) or a self-deadlock was detected."""


class LockUsageError(SanitizerError):
    """A lock was released by a thread that does not hold it."""


class GuardedAccessError(SanitizerError):
    """A guarded attribute was touched without its lock held."""


# --------------------------------------------------------------------------
# Checked locks
# --------------------------------------------------------------------------

_STATE = threading.local()  # per-thread stack of currently held CheckedLocks


def _held_stack() -> list:
    stack = getattr(_STATE, "held", None)
    if stack is None:
        stack = []
        _STATE.held = stack
    return stack


# (id(first), id(second)) -> formatted stack of where that order was first
# seen.  _ORDER_KEEP pins the locks so ids cannot be recycled.
_ORDER_LOCK = threading.Lock()
_ORDER_EDGES: Dict[Tuple[int, int], str] = {}
_ORDER_KEEP: Dict[int, "CheckedLock"] = {}


def _acquire_site() -> str:
    # Drop the two sanitizer-internal frames at the tail of the stack.
    return "".join(traceback.format_stack()[:-2]) or "<no traceback>\n"


class CheckedLock:
    """A non-reentrant mutex that reports misuse instead of deadlocking.

    Drop-in for ``threading.Lock()`` (``acquire``/``release``/``with``) plus
    :meth:`held`, which the guarded-attribute descriptors use to verify the
    calling thread holds the guard.
    """

    def __init__(self, name: str = "lock"):
        self.name = name
        self._lock = threading.Lock()
        self._owner: Optional[int] = None  # thread ident while held

    def held(self) -> bool:
        """True iff the *calling* thread holds this lock."""
        return self._owner == threading.get_ident()

    def _is_owned(self) -> bool:
        # ``threading.Condition`` probes ownership through this hook; without
        # it the fallback probe calls ``acquire(False)`` on a held lock, which
        # the order checker reports as a self-deadlock.
        return self.held()

    def locked(self) -> bool:
        return self._lock.locked()

    def _check_order(self) -> None:
        stack = _held_stack()
        if self in stack:
            raise LockOrderError(
                f"self-deadlock: thread already holds {self.name!r} "
                f"(non-reentrant) and is acquiring it again")
        if not stack:
            return
        with _ORDER_LOCK:
            for prior in stack:
                first_seen = _ORDER_EDGES.get((id(self), id(prior)))
                if first_seen is not None:
                    raise LockOrderError(
                        f"lock-order inversion: acquiring {self.name!r} while "
                        f"holding {prior.name!r}, but the opposite order "
                        f"({prior.name!r} after {self.name!r}) was taken "
                        f"earlier at:\n{first_seen}current acquisition "
                        f"at:\n{_acquire_site()}")
            site = _acquire_site()
            for prior in stack:
                _ORDER_EDGES.setdefault((id(prior), id(self)), site)
                _ORDER_KEEP[id(prior)] = prior
            _ORDER_KEEP[id(self)] = self

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._check_order()
        got = self._lock.acquire(blocking, timeout)
        if got:
            self._owner = threading.get_ident()
            _held_stack().append(self)
        return got

    def release(self) -> None:
        if not self.held():
            raise LockUsageError(
                f"release of {self.name!r} by a thread that does not hold it")
        stack = _held_stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is self:
                del stack[i]
                break
        self._owner = None
        self._lock.release()

    def __enter__(self) -> "CheckedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> bool:
        self.release()
        return False

    def __repr__(self) -> str:
        state = "held" if self._lock.locked() else "free"
        return f"<CheckedLock {self.name!r} {state}>"


LockLike = Union[CheckedLock, threading.Lock]


def make_lock(name: str = "lock") -> LockLike:
    """A mutex for a guarded structure: checked under ``REPRO_SANITIZE``.

    Call sites pay nothing when the sanitizer is off — they get a plain
    ``threading.Lock``.
    """
    if sanitize_enabled():
        return CheckedLock(name)
    return threading.Lock()


# --------------------------------------------------------------------------
# Guarded attributes
# --------------------------------------------------------------------------

#: "module.Class" -> {lock attribute -> guarded attribute names}.  Always
#: populated (sanitizer on or off) so tests can cross-check it against the
#: static ``# guarded by:`` annotations.
_GUARD_SPECS: Dict[str, Dict[str, Tuple[str, ...]]] = {}


def guard_specs() -> Dict[str, Dict[str, Tuple[str, ...]]]:
    """A copy of every :func:`install_guards` registration."""
    return {cls: dict(spec) for cls, spec in _GUARD_SPECS.items()}


def _caller_is_init_of(obj) -> bool:
    frame = sys._getframe(2)
    while frame is not None:
        if (frame.f_code.co_name == "__init__"
                and frame.f_locals.get("self") is obj):
            return True
        frame = frame.f_back
    return False


class _GuardedAttr:
    """Data descriptor enforcing "hold the lock to touch the attribute".

    Wraps the original slot descriptor when the class uses ``__slots__``;
    otherwise the value lives in the instance ``__dict__`` (safe because a
    data descriptor always wins the lookup).
    """

    def __init__(self, attr: str, lock_attr: str, base=None):
        self._attr = attr
        self._lock_attr = lock_attr
        self._base = base

    def _check(self, obj, verb: str) -> None:
        lock = getattr(obj, self._lock_attr, None)
        if not isinstance(lock, CheckedLock) or lock.held():
            return
        if _caller_is_init_of(obj):
            return
        raise GuardedAccessError(
            f"{verb} of {type(obj).__name__}.{self._attr} without holding "
            f"{type(obj).__name__}.{self._lock_attr} ({lock.name!r})")

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        self._check(obj, "read")
        if self._base is not None:
            return self._base.__get__(obj, objtype)
        try:
            return obj.__dict__[self._attr]
        except KeyError:
            raise AttributeError(self._attr) from None

    def __set__(self, obj, value) -> None:
        self._check(obj, "write")
        if self._base is not None:
            self._base.__set__(obj, value)
        else:
            obj.__dict__[self._attr] = value

    def __delete__(self, obj) -> None:
        self._check(obj, "delete")
        if self._base is not None:
            self._base.__delete__(obj)
        else:
            del obj.__dict__[self._attr]


def install_guards(cls: type, lock_attr: str, attrs: Iterable[str]) -> type:
    """Declare (and, under ``REPRO_SANITIZE``, enforce) guarded attributes.

    The (class, lock, attributes) spec is always recorded — it mirrors the
    static ``# guarded by:`` annotations and is cross-checked by tests.
    Enforcing descriptors are installed only when the sanitizer is enabled
    at class-definition time, and only bite on instances whose ``lock_attr``
    actually is a :class:`CheckedLock` (i.e. built via :func:`make_lock`
    under the same setting).
    """
    spec = _GUARD_SPECS.setdefault(f"{cls.__module__}.{cls.__qualname__}", {})
    spec[lock_attr] = tuple(attrs)
    if not sanitize_enabled():
        return cls
    for attr in spec[lock_attr]:
        base = cls.__dict__.get(attr)  # slot member descriptor, if any
        setattr(cls, attr, _GuardedAttr(attr, lock_attr, base))
    return cls

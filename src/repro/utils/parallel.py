"""A small, dependency-free parallel map.

Block-wise compression is embarrassingly parallel across blocks.  The library
keeps the default single-process (NumPy kernels already use optimized BLAS and
the block work is memory-bound), but exposes :func:`parallel_map` so examples
and benchmarks can opt into process-level parallelism for large inputs.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def parallel_map(
    func: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
    chunksize: int = 1,
) -> List[R]:
    """Map ``func`` over ``items`` with an optional process pool.

    ``workers=None`` or ``workers<=1`` runs serially (deterministic and
    picklability-free); otherwise a ``multiprocessing`` pool is used.  Results
    preserve input order.
    """
    items = list(items)
    if workers is None or workers <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    workers = min(workers, len(items))
    with mp.get_context("spawn").Pool(processes=workers) as pool:
        return list(pool.map(func, items, chunksize=max(1, chunksize)))

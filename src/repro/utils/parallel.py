"""A small, dependency-free parallel map (eager and streaming variants).

Chunk-wise compression is embarrassingly parallel across chunks.  The library
keeps the default single-process (NumPy kernels already use optimized BLAS and
the block work is memory-bound), but exposes :func:`parallel_map` and the
generator-safe :func:`parallel_imap` so the chunked pipeline, examples and
benchmarks can opt into process-level parallelism for large inputs.

:func:`parallel_imap` is the out-of-core building block: it consumes its input
lazily and keeps at most ``max_pending`` items in flight, so a stream of chunks
sliced from a memory-mapped file never materializes in RAM all at once, while
results still come back in input order.
"""

from __future__ import annotations

import multiprocessing as mp
from collections import deque
from typing import Callable, Iterable, Iterator, List, Optional, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def parallel_imap(
    func: Callable[[T], R],
    items: Iterable[T],
    workers: Optional[int] = None,
    max_pending: Optional[int] = None,
) -> Iterator[R]:
    """Yield ``func(item)`` for each item, in input order, optionally in parallel.

    ``workers=None`` or ``workers<=1`` runs serially and fully lazily
    (deterministic and picklability-free).  Otherwise a ``spawn``-based process
    pool is used and ``items`` is consumed only as capacity frees up: at most
    ``max_pending`` (default ``2 * workers``) items — queued, running *or*
    finished-but-unconsumed — exist at once, so memory stays bounded even when
    a slow head-of-line item lets later results finish first.  ``func`` must
    be picklable (module-level) when ``workers > 1``.  A worker exception
    re-raises in the consumer at the failing item's position.
    """
    if workers is None or workers <= 1:
        for item in items:
            yield func(item)
        return
    max_pending = max(1, max_pending if max_pending is not None else 2 * workers)
    with mp.get_context("spawn").Pool(processes=workers) as pool:
        pending: deque = deque()
        for item in items:
            if len(pending) >= max_pending:
                # Window full: block on the oldest result before submitting
                # more — backpressure is tied to consumption, not completion.
                yield pending.popleft().get()
            pending.append(pool.apply_async(func, (item,)))
            while pending and pending[0].ready():
                yield pending.popleft().get()
        while pending:
            yield pending.popleft().get()


def parallel_map(
    func: Callable[[T], R],
    items: Iterable[T],
    workers: Optional[int] = None,
    chunksize: int = 1,
) -> List[R]:
    """Map ``func`` over ``items`` with an optional process pool.

    ``workers=None`` or ``workers<=1`` runs serially (deterministic and
    picklability-free); otherwise a ``multiprocessing`` pool is used.  Results
    preserve input order.  Unlike :func:`parallel_imap` this materializes both
    the input and the output as lists; use the streaming variant when the items
    should not all reside in memory at once.
    """
    items = list(items)
    if workers is None or workers <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    workers = min(workers, len(items))
    with mp.get_context("spawn").Pool(processes=workers) as pool:
        return list(pool.map(func, items, chunksize=max(1, chunksize)))

"""Reproducible random-number-generator helpers.

Everything in the library that needs randomness (weight initialization,
synthetic dataset generation, sliced-Wasserstein projections, ...) accepts either
an integer seed, ``None`` or a :class:`numpy.random.Generator` and normalizes it
through :func:`as_rng`.  This keeps experiments reproducible end to end while
still allowing callers to share one generator across components.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Normalize ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (non-deterministic), an integer seed, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Create ``n`` statistically independent generators derived from ``seed``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        # Use the generator itself to derive child seeds.
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def derive_seed(seed: SeedLike, *labels: Union[int, str]) -> int:
    """Derive a deterministic child seed from ``seed`` and a sequence of labels."""
    base = 0 if seed is None else (hash(seed) if not isinstance(seed, (int, np.integer)) else int(seed))
    h = np.uint64(base & 0xFFFFFFFFFFFFFFFF)
    for label in labels:
        for ch in str(label).encode():
            h = np.uint64((int(h) * 1099511628211 + ch) & 0xFFFFFFFFFFFFFFFF)
    return int(h & np.uint64(0x7FFFFFFF))

"""Timing helpers used by the speed benchmarks (paper Table VIII / IX)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Timer:
    """A tiny context-manager stopwatch.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: Optional[float] = field(default=None, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        self._start = None

    def start(self) -> None:
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed = time.perf_counter() - self._start
        self._start = None
        return self.elapsed


def throughput_mb_s(nbytes: int, seconds: float) -> float:
    """Throughput in MB/s (10^6 bytes per second, as used in the paper)."""
    if seconds <= 0:
        return float("inf")
    return nbytes / 1e6 / seconds

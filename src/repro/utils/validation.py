"""Input validation helpers shared across the library."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np


def ensure_array(data, name: str = "data") -> np.ndarray:
    """Convert ``data`` to an ndarray, rejecting empty inputs."""
    arr = np.asarray(data)
    if arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    return arr


def ensure_float_array(data, name: str = "data", dtype=np.float64) -> np.ndarray:
    """Convert ``data`` to a contiguous floating-point ndarray."""
    arr = ensure_array(data, name)
    if not np.issubdtype(arr.dtype, np.floating):
        arr = arr.astype(dtype)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return np.ascontiguousarray(arr)


def ensure_positive(value: float, name: str = "value") -> float:
    """Raise if ``value`` is not strictly positive."""
    if not (value > 0):
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return float(value)


def ensure_dims(ndim: int, allowed: Sequence[int], name: str = "data") -> None:
    """Raise if ``ndim`` is not one of the supported dimensionalities."""
    if ndim not in allowed:
        raise ValueError(f"{name} must have dimensionality in {tuple(allowed)}, got {ndim}")


def value_range(data: np.ndarray) -> float:
    """Value range max(D) - min(D) used for range-relative error bounds / PSNR."""
    arr = np.asarray(data)
    if arr.size == 0:
        raise ValueError("cannot compute value range of empty array")
    vr = float(arr.max() - arr.min())
    return vr


def absolute_error_bound(data: np.ndarray, rel_bound: float) -> float:
    """Convert a value-range-based relative bound into an absolute bound.

    ``e = eps * (max(D) - min(D))`` as defined in Section V-A5 of the paper.
    A constant field has zero range; fall back to the relative bound itself so
    that compression remains well defined.
    """
    ensure_positive(rel_bound, "rel_bound")
    vr = value_range(data)
    if vr == 0.0:
        return float(rel_bound)
    return float(rel_bound * vr)

"""Shared fixtures for the test suite.

Heavyweight fixtures (trained autoencoders, AE-SZ compressors) are
session-scoped and use deliberately tiny configurations: the tests verify
behaviour and invariants, not model quality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autoencoders import AutoencoderConfig, SlicedWassersteinAutoencoder
from repro.core import AESZCompressor, AESZConfig
from repro.data import load_field_snapshot, train_test_snapshots
from repro.nn import TrainingConfig


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def field_2d():
    """A small 2D test field (CESM-like, 96x128)."""
    return load_field_snapshot("CESM-CLDHGH", shape=(96, 128)).astype(np.float64)


@pytest.fixture(scope="session")
def field_3d():
    """A small 3D test field (NYX-like, 24^3)."""
    return load_field_snapshot("NYX-baryon_density", shape=(24, 24, 24)).astype(np.float64)


@pytest.fixture(scope="session")
def tiny_ae_config_2d():
    return AutoencoderConfig(ndim=2, block_size=8, latent_size=4, channels=(2, 4), seed=7)


@pytest.fixture(scope="session")
def tiny_ae_config_3d():
    return AutoencoderConfig(ndim=3, block_size=8, latent_size=4, channels=(2, 4), seed=7)


@pytest.fixture(scope="session")
def trained_aesz_2d(tiny_ae_config_2d):
    """A (briefly) trained AE-SZ compressor on the 2D CESM-like field."""
    train, _ = train_test_snapshots("CESM-CLDHGH", shape=(64, 96), train_limit=2)
    ae = SlicedWassersteinAutoencoder(tiny_ae_config_2d)
    comp = AESZCompressor(ae, AESZConfig(block_size=8))
    comp.train(train, TrainingConfig(epochs=3, batch_size=32, learning_rate=2e-3, seed=0),
               max_blocks=192)
    return comp


@pytest.fixture(scope="session")
def trained_aesz_3d(tiny_ae_config_3d):
    """A (briefly) trained AE-SZ compressor on the 3D NYX-like field."""
    train, _ = train_test_snapshots("NYX-baryon_density", shape=(24, 24, 24), train_limit=2)
    ae = SlicedWassersteinAutoencoder(tiny_ae_config_3d)
    comp = AESZCompressor(ae, AESZConfig(block_size=8))
    comp.train(train, TrainingConfig(epochs=2, batch_size=16, learning_rate=2e-3, seed=0),
               max_blocks=96)
    return comp

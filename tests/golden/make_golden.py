"""Regenerate the golden-archive fixtures in this directory.

The committed ``*.rpra`` blobs were produced by the archive writer at the time
this script was last run; ``test_golden_archives.py`` asserts that **today's
reader still decodes those exact bytes** — so a container change that silently
breaks previously-written archives fails loudly instead.

Do NOT rerun this script casually: regenerating the fixtures after a format
change is exactly the failure mode the test exists to catch.  Rerun it only
when a format change is deliberate and versioned (bump ``ARCHIVE_VERSION`` /
``CHUNKED_ARCHIVE_VERSION``, keep a reader for the old version, and say so in
``docs/api.md``), then commit the new fixtures together with that change.

Model-backed and matmul-decoding codecs (ae_a, ae_b, aesz) are stored with
``bitwise: false``: their decode runs through BLAS matmuls whose summation
order may differ across builds, so the test checks allclose + the error bound
instead of bit equality.  Elementwise/cumsum codecs are pinned bit-for-bit.

Usage: ``PYTHONPATH=src python tests/golden/make_golden.py``
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parents[1] / "src"))

import repro  # noqa: E402
from repro import Abs, PtwRel, Rel  # noqa: E402
from repro.api import compress_chunked  # noqa: E402


def _inputs() -> dict:
    rng2 = np.random.default_rng(7)
    rng3 = np.random.default_rng(8)
    input_2d = rng2.standard_normal((12, 16)).cumsum(axis=0)
    input_3d = rng3.standard_normal((6, 7, 8)).cumsum(axis=0)
    input_ptw = np.abs(input_2d) + 0.25
    input_ptw[0, 0] = 0.0  # exercise the exact-zero mask
    input_ae = np.random.default_rng(9).standard_normal((32, 32)).cumsum(axis=0)
    return {"input_2d": input_2d, "input_3d": input_3d,
            "input_ptw": input_ptw, "input_ae": input_ae}


def _trained_aesz():
    from repro.autoencoders import AutoencoderConfig, SlicedWassersteinAutoencoder
    from repro.core import AESZCompressor, AESZConfig
    from repro.data import train_test_snapshots
    from repro.nn import TrainingConfig

    train, _ = train_test_snapshots("CESM-CLDHGH", shape=(64, 96), train_limit=2)
    ae = SlicedWassersteinAutoencoder(
        AutoencoderConfig(ndim=2, block_size=8, latent_size=4, channels=(2, 4), seed=7))
    comp = AESZCompressor(ae, AESZConfig(block_size=8))
    comp.train(train, TrainingConfig(epochs=2, batch_size=32, learning_rate=2e-3, seed=0),
               max_blocks=128)
    return comp


def main() -> int:
    inputs = _inputs()
    for name, arr in inputs.items():
        np.save(HERE / f"{name}.npy", arr)

    from repro.compressors import AEACompressor, AEBCompressor

    cases = [
        # name, input, codec (name or instance), bound, bitwise, embed_model
        ("sz21_rel", "input_2d", "sz21", Rel(1e-2), True, True),
        ("sz21_abs", "input_2d", "sz21", Abs(0.05), True, True),
        ("sz21_ptw", "input_ptw", "sz21", PtwRel(1e-2), True, True),
        ("sz21_3d_rel", "input_3d", "sz21", Rel(1e-2), True, True),
        ("zfp_rel", "input_2d", "zfp", Rel(1e-2), True, True),
        ("zfp_ptw", "input_ptw", "zfp", PtwRel(1e-2), True, True),
        ("szauto_rel", "input_2d", "szauto", Rel(1e-2), True, True),
        ("szauto_abs", "input_2d", "szauto", Abs(0.05), True, True),
        ("szinterp_rel", "input_2d", "szinterp", Rel(1e-2), True, True),
        ("szinterp_3d_rel", "input_3d", "szinterp", Rel(1e-2), True, True),
        ("lossless", "input_2d", "lossless", Rel(1e-2), True, True),
        # ae_a's embedded weights are ~0.5 MB, so its golden is written
        # fingerprint-only; the test rebuilds the seeded untrained model and
        # exercises the model-verification path on the stable format.
        ("ae_a_rel", "input_ae", AEACompressor(segment_length=512, seed=0), Rel(0.05),
         False, False),
        ("ae_b_rel", "input_ae", AEBCompressor(block_size=8, ndim=2, seed=0), Rel(0.05),
         False, True),
        ("aesz_rel", "input_ae", _trained_aesz(), Rel(0.05), False, True),
    ]

    manifest = []
    for name, input_name, codec, bound, bitwise, embed in cases:
        data = inputs[input_name]
        blob = repro.compress(data, codec=codec, bound=bound, embed_model=embed)
        recon = repro.decompress(
            blob, autoencoder=None if embed else codec.autoencoder)
        (HERE / f"{name}.rpra").write_bytes(blob)
        np.save(HERE / f"{name}.expected.npy", recon)
        codec_name = repro.read_header(blob).codec
        manifest.append({
            "file": f"{name}.rpra", "input": input_name, "codec": codec_name,
            "bound_mode": bound.mode, "bound_value": bound.value,
            "bitwise": bitwise, "chunked": False, "embed_model": embed,
        })
        print(f"{name}: {len(blob)} bytes ({codec_name}, {bound})")

    # A chunked (version-2) golden: three sz21 chunks over the 2-d input.
    data = inputs["input_2d"]
    blob = compress_chunked(data, codec="sz21", bound=Rel(1e-2), chunk_size=64)
    recon = repro.decompress(blob)
    (HERE / "chunked_sz21_rel.rpra").write_bytes(blob)
    np.save(HERE / "chunked_sz21_rel.expected.npy", recon)
    manifest.append({
        "file": "chunked_sz21_rel.rpra", "input": "input_2d", "codec": "sz21",
        "bound_mode": "rel", "bound_value": 1e-2, "bitwise": True, "chunked": True,
        "embed_model": True,
    })
    print(f"chunked_sz21_rel: {len(blob)} bytes "
          f"({repro.read_header(blob).n_chunks} chunks)")

    # Grid (version-3) goldens: a 2x2x2 tile grid over the 3-d input, so the
    # random-access region-decode path has a pinned byte layout too — one per
    # tile codec whose payload format the store depends on.
    data = inputs["input_3d"]
    for grid_codec in ("sz21", "szinterp"):
        blob = compress_chunked(data, codec=grid_codec, bound=Rel(1e-2),
                                chunk_shape=(4, 4, 4))
        recon = repro.decompress(blob)
        (HERE / f"grid_{grid_codec}_rel.rpra").write_bytes(blob)
        np.save(HERE / f"grid_{grid_codec}_rel.expected.npy", recon)
        manifest.append({
            "file": f"grid_{grid_codec}_rel.rpra", "input": "input_3d",
            "codec": grid_codec, "bound_mode": "rel", "bound_value": 1e-2,
            "bitwise": True, "chunked": True, "version": 3, "embed_model": True,
        })
        print(f"grid_{grid_codec}_rel: {len(blob)} bytes "
              f"({repro.read_header(blob).n_tiles} tiles)")

    (HERE / "manifest.json").write_text(json.dumps(manifest, indent=2) + "\n")
    print(f"wrote {len(manifest)} fixtures + manifest to {HERE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

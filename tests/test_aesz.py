"""Tests for the AE-SZ compressor core (config, latent codec, pipeline)."""

import numpy as np
import pytest

from repro.autoencoders import AutoencoderConfig, SlicedWassersteinAutoencoder
from repro.core import (
    AESZCompressor,
    AESZConfig,
    CompressionStats,
    LatentCodec,
    default_autoencoder_config,
)
from repro.core.aesz import (
    FLAG_AE,
    FLAG_LORENZO,
    FLAG_MEAN,
    _batched_lorenzo_inverse,
    _batched_lorenzo_predict,
    _batched_lorenzo_transform,
)
from repro.core.config import PAPER_TABLE_VI
from repro.metrics import psnr, verify_error_bound
from repro.predictors import lorenzo_predict


class TestAESZConfig:
    def test_defaults(self):
        cfg = AESZConfig()
        assert cfg.block_size == 32
        assert cfg.num_bins == 65536
        assert cfg.latent_error_bound_ratio == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            AESZConfig(block_size=0)
        with pytest.raises(ValueError):
            AESZConfig(num_bins=1)
        with pytest.raises(ValueError):
            AESZConfig(latent_error_bound_ratio=0.0)
        with pytest.raises(ValueError):
            AESZConfig(predictor_mode="nope")

    def test_default_autoencoder_config_scaled(self):
        cfg = default_autoencoder_config("CESM-CLDHGH")
        assert cfg.ndim == 2 and cfg.block_size == 32
        assert max(cfg.channels) < max(PAPER_TABLE_VI["CESM-CLDHGH"]["channels"])

    def test_default_autoencoder_config_paper_scale(self):
        cfg = default_autoencoder_config("Hurricane-U", scaled=False)
        assert cfg.channels == (32, 64, 128)
        assert cfg.latent_size == 8

    def test_unknown_field_raises(self):
        with pytest.raises(KeyError):
            default_autoencoder_config("NOPE-field")

    def test_table_vi_covers_all_evaluated_fields(self):
        for field in ["CESM-CLDHGH", "CESM-FREQSH", "EXAFEL-raw", "RTM-snapshot",
                      "NYX-baryon_density", "Hurricane-U", "Hurricane-QVAPOR"]:
            assert field in PAPER_TABLE_VI


class TestLatentCodec:
    def test_roundtrip_bound(self):
        rng = np.random.default_rng(0)
        latents = rng.normal(size=(40, 16)) * 3.0
        codec = LatentCodec()
        enc = codec.compress(latents, error_bound=0.05)
        decoded = codec.decompress(enc.payload)
        assert decoded.shape == latents.shape
        assert np.max(np.abs(decoded - latents)) <= 0.05 * (1 + 1e-12)
        np.testing.assert_array_equal(decoded, enc.decoded)

    def test_compression_shrinks_payload(self):
        rng = np.random.default_rng(1)
        latents = rng.normal(size=(200, 16))
        codec = LatentCodec()
        enc = codec.compress(latents, error_bound=0.1)
        assert enc.nbytes < latents.size * 4  # smaller than float32 storage

    def test_tighter_bound_costs_more_bytes(self):
        rng = np.random.default_rng(2)
        latents = rng.normal(size=(100, 8))
        codec = LatentCodec()
        loose = codec.compress(latents, error_bound=0.1).nbytes
        tight = codec.compress(latents, error_bound=0.001).nbytes
        assert tight > loose

    def test_row_subset_is_consistent(self):
        """Dropping rows must not change the decoded values of kept rows."""
        rng = np.random.default_rng(3)
        latents = rng.normal(size=(50, 8))
        codec = LatentCodec()
        full = codec.compress(latents, 0.05).decoded
        subset = codec.compress(latents[::2], 0.05).decoded
        np.testing.assert_array_equal(full[::2], subset)

    def test_invalid_inputs_raise(self):
        codec = LatentCodec()
        with pytest.raises(ValueError):
            codec.compress(np.zeros((3, 3)), 0.0)
        with pytest.raises(ValueError):
            codec.compress(np.zeros(5), 0.1)


class TestBatchedLorenzoHelpers:
    def test_transform_inverse_roundtrip(self):
        rng = np.random.default_rng(0)
        blocks = rng.integers(-100, 100, size=(5, 8, 8))
        np.testing.assert_array_equal(
            _batched_lorenzo_inverse(_batched_lorenzo_transform(blocks)), blocks)

    def test_batched_predict_matches_single_block(self):
        rng = np.random.default_rng(1)
        blocks = rng.normal(size=(4, 6, 6))
        batched = _batched_lorenzo_predict(blocks)
        for b in range(4):
            np.testing.assert_allclose(batched[b], lorenzo_predict(blocks[b]))

    def test_batched_predict_3d(self):
        rng = np.random.default_rng(2)
        blocks = rng.normal(size=(3, 4, 4, 4))
        batched = _batched_lorenzo_predict(blocks)
        for b in range(3):
            np.testing.assert_allclose(batched[b], lorenzo_predict(blocks[b]))


class TestCompressionStats:
    def test_fraction_and_ratio(self):
        stats = CompressionStats(n_blocks=10, n_ae_blocks=4, n_lorenzo_blocks=5,
                                 n_mean_blocks=1, compressed_bytes=100, original_bytes=1000)
        assert stats.ae_block_fraction == pytest.approx(0.4)
        assert stats.compression_ratio == pytest.approx(10.0)

    def test_empty_stats(self):
        stats = CompressionStats()
        assert stats.ae_block_fraction == 0.0
        assert stats.compression_ratio == float("inf")


class TestAESZPipeline2D:
    @pytest.mark.parametrize("eb", [1e-2, 1e-3, 1e-4])
    def test_error_bound_strictly_held(self, trained_aesz_2d, field_2d, eb):
        payload = trained_aesz_2d.compress(field_2d, eb)
        recon = trained_aesz_2d.decompress(payload)
        assert recon.shape == field_2d.shape
        assert verify_error_bound(field_2d, recon, eb) is None

    def test_smaller_bound_gives_higher_psnr_and_larger_stream(self, trained_aesz_2d, field_2d):
        loose = trained_aesz_2d.compress(field_2d, 1e-2)
        loose_psnr = psnr(field_2d, trained_aesz_2d.decompress(loose))
        tight = trained_aesz_2d.compress(field_2d, 1e-4)
        tight_psnr = psnr(field_2d, trained_aesz_2d.decompress(tight))
        assert tight_psnr > loose_psnr
        assert len(tight) > len(loose)

    def test_compression_actually_compresses(self, trained_aesz_2d, field_2d):
        payload = trained_aesz_2d.compress(field_2d, 1e-2)
        assert len(payload) < field_2d.size * 4

    def test_stats_populated(self, trained_aesz_2d, field_2d):
        trained_aesz_2d.compress(field_2d, 1e-2)
        stats = trained_aesz_2d.last_stats
        assert stats is not None
        assert stats.n_blocks == stats.n_ae_blocks + stats.n_lorenzo_blocks + stats.n_mean_blocks
        assert stats.compressed_bytes > 0

    def test_deterministic_compression(self, trained_aesz_2d, field_2d):
        a = trained_aesz_2d.compress(field_2d, 1e-3)
        b = trained_aesz_2d.compress(field_2d, 1e-3)
        assert a == b

    def test_decompression_is_deterministic(self, trained_aesz_2d, field_2d):
        payload = trained_aesz_2d.compress(field_2d, 1e-3)
        np.testing.assert_array_equal(trained_aesz_2d.decompress(payload),
                                      trained_aesz_2d.decompress(payload))

    def test_invalid_error_bound_raises(self, trained_aesz_2d, field_2d):
        with pytest.raises(ValueError):
            trained_aesz_2d.compress(field_2d, 0.0)

    def test_nan_input_raises(self, trained_aesz_2d):
        bad = np.full((16, 16), np.nan)
        with pytest.raises(ValueError):
            trained_aesz_2d.compress(bad, 1e-2)

    def test_non_multiple_shape_handled(self, trained_aesz_2d):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(19, 29))
        payload = trained_aesz_2d.compress(data, 1e-2)
        recon = trained_aesz_2d.decompress(payload)
        assert recon.shape == data.shape
        assert verify_error_bound(data, recon, 1e-2) is None


class TestAESZPipeline3D:
    @pytest.mark.parametrize("eb", [1e-2, 1e-3])
    def test_error_bound_strictly_held(self, trained_aesz_3d, field_3d, eb):
        payload = trained_aesz_3d.compress(field_3d, eb)
        recon = trained_aesz_3d.decompress(payload)
        assert verify_error_bound(field_3d, recon, eb) is None

    def test_stats_flags_partition(self, trained_aesz_3d, field_3d):
        trained_aesz_3d.compress(field_3d, 5e-3)
        stats = trained_aesz_3d.last_stats
        assert stats.n_blocks > 0
        assert 0.0 <= stats.ae_block_fraction <= 1.0


class TestPredictorModes:
    def _compressor(self, trained, mode):
        return AESZCompressor(trained.autoencoder,
                              AESZConfig(block_size=trained.config.block_size,
                                         predictor_mode=mode))

    @pytest.mark.parametrize("mode", ["ae", "lorenzo", "hybrid"])
    def test_all_modes_respect_bound(self, trained_aesz_2d, field_2d, mode):
        comp = self._compressor(trained_aesz_2d, mode)
        recon = comp.decompress(comp.compress(field_2d, 1e-2))
        assert verify_error_bound(field_2d, recon, 1e-2) is None

    def test_ae_mode_uses_only_ae_blocks(self, trained_aesz_2d, field_2d):
        comp = self._compressor(trained_aesz_2d, "ae")
        comp.compress(field_2d, 1e-2)
        assert comp.last_stats.n_ae_blocks == comp.last_stats.n_blocks

    def test_lorenzo_mode_uses_no_ae_blocks(self, trained_aesz_2d, field_2d):
        comp = self._compressor(trained_aesz_2d, "lorenzo")
        comp.compress(field_2d, 1e-2)
        assert comp.last_stats.n_ae_blocks == 0

    def test_hybrid_not_larger_than_both_ablations(self, trained_aesz_2d, field_2d):
        """Fig. 11: the combined predictor should be at least as good as either alone."""
        sizes = {}
        for mode in ["ae", "lorenzo", "hybrid"]:
            comp = self._compressor(trained_aesz_2d, mode)
            sizes[mode] = len(comp.compress(field_2d, 1e-2))
        assert sizes["hybrid"] <= 1.10 * min(sizes["ae"], sizes["lorenzo"])

    def test_block_size_mismatch_raises(self, trained_aesz_2d):
        with pytest.raises(ValueError):
            AESZCompressor(trained_aesz_2d.autoencoder, AESZConfig(block_size=16))


class TestConstantField:
    def test_constant_field_compresses_tiny_and_exact(self, trained_aesz_2d):
        data = np.full((32, 32), 7.5)
        payload = trained_aesz_2d.compress(data, 1e-3)
        recon = trained_aesz_2d.decompress(payload)
        assert np.max(np.abs(recon - data)) <= 1e-3
        assert len(payload) < data.size  # far below 1 byte per point


class TestDtypeHandling:
    """Regressions: stats assumed float32 input, decompress forced float64."""

    def test_float64_stats_use_real_itemsize(self, trained_aesz_2d, field_2d):
        trained_aesz_2d.compress(field_2d, 1e-3)
        stats = trained_aesz_2d.last_stats
        assert stats.original_bytes == field_2d.size * 8
        assert stats.original_dtype == "float64"

    def test_float32_input_roundtrips_to_float32(self, trained_aesz_2d, field_2d):
        data = field_2d.astype(np.float32)
        payload = trained_aesz_2d.compress(data, 1e-3)
        assert trained_aesz_2d.last_stats.original_bytes == data.size * 4
        assert trained_aesz_2d.last_stats.original_dtype == "float32"
        recon = trained_aesz_2d.decompress(payload)
        assert recon.dtype == np.float32
        vrange = float(data.max() - data.min())
        # The bound holds strictly: compress tightens the internal bound by
        # the worst-case float32 cast rounding, so no fudge factor is needed.
        assert np.max(np.abs(recon.astype(np.float64) - data)) <= 1e-3 * vrange

    def test_float32_restore_skipped_when_bound_unsafe(self, trained_aesz_2d):
        """At bounds near float32 precision the cast itself would violate the
        bound, so the reconstruction must stay float64 (and hold the bound)."""
        rng = np.random.default_rng(5)
        data = rng.uniform(0.0, 1.0, size=(16, 16)).astype(np.float32)
        payload = trained_aesz_2d.compress(data, 3e-8)
        recon = trained_aesz_2d.decompress(payload)
        assert recon.dtype == np.float64
        assert verify_error_bound(data.astype(np.float64), recon, 3e-8) is None

    def test_float32_near_max_does_not_overflow_to_inf(self, trained_aesz_2d):
        """Regression: reconstructions exceeding float32 max must stay float64
        finite instead of casting to inf."""
        rng = np.random.default_rng(6)
        data = (rng.uniform(0.5, 1.0, size=(16, 16)) * 3.4e38).astype(np.float32)
        recon = trained_aesz_2d.decompress(trained_aesz_2d.compress(data, 0.1))
        assert np.all(np.isfinite(recon))

    def test_legacy_payload_without_output_dtype_returns_float64(self, trained_aesz_2d,
                                                                 field_2d):
        """Seed-era payloads recorded meta["dtype"] without the bound-safety
        analysis; decompress must ignore it and return float64 as before."""
        from repro.encoding.container import ByteContainer
        payload = trained_aesz_2d.compress(field_2d.astype(np.float32), 1e-3)
        container = ByteContainer.from_bytes(payload)
        meta = container.get_json("meta")
        del meta["output_dtype"]  # emulate a seed-era stream
        container.put_json("meta", meta)
        recon = trained_aesz_2d.decompress(container.to_bytes())
        assert recon.dtype == np.float64

    def test_integer_input_decompresses_to_float64(self, trained_aesz_2d):
        data = np.arange(32 * 32, dtype=np.int32).reshape(32, 32)
        payload = trained_aesz_2d.compress(data, 1e-3)
        assert trained_aesz_2d.last_stats.original_bytes == data.size * 4
        assert trained_aesz_2d.decompress(payload).dtype == np.float64

    def test_float32_and_float64_inputs_agree(self, trained_aesz_2d, field_2d):
        """The pipeline quantizes in float64 regardless of the input dtype."""
        p32 = trained_aesz_2d.compress(field_2d.astype(np.float32), 1e-3)
        r32 = trained_aesz_2d.decompress(p32).astype(np.float64)
        vrange = float(field_2d.max() - field_2d.min())
        assert verify_error_bound(field_2d.astype(np.float32).astype(np.float64),
                                  r32, 1e-3 * (1 + 1e-6)) is None
        assert np.max(np.abs(r32 - field_2d)) <= 2e-3 * vrange


class TestHugeQuantizationCodes:
    def test_tiny_error_bound_wide_range_data(self, trained_aesz_2d):
        """Regression: Lorenzo integer codes >= 2**32 crashed the Huffman
        encoder with a bare struct.error at very small error bounds."""
        comp = AESZCompressor(trained_aesz_2d.autoencoder,
                              AESZConfig(block_size=trained_aesz_2d.config.block_size,
                                         predictor_mode="lorenzo"))
        rng = np.random.default_rng(0)
        data = rng.uniform(0.0, 1.0, size=(16, 16))
        payload = comp.compress(data, 1e-12)
        recon = comp.decompress(payload)
        assert verify_error_bound(data, recon, 1e-12) is None

"""Tests for tables/figures formatting and the experiment orchestration layer."""

import numpy as np
import pytest

from repro.analysis import (
    ModelCache,
    ascii_curve,
    ascii_histogram,
    build_aesz_for_field,
    default_error_bounds,
    format_table,
    run_rate_distortion,
    save_series_csv,
    write_csv,
)
from repro.analysis.experiments import TrainingBudget, baseline_compressors
from repro.compressors import SZAutoCompressor, ZFPCompressor


class TestTables:
    def test_format_table_basic(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
        text = format_table(rows, title="T")
        assert "T" in text and "a" in text and "10" in text

    def test_format_table_column_subset_and_order(self):
        rows = [{"x": 1, "y": 2}]
        text = format_table(rows, columns=["y", "x"])
        assert text.splitlines()[0].startswith("y")

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out" / "table.csv"
        write_csv(path, [{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2"

    def test_write_csv_empty_raises(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "x.csv", [])


class TestFigures:
    def test_ascii_curve_contains_markers_and_legend(self):
        series = {"A": [(0, 0), (1, 1)], "B": [(0, 1), (1, 0)]}
        text = ascii_curve(series, width=20, height=5, title="fig")
        assert "fig" in text
        assert "o = A" in text and "x = B" in text

    def test_ascii_curve_empty(self):
        assert "(empty figure)" in ascii_curve({"A": []})

    def test_ascii_histogram(self):
        text = ascii_histogram(np.random.default_rng(0).normal(size=500), bins=10)
        assert text.count("\n") >= 9

    def test_ascii_histogram_empty(self):
        assert "(empty histogram)" in ascii_histogram([])

    def test_save_series_csv(self, tmp_path):
        path = tmp_path / "series.csv"
        save_series_csv(path, {"A": [(1, 2), (3, 4)]}, x_name="bitrate", y_name="psnr")
        content = path.read_text()
        assert "series,bitrate,psnr" in content
        assert "A,1,2" in content


class TestExperiments:
    def test_default_error_bounds(self):
        assert len(default_error_bounds()) >= 4
        assert len(default_error_bounds(high_ratio_only=True)) < len(default_error_bounds())
        assert all(b > 0 for b in default_error_bounds())

    def test_training_budget_to_config(self):
        cfg = TrainingBudget(epochs=3).to_training_config(seed=1)
        assert cfg.epochs == 3 and cfg.seed == 1

    def test_baseline_compressors_names(self):
        comps = baseline_compressors()
        assert set(comps) == {"SZ2.1", "ZFP", "SZauto", "SZinterp"}
        assert set(baseline_compressors(include_interp=False, include_auto=False)) == {
            "SZ2.1", "ZFP"}

    def test_run_rate_distortion(self, field_2d):
        curves = run_rate_distortion({"ZFP": ZFPCompressor(), "SZauto": SZAutoCompressor()},
                                     field_2d[:32, :32], error_bounds=[1e-2, 1e-3])
        assert set(curves) == {"ZFP", "SZauto"}
        assert len(curves["ZFP"].points) == 2

    def test_model_cache_trains_once_and_reloads(self, tmp_path):
        budget = TrainingBudget(epochs=1, max_blocks=48, train_snapshot_limit=1)
        cache = ModelCache(cache_dir=tmp_path, budget=budget, seed=0)
        shape = (32, 48)
        from repro.autoencoders import AutoencoderConfig
        cfg = AutoencoderConfig(ndim=2, block_size=8, latent_size=4, channels=(2,), seed=0)
        model_a = cache.swae_for_field("CESM-CLDHGH", config=cfg, shape=shape)
        files_after_first = set(p.name for p in tmp_path.iterdir())
        model_b = cache.swae_for_field("CESM-CLDHGH", config=cfg, shape=shape)
        assert files_after_first == set(p.name for p in tmp_path.iterdir())
        rng = np.random.default_rng(0)
        blocks = rng.normal(size=(3, 8, 8))
        np.testing.assert_allclose(model_a.reconstruct(blocks), model_b.reconstruct(blocks))

    def test_build_aesz_for_field_uses_cache(self, tmp_path, field_2d):
        budget = TrainingBudget(epochs=1, max_blocks=48, train_snapshot_limit=1)
        cache = ModelCache(cache_dir=tmp_path, budget=budget, seed=0)
        from repro.autoencoders import AutoencoderConfig
        cfg = AutoencoderConfig(ndim=2, block_size=8, latent_size=4, channels=(2,), seed=0)
        cache.swae_for_field("CESM-CLDHGH", config=cfg, shape=(32, 48))
        comp = build_aesz_for_field("CESM-CLDHGH", cache=cache)
        # The returned compressor must respect the bound out of the box.
        from repro.metrics import verify_error_bound
        data = field_2d[:32, :64]
        recon = comp.decompress(comp.compress(data, 1e-2))
        assert verify_error_bound(data, recon, 1e-2) is None

"""Tests for the top-level facade, the archive format, the registry and bounds."""

import numpy as np
import pytest

import repro
from repro import Abs, ErrorBound, PtwRel, Rel
from repro.api import read_header
from repro.bounds import as_bound
from repro.compressors import AEACompressor, AEBCompressor
from repro.encoding.container import ARCHIVE_MAGIC, Archive, is_archive
from repro.metrics import verify_error_bound
from repro.registry import (
    available_compressors,
    compressor_spec,
    get_compressor,
    name_for_compressor,
    register_compressor,
)

EXPECTED_CODECS = {"aesz", "ae_a", "ae_b", "lossless", "sz21", "szauto", "szinterp", "zfp"}


@pytest.fixture(scope="module")
def data_2d(field_2d):
    return field_2d[:48, :64].copy()


def _codec_instances(trained_aesz_2d):
    """One ready instance per registered codec, suitable for 2D float64 data."""
    return {
        "sz21": get_compressor("sz21"),
        "zfp": get_compressor("zfp"),
        "szauto": get_compressor("szauto"),
        "szinterp": get_compressor("szinterp"),
        "lossless": get_compressor("lossless"),
        "ae_a": AEACompressor(segment_length=512, seed=0),
        "ae_b": AEBCompressor(block_size=8, ndim=2, seed=0),
        "aesz": trained_aesz_2d,
    }


class TestRegistry:
    def test_all_builtins_registered(self):
        assert set(available_compressors()) == EXPECTED_CODECS

    def test_aliases_resolve(self):
        assert compressor_spec("SZ2.1").name == "sz21"
        assert compressor_spec("ae-sz").name == "aesz"
        assert compressor_spec("AE-B").name == "ae_b"

    def test_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="unknown compressor"):
            compressor_spec("nope")

    def test_get_compressor_builds_instances(self):
        comp = get_compressor("sz21")
        assert comp.name == "SZ2.1"
        assert type(comp) is not type(get_compressor("zfp"))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_compressor("sz21", lambda: None)

    def test_aesz_without_model_is_a_clear_error(self):
        with pytest.raises(ValueError, match="needs a trained model"):
            get_compressor("aesz")

    def test_name_for_compressor_instance(self, trained_aesz_2d):
        assert name_for_compressor(get_compressor("szinterp")) == "szinterp"
        assert name_for_compressor(trained_aesz_2d) == "aesz"

    def test_flags(self):
        assert compressor_spec("ae_b").error_bounded is False
        assert compressor_spec("aesz").requires_model is True
        assert compressor_spec("sz21").requires_model is False


class TestBounds:
    def test_modes_and_values(self):
        assert Rel(1e-3).mode == "rel"
        assert Abs(0.5).mode == "abs"
        assert PtwRel(1e-2).mode == "ptw_rel"
        with pytest.raises(ValueError):
            Rel(0.0)
        with pytest.raises(ValueError):
            ErrorBound("nope", 1e-3)

    def test_as_bound_coerces_numbers(self):
        assert as_bound(1e-2) == Rel(1e-2)
        assert as_bound(Rel(1e-2)) == Rel(1e-2)
        with pytest.raises(TypeError):
            as_bound("1e-2")

    def test_abs_rel_equivalence(self, data_2d):
        vrange = float(data_2d.max() - data_2d.min())
        assert Abs(0.25 * vrange).rel_equivalent(data_2d) == pytest.approx(0.25)
        assert Rel(1e-3).rel_equivalent(data_2d) == 1e-3
        with pytest.raises(ValueError, match="logarithmic transform"):
            PtwRel(1e-3).rel_equivalent(data_2d)


class TestFacadeRoundtrip:
    """Acceptance: blob = repro.compress(x, codec=c); repro.decompress(blob)
    roundtrips within bound for every registered codec, no side channel."""

    EB = 1e-2

    def test_every_registered_codec_roundtrips_self_described(self, trained_aesz_2d, data_2d):
        instances = _codec_instances(trained_aesz_2d)
        assert set(instances) == set(available_compressors())
        for name in available_compressors():
            blob = repro.compress(data_2d, codec=instances[name], bound=Rel(self.EB))
            recon = repro.decompress(blob)  # <- no dims/dtype/codec/model
            assert recon.shape == data_2d.shape, name
            header = read_header(blob)
            assert header.codec == name
            assert header.shape == data_2d.shape
            assert header.dtype == "float64"
            assert header.bound_mode == "rel" and header.bound_value == self.EB
            if compressor_spec(name).error_bounded:
                assert verify_error_bound(data_2d, recon, self.EB) is None, name

    def test_codec_by_name_with_options(self, data_2d):
        blob = repro.compress(data_2d, codec="ae_b", bound=Rel(self.EB),
                              codec_options={"ndim": 2, "block_size": 8})
        assert repro.decompress(blob).shape == data_2d.shape

    def test_non_default_codec_options_travel_in_archive(self, data_2d):
        """Constructor settings that decode depends on are self-described too."""
        blob = repro.compress(data_2d, codec="sz21", bound=Rel(1e-3),
                              codec_options={"lossless_backend": "bz2",
                                             "block_size_2d": 8})
        header = read_header(blob)
        assert header.meta["options"]["lossless_backend"] == "bz2"
        assert header.meta["options"]["block_size_2d"] == 8
        recon = repro.decompress(blob)  # restored with the recorded backend
        assert verify_error_bound(data_2d, recon, 1e-3) is None

        exact = data_2d.astype(np.float32)
        blob = repro.compress(exact, codec="lossless", codec_options={"backend": "lzma"})
        np.testing.assert_array_equal(repro.decompress(blob), exact)

    def test_lossless_is_exact(self, data_2d):
        blob = repro.compress(data_2d.astype(np.float32), codec="lossless")
        np.testing.assert_array_equal(repro.decompress(blob), data_2d.astype(np.float32))

    def test_roundtrip_metrics(self, data_2d):
        result = repro.roundtrip(data_2d, codec="sz21", bound=Rel(1e-3))
        assert result.compressor == "sz21"
        assert result.n_points == data_2d.size
        assert result.original_bytes == data_2d.size * 8
        assert result.compression_ratio > 1.0


class TestBoundModes:
    """All three error-bound modes, verified for sz21 and aesz."""

    @pytest.fixture(scope="class")
    def codecs(self, trained_aesz_2d):
        return {"sz21": get_compressor("sz21"), "aesz": trained_aesz_2d}

    @pytest.mark.parametrize("name", ["sz21", "aesz"])
    def test_rel_bound(self, codecs, data_2d, name):
        blob = repro.compress(data_2d, codec=codecs[name], bound=Rel(5e-3))
        recon = repro.decompress(blob)
        assert verify_error_bound(data_2d, recon, 5e-3) is None

    @pytest.mark.parametrize("name", ["sz21", "aesz"])
    def test_abs_bound(self, codecs, data_2d, name):
        vrange = float(data_2d.max() - data_2d.min())
        abs_eb = 5e-3 * vrange
        blob = repro.compress(data_2d, codec=codecs[name], bound=Abs(abs_eb))
        recon = repro.decompress(blob)
        assert float(np.abs(recon - data_2d).max()) <= abs_eb * (1 + 1e-9)

    @pytest.mark.parametrize("name", ["sz21", "aesz"])
    def test_ptw_rel_bound(self, codecs, data_2d, name):
        # Mixed magnitudes, negatives and exact zeros.
        data = data_2d - float(np.median(data_2d))
        data[::7, ::5] = 0.0
        eps = 2e-2
        blob = repro.compress(data, codec=codecs[name], bound=PtwRel(eps))
        recon = repro.decompress(blob)
        nz = data != 0
        ratio = np.abs(recon[nz] - data[nz]) / np.abs(data[nz])
        assert float(ratio.max()) <= eps * (1 + 1e-9)
        np.testing.assert_array_equal(recon[~nz], 0.0)
        assert np.sign(recon[nz]).tolist() == np.sign(data[nz]).tolist()

    def test_ptw_rel_rejected_for_unbounded_codec(self, data_2d):
        with pytest.raises(ValueError, match="not error bounded"):
            repro.compress(data_2d, codec="ae_b", bound=PtwRel(1e-2),
                           codec_options={"ndim": 2, "block_size": 8})


class TestOutputDtypeRestoration:
    """float32 in -> float32 out, with the bound still held against the input."""

    @pytest.mark.parametrize("name", ["sz21", "zfp", "szauto", "szinterp"])
    def test_float32_restored_when_bound_safe(self, data_2d, name):
        data = data_2d.astype(np.float32)
        blob = repro.compress(data, codec=name, bound=Rel(1e-3))
        recon = repro.decompress(blob)
        assert recon.dtype == np.float32
        assert verify_error_bound(data, recon, 1e-3) is None

    def test_float32_falls_back_to_float64_at_tiny_bounds(self, data_2d):
        # Bound at the float32 precision floor: the cast cannot be proven safe.
        blob = repro.compress(data_2d.astype(np.float32), codec="sz21", bound=Rel(3e-8))
        assert repro.decompress(blob).dtype == np.float64

    def test_float32_ptw_rel_restored(self, data_2d):
        data = (np.abs(data_2d) + 0.5).astype(np.float32)
        eps = 1e-2
        blob = repro.compress(data, codec="sz21", bound=PtwRel(eps))
        recon = repro.decompress(blob)
        assert recon.dtype == np.float32
        ratio = np.abs(recon.astype(np.float64) - data.astype(np.float64)) \
            / np.abs(data.astype(np.float64))
        assert float(ratio.max()) <= eps * (1 + 1e-9)

    def test_unbounded_codec_stays_float64(self, data_2d):
        blob = repro.compress(data_2d.astype(np.float32), codec="ae_b", bound=Rel(1e-2),
                              codec_options={"ndim": 2, "block_size": 8})
        assert repro.decompress(blob).dtype == np.float64

    def test_float64_input_unchanged(self, data_2d):
        blob = repro.compress(data_2d, codec="sz21", bound=Rel(1e-3))
        assert repro.decompress(blob).dtype == np.float64


class TestArchiveFormat:
    @pytest.fixture(scope="class")
    def blob(self, field_2d):
        return repro.compress(field_2d[:48, :64], codec="sz21", bound=Rel(1e-3))

    def test_is_archive(self, blob):
        assert is_archive(blob)
        assert not is_archive(b"RPRC....")
        assert blob[:4] == ARCHIVE_MAGIC

    def test_header_parse_without_decode(self, blob):
        header = read_header(blob)
        assert header.codec == "sz21"
        assert header.version == 1
        assert header.n_points == 48 * 64

    def test_bad_magic(self, blob):
        with pytest.raises(ValueError, match="corrupt archive"):
            Archive.from_bytes(b"XXXX" + blob[4:])

    def test_unsupported_version(self, blob):
        bad = bytearray(blob)
        bad[4] = 99
        with pytest.raises(ValueError, match="unsupported archive version"):
            Archive.from_bytes(bytes(bad))

    @pytest.mark.parametrize("fraction", [0.1, 0.5, 0.9, 0.999])
    def test_truncation_raises_corrupt(self, blob, fraction):
        cut = blob[:max(4, int(len(blob) * fraction))]
        with pytest.raises(ValueError, match="corrupt archive|unsupported"):
            Archive.from_bytes(cut)

    def test_empty_and_tiny_inputs(self):
        for junk in (b"", b"R", b"RPRA", b"RPRA\x01\x00"):
            with pytest.raises(ValueError, match="corrupt archive"):
                Archive.from_bytes(junk)

    def test_any_body_byte_flip_detected(self, blob):
        """CRC-32 in the header catches every payload/section byte flip."""
        import struct

        (hlen,) = struct.unpack_from("<I", blob, 6)
        body_start = 10 + hlen
        for off in range(body_start, len(blob)):
            bad = bytearray(blob)
            bad[off] ^= 0xFF
            with pytest.raises(ValueError):
                Archive.from_bytes(bytes(bad))

    def test_malformed_crc_field_raises_corrupt(self, blob):
        import json
        import struct

        (hlen,) = struct.unpack_from("<I", blob, 6)
        header = json.loads(blob[10:10 + hlen])
        for bad_crc in (123, {"payload": 0, "extra": 5}):
            header["crc"] = bad_crc
            hb = json.dumps(header, separators=(",", ":"), sort_keys=True).encode()
            bad = blob[:6] + struct.pack("<I", len(hb)) + hb + blob[10 + hlen:]
            with pytest.raises(ValueError, match="corrupt archive"):
                Archive.from_bytes(bad)

    def test_trailing_garbage_raises_corrupt(self, blob):
        with pytest.raises(ValueError, match="corrupt archive.*trailing"):
            Archive.from_bytes(blob + b"\x00garbage")

    def test_garbled_header_json_raises_corrupt(self, blob):
        bad = bytearray(blob)
        # Header JSON starts right after magic+version+length (4+2+4 bytes).
        bad[10:14] = b"\xff\xfe\xfd\xfc"
        with pytest.raises(ValueError, match="corrupt archive"):
            Archive.from_bytes(bytes(bad))

    def test_raw_payload_through_facade_is_a_clear_error(self, field_2d):
        comp = get_compressor("sz21")
        raw = comp.compress(field_2d[:48, :64], 1e-3)
        with pytest.raises(ValueError, match="raw codec payload"):
            repro.decompress(raw)
        # Back-compat: the per-class decompress still decodes raw payloads.
        assert comp.decompress(raw).shape == (48, 64)

    def test_unknown_codec_in_header(self, blob):
        archive = Archive.from_bytes(blob)
        archive.codec = "nope"
        with pytest.raises(KeyError, match="unknown compressor"):
            repro.decompress(archive.to_bytes())


class TestModelArchives:
    def test_aesz_archive_embeds_model_by_default(self, trained_aesz_2d, data_2d):
        blob = repro.compress(data_2d, codec=trained_aesz_2d, bound=Rel(1e-2))
        header = read_header(blob)
        assert "model" in header.extra
        assert header.meta["model_sha256"] == trained_aesz_2d.model_fingerprint()
        recon = repro.decompress(blob)
        assert verify_error_bound(data_2d, recon, 1e-2) is None

    def test_aesz_no_embed_requires_model(self, trained_aesz_2d, data_2d):
        blob = repro.compress(data_2d, codec=trained_aesz_2d, bound=Rel(1e-2),
                              embed_model=False)
        assert "model" not in read_header(blob).extra
        with pytest.raises(ValueError, match="no embedded model"):
            repro.decompress(blob)
        recon = repro.decompress(blob, autoencoder=trained_aesz_2d.autoencoder)
        assert verify_error_bound(data_2d, recon, 1e-2) is None

    def test_aesz_mismatched_model_refused(self, trained_aesz_2d, tiny_ae_config_2d,
                                           data_2d):
        from repro.autoencoders import SlicedWassersteinAutoencoder

        blob = repro.compress(data_2d, codec=trained_aesz_2d, bound=Rel(1e-2),
                              embed_model=False)
        other = SlicedWassersteinAutoencoder(tiny_ae_config_2d)  # untrained weights
        with pytest.raises(ValueError, match="model mismatch"):
            repro.decompress(blob, autoencoder=other)

    def test_aesz_model_from_path(self, trained_aesz_2d, data_2d, tmp_path):
        path = tmp_path / "model.npz"
        trained_aesz_2d.autoencoder.save(path)
        blob = repro.compress(data_2d, codec=trained_aesz_2d, bound=Rel(1e-2),
                              embed_model=False)
        recon = repro.decompress(blob, model=path)
        assert verify_error_bound(data_2d, recon, 1e-2) is None

    def test_model_for_stateless_codec_rejected(self, data_2d, tmp_path):
        blob = repro.compress(data_2d, codec="sz21", bound=Rel(1e-2))
        with pytest.raises(ValueError, match="does not take a model"):
            repro.decompress(blob, model=tmp_path / "whatever.npz")

    def test_unregistered_autoencoder_class_cannot_silently_skip_embed(self, data_2d,
                                                                       trained_aesz_2d):
        from repro.core import AESZCompressor, AESZConfig

        class CustomAE(type(trained_aesz_2d.autoencoder)):  # not in AE_REGISTRY
            pass

        ae = trained_aesz_2d.autoencoder
        custom = CustomAE(ae.config)
        custom.encoder, custom.decoder = ae.encoder, ae.decoder
        custom.set_normalization(ae.norm_min, ae.norm_max)
        comp = AESZCompressor(custom, AESZConfig(block_size=ae.config.block_size))
        with pytest.raises(ValueError, match="cannot embed the model"):
            repro.compress(data_2d, codec=comp, bound=Rel(1e-2))
        # embed_model=False works; restore needs the instance back.
        blob = repro.compress(data_2d, codec=comp, bound=Rel(1e-2), embed_model=False)
        with pytest.raises(ValueError, match="rebuildable model architecture"):
            repro.decompress(blob, model="whatever.npz")
        recon = repro.decompress(blob, autoencoder=custom)
        assert verify_error_bound(data_2d, recon, 1e-2) is None

    def test_ae_a_embedded_model_roundtrips_bounded(self, data_2d):
        comp = AEACompressor(segment_length=512, seed=3)
        blob = repro.compress(data_2d, codec=comp, bound=Rel(1e-2))
        recon = repro.decompress(blob)
        assert verify_error_bound(data_2d, recon, 1e-2) is None

    def test_corrupted_embedded_model_raises_corrupt(self, trained_aesz_2d, data_2d):
        blob = repro.compress(data_2d, codec=trained_aesz_2d, bound=Rel(1e-2))
        archive = Archive.from_bytes(blob)
        tampered = bytearray(archive.extra["model"])
        tampered[len(tampered) // 2] ^= 0xFF
        archive.extra["model"] = bytes(tampered)
        with pytest.raises(ValueError, match="corrupt"):
            repro.decompress(archive.to_bytes())

    @pytest.mark.parametrize("backend", ["zlib", "bz2", "lzma"])
    def test_backend_garbage_raises_corrupt(self, backend):
        from repro.encoding.lossless import get_backend

        with pytest.raises(ValueError, match="corrupt stream"):
            get_backend(backend).decompress(b"\xff\xfe definitely not a stream")

    def test_ae_b_tampered_weights_detected(self, data_2d):
        comp = AEBCompressor(block_size=8, ndim=2, seed=0)
        blob = repro.compress(data_2d, codec=comp, bound=Rel(1e-2))
        other = AEBCompressor(block_size=8, ndim=2, seed=1)  # different weights
        with pytest.raises(ValueError, match="model mismatch"):
            repro.decompress(blob, autoencoder=other.autoencoder)

    @pytest.mark.parametrize("embed", [False, True])
    def test_ae_b_model_from_path(self, data_2d, tmp_path, embed):
        """model=<path> works for every AE-backed codec, embedded or not."""
        comp = AEBCompressor(block_size=8, ndim=2, seed=0)
        blob = repro.compress(data_2d, codec=comp, bound=Rel(1e-2), embed_model=embed)
        path = tmp_path / "aeb.npz"
        comp.autoencoder.save(path)
        recon = repro.decompress(blob, model=path)
        assert recon.shape == data_2d.shape

    def test_ae_a_model_from_path(self, data_2d, tmp_path):
        comp = AEACompressor(segment_length=512, seed=0)
        blob = repro.compress(data_2d, codec=comp, bound=Rel(1e-2), embed_model=False)
        path = tmp_path / "aea.npz"
        comp.autoencoder.save(path)
        recon = repro.decompress(blob, model=path)
        assert verify_error_bound(data_2d, recon, 1e-2) is None
